//! HPC analytics scenario: the paper's two LANL workloads (Laghos fluid
//! dynamics, Deep Water asteroid impact) queried at every pushdown depth,
//! showing how execution time and data movement respond.
//!
//! ```sh
//! cargo run -p examples --example hpc_analytics
//! ```

use std::sync::Arc;

use dsq::EngineBuilder;
use netsim::meter::human_bytes;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, OcsConnector, PushdownPolicy};
use workloads::{queries, DeepWaterConfig, LaghosConfig, TableLoader};

fn main() {
    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());

    println!("generating datasets…");
    {
        let loader = TableLoader::new(&store, engine.metastore());
        let l = workloads::laghos::load(
            &loader,
            &LaghosConfig {
                files: 8,
                rows_per_file: 64 * 1024,
                ..Default::default()
            },
        );
        println!(
            "  laghos:    {} files, {} rows, {}",
            l.files,
            l.total_rows,
            human_bytes(l.total_bytes)
        );
        let d = workloads::deepwater::load(
            &loader,
            &DeepWaterConfig {
                files: 8,
                rows_per_file: 128 * 1024,
                ..Default::default()
            },
        );
        println!(
            "  deepwater: {} files, {} rows, {}",
            d.files,
            d.total_rows,
            human_bytes(d.total_bytes)
        );
    }

    // One connector per pushdown depth, so we can sweep by rebinding.
    let ocs = register_ocs_stack(&engine, store, PushdownPolicy::all());
    let depths: Vec<(&str, PushdownPolicy)> = vec![
        ("filter", PushdownPolicy::filter_only()),
        ("filter+proj", PushdownPolicy::filter_project()),
        (
            "filter+proj+agg",
            PushdownPolicy::filter_project_aggregate(),
        ),
        ("all ops", PushdownPolicy::all()),
    ];
    for (name, policy) in &depths {
        engine.register_connector(Arc::new(OcsConnector::new(
            name.to_string(),
            ocs.clone(),
            engine.cluster().clone(),
            engine.cost_params().clone(),
            policy.clone(),
        )));
    }

    for (table, sql) in [
        ("laghos", queries::LAGHOS),
        ("deepwater", queries::DEEPWATER),
    ] {
        println!("\n=== {table} ===");
        println!("{sql}\n");
        println!(
            "{:<16} {:>12} {:>14} {:>10}  residual engine plan",
            "pushdown", "sim time", "data moved", "rows"
        );
        // Baseline: raw connector (no pushdown).
        engine.metastore().rebind_connector(table, "raw").unwrap();
        let base = engine.execute(sql).expect("raw");
        println!(
            "{:<16} {:>10.2} s {:>14} {:>10}  {}",
            "none (raw)",
            base.simulated_seconds,
            human_bytes(base.moved_bytes),
            base.batch.num_rows(),
            base.chain
        );
        for (name, _) in &depths {
            engine.metastore().rebind_connector(table, name).unwrap();
            let r = engine.execute(sql).expect(name);
            println!(
                "{:<16} {:>10.2} s {:>14} {:>10}  {}",
                *name,
                r.simulated_seconds,
                human_bytes(r.moved_bytes),
                r.batch.num_rows(),
                r.chain
            );
            assert_eq!(
                r.batch.num_rows(),
                base.batch.num_rows(),
                "pushdown must not change results"
            );
        }
    }
    println!("\n(lower time and smaller movement with deeper pushdown — Figure 5's shape)");
}
