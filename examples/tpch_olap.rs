//! Business OLAP scenario: TPC-H Q1 over the generated `lineitem` table,
//! comparing the three access paths (raw / Hive / OCS) and showing the
//! connector's pushdown-monitoring facility.
//!
//! ```sh
//! cargo run -p examples --example tpch_olap
//! ```

use std::sync::Arc;

use dsq::EngineBuilder;
use netsim::meter::human_bytes;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownMonitor, PushdownPolicy};
use workloads::{queries, TableLoader, TpchConfig};

fn main() {
    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());

    println!("generating lineitem…");
    let ds = {
        let loader = TableLoader::new(&store, engine.metastore());
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: 8,
                rows_per_file: 64 * 1024,
                ..Default::default()
            },
        )
    };
    println!(
        "  {} files, {} rows, {}",
        ds.files,
        ds.total_rows,
        human_bytes(ds.total_bytes)
    );

    register_ocs_stack(&engine, store, PushdownPolicy::all());

    // The paper's pushdown monitor: an EventListener with a sliding window.
    let monitor = Arc::new(PushdownMonitor::new(16));
    engine.add_listener(monitor.clone());

    println!("\nTPC-H Query 1:\n{}\n", queries::TPCH_Q1);
    println!(
        "{:<22} {:>12} {:>14} {:>8}",
        "access path", "sim time", "data moved", "rows"
    );
    let mut reference: Option<Vec<Vec<columnar::Scalar>>> = None;
    for connector in ["raw", "hive", "ocs"] {
        engine
            .metastore()
            .rebind_connector("lineitem", connector)
            .unwrap();
        let r = engine.execute(queries::TPCH_Q1).expect(connector);
        let label = match connector {
            "raw" => "raw (no pushdown)",
            "hive" => "hive (filter only)",
            _ => "ocs (full pushdown)",
        };
        println!(
            "{:<22} {:>10.3} s {:>14} {:>8}",
            label,
            r.simulated_seconds,
            human_bytes(r.moved_bytes),
            r.batch.num_rows()
        );
        match &reference {
            None => reference = Some(r.batch.rows()),
            Some(expect) => {
                // Floating-point sums differ in association order across
                // paths; compare row counts + group keys here.
                assert_eq!(r.batch.num_rows(), expect.len());
            }
        }
    }

    // Show the classic Q1 output once.
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .unwrap();
    let r = engine.execute(queries::TPCH_Q1).unwrap();
    println!("\npricing summary ({} groups):", r.batch.num_rows());
    print!("{}", r.batch);

    println!("\npushdown monitor (sliding window):");
    monitor.with_history(|h| {
        println!("  executions remembered : {}", h.len());
        println!(
            "  pushdown rate         : {:.0} %",
            h.pushdown_rate() * 100.0
        );
        println!(
            "  mean data movement    : {}",
            human_bytes(h.mean_moved_bytes() as u64)
        );
        println!("  mean simulated latency: {:.3} s", h.mean_seconds());
        for e in h.entries() {
            println!("    [{}] {}", e.chain, e.scan_handle);
        }
    });
}
