//! Quickstart: stand up the whole stack — object store, OCS, engine,
//! connectors — load a small dataset and run a SQL query with full
//! operator pushdown.
//!
//! ```sh
//! cargo run -p examples --example quickstart
//! ```

use std::sync::Arc;

use columnar::prelude::*;
use dsq::catalog::{ObjectLocation, TableMeta, TableStats};
use dsq::EngineBuilder;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownPolicy};
use parq::ColumnStats;

fn main() {
    // 1. An engine modeled on the paper's testbed (64-core compute node,
    //    16-core storage node, 10 GbE between them).
    let engine = EngineBuilder::new().build();

    // 2. An object store holding one parq table of a million points.
    let store = Arc::new(ObjectStore::new());
    store.create_bucket("lake").unwrap();
    let schema = Arc::new(Schema::new(vec![
        Field::new("sensor", DataType::Int64, false),
        Field::new("reading", DataType::Float64, false),
    ]));
    let n: i64 = 1_000_000;
    let sensors: Vec<i64> = (0..n).map(|i| i % 50).collect();
    let readings: Vec<f64> = (0..n).map(|i| ((i * 37) % 1000) as f64 / 10.0).collect();
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Arc::new(Array::from_i64(sensors)),
            Arc::new(Array::from_f64(readings.clone())),
        ],
    )
    .unwrap();
    let file = parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
    let file_len = file.len() as u64;
    store
        .put_object("lake", "points/part-0.parq", file.into())
        .unwrap();

    // 3. Register the table in the metastore (schema + statistics, like a
    //    Hive metastore entry).
    let reading_stats = ColumnStats {
        min: Scalar::Float64(0.0),
        max: Scalar::Float64(99.9),
        null_count: 0,
        row_count: n as u64,
        distinct: 1000,
    };
    let sensor_stats = ColumnStats {
        min: Scalar::Int64(0),
        max: Scalar::Int64(49),
        null_count: 0,
        row_count: n as u64,
        distinct: 50,
    };
    engine.metastore().register(TableMeta {
        name: "points".into(),
        connector: "ocs".into(),
        schema,
        objects: vec![ObjectLocation {
            bucket: "lake".into(),
            key: "points/part-0.parq".into(),
            rows: n as u64,
            bytes: file_len,
            ..Default::default()
        }],
        stats: TableStats {
            row_count: n as u64,
            columns: vec![sensor_stats, reading_stats],
        },
    });

    // 4. Register the OCS / Hive / Raw connectors (the paper's comparison
    //    stack) with full pushdown enabled.
    register_ocs_stack(&engine, store, PushdownPolicy::all());

    // 5. Run a query. The connector pushes the filter and the aggregation
    //    into storage; only 50 aggregated rows cross the simulated network.
    let sql = "SELECT sensor, avg(reading) AS avg_r, count(*) AS n \
               FROM points WHERE reading > 90 GROUP BY sensor \
               ORDER BY avg_r DESC LIMIT 5";
    let result = engine.execute(sql).expect("query runs");

    println!("query: {sql}\n");
    println!("optimized plan:\n{}", result.optimized_plan);
    println!("operator chain: {}", result.chain);
    println!("\nresult ({} rows):", result.batch.num_rows());
    print!("{}", result.batch);
    println!(
        "\nsimulated execution time: {:.4} s",
        result.simulated_seconds
    );
    println!(
        "data moved storage → compute: {} (of {} stored)",
        netsim::meter::human_bytes(result.moved_bytes),
        netsim::meter::human_bytes(file_len),
    );
    println!("\nper-phase breakdown:");
    for (label, secs, share) in result.ledger.breakdown() {
        println!("  {label:<30} {secs:>9.4} s  {share:>5.1} %");
    }
}
