//! The example binaries are in this directory; run them with `cargo run -p examples --example <name>`.
