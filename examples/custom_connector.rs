//! Writing a custom connector against the engine's SPI — the
//! extensibility story the paper's design leans on ("Presto supports a
//! flexible connector-based interface").
//!
//! This example implements a miniature connector from scratch: an
//! in-memory table served by a `SplitManager` + `PageSourceProvider` pair,
//! with a `ConnectorPlanOptimizer` that performs its own (filter-only)
//! pushdown and reports what it did.
//!
//! ```sh
//! cargo run -p examples --example custom_connector
//! ```

use std::any::Any;
use std::sync::Arc;

use columnar::kernels::{boolean, cmp, selection};
use columnar::prelude::*;
use dsq::catalog::{ObjectLocation, TableMeta, TableStats};
use dsq::error::{EResult, EngineError};
use dsq::expr::ScalarExpr;
use dsq::plan::{LogicalPlan, TableScanNode};
use dsq::spi::{
    BufferedPageStream, Connector, ConnectorPlanOptimizer, DefaultSplitManager, OptimizerContext,
    PageSourceProvider, PageSourceResult, Split, SplitManager, TableHandle,
};
use dsq::EngineBuilder;
use parking_lot::Mutex;

/// Our connector's private scan handle: the pushed-down predicate.
#[derive(Debug, Clone)]
struct MemHandle {
    predicate: Option<ScalarExpr>,
}

impl TableHandle for MemHandle {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn describe(&self) -> String {
        match &self.predicate {
            Some(p) => format!("mem pushed-filter=[{p}]"),
            None => "mem".into(),
        }
    }
}

/// The connector: one in-memory batch, filter pushdown, a pushdown log.
struct MemConnector {
    data: RecordBatch,
    log: Arc<Mutex<Vec<String>>>,
}

struct MemOptimizer {
    log: Arc<Mutex<Vec<String>>>,
}

impl MemOptimizer {
    /// Recursively find a Filter sitting directly on our scan, anywhere in
    /// the chain, and fold its predicate into the scan handle. The
    /// engine-side Filter node is kept, demonstrating that residual
    /// re-filtering of already-filtered pages is harmless.
    fn rewrite(&self, plan: &LogicalPlan) -> LogicalPlan {
        if let LogicalPlan::Filter { input, predicate } = plan {
            if let LogicalPlan::TableScan(scan) = input.as_ref() {
                if scan.connector == "mem" {
                    self.log.lock().push(format!("pushed filter: {predicate}"));
                    return plan.with_input(LogicalPlan::TableScan(TableScanNode {
                        handle: Arc::new(MemHandle {
                            predicate: Some(predicate.clone()),
                        }),
                        ..scan.clone()
                    }));
                }
            }
        }
        match plan.input() {
            Some(child) => plan.with_input(self.rewrite(child)),
            None => plan.clone(),
        }
    }
}

impl ConnectorPlanOptimizer for MemOptimizer {
    fn optimize(&self, plan: LogicalPlan, _ctx: &OptimizerContext<'_>) -> EResult<LogicalPlan> {
        Ok(self.rewrite(&plan))
    }
}

struct MemPages {
    data: RecordBatch,
}

impl PageSourceProvider for MemPages {
    fn create(&self, split: &Split) -> EResult<PageSourceResult> {
        let mut batch = self.data.clone();
        if let Some(h) = split.handle.as_any().downcast_ref::<MemHandle>() {
            if let Some(p) = &h.predicate {
                let mask = p.eval(&batch)?;
                let mask = mask.as_bool().map_err(EngineError::Columnar)?;
                batch = selection::filter_batch(&batch, mask).map_err(EngineError::Columnar)?;
            }
        }
        let bytes = batch.byte_size() as u64;
        // A connector that materializes its whole result wraps it in a
        // buffered stream; streaming connectors implement `PageStream`
        // themselves and yield frame-at-a-time.
        Ok(PageSourceResult {
            stream: BufferedPageStream::whole_result(
                vec![batch],
                Default::default(),
                bytes,
                1,
                0.0,
            ),
            substrait_gen_s: 0.0,
        })
    }
}

impl Connector for MemConnector {
    fn name(&self) -> &str {
        "mem"
    }
    fn plan_optimizer(&self) -> Option<Arc<dyn ConnectorPlanOptimizer>> {
        Some(Arc::new(MemOptimizer {
            log: self.log.clone(),
        }))
    }
    fn split_manager(&self) -> Arc<dyn SplitManager> {
        Arc::new(DefaultSplitManager)
    }
    fn page_source_provider(&self) -> Arc<dyn PageSourceProvider> {
        Arc::new(MemPages {
            data: self.data.clone(),
        })
    }
}

fn main() {
    // Build the in-memory table.
    let schema = Arc::new(Schema::new(vec![
        Field::new("city", DataType::Utf8, false),
        Field::new("temp", DataType::Float64, false),
    ]));
    let cities = ["tokyo", "zurich", "austin", "tokyo", "zurich", "austin"];
    let temps = [29.0, 18.5, 35.2, 31.1, 16.9, 38.0];
    let data = RecordBatch::try_new(
        schema.clone(),
        vec![
            Arc::new(Array::from_strs(cities)),
            Arc::new(Array::from_f64(temps.to_vec())),
        ],
    )
    .unwrap();

    // Stand up the engine and register the table + connector.
    let engine = EngineBuilder::new().build();
    engine.metastore().register(TableMeta {
        name: "weather".into(),
        connector: "mem".into(),
        schema,
        objects: vec![ObjectLocation {
            bucket: "mem".into(),
            key: "weather".into(),
            rows: data.num_rows() as u64,
            bytes: data.byte_size() as u64,
            ..Default::default()
        }],
        stats: TableStats {
            row_count: data.num_rows() as u64,
            columns: vec![],
        },
    });
    let log = Arc::new(Mutex::new(Vec::new()));
    engine.register_connector(Arc::new(MemConnector {
        data,
        log: log.clone(),
    }));

    let sql = "SELECT city, avg(temp) AS avg_temp FROM weather \
               WHERE temp > 20 GROUP BY city ORDER BY avg_temp DESC";
    let result = engine.execute(sql).expect("query");
    println!("query: {sql}\n");
    println!("plan:\n{}", result.optimized_plan);
    print!("result:\n{}", result.batch);
    println!("\nconnector log:");
    for line in log.lock().iter() {
        println!("  {line}");
    }

    // The mask-evaluation helpers are also directly usable:
    let demo = Array::from_f64(vec![1.0, 25.0, 40.0]);
    let mask = cmp::gt_scalar(&demo, &Scalar::Float64(20.0)).unwrap();
    let kept = boolean::true_count(&mask);
    println!("\n(kernel demo: {kept} of 3 values above 20)");
}
