//! End-to-end query tracing: run TPC-H Q1 through the OCS pushdown stack,
//! print the `EXPLAIN ANALYZE` span tree, and export the trace as a Chrome
//! trace-event file (load `trace.json` in `chrome://tracing` or Perfetto).
//!
//! ```sh
//! cargo run -p examples --example trace_query [output.json]
//! ```

use std::sync::Arc;

use dsq::{EngineBuilder, StatementOutput};
use netsim::meter::human_bytes;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownPolicy};
use workloads::{queries, TableLoader, TpchConfig};

fn main() {
    let out_path = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "trace.json".to_string());

    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());

    println!("generating lineitem…");
    let ds = {
        let loader = TableLoader::new(&store, engine.metastore());
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: 4,
                rows_per_file: 32 * 1024,
                ..Default::default()
            },
        )
    };
    println!(
        "  {} files, {} rows, {}",
        ds.files,
        ds.total_rows,
        human_bytes(ds.total_bytes)
    );

    register_ocs_stack(&engine, store, PushdownPolicy::all());
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .expect("lineitem registered");

    // EXPLAIN ANALYZE: executes the query and renders the span tree.
    let analyze_sql = format!("EXPLAIN ANALYZE {}", queries::TPCH_Q1);
    match engine.execute_statement(&analyze_sql).expect("q1") {
        StatementOutput::Text(text) => println!("\n{text}"),
        StatementOutput::Rows(_) => unreachable!("EXPLAIN ANALYZE returns text"),
    }

    // Run it again for the raw trace and export Chrome trace events,
    // including the per-resource utilization counter tracks.
    let result = engine.execute(queries::TPCH_Q1).expect("q1 rows");
    result.trace.verify(1e-9).expect("span tree invariants");
    let json = obs::chrome::export_with_profile(&result.trace, Some(&result.profile));
    obs::chrome::validate(&json).expect("exported trace validates");
    std::fs::write(&out_path, &json).expect("write trace file");
    println!(
        "wrote {} ({} spans, {} resource timelines, {} simulated seconds) \
         — open in chrome://tracing",
        out_path,
        result.trace.spans.len(),
        result.profile.timelines.len(),
        result.trace.total_s()
    );
    if let Some(b) = result.profile.bottleneck() {
        println!("bottleneck: {b}");
    }

    // Process-wide metrics collected along the way.
    println!("\nmetrics snapshot:");
    print!("{}", obs::metrics().snapshot().render());
}
