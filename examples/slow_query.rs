//! Slow-query auto-capture: run TPC-H Q1 under a deliberately tiny
//! slow-query threshold so the engine trips its always-on incident path —
//! the span tree, the flight-recorder slice around the query, and the
//! per-resource utilization profile land in one JSON report under the
//! incident directory, ready for `xtask report`.
//!
//! ```sh
//! cargo run -p examples --example slow_query [incident-dir]
//! cargo run -p xtask -- report <incident-dir>/incident-<seq>.json
//! ```

use std::sync::Arc;

use dsq::EngineBuilder;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownPolicy};
use workloads::{queries, TableLoader, TpchConfig};

fn main() {
    let dir = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "incidents".to_string());

    // A 1 µs threshold makes any real query "slow"; deployments set this
    // to their latency SLO and leave it on — capture is cheap enough.
    let engine = EngineBuilder::new()
        .slow_query_threshold(1e-6)
        .incident_dir(&dir)
        .build();
    let store = Arc::new(ObjectStore::new());

    println!("generating lineitem…");
    {
        let loader = TableLoader::new(&store, engine.metastore());
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: 4,
                rows_per_file: 32 * 1024,
                ..Default::default()
            },
        );
    }
    register_ocs_stack(&engine, store, PushdownPolicy::all());
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .expect("lineitem registered");

    let r = engine.execute(queries::TPCH_Q1).expect("q1");
    println!(
        "q1 simulated {:.6}s — over the 1 µs threshold, incident captured",
        r.simulated_seconds
    );
    if let Some(b) = r.profile.bottleneck() {
        println!("bottleneck: {b}");
    }

    // The report is also stashed on the engine; validate it end to end.
    let report = engine.take_last_incident().expect("incident captured");
    let summary = obs::incident::check(&report).expect("incident validates");
    println!("incident: {summary}");

    // And it was written to disk for `xtask report`.
    let mut files: Vec<_> = std::fs::read_dir(&dir)
        .expect("incident dir exists")
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.starts_with("incident-") && n.ends_with(".json"))
        })
        .collect();
    files.sort();
    let newest = files.last().expect("incident file written");
    println!(
        "wrote {} — render with: cargo run -p xtask -- report {}",
        newest.display(),
        newest.display()
    );
}
