//! Compression × pushdown interaction (the paper's Figure 6): the Deep
//! Water dataset is stored under each codec, then queried with filter-only
//! vs all-operator pushdown.
//!
//! ```sh
//! cargo run -p examples --example compression_study
//! ```

use std::sync::Arc;

use dsq::EngineBuilder;
use lzcodec::CodecKind;
use netsim::meter::human_bytes;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, OcsConnector, PushdownPolicy};
use workloads::{queries, DeepWaterConfig, TableLoader};

fn main() {
    println!(
        "{:<10} {:>12} {:>14} {:>14} {:>14} {:>9}",
        "codec", "stored size", "filter-only", "all-ops", "moved(f.o.)", "speedup"
    );
    for codec in CodecKind::ALL {
        // A fresh stack per codec: the dataset is re-encoded.
        let engine = EngineBuilder::new().build();
        let store = Arc::new(ObjectStore::new());
        let ds = {
            let mut loader = TableLoader::new(&store, engine.metastore());
            loader.codec = codec;
            workloads::deepwater::load(
                &loader,
                &DeepWaterConfig {
                    files: 8,
                    rows_per_file: 64 * 1024,
                    ..Default::default()
                },
            )
        };
        let ocs = register_ocs_stack(&engine, store, PushdownPolicy::all());
        engine.register_connector(Arc::new(OcsConnector::new(
            "ocs-filter",
            ocs,
            engine.cluster().clone(),
            engine.cost_params().clone(),
            PushdownPolicy::filter_only(),
        )));

        engine
            .metastore()
            .rebind_connector("deepwater", "ocs-filter")
            .unwrap();
        let filter_only = engine.execute(queries::DEEPWATER).expect("filter-only");
        engine
            .metastore()
            .rebind_connector("deepwater", "ocs")
            .unwrap();
        let all_ops = engine.execute(queries::DEEPWATER).expect("all-ops");
        assert_eq!(filter_only.batch.num_rows(), all_ops.batch.num_rows());

        println!(
            "{:<10} {:>12} {:>11.3} s {:>11.3} s {:>14} {:>8.2}x",
            codec.name(),
            human_bytes(ds.total_bytes),
            filter_only.simulated_seconds,
            all_ops.simulated_seconds,
            human_bytes(filter_only.moved_bytes),
            filter_only.simulated_seconds / all_ops.simulated_seconds,
        );
    }
    println!("\n(the paper's Figure 6: all-operator pushdown wins under every codec,");
    println!(" and stronger compression helps both configurations)");
}
