//! Shared fixtures for the cross-crate integration tests.

use std::sync::Arc;

use dsq::{Engine, EngineBuilder};
use lzcodec::CodecKind;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, OcsConnector, PushdownPolicy};
use workloads::{DeepWaterConfig, LaghosConfig, TableLoader, TpchConfig};

/// A full test stack: engine + store with all three datasets (small).
pub struct Stack {
    pub engine: Engine,
    #[allow(dead_code)] // some test binaries only drive the engine
    pub store: Arc<ObjectStore>,
}

/// Build a stack with every dataset loaded and connectors registered:
/// `"raw"`, `"hive"`, `"ocs"` (with `policy`), plus one extra OCS
/// connector per named policy in `extra` (so one stack can compare
/// pushdown depths by rebinding tables).
pub fn stack(policy: PushdownPolicy, codec: CodecKind, extra: &[(&str, PushdownPolicy)]) -> Stack {
    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());
    {
        let mut loader = TableLoader::new(&store, engine.metastore());
        loader.codec = codec;
        loader.row_group_rows = 8 * 1024;
        workloads::laghos::load(
            &loader,
            &LaghosConfig {
                files: 4,
                rows_per_file: 16 * 1024,
                ..Default::default()
            },
        );
        workloads::deepwater::load(
            &loader,
            &DeepWaterConfig {
                files: 4,
                rows_per_file: 16 * 1024,
                ..Default::default()
            },
        );
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: 4,
                rows_per_file: 8 * 1024,
                ..Default::default()
            },
        );
    }
    let ocs = register_ocs_stack(&engine, store.clone(), policy);
    for (name, p) in extra {
        engine.register_connector(Arc::new(OcsConnector::new(
            name.to_string(),
            ocs.clone(),
            engine.cluster().clone(),
            engine.cost_params().clone(),
            p.clone(),
        )));
    }
    Stack { engine, store }
}

/// Build a stack with only the default connectors.
#[allow(dead_code)] // not every test binary compares policies
pub fn stack_with_policy(policy: PushdownPolicy, codec: CodecKind) -> Stack {
    stack(policy, codec, &[])
}

/// Rebind a table to another connector.
pub fn rebind(stack: &Stack, table: &str, connector: &str) {
    stack
        .engine
        .metastore()
        .rebind_connector(table, connector)
        .unwrap();
}

/// Rows of a result as display strings, with floats rounded for stable
/// cross-path comparison (operator order differs between paths).
#[allow(dead_code)] // not every test binary checks row-level equivalence
pub fn canonical_rows(batch: &columnar::RecordBatch) -> Vec<Vec<String>> {
    (0..batch.num_rows())
        .map(|r| {
            batch
                .row(r)
                .iter()
                .map(|s| match s {
                    columnar::Scalar::Float64(v) => format!("{:.6}", v),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect()
}
