//! End-to-end correctness: the three Table-2 queries must produce
//! identical results through every access path — no pushdown (raw),
//! filter-only (hive), and every OCS pushdown depth — while data movement
//! decreases monotonically with pushdown depth.

mod common;

use common::{canonical_rows, rebind, stack, stack_with_policy};
use lzcodec::CodecKind;
use ocs_connector::PushdownPolicy;
use workloads::queries;

fn policies() -> Vec<(&'static str, PushdownPolicy)> {
    vec![
        ("none", PushdownPolicy::none()),
        ("filter", PushdownPolicy::filter_only()),
        ("filter+proj", PushdownPolicy::filter_project()),
        (
            "filter+proj+agg",
            PushdownPolicy::filter_project_aggregate(),
        ),
        ("all", PushdownPolicy::all()),
    ]
}

fn check_query(table: &str, sql: &str) {
    let extra: Vec<(&str, PushdownPolicy)> = policies().into_iter().collect();
    let st = stack(PushdownPolicy::all(), CodecKind::None, &extra);

    // Reference: raw connector (no pushdown at all).
    rebind(&st, table, "raw");
    let reference = st.engine.execute(sql).expect("raw path");
    let expected = canonical_rows(&reference.batch);
    assert!(!expected.is_empty(), "reference result must be non-empty");

    // Hive (filter-only pushdown).
    rebind(&st, table, "hive");
    let hive = st.engine.execute(sql).expect("hive path");
    assert_eq!(
        canonical_rows(&hive.batch),
        expected,
        "{table}: hive result differs from raw"
    );
    assert!(
        hive.moved_bytes <= reference.moved_bytes,
        "{table}: hive moved {} > raw {}",
        hive.moved_bytes,
        reference.moved_bytes
    );

    // OCS at each pushdown depth.
    let mut prev_moved = u64::MAX;
    for (name, _) in policies() {
        rebind(&st, table, name);
        let got = st.engine.execute(sql).unwrap_or_else(|e| {
            panic!("{table} with policy {name}: {e}");
        });
        assert_eq!(
            canonical_rows(&got.batch),
            expected,
            "{table}: OCS policy '{name}' changed the result"
        );
        // Deeper pushdown never moves more data — modulo the small wire
        // overhead a projection can add when its output is no narrower
        // than its input (the paper's TPC-H "+Proj" case, where movement
        // stays flat at 192 MB).
        let slack = prev_moved / 8 + 4096;
        assert!(
            got.moved_bytes <= prev_moved.saturating_add(slack),
            "{table} policy '{name}': movement grew: {} after {}",
            got.moved_bytes,
            prev_moved
        );
        prev_moved = got.moved_bytes;
    }
}

#[test]
fn laghos_all_paths_agree() {
    check_query("laghos", queries::LAGHOS);
}

#[test]
fn deepwater_all_paths_agree() {
    check_query("deepwater", queries::DEEPWATER);
}

#[test]
fn tpch_q1_all_paths_agree() {
    check_query("lineitem", queries::TPCH_Q1);
}

#[test]
fn table2_plan_chains_match_paper() {
    let stack = stack_with_policy(PushdownPolicy::none(), CodecKind::None);
    for (name, sql, expected_chain) in queries::TABLE2 {
        let (_, plan) = stack.engine.plan(sql).expect(name);
        assert_eq!(plan.chain_description(), expected_chain, "{name}");
    }
}

#[test]
fn full_pushdown_collapses_movement_by_orders_of_magnitude() {
    // The headline effect: Laghos full pushdown vs filter-only.
    let filter_only = stack_with_policy(PushdownPolicy::filter_only(), CodecKind::None);
    let all = stack_with_policy(PushdownPolicy::all(), CodecKind::None);
    let a = filter_only.engine.execute(queries::LAGHOS).unwrap();
    let b = all.engine.execute(queries::LAGHOS).unwrap();
    assert_eq!(canonical_rows(&a.batch), canonical_rows(&b.batch));
    assert!(
        b.moved_bytes * 20 < a.moved_bytes,
        "full pushdown {} vs filter-only {}",
        b.moved_bytes,
        a.moved_bytes
    );
    // Compare the *data-path* time (scan/filter/agg/transfer); the fixed
    // per-query costs (plan analysis, IR generation, scheduling) are
    // scale-independent and dominate only at this miniature test scale.
    let data_path = |r: &dsq::QueryResult| {
        use netsim::Phase;
        r.simulated_seconds
            - r.ledger.get(Phase::SubstraitGen)
            - r.ledger.get(Phase::PlanAnalysis)
            - r.ledger.get(Phase::Other)
    };
    assert!(
        data_path(&b) < data_path(&a),
        "full pushdown {} s vs filter-only {} s (data path)",
        data_path(&b),
        data_path(&a)
    );
}

#[test]
fn pushdown_metadata_visible_in_plan() {
    let stack = stack_with_policy(PushdownPolicy::all(), CodecKind::None);
    let (_, plan) = stack.engine.plan(queries::LAGHOS).unwrap();
    let desc = plan.scan().handle.describe();
    assert!(desc.contains("Filter"), "{desc}");
    assert!(desc.contains("Aggregation"), "{desc}");
    // Laghos full pushdown: residual plan is just the TopN merge.
    assert_eq!(plan.chain_description(), "TableScan -> TopN");
}

#[test]
fn compressed_datasets_same_results() {
    for codec in [CodecKind::Snap, CodecKind::Gz, CodecKind::Zst] {
        let raw = stack_with_policy(PushdownPolicy::all(), CodecKind::None);
        let compressed = stack_with_policy(PushdownPolicy::all(), codec);
        for (name, sql, _) in queries::TABLE2 {
            let a = raw.engine.execute(sql).expect(name);
            let b = compressed.engine.execute(sql).expect(name);
            assert_eq!(
                canonical_rows(&a.batch),
                canonical_rows(&b.batch),
                "{name} under {codec}"
            );
        }
    }
}
