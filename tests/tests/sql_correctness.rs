//! SQL semantics: queries over a small, hand-checkable dataset must
//! return exactly the hand-computed answers — through the full stack
//! (parq objects in the store, OCS connector with full pushdown).

use std::sync::Arc;

use columnar::prelude::*;
use dsq::catalog::{ObjectLocation, TableMeta, TableStats};
use dsq::{Engine, EngineBuilder};
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownPolicy};
use parq::ColumnStats;

/// city, temp, day — 9 rows over 3 cities, split across 2 objects.
fn setup() -> Engine {
    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());
    store.create_bucket("lake").unwrap();
    let schema = Arc::new(Schema::new(vec![
        Field::new("city", DataType::Utf8, false),
        Field::new("temp", DataType::Float64, false),
        Field::new("day", DataType::Int64, false),
    ]));
    let part = |cities: &[&str], temps: &[f64], days: &[i64]| {
        RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_strs(cities.iter().copied())),
                Arc::new(Array::from_f64(temps.to_vec())),
                Arc::new(Array::from_i64(days.to_vec())),
            ],
        )
        .unwrap()
    };
    // Groups deliberately SPAN objects: partial/final merging must be exact.
    let parts = [
        part(
            &["oslo", "cairo", "lima", "oslo", "cairo"],
            &[2.0, 35.0, 18.0, -3.0, 31.0],
            &[1, 1, 1, 2, 2],
        ),
        part(
            &["lima", "oslo", "cairo", "lima"],
            &[20.0, 1.0, 33.0, 19.0],
            &[2, 3, 3, 3],
        ),
    ];
    let mut objects = Vec::new();
    let mut stats_cols = vec![ColumnStats::empty(); 3];
    let mut rows = 0;
    for (i, b) in parts.iter().enumerate() {
        let bytes =
            parq::writer::write_file(schema.clone(), std::slice::from_ref(b), Default::default())
                .unwrap();
        let key = format!("weather/{i}");
        rows += b.num_rows() as u64;
        for (c, stat) in stats_cols.iter_mut().enumerate() {
            *stat = stat.merge(&ColumnStats::compute(b.column(c)));
        }
        objects.push(ObjectLocation {
            bucket: "lake".into(),
            key: key.clone(),
            rows: b.num_rows() as u64,
            bytes: bytes.len() as u64,
            ..Default::default()
        });
        store.put_object("lake", &key, bytes.into()).unwrap();
    }
    engine.metastore().register(TableMeta {
        name: "weather".into(),
        connector: "ocs".into(),
        schema,
        objects,
        stats: TableStats {
            row_count: rows,
            columns: stats_cols,
        },
    });
    register_ocs_stack(&engine, store, PushdownPolicy::all());
    engine
}

fn rows_of(engine: &Engine, sql: &str) -> Vec<Vec<String>> {
    let r = engine.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    (0..r.batch.num_rows())
        .map(|i| {
            r.batch
                .row(i)
                .iter()
                .map(|s| match s {
                    Scalar::Float64(v) => format!("{v:.4}"),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect()
}

#[test]
fn group_by_with_cross_object_groups() {
    let engine = setup();
    // cairo: 35+31+33=99/3=33; lima: 18+20+19=57/3=19; oslo: 2-3+1=0/3=0.
    let got = rows_of(
        &engine,
        "SELECT city, avg(temp) AS a, count(*) AS n FROM weather GROUP BY city ORDER BY city",
    );
    assert_eq!(
        got,
        vec![
            vec!["'cairo'", "33.0000", "3"],
            vec!["'lima'", "19.0000", "3"],
            vec!["'oslo'", "0.0000", "3"],
        ]
    );
}

#[test]
fn filter_then_aggregate() {
    let engine = setup();
    // temp > 15: cairo 35,31,33; lima 18,20,19 → sums 99 and 57.
    let got = rows_of(
        &engine,
        "SELECT city, sum(temp) AS s FROM weather WHERE temp > 15 GROUP BY city ORDER BY s DESC",
    );
    assert_eq!(
        got,
        vec![vec!["'cairo'", "99.0000"], vec!["'lima'", "57.0000"]]
    );
}

#[test]
fn global_aggregates() {
    let engine = setup();
    let got = rows_of(
        &engine,
        "SELECT count(*) AS n, min(temp) AS lo, max(temp) AS hi, sum(day) AS d FROM weather",
    );
    assert_eq!(got, vec![vec!["9", "-3.0000", "35.0000", "18"]]);
}

#[test]
fn global_aggregate_over_empty_filter() {
    let engine = setup();
    // Nothing is hotter than 100: COUNT = 0, MIN/MAX/AVG = NULL.
    let got = rows_of(
        &engine,
        "SELECT count(*) AS n, max(temp) AS hi, avg(temp) AS a FROM weather WHERE temp > 100",
    );
    assert_eq!(got, vec![vec!["0", "NULL", "NULL"]]);
}

#[test]
fn top_n_ordering() {
    let engine = setup();
    let got = rows_of(
        &engine,
        "SELECT temp, city FROM weather ORDER BY temp DESC LIMIT 3",
    );
    assert_eq!(
        got,
        vec![
            vec!["35.0000", "'cairo'"],
            vec!["33.0000", "'cairo'"],
            vec!["31.0000", "'cairo'"],
        ]
    );
}

#[test]
fn projection_expressions() {
    let engine = setup();
    // Fahrenheit conversion on one city and day.
    let got = rows_of(
        &engine,
        "SELECT temp * 1.8 + 32 AS f FROM weather WHERE city = 'oslo' AND day = 2",
    );
    assert_eq!(got, vec![vec!["26.6000"]]);
}

#[test]
fn between_and_boolean_logic() {
    let engine = setup();
    let got = rows_of(
        &engine,
        "SELECT count(*) AS n FROM weather WHERE temp BETWEEN 18 AND 20 OR city = 'oslo'",
    );
    // between: 18,20,19 (lima x3) + oslo x3 = 6.
    assert_eq!(got, vec![vec!["6"]]);
}

#[test]
fn group_by_expression_key() {
    let engine = setup();
    // Group by day % 2: day1+day3 (odd) = 6 rows, day2 (even) = 3 rows.
    let got = rows_of(
        &engine,
        "SELECT day % 2 AS parity, count(*) AS n FROM weather GROUP BY day % 2 ORDER BY parity",
    );
    assert_eq!(got, vec![vec!["0", "3"], vec!["1", "6"]]);
}

#[test]
fn limit_without_order() {
    let engine = setup();
    let r = engine.execute("SELECT city FROM weather LIMIT 4").unwrap();
    assert_eq!(r.batch.num_rows(), 4);
}

#[test]
fn avg_of_integers_is_float() {
    let engine = setup();
    let got = rows_of(&engine, "SELECT avg(day) AS d FROM weather");
    // days: 1,1,1,2,2,2,3,3,3 → 2.0
    assert_eq!(got, vec![vec!["2.0000"]]);
}

#[test]
fn errors_are_surfaced_cleanly() {
    let engine = setup();
    assert!(engine.execute("SELECT nope FROM weather").is_err());
    assert!(engine.execute("SELECT city FROM ghost").is_err());
    assert!(engine.execute("SELECT FROM weather").is_err());
    // Type error: string arithmetic.
    assert!(engine.execute("SELECT city + 1 FROM weather").is_err());
}
