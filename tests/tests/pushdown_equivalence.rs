//! Property-based connector invariant: for randomly generated queries over
//! a random dataset, the OCS connector at ANY pushdown depth returns
//! exactly what the raw no-pushdown path returns. This is the key
//! correctness contract of the paper's design ("maintaining seamless
//! compatibility with the existing ecosystem").

use std::sync::Arc;

use columnar::prelude::*;
use dsq::catalog::{ObjectLocation, TableMeta, TableStats};
use dsq::{Engine, EngineBuilder};
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, OcsConnector, PushdownPolicy};
use parq::ColumnStats;
use proptest::prelude::*;

/// Deterministically generate a 3-column table from a seed, split over
/// `files` objects, and register it.
fn setup(seed: u64, files: usize, rows_per_file: usize) -> Engine {
    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());
    store.create_bucket("lake").unwrap();
    let schema = Arc::new(Schema::new(vec![
        Field::new("k", DataType::Int64, false),
        Field::new("v", DataType::Float64, false),
        Field::new("w", DataType::Int64, false),
    ]));
    let mut x = seed | 1;
    let mut next = move || {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        x
    };
    let mut objects = Vec::new();
    let mut stats_cols = vec![ColumnStats::empty(); 3];
    let mut total = 0u64;
    for f in 0..files {
        let mut ks = Vec::new();
        let mut vs = Vec::new();
        let mut ws = Vec::new();
        for _ in 0..rows_per_file {
            ks.push((next() % 7) as i64);
            vs.push((next() % 1000) as f64 / 10.0);
            ws.push((next() % 100) as i64);
        }
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64(ks)),
                Arc::new(Array::from_f64(vs)),
                Arc::new(Array::from_i64(ws)),
            ],
        )
        .unwrap();
        for (c, stat) in stats_cols.iter_mut().enumerate() {
            *stat = stat.merge(&ColumnStats::compute(batch.column(c)));
        }
        let bytes = parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
        let key = format!("t/{f}");
        objects.push(ObjectLocation {
            bucket: "lake".into(),
            key: key.clone(),
            rows: rows_per_file as u64,
            bytes: bytes.len() as u64,
            ..Default::default()
        });
        total += rows_per_file as u64;
        store.put_object("lake", &key, bytes.into()).unwrap();
    }
    engine.metastore().register(TableMeta {
        name: "t".into(),
        connector: "ocs".into(),
        schema,
        objects,
        stats: TableStats {
            row_count: total,
            columns: stats_cols,
        },
    });
    let ocs = register_ocs_stack(&engine, store, PushdownPolicy::all());
    for (name, policy) in [
        ("p-none", PushdownPolicy::none()),
        ("p-filter", PushdownPolicy::filter_only()),
        ("p-fp", PushdownPolicy::filter_project()),
        ("p-fpa", PushdownPolicy::filter_project_aggregate()),
    ] {
        engine.register_connector(Arc::new(OcsConnector::new(
            name,
            ocs.clone(),
            engine.cluster().clone(),
            engine.cost_params().clone(),
            policy,
        )));
    }
    engine
}

/// Build a random (but valid) query from proptest-chosen knobs.
#[derive(Debug, Clone)]
struct QuerySpec {
    filter: Option<(String, String, f64)>, // col, op, literal
    agg: bool,
    project_expr: bool,
    order_desc: bool,
    limit: Option<u64>,
}

fn render(q: &QuerySpec) -> String {
    let mut sql = String::from("SELECT ");
    if q.agg {
        if q.project_expr {
            sql.push_str("k, sum(v * 2 + 1) AS s, avg(w % 10) AS a, count(*) AS n");
        } else {
            sql.push_str("k, sum(v) AS s, min(w) AS a, count(*) AS n");
        }
        sql.push_str(" FROM t");
    } else if q.project_expr {
        sql.push_str("k, v * 2 + 1 AS s, w % 10 AS m FROM t");
    } else {
        sql.push_str("k, v, w FROM t");
    }
    if let Some((col, op, lit)) = &q.filter {
        sql.push_str(&format!(" WHERE {col} {op} {lit}"));
    }
    if q.agg {
        sql.push_str(" GROUP BY k");
        sql.push_str(" ORDER BY ");
        sql.push_str(if q.order_desc { "s DESC, k" } else { "k" });
    } else if q.project_expr {
        // ORDER BY resolves against the SELECT output (engine contract).
        sql.push_str(" ORDER BY ");
        sql.push_str(if q.order_desc {
            "s DESC, k, m"
        } else {
            "s, k, m"
        });
    } else {
        sql.push_str(" ORDER BY ");
        sql.push_str(if q.order_desc {
            "v DESC, k, w"
        } else {
            "v, k, w"
        });
    }
    if let Some(n) = q.limit {
        sql.push_str(&format!(" LIMIT {n}"));
    }
    sql
}

fn canonical(engine: &Engine, sql: &str) -> Vec<Vec<String>> {
    let r = engine.execute(sql).unwrap_or_else(|e| panic!("{sql}: {e}"));
    (0..r.batch.num_rows())
        .map(|i| {
            r.batch
                .row(i)
                .iter()
                .map(|s| match s {
                    Scalar::Float64(v) => format!("{v:.6}"),
                    other => other.to_string(),
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_pushdown_depth_matches_raw(
        seed in any::<u64>(),
        files in 1usize..4,
        filter_col in 0usize..3,
        filter_op in 0usize..3,
        filter_lit in 0.0f64..100.0,
        has_filter in any::<bool>(),
        agg in any::<bool>(),
        project_expr in any::<bool>(),
        order_desc in any::<bool>(),
        limit in proptest::option::of(1u64..20),
    ) {
        let engine = setup(seed, files, 256);
        let cols = ["k", "v", "w"];
        let ops = ["<", ">=", "="];
        let spec = QuerySpec {
            filter: has_filter.then(|| (
                cols[filter_col].to_string(),
                ops[filter_op].to_string(),
                filter_lit.floor(),
            )),
            agg,
            project_expr,
            order_desc,
            limit,
        };
        let sql = render(&spec);
        engine.metastore().rebind_connector("t", "raw").unwrap();
        let expected = canonical(&engine, &sql);
        for connector in ["hive", "p-none", "p-filter", "p-fp", "p-fpa", "ocs"] {
            engine.metastore().rebind_connector("t", connector).unwrap();
            let got = canonical(&engine, &sql);
            prop_assert_eq!(&got, &expected, "{} diverged on {}", connector, sql);
        }
    }
}
