//! Observability end to end: the span tree the engine records over the
//! simulated clock must account for the ledger's total exactly, survive
//! the RPC boundary (storage spans re-parented under the engine's split
//! spans), render through `EXPLAIN ANALYZE`, and export as a valid Chrome
//! trace-event file. Plus property tests for the span API itself.

mod common;

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use common::{rebind, stack};
use dsq::session::{EventListener, QueryEvent};
use dsq::StatementOutput;
use lzcodec::CodecKind;
use ocs_connector::PushdownPolicy;
use proptest::prelude::*;
use workloads::queries;

/// Relative tolerance for "phase spans sum to the total": the acceptance
/// bound is 1%, the construction is exact up to float association.
const SUM_EPS: f64 = 0.01;

#[test]
fn q1_span_tree_accounts_for_total_time() {
    let st = stack(PushdownPolicy::all(), CodecKind::None, &[]);
    rebind(&st, "lineitem", "ocs");
    let r = st.engine.execute(queries::TPCH_Q1).expect("q1");
    let trace = &r.trace;

    trace.verify(1e-9).expect("span tree invariants");
    let root = trace.root().expect("root span");
    assert_eq!(root.name, "query");
    assert!(
        (trace.total_s() - r.simulated_seconds).abs() <= SUM_EPS * r.simulated_seconds,
        "root span {} vs ledger total {}",
        trace.total_s(),
        r.simulated_seconds
    );

    // Per-phase children sum to the total within 1% (exact by layout).
    let phase_sum: f64 = trace
        .children(root.id)
        .iter()
        .filter(|s| s.cat == "phase")
        .map(|s| s.seconds())
        .sum();
    assert!(
        (phase_sum - r.simulated_seconds).abs() <= SUM_EPS * r.simulated_seconds,
        "phase spans sum {phase_sum} vs total {}",
        r.simulated_seconds
    );

    // Storage-executor spans crossed the RPC boundary and were grafted
    // under the engine-side split spans.
    let storage_exec = trace
        .spans
        .iter()
        .filter(|s| s.name.contains(".execute") && s.cat == "storage")
        .count();
    assert_eq!(storage_exec, r.splits, "one storage root span per split");
    for s in trace.spans.iter().filter(|s| s.cat == "storage") {
        let parent = s.parent.expect("grafted spans are re-parented");
        let p = trace
            .spans
            .iter()
            .find(|x| x.id == parent)
            .expect("parent exists");
        assert!(
            p.cat == "split" || p.cat == "storage",
            "storage span '{}' hangs under '{}' ({})",
            s.name,
            p.name,
            p.cat
        );
        assert!(
            s.attr_f64("local_s").is_some(),
            "grafted span keeps its producer-local duration"
        );
    }
    let scan = trace.find("storage.scan").expect("scan span crossed RPC");
    assert!(scan.seconds() > 0.0);
}

#[test]
fn explain_and_explain_analyze_render() {
    let st = stack(PushdownPolicy::all(), CodecKind::None, &[]);
    rebind(&st, "lineitem", "ocs");

    // EXPLAIN: plan text, no execution.
    let sql = format!("EXPLAIN {}", queries::TPCH_Q1);
    match st.engine.execute_statement(&sql).expect("explain") {
        StatementOutput::Text(text) => {
            assert!(text.starts_with("EXPLAIN"), "{text}");
            assert!(text.contains("TableScan"), "{text}");
        }
        StatementOutput::Rows(_) => panic!("EXPLAIN must return text"),
    }

    // EXPLAIN ANALYZE: executes and renders the annotated span tree.
    let sql = format!("EXPLAIN ANALYZE {}", queries::TPCH_Q1);
    match st.engine.execute_statement(&sql).expect("explain analyze") {
        StatementOutput::Text(text) => {
            for needle in [
                "EXPLAIN ANALYZE",
                "total_sim=",
                "query  sim=",
                "split_phase",
                "storage.scan",
                "Presto Execution (Post-Scan)",
            ] {
                assert!(text.contains(needle), "missing '{needle}' in:\n{text}");
            }
        }
        StatementOutput::Rows(_) => panic!("EXPLAIN ANALYZE must return text"),
    }

    // A plain statement still returns rows.
    match st
        .engine
        .execute_statement(queries::TPCH_Q1)
        .expect("plain query")
    {
        StatementOutput::Rows(r) => assert!(r.batch.num_rows() > 0),
        StatementOutput::Text(t) => panic!("plain query returned text: {t}"),
    }
}

#[test]
fn explain_analyze_annotates_cache_tier_and_bytes_avoided() {
    let st = stack(PushdownPolicy::all(), CodecKind::None, &[]);
    rebind(&st, "lineitem", "ocs");
    let sql = format!("EXPLAIN ANALYZE {}", queries::TPCH_Q1);
    let render = |label: &str| match st.engine.execute_statement(&sql).expect(label) {
        StatementOutput::Text(text) => text,
        StatementOutput::Rows(_) => panic!("EXPLAIN ANALYZE must return text"),
    };

    // Cold: every storage scan reports its miss tier and zero savings.
    let cold = render("cold explain analyze");
    assert!(cold.contains("cache_hit=none"), "{cold}");
    assert!(cold.contains("cache_bytes_avoided=0 B"), "{cold}");
    assert!(!cold.contains("cache_hit=result"), "{cold}");

    // Warm: the identical pushed subplans replay from the result cache,
    // and each scan annotates the hit tier plus the bytes it skipped.
    let warm = render("warm explain analyze");
    assert!(warm.contains("cache_hit=result"), "{warm}");
    assert!(!warm.contains("cache_hit=none"), "{warm}");
    assert!(!warm.contains("cache_bytes_avoided=0 B"), "{warm}");
    assert!(warm.contains("cache_bytes_avoided="), "{warm}");
}

#[test]
fn chrome_export_of_real_query_validates() {
    let st = stack(PushdownPolicy::all(), CodecKind::None, &[]);
    rebind(&st, "lineitem", "ocs");
    let r = st.engine.execute(queries::TPCH_Q1).expect("q1");
    let json = obs::chrome::export(&r.trace);
    let summary = obs::chrome::validate(&json).expect("valid trace-event JSON");
    assert!(summary.contains("duration event"), "{summary}");
}

#[test]
fn disabled_tracing_yields_empty_trace_and_working_queries() {
    let st = stack(PushdownPolicy::all(), CodecKind::None, &[]);
    // The fixture engine traces; spot-check the off switch via a second
    // engine sharing nothing: cheapest is rebuilding a stack is heavy, so
    // assert the no-op tracer contract directly instead.
    let t = obs::Tracer::disabled();
    assert!(!t.is_enabled());
    assert_eq!(t.record("x", "phase", None, 0.0, 1.0), obs::SpanId(0));
    assert!(t.finish().spans.is_empty());
    // And a traced engine run still returns correct rows.
    rebind(&st, "lineitem", "ocs");
    let r = st.engine.execute(queries::TPCH_Q1).expect("q1");
    assert!(r.batch.num_rows() > 0);
}

#[test]
fn concurrent_listener_dispatch_counts_every_query() {
    struct Counting {
        events: AtomicU64,
        pushed: AtomicU64,
    }
    impl EventListener for Counting {
        fn query_completed(&self, event: &QueryEvent) {
            self.events.fetch_add(1, Ordering::Relaxed);
            if event.pushed {
                self.pushed.fetch_add(1, Ordering::Relaxed);
            }
            // The trace is shared immutably; listeners may inspect it
            // concurrently with other listeners and threads.
            assert!(event.trace.root().is_some());
        }
    }

    let st = Arc::new(stack(PushdownPolicy::all(), CodecKind::None, &[]));
    rebind(&st, "lineitem", "ocs");
    let listener = Arc::new(Counting {
        events: AtomicU64::new(0),
        pushed: AtomicU64::new(0),
    });
    st.engine.add_listener(listener.clone());

    let threads: Vec<_> = (0..4)
        .map(|_| {
            let st = st.clone();
            std::thread::spawn(move || {
                for _ in 0..3 {
                    st.engine.execute(queries::TPCH_Q1).expect("q1");
                }
            })
        })
        .collect();
    for t in threads {
        t.join().expect("query thread");
    }
    assert_eq!(listener.events.load(Ordering::Relaxed), 12);
    assert_eq!(listener.pushed.load(Ordering::Relaxed), 12);
}

#[test]
fn explain_analyze_names_bottleneck_and_flight_events() {
    let st = stack(PushdownPolicy::all(), CodecKind::None, &[]);
    rebind(&st, "lineitem", "ocs");
    let sql = format!("EXPLAIN ANALYZE {}", queries::TPCH_Q1);
    match st.engine.execute_statement(&sql).expect("explain analyze") {
        StatementOutput::Text(text) => {
            // Per-span attribution on the split phase…
            assert!(text.contains("bottleneck="), "{text}");
            assert!(text.contains("bottleneck_util_pct="), "{text}");
            // …and the query-level verdict line, naming a real resource.
            let verdict = text
                .lines()
                .find(|l| l.starts_with("bottleneck: "))
                .unwrap_or_else(|| panic!("no bottleneck line in:\n{text}"));
            assert!(
                [
                    "storage-disk",
                    "storage-cores",
                    "frontend-cores",
                    "link",
                    "compute-cores"
                ]
                .iter()
                .any(|r| verdict.contains(r)),
                "{verdict}"
            );
            assert!(verdict.contains('%'), "{verdict}");
            // The always-on flight recorder saw the query happen.
            assert!(text.contains("flight events during query"), "{text}");
        }
        StatementOutput::Rows(_) => panic!("EXPLAIN ANALYZE must return text"),
    }
}

#[test]
fn bottleneck_flips_between_link_and_storage_cores_with_pushdown_depth() {
    // The paper's central trade: shipping projected rows saturates the
    // shared storage→compute link, while in-storage aggregation moves the
    // bottleneck onto the storage cores doing the aggregation work.
    let st = stack(
        PushdownPolicy::all(),
        CodecKind::None,
        &[
            ("pd-filter-proj", PushdownPolicy::filter_project()),
            (
                "pd-filter-proj-agg",
                PushdownPolicy::filter_project_aggregate(),
            ),
        ],
    );
    rebind(&st, "lineitem", "pd-filter-proj");
    let proj = st.engine.execute(queries::TPCH_Q1).expect("q1 proj");
    rebind(&st, "lineitem", "pd-filter-proj-agg");
    let agg = st.engine.execute(queries::TPCH_Q1).expect("q1 agg");

    let proj_b = proj.profile.bottleneck().expect("proj bottleneck");
    let agg_b = agg.profile.bottleneck().expect("agg bottleneck");
    assert_eq!(
        proj_b.resource, "link",
        "projection pushdown streams rows over the shared link \
         (got {proj_b})"
    );
    assert_eq!(
        agg_b.resource, "storage-cores",
        "aggregation pushdown does the work near storage (got {agg_b})"
    );
    assert!(proj_b.utilization > 0.0 && proj_b.utilization <= 1.0 + 1e-9);
    assert!(agg_b.utilization > 0.0 && agg_b.utilization <= 1.0 + 1e-9);
}

#[test]
fn counter_tracks_of_real_query_validate() {
    let st = stack(PushdownPolicy::all(), CodecKind::None, &[]);
    rebind(&st, "lineitem", "ocs");
    let r = st.engine.execute(queries::TPCH_Q1).expect("q1");
    assert!(!r.profile.is_empty(), "profile built for every execution");
    let json = obs::chrome::export_with_profile(&r.trace, Some(&r.profile));
    let summary = obs::chrome::validate(&json).expect("valid trace-event JSON");
    assert!(summary.contains("counter sample"), "{summary}");
    assert!(summary.contains("duration event"), "{summary}");
}

#[test]
fn slow_query_auto_capture_roundtrips_incident_report() {
    use dsq::EngineBuilder;
    use objstore::ObjectStore;
    use ocs_connector::register_ocs_stack;
    use workloads::{TableLoader, TpchConfig};

    // Any query is "slow" against a nano-second threshold.
    let engine = EngineBuilder::new().slow_query_threshold(1e-9).build();
    let store = Arc::new(ObjectStore::new());
    {
        let loader = TableLoader::new(&store, engine.metastore());
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: 2,
                rows_per_file: 4 * 1024,
                ..Default::default()
            },
        );
    }
    register_ocs_stack(&engine, store.clone(), PushdownPolicy::all());
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .expect("lineitem");

    let r = engine.execute(queries::TPCH_Q1).expect("q1");
    assert!(r.simulated_seconds > 1e-9);
    let report = engine.take_last_incident().expect("incident captured");
    let summary = obs::incident::check(&report).expect("incident validates");
    assert!(summary.contains("span(s)"), "{summary}");
    assert!(summary.contains("flight event(s)"), "{summary}");
    assert!(summary.contains("resource(s)"), "{summary}");
    // Taking the incident clears the slot until the next slow query.
    assert!(engine.take_last_incident().is_none());
    let again = engine.execute(queries::TPCH_Q1).expect("q1 again");
    assert!(again.simulated_seconds > 1e-9);
    assert!(engine.take_last_incident().is_some());
}

// ---- span API property tests ---------------------------------------------

proptest! {
    /// Guards close exactly once: every explicitly closed span is flagged
    /// clean, carries its close time, and the trace verifies.
    #[test]
    fn prop_guards_close_exactly_once(durations in proptest::collection::vec(0.0f64..10.0, 1..20)) {
        let t = obs::Tracer::new();
        let root = t.start("root", "phase", None, 0.0);
        let root_id = root.id();
        let mut cursor = 0.0;
        for (i, d) in durations.iter().enumerate() {
            let g = t.start(format!("child{i}"), "phase", Some(root_id), cursor);
            cursor += d;
            let id = g.close(cursor);
            prop_assert!(id != obs::SpanId(0));
        }
        root.close(cursor);
        let trace = t.finish();
        prop_assert_eq!(trace.spans.len(), durations.len() + 1);
        prop_assert!(trace.verify(1e-12).is_ok());
        prop_assert!(trace.spans.iter().all(|s| s.closed_cleanly));
    }

    /// Sequentially laid-out children always nest inside their parent and
    /// never overlap each other.
    #[test]
    fn prop_children_nest(durations in proptest::collection::vec(0.0f64..5.0, 1..16)) {
        let t = obs::Tracer::new();
        let total: f64 = durations.iter().sum();
        let root = t.record("root", "phase", None, 0.0, total);
        let mut cursor = 0.0;
        for (i, d) in durations.iter().enumerate() {
            t.record(format!("c{i}"), "phase", Some(root), cursor, cursor + d);
            cursor += d;
        }
        let trace = t.finish();
        prop_assert!(trace.verify(1e-9).is_ok());
        let children = trace.children(root);
        for pair in children.windows(2) {
            prop_assert!(pair[0].end_s <= pair[1].start_s + 1e-9, "children overlap");
        }
    }

    /// Grafted producer spans keep monotonic (order-preserving) timestamps
    /// inside the consumer window, whatever the producer's local clock or
    /// the window's placement.
    #[test]
    fn prop_graft_is_monotonic(
        durations in proptest::collection::vec(1e-6f64..2.0, 1..12),
        window_start in 0.0f64..100.0,
        window_len in 1e-3f64..50.0,
    ) {
        // Producer: sequential spans on its local clock starting at 0.
        let producer = obs::Tracer::new();
        let local_total: f64 = durations.iter().sum();
        let local_root = producer.record("exec", "storage", None, 0.0, local_total);
        let mut cursor = 0.0;
        for (i, d) in durations.iter().enumerate() {
            producer.record(format!("op{i}"), "storage", Some(local_root), cursor, cursor + d);
            cursor += d;
        }
        let recs = producer.finish().to_recs();

        // Consumer: graft into [window_start, window_start + window_len].
        let consumer = obs::Tracer::new();
        let end = window_start + window_len;
        let query = consumer.record("query", "phase", None, 0.0, end + 1.0);
        let split = consumer.record("split[0]", "split", Some(query), window_start, end);
        let grafted = consumer.graft(&recs, split, window_start, end);
        prop_assert_eq!(grafted, recs.len());

        let trace = consumer.finish();
        prop_assert!(trace.verify(1e-9).is_ok());
        let storage: Vec<_> = trace.spans.iter().filter(|s| s.cat == "storage").collect();
        for s in &storage {
            prop_assert!(s.start_s >= window_start - 1e-9);
            prop_assert!(s.end_s <= end + 1e-9);
            prop_assert!(s.attr_f64("local_s").is_some());
        }
        // Producer order survives: op{i} starts where op{i-1} ended.
        let mut ops: Vec<_> = storage.iter().filter(|s| s.name.starts_with("op")).collect();
        ops.sort_by(|a, b| {
            let ka: usize = a.name[2..].parse().unwrap_or(0);
            let kb: usize = b.name[2..].parse().unwrap_or(0);
            ka.cmp(&kb)
        });
        for pair in ops.windows(2) {
            prop_assert!(pair[0].end_s <= pair[1].start_s + 1e-9, "graft reordered spans");
        }
    }
}
