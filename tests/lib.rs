//! Shared helpers for the cross-crate integration tests live in `tests/tests/common/`.
