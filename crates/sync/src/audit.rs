//! The lockset / lock-order auditor behind [`crate::DebugMutex`] and
//! [`crate::DebugRwLock`].
//!
//! Compiled only under `cfg(debug_assertions)` or the `lock-audit`
//! feature. Two data structures:
//!
//! * a **thread-local lockset** — the stack of locks the current thread
//!   holds, pushed on acquire and removed (by instance id, so guards may
//!   drop out of order) on guard drop;
//! * a **global order graph** — one directed edge `held-class →
//!   acquired-class` per observed pair, with the acquiring thread's name
//!   and full lock path remembered as the edge's example. Before a new
//!   edge `A → B` is inserted, a reachability check runs; if `B` can
//!   already reach `A`, two threads interleaving the two acquisition
//!   paths can deadlock, and the auditor panics *before blocking on the
//!   lock*, printing both paths.
//!
//! Checks run at **acquire** time (lockdep-style), not at guard drop:
//! detecting the inversion before the lock can block turns a potential
//! hang into an immediate, attributable panic.
//!
//! The common case — acquiring with an empty lockset — touches only the
//! thread-local stack; the global graph mutex is taken just when a lock
//! is acquired while others are held, and edge insertion is idempotent.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// How a lock is being acquired (shown in diagnostics; shared reads and
/// exclusive writes feed the same order graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireMode {
    /// `RwLock::read`.
    Shared,
    /// `Mutex::lock` / `RwLock::write`.
    Exclusive,
}

impl AcquireMode {
    fn label(self) -> &'static str {
        match self {
            AcquireMode::Shared => "read",
            AcquireMode::Exclusive => "lock",
        }
    }
}

#[derive(Debug)]
struct MetaInner {
    /// Unique per lock instance (reentrancy is per instance).
    id: u64,
    /// Lock class: shared across instances constructed with the same
    /// [`crate::DebugMutex::named`] name (order analysis is per class).
    class: String,
}

/// Identity of one lock instance, shared with its guards.
#[derive(Debug, Clone)]
pub struct LockMeta(Arc<MetaInner>);

// RELAXED: a pure id allocator — ids only need uniqueness, no ordering
// with any other memory access.
fn next_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(1);
    NEXT.fetch_add(1, Ordering::Relaxed)
}

impl LockMeta {
    pub(crate) fn anonymous() -> LockMeta {
        let id = next_id();
        LockMeta(Arc::new(MetaInner {
            id,
            class: format!("anon#{id}"),
        }))
    }

    pub(crate) fn named(name: &str) -> LockMeta {
        LockMeta(Arc::new(MetaInner {
            id: next_id(),
            class: name.to_string(),
        }))
    }
}

impl Default for LockMeta {
    fn default() -> LockMeta {
        LockMeta::anonymous()
    }
}

struct Held {
    id: u64,
    class: String,
}

thread_local! {
    static LOCKSET: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// The classes the current thread holds, outermost first. Exposed for
/// tests and for embedding in panic messages.
pub fn held_lock_names() -> Vec<String> {
    LOCKSET.with(|s| s.borrow().iter().map(|h| h.class.clone()).collect())
}

fn lock_path() -> String {
    let names = held_lock_names();
    if names.is_empty() {
        "<none>".to_string()
    } else {
        names.join(" -> ")
    }
}

fn thread_name() -> String {
    std::thread::current()
        .name()
        .unwrap_or("<unnamed>")
        .to_string()
}

/// One remembered example of an order-graph edge.
#[derive(Debug, Clone)]
struct EdgeExample {
    thread: String,
    path: String,
}

#[derive(Debug, Default)]
struct Graph {
    /// class -> classes observed acquired while it was held.
    successors: BTreeMap<String, BTreeSet<String>>,
    /// (held, acquired) -> first acquisition that created the edge.
    examples: BTreeMap<(String, String), EdgeExample>,
}

impl Graph {
    /// Is `to` reachable from `from`? Returns the path when it is.
    fn find_path(&self, from: &str, to: &str) -> Option<Vec<String>> {
        let mut stack = vec![vec![from.to_string()]];
        let mut seen = BTreeSet::new();
        seen.insert(from.to_string());
        while let Some(path) = stack.pop() {
            let Some(last) = path.last() else { continue };
            if last == to {
                return Some(path);
            }
            if let Some(next) = self.successors.get(last.as_str()) {
                for n in next {
                    if seen.insert(n.clone()) {
                        let mut p = path.clone();
                        p.push(n.clone());
                        stack.push(p);
                    }
                }
            }
        }
        None
    }
}

static GRAPH: Mutex<Option<Graph>> = Mutex::new(None);

fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    let mut slot = match GRAPH.lock() {
        Ok(g) => g,
        Err(poisoned) => poisoned.into_inner(),
    };
    f(slot.get_or_insert_with(Graph::default))
}

/// Forget every recorded edge (diagnostic escape hatch for long-lived
/// test harnesses that deliberately poison the graph; production code
/// never calls this).
#[doc(hidden)]
pub fn reset_order_graph_for_tests() {
    with_graph(|g| {
        g.successors.clear();
        g.examples.clear();
    });
}

/// Record edge `held.class -> acquired.class`, panicking if the reverse
/// direction is already reachable.
fn add_edge(held: &Held, acquired: &MetaInner, mode: AcquireMode) {
    if held.class == acquired.class {
        panic!(
            "sync audit: thread '{}' {}s `{}` while holding a lock of the same class \
             (another thread nesting two `{}` instances in the opposite order would \
             deadlock); lock path: {}",
            thread_name(),
            mode.label(),
            acquired.class,
            acquired.class,
            lock_path(),
        );
    }
    let inserted = with_graph(|g| {
        if g.successors
            .get(held.class.as_str())
            .is_some_and(|s| s.contains(acquired.class.as_str()))
        {
            return false; // edge already known, and known to be acyclic
        }
        if let Some(rev) = g.find_path(&acquired.class, &held.class) {
            // Reconstruct the earlier acquisition that established the
            // first hop of the reverse path.
            let first_hop = match (rev.first(), rev.get(1)) {
                (Some(a), Some(b)) => Some((a.clone(), b.clone())),
                _ => None,
            };
            let earlier = first_hop.and_then(|hop| g.examples.get(&hop).cloned());
            let (e_thread, e_path) = match earlier {
                Some(e) => (e.thread, e.path),
                None => ("<unknown>".to_string(), "<unknown>".to_string()),
            };
            panic!(
                "sync audit: lock-order inversion (potential deadlock)\n  \
                 thread '{}' is acquiring `{}` while holding: {}\n  \
                 but the opposite order `{}` was established earlier by \
                 thread '{}' (lock path: {})\n  \
                 cycle: {} -> {}",
                thread_name(),
                acquired.class,
                lock_path(),
                rev.join(" -> "),
                e_thread,
                e_path,
                held.class,
                rev.join(" -> "),
            );
        }
        g.successors
            .entry(held.class.clone())
            .or_default()
            .insert(acquired.class.clone());
        g.examples.insert(
            (held.class.clone(), acquired.class.clone()),
            EdgeExample {
                thread: thread_name(),
                path: format!("{} ; acquiring {}", lock_path(), acquired.class),
            },
        );
        true
    });
    // Fire the observer outside the graph mutex: it may do its own
    // (lock-free) bookkeeping and must never nest under our lock.
    if inserted {
        crate::notify_audit_edge(&held.class, &acquired.class);
    }
}

/// Audit one acquisition. Runs **before** the underlying lock can block;
/// panics on reentrancy or on a lock-order cycle. The returned token
/// removes the lockset entry when the guard drops.
pub(crate) fn acquire(meta: &LockMeta, mode: AcquireMode) -> HeldToken {
    let inner = &meta.0;
    // Reentrancy: same instance already held by this thread.
    let reentrant = LOCKSET.with(|s| s.borrow().iter().any(|h| h.id == inner.id));
    if reentrant {
        panic!(
            "sync audit: reentrant acquire of `{}` on thread '{}' \
             (std locks deadlock here); lock path: {}",
            inner.class,
            thread_name(),
            lock_path(),
        );
    }
    // Order graph: one edge per lock currently held.
    LOCKSET.with(|s| {
        for held in s.borrow().iter() {
            add_edge(held, inner, mode);
        }
    });
    LOCKSET.with(|s| {
        s.borrow_mut().push(Held {
            id: inner.id,
            class: inner.class.clone(),
        })
    });
    HeldToken { id: inner.id }
}

/// Removes its lockset entry on drop (guards may drop out of order, so
/// removal is by instance id, not a stack pop).
#[derive(Debug)]
pub struct HeldToken {
    id: u64,
}

impl Drop for HeldToken {
    fn drop(&mut self) {
        LOCKSET.with(|s| {
            let mut set = s.borrow_mut();
            if let Some(pos) = set.iter().rposition(|h| h.id == self.id) {
                set.remove(pos);
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn find_path_walks_transitive_edges() {
        let mut g = Graph::default();
        for (a, b) in [("a", "b"), ("b", "c"), ("c", "d"), ("x", "d")] {
            g.successors
                .entry(a.to_string())
                .or_default()
                .insert(b.to_string());
        }
        assert_eq!(
            g.find_path("a", "d"),
            Some(vec![
                "a".to_string(),
                "b".to_string(),
                "c".to_string(),
                "d".to_string()
            ])
        );
        assert_eq!(g.find_path("d", "a"), None);
        assert_eq!(g.find_path("a", "a"), Some(vec!["a".to_string()]));
    }

    #[test]
    fn modes_render_for_diagnostics() {
        assert_eq!(AcquireMode::Shared.label(), "read");
        assert_eq!(AcquireMode::Exclusive.label(), "lock");
    }
}
