//! Deadlock-auditing lock wrappers — the dynamic half of the repo's
//! concurrency auditor (the static half lives in `crates/xtask`).
//!
//! [`DebugMutex`] and [`DebugRwLock`] are drop-in replacements for the
//! plain `Mutex` / `RwLock` the workspace used to hold its shared state
//! (cache-affinity router, near-storage caches, connector registry,
//! pushdown monitor, metrics registry, cost ledger, object store). In
//! release builds without the `lock-audit` feature they compile down to
//! `std::sync` primitives with poison recovery and nothing else.
//!
//! Under `cfg(debug_assertions)` **or** the `lock-audit` feature, every
//! acquisition is audited *before it can block*:
//!
//! * a **per-thread lockset** records which locks the current thread
//!   holds, so a reentrant acquire (guaranteed deadlock on `std` locks)
//!   panics immediately with the thread's lock path instead of hanging;
//! * a **global acquisition-order graph** accumulates one edge
//!   `held → acquired` per observed class pair; before a new edge is
//!   inserted, a cycle check runs, and a potential deadlock (this thread
//!   acquires B while holding A, some earlier acquisition took A while
//!   holding B) panics with **both** acquisition paths — the current
//!   thread's lockset and the remembered path that created the reverse
//!   edge.
//!
//! Lock *classes* are the names given via [`DebugMutex::named`] /
//! [`DebugRwLock::named`] and are expected to match the `dynamic class`
//! column of `LOCK_ORDER.md` at the repo root; anonymous locks get a
//! unique per-instance class. Because the audit runs in every debug
//! build, the entire existing test suite doubles as a deadlock/race
//! regression harness: any new nesting that inverts an established order
//! fails the first test that exercises both orders, not the first
//! production hang.

#![warn(missing_docs)]

use std::fmt;
use std::sync::{self, MutexGuard as StdMutexGuard};
use std::sync::{RwLockReadGuard as StdReadGuard, RwLockWriteGuard as StdWriteGuard};

#[cfg(any(debug_assertions, feature = "lock-audit"))]
pub mod audit;

#[cfg(any(debug_assertions, feature = "lock-audit"))]
use audit::{AcquireMode, HeldToken, LockMeta};

/// True when acquisitions are being audited in this build.
pub const fn audit_enabled() -> bool {
    cfg!(any(debug_assertions, feature = "lock-audit"))
}

/// Observer invoked when the dynamic auditor records a **new** order-graph
/// edge `held-class → acquired-class` (an observation, not a violation —
/// violations panic). Installed once; later installs are ignored.
///
/// This is how higher layers (the `obs` flight recorder) see audit
/// activity without `sync` growing a dependency on them. The hook runs on
/// the acquiring thread with the audit graph lock *released*; it must not
/// block and must not acquire audited locks.
static AUDIT_EDGE_HOOK: std::sync::OnceLock<fn(&str, &str)> = std::sync::OnceLock::new();

/// Install the order-graph edge observer. Returns `false` if one was
/// already installed (the first install wins). In builds without the
/// auditor compiled in, the hook is accepted but never fires.
pub fn set_audit_edge_hook(hook: fn(&str, &str)) -> bool {
    AUDIT_EDGE_HOOK.set(hook).is_ok()
}

/// Fire the edge observer, if installed.
#[cfg(any(debug_assertions, feature = "lock-audit"))]
pub(crate) fn notify_audit_edge(held: &str, acquired: &str) {
    if let Some(hook) = AUDIT_EDGE_HOOK.get() {
        hook(held, acquired);
    }
}

/// A mutex audited for lock-order inversions and reentrant acquires.
///
/// `lock()` never returns a poison error (a poisoned lock is recovered
/// transparently, matching the `parking_lot` API the workspace migrated
/// from).
#[derive(Default)]
pub struct DebugMutex<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lock-audit"))]
    meta: LockMeta,
    inner: sync::Mutex<T>,
}

impl<T> DebugMutex<T> {
    /// An anonymous audited mutex (its lock class is unique to this
    /// instance). Prefer [`DebugMutex::named`] for long-lived state so
    /// the order graph aggregates by role.
    pub fn new(value: T) -> DebugMutex<T> {
        DebugMutex {
            #[cfg(any(debug_assertions, feature = "lock-audit"))]
            meta: LockMeta::anonymous(),
            inner: sync::Mutex::new(value),
        }
    }

    /// An audited mutex whose lock class is `name` (one class per *role*,
    /// shared by every instance constructed with the same name; declared
    /// in `LOCK_ORDER.md`).
    pub fn named(name: &str, value: T) -> DebugMutex<T> {
        #[cfg(not(any(debug_assertions, feature = "lock-audit")))]
        let _ = name;
        DebugMutex {
            #[cfg(any(debug_assertions, feature = "lock-audit"))]
            meta: LockMeta::named(name),
            inner: sync::Mutex::new(value),
        }
    }

    /// Consume the mutex, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> DebugMutex<T> {
    /// Acquire the lock (audited first, so a would-be deadlock panics
    /// with both lock paths instead of blocking forever).
    pub fn lock(&self) -> DebugMutexGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-audit"))]
        let token = audit::acquire(&self.meta, AcquireMode::Exclusive);
        let inner = match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        DebugMutexGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lock-audit"))]
            _token: token,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for DebugMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("DebugMutex");
        match self.inner.try_lock() {
            Ok(guard) => d.field("data", &&*guard),
            Err(_) => d.field("data", &"<locked>"),
        };
        d.finish()
    }
}

/// Guard returned by [`DebugMutex::lock`].
pub struct DebugMutexGuard<'a, T: ?Sized> {
    inner: StdMutexGuard<'a, T>,
    #[cfg(any(debug_assertions, feature = "lock-audit"))]
    _token: HeldToken,
}

impl<T: ?Sized> std::ops::Deref for DebugMutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for DebugMutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for DebugMutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// A reader-writer lock audited for lock-order inversions and reentrant
/// acquires (a same-thread `read` inside `read` is flagged too: with a
/// queued writer in between it deadlocks on `std::sync::RwLock`).
#[derive(Default)]
pub struct DebugRwLock<T: ?Sized> {
    #[cfg(any(debug_assertions, feature = "lock-audit"))]
    meta: LockMeta,
    inner: sync::RwLock<T>,
}

impl<T> DebugRwLock<T> {
    /// An anonymous audited rwlock (see [`DebugMutex::new`]).
    pub fn new(value: T) -> DebugRwLock<T> {
        DebugRwLock {
            #[cfg(any(debug_assertions, feature = "lock-audit"))]
            meta: LockMeta::anonymous(),
            inner: sync::RwLock::new(value),
        }
    }

    /// An audited rwlock whose lock class is `name` (declared in
    /// `LOCK_ORDER.md`).
    pub fn named(name: &str, value: T) -> DebugRwLock<T> {
        #[cfg(not(any(debug_assertions, feature = "lock-audit")))]
        let _ = name;
        DebugRwLock {
            #[cfg(any(debug_assertions, feature = "lock-audit"))]
            meta: LockMeta::named(name),
            inner: sync::RwLock::new(value),
        }
    }

    /// Consume the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized> DebugRwLock<T> {
    /// Acquire a shared read guard (audited first).
    pub fn read(&self) -> DebugReadGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-audit"))]
        let token = audit::acquire(&self.meta, AcquireMode::Shared);
        let inner = match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        DebugReadGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lock-audit"))]
            _token: token,
        }
    }

    /// Acquire an exclusive write guard (audited first).
    pub fn write(&self) -> DebugWriteGuard<'_, T> {
        #[cfg(any(debug_assertions, feature = "lock-audit"))]
        let token = audit::acquire(&self.meta, AcquireMode::Exclusive);
        let inner = match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        };
        DebugWriteGuard {
            inner,
            #[cfg(any(debug_assertions, feature = "lock-audit"))]
            _token: token,
        }
    }

    /// Mutable access without locking (requires `&mut self`).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for DebugRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut d = f.debug_struct("DebugRwLock");
        match self.inner.try_read() {
            Ok(guard) => d.field("data", &&*guard),
            Err(_) => d.field("data", &"<locked>"),
        };
        d.finish()
    }
}

/// Shared guard returned by [`DebugRwLock::read`].
pub struct DebugReadGuard<'a, T: ?Sized> {
    inner: StdReadGuard<'a, T>,
    #[cfg(any(debug_assertions, feature = "lock-audit"))]
    _token: HeldToken,
}

impl<T: ?Sized> std::ops::Deref for DebugReadGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for DebugReadGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Exclusive guard returned by [`DebugRwLock::write`].
pub struct DebugWriteGuard<'a, T: ?Sized> {
    inner: StdWriteGuard<'a, T>,
    #[cfg(any(debug_assertions, feature = "lock-audit"))]
    _token: HeldToken,
}

impl<T: ?Sized> std::ops::Deref for DebugWriteGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> std::ops::DerefMut for DebugWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for DebugWriteGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn mutex_basic_lock_unlock() {
        let m = DebugMutex::named("test.basic", 41);
        {
            let mut g = m.lock();
            *g += 1;
        }
        assert_eq!(*m.lock(), 42);
        assert_eq!(m.into_inner(), 42);
    }

    #[test]
    fn rwlock_readers_then_writer() {
        let l = DebugRwLock::named("test.rw", vec![1, 2, 3]);
        {
            let r = l.read();
            assert_eq!(r.len(), 3);
        }
        l.write().push(4);
        assert_eq!(l.read().len(), 4);
    }

    #[test]
    fn get_mut_and_default() {
        let mut m = DebugMutex::new(1u64);
        *m.get_mut() += 1;
        assert_eq!(*m.lock(), 2);
        let d: DebugRwLock<u32> = DebugRwLock::default();
        assert_eq!(*d.read(), 0);
    }

    #[test]
    fn concurrent_counting() {
        let m = Arc::new(DebugMutex::named("test.concurrent", 0u64));
        std::thread::scope(|s| {
            for _ in 0..8 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 8000);
    }

    #[test]
    fn consistent_nesting_is_fine() {
        // A -> B in many threads concurrently: a legal hierarchy, never
        // flagged.
        let a = Arc::new(DebugMutex::named("test.nest.outer", ()));
        let b = Arc::new(DebugMutex::named("test.nest.inner", 0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let (a, b) = (a.clone(), b.clone());
                s.spawn(move || {
                    for _ in 0..100 {
                        let _ga = a.lock();
                        *b.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*b.lock(), 400);
    }

    #[cfg(any(debug_assertions, feature = "lock-audit"))]
    mod audited {
        use super::*;

        #[test]
        #[should_panic(expected = "reentrant acquire")]
        fn reentrant_mutex_panics_instead_of_deadlocking() {
            let m = DebugMutex::named("test.reentrant", ());
            let _g = m.lock();
            let _g2 = m.lock();
        }

        #[test]
        #[should_panic(expected = "reentrant acquire")]
        fn reentrant_read_panics() {
            let l = DebugRwLock::named("test.reentrant.rw", ());
            let _r1 = l.read();
            // With a writer queued between the two reads this deadlocks on
            // std::sync::RwLock, so the auditor treats it as an error.
            let _r2 = l.read();
        }

        #[test]
        #[should_panic(expected = "lock-order inversion")]
        fn deliberate_inversion_is_caught() {
            // The acceptance-criteria test: establish A -> B, then acquire
            // B -> A. Single-threaded, yet the order graph proves two
            // threads interleaving these paths can deadlock.
            let a = DebugMutex::named("test.inv.a", ());
            let b = DebugMutex::named("test.inv.b", ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            let _gb = b.lock();
            let _ga = a.lock(); // inversion: panics with both lock paths
        }

        #[test]
        #[should_panic(expected = "lock-order inversion")]
        fn cross_thread_inversion_is_caught_without_interleaving() {
            // Thread 1 takes X then Y and finishes completely before
            // thread 2 takes Y then X: no timing ever deadlocks this run,
            // but the graph remembers the first order and flags the
            // second — the whole point of lockset analysis.
            let x = Arc::new(DebugMutex::named("test.cross.x", ()));
            let y = Arc::new(DebugMutex::named("test.cross.y", ()));
            let (x1, y1) = (x.clone(), y.clone());
            std::thread::spawn(move || {
                let _gx = x1.lock();
                let _gy = y1.lock();
            })
            .join()
            .ok();
            let _gy = y.lock();
            let _gx = x.lock();
        }

        #[test]
        #[should_panic(expected = "lock-order inversion")]
        fn three_lock_cycle_is_caught() {
            let a = DebugMutex::named("test.tri.a", ());
            let b = DebugMutex::named("test.tri.b", ());
            let c = DebugMutex::named("test.tri.c", ());
            {
                let _ga = a.lock();
                let _gb = b.lock();
            }
            {
                let _gb = b.lock();
                let _gc = c.lock();
            }
            let _gc = c.lock();
            let _ga = a.lock(); // closes the a -> b -> c -> a cycle
        }

        #[test]
        #[should_panic(expected = "while holding a lock of the same class")]
        fn same_class_instances_nested_panics() {
            // Two instances sharing one class nested: safe in this exact
            // order, but another thread nesting them the other way around
            // deadlocks, so class-level analysis rejects it.
            let a = DebugMutex::named("test.sameclass", 1);
            let b = DebugMutex::named("test.sameclass", 2);
            let _ga = a.lock();
            let _gb = b.lock();
        }

        #[test]
        fn anonymous_instances_do_not_share_a_class() {
            // Anonymous locks get per-instance classes, so nesting two of
            // them (in a stable order) is not a same-class violation.
            let a = DebugMutex::new(());
            let b = DebugMutex::new(());
            let _ga = a.lock();
            let _gb = b.lock();
        }

        #[test]
        fn lockset_reports_current_thread_path() {
            let a = DebugMutex::named("test.path.outer", ());
            let b = DebugMutex::named("test.path.inner", ());
            assert_eq!(audit::held_lock_names(), Vec::<String>::new());
            let _ga = a.lock();
            let _gb = b.lock();
            assert_eq!(
                audit::held_lock_names(),
                vec!["test.path.outer".to_string(), "test.path.inner".into()]
            );
            drop(_gb);
            assert_eq!(
                audit::held_lock_names(),
                vec!["test.path.outer".to_string()]
            );
        }

        #[test]
        fn out_of_order_guard_drops_release_correctly() {
            let a = DebugMutex::named("test.ooo.a", ());
            let b = DebugMutex::named("test.ooo.b", ());
            let ga = a.lock();
            let gb = b.lock();
            drop(ga); // release the *outer* guard first
            assert_eq!(audit::held_lock_names(), vec!["test.ooo.b".to_string()]);
            drop(gb);
            assert!(audit::held_lock_names().is_empty());
        }
    }
}
