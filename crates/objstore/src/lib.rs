//! `objstore` — a flat bucket/object store with an S3-Select-like
//! restricted scan API.
//!
//! Models the role AWS S3 / MinIO play in the paper: objects are opaque
//! byte blobs under `bucket/key`, metadata lives apart from data, readers
//! can fetch whole objects or byte ranges, and [`select()`](fn@select) offers
//! the *limited* in-storage compute conventional object stores have —
//! **column projection and `WHERE` filtering only**. Anything more
//! (aggregation, sort, top-N) is structurally impossible through this API,
//! which is precisely the gap OCS (the `ocs` crate) fills.
//!
//! The store is deliberately ignorant of the cost model: callers receive
//! byte/row accounting in [`SelectStats`] / object sizes and bill the
//! `netsim` ledgers themselves, because *where* the bytes travel (local
//! disk vs network link) depends on who is calling.
//!
//! # Example
//!
//! ```
//! use objstore::ObjectStore;
//!
//! let store = ObjectStore::new();
//! store.create_bucket("datalake").unwrap();
//! store.put_object("datalake", "t/part-0.parq", vec![1, 2, 3].into()).unwrap();
//! assert_eq!(store.get_object("datalake", "t/part-0.parq").unwrap().len(), 3);
//! assert_eq!(store.list("datalake", "t/").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod select;

pub use select::{select, SelectPredicate, SelectRequest, SelectResponse, SelectStats};

use bytes::Bytes;
use std::collections::BTreeMap;
use std::fmt;
use sync::DebugRwLock;

/// Errors from object-store operations.
#[derive(Debug, Clone, PartialEq)]
pub enum StoreError {
    /// Bucket does not exist.
    NoSuchBucket(String),
    /// Object does not exist.
    NoSuchKey(String),
    /// Bucket already exists.
    BucketExists(String),
    /// Byte range outside the object.
    InvalidRange {
        /// Requested start offset.
        start: u64,
        /// Requested end offset (exclusive).
        end: u64,
        /// Object size.
        size: u64,
    },
    /// Select-API failure (format error, unsupported operation, …).
    Select(String),
}

impl fmt::Display for StoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StoreError::NoSuchBucket(b) => write!(f, "no such bucket: {b}"),
            StoreError::NoSuchKey(k) => write!(f, "no such key: {k}"),
            StoreError::BucketExists(b) => write!(f, "bucket already exists: {b}"),
            StoreError::InvalidRange { start, end, size } => {
                write!(
                    f,
                    "invalid range [{start}, {end}) for object of {size} bytes"
                )
            }
            StoreError::Select(m) => write!(f, "select error: {m}"),
        }
    }
}

impl std::error::Error for StoreError {}

/// Result alias.
pub type Result<T> = std::result::Result<T, StoreError>;

/// Object metadata (the "head" of an object).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjectMeta {
    /// Key within its bucket.
    pub key: String,
    /// Size in bytes.
    pub size: u64,
    /// Write version (etag): store-global monotonic counter stamped on
    /// each put, so no two writes — even of different keys, even after a
    /// delete/recreate — ever share a version. Caches key on it to get
    /// invalidation-by-construction.
    pub version: u64,
}

#[derive(Debug, Clone)]
struct Object {
    data: Bytes,
    version: u64,
}

#[derive(Debug, Default)]
struct Bucket {
    objects: BTreeMap<String, Object>,
}

/// The in-memory object store. Share it across threads behind an `Arc`;
/// the internal `RwLock` keeps concurrent readers wait-free against each
/// other (reads vastly dominate in analytics workloads).
#[derive(Debug)]
pub struct ObjectStore {
    buckets: DebugRwLock<BTreeMap<String, Bucket>>,
    /// Source of write versions; see [`ObjectMeta::version`].
    next_version: std::sync::atomic::AtomicU64,
}

impl Default for ObjectStore {
    fn default() -> ObjectStore {
        ObjectStore {
            buckets: DebugRwLock::named("objstore.buckets", BTreeMap::new()),
            next_version: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl ObjectStore {
    /// New empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Create a bucket.
    pub fn create_bucket(&self, name: &str) -> Result<()> {
        let mut b = self.buckets.write();
        if b.contains_key(name) {
            return Err(StoreError::BucketExists(name.to_string()));
        }
        b.insert(name.to_string(), Bucket::default());
        Ok(())
    }

    /// Create a bucket if missing (idempotent helper for loaders).
    pub fn ensure_bucket(&self, name: &str) {
        self.buckets.write().entry(name.to_string()).or_default();
    }

    /// Store an object (overwrites). Returns the new write version.
    pub fn put_object(&self, bucket: &str, key: &str, data: Bytes) -> Result<u64> {
        let mut b = self.buckets.write();
        let bucket = b
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        // RELAXED: a pure version allocator — versions only need
        // uniqueness/monotonicity of the counter itself; publication of
        // the object happens under the bucket write lock above.
        let version = 1 + self
            .next_version
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        bucket
            .objects
            .insert(key.to_string(), Object { data, version });
        Ok(version)
    }

    /// Fetch a whole object (zero-copy clone of the shared buffer).
    pub fn get_object(&self, bucket: &str, key: &str) -> Result<Bytes> {
        self.get_object_versioned(bucket, key).map(|(data, _)| data)
    }

    /// Fetch a whole object together with its write version, atomically
    /// (the pair a versioned cache must key on).
    pub fn get_object_versioned(&self, bucket: &str, key: &str) -> Result<(Bytes, u64)> {
        let b = self.buckets.read();
        b.get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?
            .objects
            .get(key)
            .map(|o| (o.data.clone(), o.version))
            .ok_or_else(|| StoreError::NoSuchKey(key.to_string()))
    }

    /// Fetch bytes `[start, end)` of an object.
    pub fn get_range(&self, bucket: &str, key: &str, start: u64, end: u64) -> Result<Bytes> {
        let obj = self.get_object(bucket, key)?;
        let size = obj.len() as u64;
        if start > end || end > size {
            return Err(StoreError::InvalidRange { start, end, size });
        }
        Ok(obj.slice(start as usize..end as usize))
    }

    /// Object metadata without the payload.
    pub fn head(&self, bucket: &str, key: &str) -> Result<ObjectMeta> {
        let (obj, version) = self.get_object_versioned(bucket, key)?;
        Ok(ObjectMeta {
            key: key.to_string(),
            size: obj.len() as u64,
            version,
        })
    }

    /// List objects under `prefix`, lexicographically.
    pub fn list(&self, bucket: &str, prefix: &str) -> Result<Vec<ObjectMeta>> {
        let b = self.buckets.read();
        let bucket = b
            .get(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        Ok(bucket
            .objects
            .range(prefix.to_string()..)
            .take_while(|(k, _)| k.starts_with(prefix))
            .map(|(k, v)| ObjectMeta {
                key: k.clone(),
                size: v.data.len() as u64,
                version: v.version,
            })
            .collect())
    }

    /// Delete one object.
    pub fn delete_object(&self, bucket: &str, key: &str) -> Result<()> {
        let mut b = self.buckets.write();
        let bucket = b
            .get_mut(bucket)
            .ok_or_else(|| StoreError::NoSuchBucket(bucket.to_string()))?;
        bucket
            .objects
            .remove(key)
            .map(|_| ())
            .ok_or_else(|| StoreError::NoSuchKey(key.to_string()))
    }

    /// Delete a bucket and everything in it.
    pub fn delete_bucket(&self, name: &str) -> Result<()> {
        self.buckets
            .write()
            .remove(name)
            .map(|_| ())
            .ok_or_else(|| StoreError::NoSuchBucket(name.to_string()))
    }

    /// Total bytes stored in a bucket (for dataset-size reporting).
    pub fn bucket_bytes(&self, bucket: &str) -> Result<u64> {
        Ok(self.list(bucket, "")?.iter().map(|m| m.size).sum())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_lifecycle() {
        let s = ObjectStore::new();
        s.create_bucket("b").unwrap();
        assert_eq!(
            s.create_bucket("b"),
            Err(StoreError::BucketExists("b".into()))
        );
        s.ensure_bucket("b"); // idempotent
        s.delete_bucket("b").unwrap();
        assert!(matches!(
            s.delete_bucket("b"),
            Err(StoreError::NoSuchBucket(_))
        ));
    }

    #[test]
    fn object_crud() {
        let s = ObjectStore::new();
        s.create_bucket("b").unwrap();
        assert!(matches!(
            s.get_object("b", "x"),
            Err(StoreError::NoSuchKey(_))
        ));
        assert!(matches!(
            s.put_object("nope", "x", Bytes::new()),
            Err(StoreError::NoSuchBucket(_))
        ));
        s.put_object("b", "x", Bytes::from_static(b"hello"))
            .unwrap();
        assert_eq!(
            s.get_object("b", "x").unwrap(),
            Bytes::from_static(b"hello")
        );
        assert_eq!(s.head("b", "x").unwrap().size, 5);
        // Overwrite.
        s.put_object("b", "x", Bytes::from_static(b"bye")).unwrap();
        assert_eq!(s.head("b", "x").unwrap().size, 3);
        s.delete_object("b", "x").unwrap();
        assert!(s.get_object("b", "x").is_err());
    }

    #[test]
    fn versions_are_unique_and_monotonic() {
        let s = ObjectStore::new();
        s.create_bucket("b").unwrap();
        let v1 = s.put_object("b", "x", Bytes::from_static(b"a")).unwrap();
        let v2 = s.put_object("b", "x", Bytes::from_static(b"b")).unwrap();
        let v3 = s.put_object("b", "y", Bytes::from_static(b"c")).unwrap();
        assert!(v1 < v2 && v2 < v3, "{v1} {v2} {v3}");
        assert_eq!(
            s.get_object_versioned("b", "x").unwrap(),
            (Bytes::from_static(b"b"), v2)
        );
        assert_eq!(s.head("b", "y").unwrap().version, v3);
        // Delete + recreate never reuses a version.
        s.delete_object("b", "x").unwrap();
        let v4 = s.put_object("b", "x", Bytes::from_static(b"d")).unwrap();
        assert!(v4 > v3);
        let metas = s.list("b", "").unwrap();
        assert_eq!(
            metas.iter().map(|m| m.version).collect::<Vec<_>>(),
            vec![v4, v3]
        );
    }

    #[test]
    fn range_reads() {
        let s = ObjectStore::new();
        s.create_bucket("b").unwrap();
        s.put_object("b", "x", Bytes::from_static(b"0123456789"))
            .unwrap();
        assert_eq!(
            s.get_range("b", "x", 2, 5).unwrap(),
            Bytes::from_static(b"234")
        );
        assert_eq!(s.get_range("b", "x", 0, 0).unwrap().len(), 0);
        assert!(matches!(
            s.get_range("b", "x", 5, 11),
            Err(StoreError::InvalidRange { .. })
        ));
        assert!(s.get_range("b", "x", 7, 3).is_err());
    }

    #[test]
    fn list_with_prefix() {
        let s = ObjectStore::new();
        s.create_bucket("b").unwrap();
        for k in ["t/a", "t/b", "u/c", "t0"] {
            s.put_object("b", k, Bytes::from_static(b"x")).unwrap();
        }
        let got: Vec<String> = s
            .list("b", "t/")
            .unwrap()
            .into_iter()
            .map(|m| m.key)
            .collect();
        assert_eq!(got, vec!["t/a", "t/b"]);
        assert_eq!(s.list("b", "").unwrap().len(), 4);
        assert_eq!(s.bucket_bytes("b").unwrap(), 4);
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let s = std::sync::Arc::new(ObjectStore::new());
        s.create_bucket("b").unwrap();
        std::thread::scope(|scope| {
            for t in 0..4 {
                let s = s.clone();
                scope.spawn(move || {
                    for i in 0..100 {
                        let key = format!("k{t}-{i}");
                        s.put_object("b", &key, Bytes::from(vec![t as u8; 10]))
                            .unwrap();
                        assert_eq!(s.get_object("b", &key).unwrap().len(), 10);
                    }
                });
            }
        });
        assert_eq!(s.list("b", "").unwrap().len(), 400);
    }
}
