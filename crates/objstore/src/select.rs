//! The S3-Select-like scan API: **projection + conjunctive filtering only**.
//!
//! This is the capability ceiling of conventional object storage that the
//! paper's introduction describes — the reason aggregation and top-N must
//! normally run at the compute layer. The `ocs` crate's embedded engine is
//! the contrast: it accepts full Substrait plans.

use columnar::kernels::{boolean, cmp, selection};
use columnar::prelude::*;
use parq::{ParqReader, RangePredicate};

use crate::{ObjectStore, Result, StoreError};

/// One conjunct of the `WHERE` clause.
#[derive(Debug, Clone)]
pub enum SelectPredicate {
    /// `column <op> literal`.
    Compare {
        /// Column name.
        column: String,
        /// Comparison operator.
        op: cmp::CmpOp,
        /// Literal operand.
        value: Scalar,
    },
    /// `column BETWEEN lo AND hi` (inclusive).
    Between {
        /// Column name.
        column: String,
        /// Lower bound.
        lo: Scalar,
        /// Upper bound.
        hi: Scalar,
    },
}

impl SelectPredicate {
    /// Column this predicate constrains.
    pub fn column(&self) -> &str {
        match self {
            SelectPredicate::Compare { column, .. } => column,
            SelectPredicate::Between { column, .. } => column,
        }
    }
}

/// A select request: which columns to return, which rows to keep.
#[derive(Debug, Clone, Default)]
pub struct SelectRequest {
    /// Columns to return, in order; `None` = all columns.
    pub projection: Option<Vec<String>>,
    /// Conjunctive predicates (all must hold).
    pub predicates: Vec<SelectPredicate>,
}

/// Accounting for one select call, consumed by the caller's cost model.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SelectStats {
    /// Compressed bytes pulled off the (simulated) disk.
    pub disk_bytes: u64,
    /// Uncompressed bytes materialized after decompression.
    pub uncompressed_bytes: u64,
    /// Rows scanned (after row-group pruning).
    pub rows_scanned: u64,
    /// Rows returned after filtering.
    pub rows_returned: u64,
    /// Bytes of the result batches (what would cross the network).
    pub returned_bytes: u64,
    /// Predicate evaluations performed (for CPU billing).
    pub predicate_evals: u64,
}

/// A select result: filtered/projected batches plus accounting.
#[derive(Debug, Clone)]
pub struct SelectResponse {
    /// One batch per surviving row group.
    pub batches: Vec<RecordBatch>,
    /// Resource accounting.
    pub stats: SelectStats,
}

fn sel_err(e: impl std::fmt::Display) -> StoreError {
    StoreError::Select(e.to_string())
}

/// Run a select against one parq object. Only projection and conjunctive
/// comparison/range filters are expressible — by design.
pub fn select(
    store: &ObjectStore,
    bucket: &str,
    key: &str,
    request: &SelectRequest,
) -> Result<SelectResponse> {
    let bytes = store.get_object(bucket, key)?;
    let reader = ParqReader::open(bytes).map_err(sel_err)?;
    let schema = reader.schema().clone();

    // Resolve projection to indices.
    let out_indices: Vec<usize> = match &request.projection {
        Some(names) => names
            .iter()
            .map(|n| schema.index_of(n).map_err(sel_err))
            .collect::<Result<_>>()?,
        None => (0..schema.len()).collect(),
    };
    // Columns the predicates need.
    let pred_indices: Vec<usize> = request
        .predicates
        .iter()
        .map(|p| schema.index_of(p.column()).map_err(sel_err))
        .collect::<Result<_>>()?;

    // Row-group pruning from footer statistics.
    let range_preds: Vec<RangePredicate> = request
        .predicates
        .iter()
        .zip(&pred_indices)
        .flat_map(|(p, &col)| match p {
            SelectPredicate::Compare { op, value, .. } => vec![RangePredicate {
                column: col,
                op: *op,
                value: value.clone(),
            }],
            SelectPredicate::Between { lo, hi, .. } => vec![
                RangePredicate {
                    column: col,
                    op: cmp::CmpOp::GtEq,
                    value: lo.clone(),
                },
                RangePredicate {
                    column: col,
                    op: cmp::CmpOp::LtEq,
                    value: hi.clone(),
                },
            ],
        })
        .collect();
    let groups = reader.prune_row_groups(&range_preds);

    // Read set: projection ∪ predicate columns (deduped, stable order).
    let mut read_set: Vec<usize> = out_indices.clone();
    for &c in &pred_indices {
        if !read_set.contains(&c) {
            read_set.push(c);
        }
    }

    let mut stats = SelectStats::default();
    let mut batches = Vec::with_capacity(groups.len());
    for rg in groups {
        stats.disk_bytes += reader
            .projected_compressed_bytes(rg, &read_set)
            .map_err(sel_err)?;
        let batch = reader
            .read_row_group(rg, Some(&read_set))
            .map_err(sel_err)?;
        stats.uncompressed_bytes += batch.byte_size() as u64;
        stats.rows_scanned += batch.num_rows() as u64;

        // Evaluate the conjunction.
        let mut mask: Option<columnar::BooleanArray> = None;
        for (p, &pred_col) in request.predicates.iter().zip(&pred_indices) {
            // Position of the predicate column inside the read batch.
            let pos = read_set
                .iter()
                .position(|&c| c == pred_col)
                .expect("read_set contains predicate columns");
            let col = batch.column(pos);
            let m = match p {
                SelectPredicate::Compare { op, value, .. } => {
                    cmp::compare_scalar(col, value, *op).map_err(sel_err)?
                }
                SelectPredicate::Between { lo, hi, .. } => {
                    cmp::between_scalar(col, lo, hi).map_err(sel_err)?
                }
            };
            stats.predicate_evals += batch.num_rows() as u64;
            mask = Some(match mask {
                Some(acc) => boolean::and(&acc, &m).map_err(sel_err)?,
                None => m,
            });
        }
        let filtered = match mask {
            Some(m) => selection::filter_batch(&batch, &m).map_err(sel_err)?,
            None => batch,
        };
        // Project down to the requested output columns (drop filter-only
        // columns and set the requested order).
        let out_pos: Vec<usize> = out_indices
            .iter()
            .map(|c| read_set.iter().position(|x| x == c).expect("subset"))
            .collect();
        let result = filtered.project(&out_pos).map_err(sel_err)?;
        stats.rows_returned += result.num_rows() as u64;
        stats.returned_bytes += result.byte_size() as u64;
        if result.num_rows() > 0 {
            batches.push(result);
        }
    }
    Ok(SelectResponse { batches, stats })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use columnar::kernels::cmp::CmpOp;
    use lzcodec::CodecKind;
    use parq::WriteOptions;
    use std::sync::Arc;

    fn store_with_table(codec: CodecKind) -> ObjectStore {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
            Field::new("tag", DataType::Utf8, false),
        ]));
        let ids: Vec<i64> = (0..1000).collect();
        let vs: Vec<f64> = ids.iter().map(|&i| i as f64 / 100.0).collect();
        let tags: Vec<String> = ids.iter().map(|i| format!("g{}", i % 5)).collect();
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64(ids)),
                Arc::new(Array::from_f64(vs)),
                Arc::new(Array::from_strs(tags.iter().map(|s| s.as_str()))),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(
            schema,
            &[batch],
            WriteOptions {
                codec,
                row_group_rows: 100,
                enable_dictionary: true,
            },
        )
        .unwrap();
        let s = ObjectStore::new();
        s.create_bucket("lake").unwrap();
        s.put_object("lake", "t/part-0", Bytes::from(bytes))
            .unwrap();
        s
    }

    #[test]
    fn full_scan_no_predicates() {
        let s = store_with_table(CodecKind::None);
        let resp = select(&s, "lake", "t/part-0", &SelectRequest::default()).unwrap();
        let total: usize = resp.batches.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 1000);
        assert_eq!(resp.stats.rows_scanned, 1000);
        assert_eq!(resp.stats.rows_returned, 1000);
        assert_eq!(resp.stats.predicate_evals, 0);
    }

    #[test]
    fn filter_and_project() {
        let s = store_with_table(CodecKind::Snap);
        let req = SelectRequest {
            projection: Some(vec!["v".into(), "id".into()]),
            predicates: vec![SelectPredicate::Compare {
                column: "id".into(),
                op: CmpOp::GtEq,
                value: Scalar::Int64(950),
            }],
        };
        let resp = select(&s, "lake", "t/part-0", &req).unwrap();
        assert_eq!(resp.stats.rows_returned, 50);
        // Pruning means only the last row group is scanned.
        assert_eq!(resp.stats.rows_scanned, 100);
        let b = &resp.batches[0];
        assert_eq!(b.schema().names(), vec!["v", "id"]);
        // Returned bytes reflect the filtered, projected payload only.
        assert!(resp.stats.returned_bytes < resp.stats.uncompressed_bytes);
    }

    #[test]
    fn between_predicate() {
        let s = store_with_table(CodecKind::None);
        let req = SelectRequest {
            projection: Some(vec!["id".into()]),
            predicates: vec![SelectPredicate::Between {
                column: "v".into(),
                lo: Scalar::Float64(1.0),
                hi: Scalar::Float64(1.05),
            }],
        };
        let resp = select(&s, "lake", "t/part-0", &req).unwrap();
        // v in [1.0, 1.05] -> ids 100..=105.
        assert_eq!(resp.stats.rows_returned, 6);
        let ids: Vec<i64> = resp
            .batches
            .iter()
            .flat_map(|b| b.column(0).as_i64().unwrap().values.clone())
            .collect();
        assert_eq!(ids, vec![100, 101, 102, 103, 104, 105]);
    }

    #[test]
    fn predicate_on_unprojected_column() {
        let s = store_with_table(CodecKind::None);
        let req = SelectRequest {
            projection: Some(vec!["tag".into()]),
            predicates: vec![SelectPredicate::Compare {
                column: "id".into(),
                op: CmpOp::Lt,
                value: Scalar::Int64(3),
            }],
        };
        let resp = select(&s, "lake", "t/part-0", &req).unwrap();
        assert_eq!(resp.stats.rows_returned, 3);
        assert_eq!(resp.batches[0].schema().names(), vec!["tag"]);
    }

    #[test]
    fn string_equality_filter() {
        let s = store_with_table(CodecKind::Zst);
        let req = SelectRequest {
            projection: Some(vec!["id".into()]),
            predicates: vec![SelectPredicate::Compare {
                column: "tag".into(),
                op: CmpOp::Eq,
                value: Scalar::Utf8("g3".into()),
            }],
        };
        let resp = select(&s, "lake", "t/part-0", &req).unwrap();
        assert_eq!(resp.stats.rows_returned, 200);
    }

    #[test]
    fn compression_reduces_disk_bytes() {
        let raw = store_with_table(CodecKind::None);
        let zst = store_with_table(CodecKind::Zst);
        let req = SelectRequest::default();
        let a = select(&raw, "lake", "t/part-0", &req).unwrap().stats;
        let b = select(&zst, "lake", "t/part-0", &req).unwrap().stats;
        assert!(
            b.disk_bytes < a.disk_bytes,
            "{} vs {}",
            b.disk_bytes,
            a.disk_bytes
        );
        assert_eq!(a.rows_returned, b.rows_returned);
    }

    #[test]
    fn errors_are_clean() {
        let s = store_with_table(CodecKind::None);
        // Unknown column.
        let req = SelectRequest {
            projection: Some(vec!["nope".into()]),
            predicates: vec![],
        };
        assert!(matches!(
            select(&s, "lake", "t/part-0", &req),
            Err(StoreError::Select(_))
        ));
        // Not a parq object.
        s.put_object("lake", "junk", Bytes::from_static(b"not parquet"))
            .unwrap();
        assert!(select(&s, "lake", "junk", &SelectRequest::default()).is_err());
        // Missing object.
        assert!(matches!(
            select(&s, "lake", "missing", &SelectRequest::default()),
            Err(StoreError::NoSuchKey(_))
        ));
    }
}
