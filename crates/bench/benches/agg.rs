//! Grouped aggregation: the shared vectorized kernel vs the row-at-a-time
//! design it replaced, across two shapes:
//!
//! * `q1` — TPC-H Q1-shaped: two low-cardinality Utf8 keys (6 groups) ×
//!   `SUM`/`AVG`/`COUNT` over ~200k rows, where almost all time is
//!   accumulator updates;
//! * `high_card` — ~50k distinct Int64 groups over 200k rows, where group-id
//!   resolution (hashing + table probes) dominates.
//!
//! The `baseline_*` functions replicate the deleted implementation: per-row
//! `key_bytes` encoding into a `HashMap<Vec<u8>, usize>`, then per-row
//! scalar accumulator updates via `scalar_at`-style dispatch. The harness
//! asserts the headline acceptance number before benchmarking: >= 2x
//! single-thread throughput on the Q1 shape.

use std::collections::HashMap;
use std::time::Instant;

use columnar::agg::AggFunc;
use columnar::groupby::GroupedAggregator;
use columnar::prelude::*;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};

const ROWS: usize = 200_000;
const BATCH_ROWS: usize = 8_192;

struct Workload {
    key_types: Vec<DataType>,
    specs: Vec<(AggFunc, Option<DataType>)>,
    /// Per batch: key columns then, for each agg, its argument column.
    batches: Vec<(Vec<Array>, Vec<Option<Array>>)>,
}

/// TPC-H Q1 shape: `GROUP BY returnflag, linestatus` with
/// `SUM(qty), SUM(price), AVG(qty), AVG(price), COUNT(*)`.
fn q1_workload() -> Workload {
    let flags = ["A", "N", "R"];
    let statuses = ["F", "O"];
    let mut batches = Vec::new();
    let mut row = 0usize;
    while row < ROWS {
        let n = BATCH_ROWS.min(ROWS - row);
        let rf: Vec<&str> = (0..n)
            .map(|i| flags[(row + i).wrapping_mul(2654435761) % 3])
            .collect();
        let ls: Vec<&str> = (0..n)
            .map(|i| statuses[(row + i).wrapping_mul(40503) % 2])
            .collect();
        let qty: Vec<f64> = (0..n).map(|i| ((row + i) % 50) as f64 + 1.0).collect();
        let price: Vec<f64> = (0..n)
            .map(|i| ((row + i) % 10_000) as f64 * 1.01 + 900.0)
            .collect();
        let keys = vec![
            Array::from_strs(rf.iter().copied()),
            Array::from_strs(ls.iter().copied()),
        ];
        let args = vec![
            Some(Array::from_f64(qty.clone())),
            Some(Array::from_f64(price.clone())),
            Some(Array::from_f64(qty)),
            Some(Array::from_f64(price)),
            None,
        ];
        batches.push((keys, args));
        row += n;
    }
    Workload {
        key_types: vec![DataType::Utf8, DataType::Utf8],
        specs: vec![
            (AggFunc::Sum, Some(DataType::Float64)),
            (AggFunc::Sum, Some(DataType::Float64)),
            (AggFunc::Avg, Some(DataType::Float64)),
            (AggFunc::Avg, Some(DataType::Float64)),
            (AggFunc::Count, None),
        ],
        batches,
    }
}

/// ~50k distinct Int64 groups: group-id resolution dominates.
fn high_card_workload() -> Workload {
    let mut batches = Vec::new();
    let mut row = 0usize;
    while row < ROWS {
        let n = BATCH_ROWS.min(ROWS - row);
        let k: Vec<i64> = (0..n)
            .map(|i| ((row + i).wrapping_mul(2654435761) % 50_000) as i64)
            .collect();
        let v: Vec<i64> = (0..n).map(|i| (row + i) as i64).collect();
        batches.push((
            vec![Array::from_i64(k)],
            vec![Some(Array::from_i64(v)), None],
        ));
        row += n;
    }
    Workload {
        key_types: vec![DataType::Int64],
        specs: vec![
            (AggFunc::Sum, Some(DataType::Int64)),
            (AggFunc::Count, None),
        ],
        batches,
    }
}

/// The new shared kernel: one `GroupedAggregator` across all batches.
fn run_vectorized(w: &Workload) -> usize {
    let mut agg = GroupedAggregator::new(w.key_types.clone(), &w.specs).unwrap();
    for (keys, args) in &w.batches {
        let key_refs: Vec<&Array> = keys.iter().collect();
        let arg_refs: Vec<Option<&Array>> = args.iter().map(|a| a.as_ref()).collect();
        let rows = keys[0].len();
        agg.update(&key_refs, &arg_refs, rows).unwrap();
    }
    let n = agg.num_groups();
    let (_keys, _measures) = agg.finish();
    n
}

/// One scalar accumulator per (group, agg) — the deleted `AggState` design.
#[derive(Clone)]
enum ScalarAcc {
    Count(i64),
    SumF64 { sum: f64, seen: bool },
    SumI64 { sum: i64, seen: bool },
    Avg { sum: f64, n: i64 },
}

impl ScalarAcc {
    fn new(func: AggFunc, input: Option<DataType>) -> ScalarAcc {
        match (func, input) {
            (AggFunc::Count, _) => ScalarAcc::Count(0),
            (AggFunc::Sum, Some(DataType::Int64)) => ScalarAcc::SumI64 {
                sum: 0,
                seen: false,
            },
            (AggFunc::Sum, _) => ScalarAcc::SumF64 {
                sum: 0.0,
                seen: false,
            },
            (AggFunc::Avg, _) => ScalarAcc::Avg { sum: 0.0, n: 0 },
            other => panic!("baseline does not model {other:?}"),
        }
    }

    fn update(&mut self, arg: Option<&Array>, row: usize) {
        match self {
            ScalarAcc::Count(n) => {
                if arg.map(|a| a.is_valid(row)).unwrap_or(true) {
                    *n += 1;
                }
            }
            ScalarAcc::SumF64 { sum, seen } => {
                let a = arg.expect("sum takes an argument");
                if a.is_valid(row) {
                    if let Scalar::Float64(v) = a.scalar_at(row) {
                        *sum += v;
                        *seen = true;
                    }
                }
            }
            ScalarAcc::SumI64 { sum, seen } => {
                let a = arg.expect("sum takes an argument");
                if a.is_valid(row) {
                    if let Scalar::Int64(v) = a.scalar_at(row) {
                        *sum = sum.wrapping_add(v);
                        *seen = true;
                    }
                }
            }
            ScalarAcc::Avg { sum, n } => {
                let a = arg.expect("avg takes an argument");
                if a.is_valid(row) {
                    match a.scalar_at(row) {
                        Scalar::Float64(v) => {
                            *sum += v;
                            *n += 1;
                        }
                        Scalar::Int64(v) => {
                            *sum += v as f64;
                            *n += 1;
                        }
                        _ => {}
                    }
                }
            }
        }
    }
}

/// Per-row key encoding, exactly as the deleted `key_bytes` did it:
/// a tag byte per column, then the value bytes (length-prefixed for Utf8).
fn key_bytes(keys: &[Array], row: usize, out: &mut Vec<u8>) {
    out.clear();
    for k in keys {
        if !k.is_valid(row) {
            out.push(0xff);
            continue;
        }
        match k.scalar_at(row) {
            Scalar::Int64(v) => {
                out.push(0);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Scalar::Float64(v) => {
                out.push(1);
                let v = if v == 0.0 { 0.0 } else { v };
                out.extend_from_slice(&v.to_bits().to_le_bytes());
            }
            Scalar::Utf8(s) => {
                out.push(2);
                out.extend_from_slice(&(s.len() as u32).to_le_bytes());
                out.extend_from_slice(s.as_bytes());
            }
            Scalar::Boolean(v) => {
                out.push(3);
                out.push(v as u8);
            }
            Scalar::Date32(v) => {
                out.push(4);
                out.extend_from_slice(&v.to_le_bytes());
            }
            Scalar::Null => out.push(0xff),
        }
    }
}

/// The deleted row-at-a-time engine: hash rows through `HashMap<Vec<u8>, _>`
/// and update scalar accumulators one row at a time.
fn run_baseline(w: &Workload) -> usize {
    let mut groups: HashMap<Vec<u8>, usize> = HashMap::new();
    let mut states: Vec<Vec<ScalarAcc>> = Vec::new();
    let template: Vec<ScalarAcc> = w
        .specs
        .iter()
        .map(|&(f, dt)| ScalarAcc::new(f, dt))
        .collect();
    let mut kb = Vec::new();
    for (keys, args) in &w.batches {
        let rows = keys[0].len();
        for row in 0..rows {
            key_bytes(keys, row, &mut kb);
            let gid = match groups.get(&kb) {
                Some(&g) => g,
                None => {
                    let g = states.len();
                    groups.insert(kb.clone(), g);
                    states.push(template.clone());
                    g
                }
            };
            for (acc, arg) in states[gid].iter_mut().zip(args) {
                acc.update(arg.as_ref(), row);
            }
        }
    }
    states.len()
}

fn time_best_of<F: FnMut() -> usize>(mut f: F, iters: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        let n = f();
        assert!(n > 0);
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn bench_agg(c: &mut Criterion) {
    let q1 = q1_workload();
    let high = high_card_workload();

    // Both implementations must agree on group counts before we time them.
    assert_eq!(run_vectorized(&q1), run_baseline(&q1));
    assert_eq!(run_vectorized(&high), run_baseline(&high));

    // Acceptance gate: >= 2x single-thread throughput on the Q1 shape.
    let base = time_best_of(|| run_baseline(&q1), 3);
    let vec = time_best_of(|| run_vectorized(&q1), 3);
    assert!(
        vec * 2.0 <= base,
        "vectorized aggregation must be >= 2x the row-at-a-time path on Q1: \
         {:.2}ms vs {:.2}ms ({:.2}x)",
        vec * 1e3,
        base * 1e3,
        base / vec
    );
    println!(
        "agg q1 gate: vectorized {:.2}ms vs row-at-a-time {:.2}ms ({:.2}x speedup)",
        vec * 1e3,
        base * 1e3,
        base / vec
    );
    ocs_bench::record_gate("agg_q1_speedup", base / vec);
    let base_hc = time_best_of(|| run_baseline(&high), 3);
    let vec_hc = time_best_of(|| run_vectorized(&high), 3);
    println!(
        "agg high_card: vectorized {:.2}ms vs row-at-a-time {:.2}ms ({:.2}x speedup)",
        vec_hc * 1e3,
        base_hc * 1e3,
        base_hc / vec_hc
    );

    let mut g = c.benchmark_group("agg");
    g.throughput(Throughput::Elements(ROWS as u64));
    for (name, w) in [("q1", &q1), ("high_card", &high)] {
        g.bench_function(format!("{name}/vectorized"), |b| {
            b.iter(|| run_vectorized(w))
        });
        g.bench_function(format!("{name}/row_at_a_time"), |b| {
            b.iter(|| run_baseline(w))
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_agg
}
criterion_main!(benches);
