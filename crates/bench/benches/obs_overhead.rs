//! Observability overhead: span recording must be effectively free.
//!
//! The harness verifies three acceptance gates before timing anything:
//!
//! * with tracing enabled, end-to-end query wall time must be within 3% of
//!   the same query with tracing disabled (interleaved min-of-N so clock
//!   drift and thermal effects cancel);
//! * the no-op tracer (tracing disabled, or the `tracing-off` feature)
//!   must cost no more than a branch per call — gated at nanoseconds per
//!   `record`, i.e. ~0% overhead for instrumented code that runs with
//!   tracing off;
//! * the always-on flight recorder plus the per-query utilization profiler
//!   must also stay within 3%: the same interleaved min-of-N with the
//!   global recorder toggled on vs off.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dsq::{Engine, EngineBuilder};
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownPolicy};
use workloads::{queries, TableLoader, TpchConfig};

const FILES: usize = 4;
const ROWS_PER_FILE: usize = 32 * 1024;
/// Interleaved measurement rounds (min over rounds is the statistic).
const ROUNDS: usize = 15;
/// Executions per timed round: the query itself is sub-millisecond, so
/// rounds are batched to keep each measurement far above timer/scheduler
/// noise (a 3% gate on 0.3 ms is ~10 µs — one context switch).
const BATCH: usize = 10;
/// Warmup executions per engine before measuring.
const WARMUP: usize = 3;
/// Gate: traced wall time within this fraction of untraced.
const MAX_OVERHEAD: f64 = 0.03;
/// Gate: a disabled-tracer call must cost at most this many nanoseconds.
const MAX_NOOP_NS: f64 = 25.0;

fn build_engine(store: &Arc<ObjectStore>, tracing: bool) -> Engine {
    let engine = EngineBuilder::new().tracing(tracing).build();
    {
        let loader = TableLoader::new(store, engine.metastore());
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: FILES,
                rows_per_file: ROWS_PER_FILE,
                ..Default::default()
            },
        );
    }
    register_ocs_stack(&engine, store.clone(), PushdownPolicy::all());
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .expect("lineitem");
    engine
}

fn time_one(engine: &Engine, sql: &str) -> f64 {
    let start = Instant::now();
    let r = engine.execute(sql).expect("q1");
    assert!(r.simulated_seconds > 0.0);
    start.elapsed().as_secs_f64()
}

fn time_batch(engine: &Engine, sql: &str) -> f64 {
    let start = Instant::now();
    for _ in 0..BATCH {
        let r = engine.execute(sql).expect("q1");
        assert!(r.simulated_seconds > 0.0);
    }
    start.elapsed().as_secs_f64()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let sql = queries::TPCH_Q1;
    // Two engines over independent stores so neither shares cache luck.
    let store_on = Arc::new(ObjectStore::new());
    let store_off = Arc::new(ObjectStore::new());
    let traced = build_engine(&store_on, true);
    let untraced = build_engine(&store_off, false);

    for _ in 0..WARMUP {
        time_one(&traced, sql);
        time_one(&untraced, sql);
    }
    // Sanity: tracing state is what we think it is (obs built with
    // `tracing-off` forces the no-op tracer everywhere).
    let tracing_compiled_in = obs::Tracer::new().is_enabled();
    let r = traced.execute(sql).expect("traced");
    assert!(
        !r.trace.spans.is_empty() || !tracing_compiled_in,
        "traced engine produced no spans"
    );
    assert!(
        untraced
            .execute(sql)
            .expect("untraced")
            .trace
            .spans
            .is_empty(),
        "untraced engine recorded spans"
    );

    // Gate 1: interleaved min-of-N, traced within MAX_OVERHEAD of untraced.
    let (mut min_on, mut min_off) = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        min_on = min_on.min(time_batch(&traced, sql));
        min_off = min_off.min(time_batch(&untraced, sql));
    }
    let overhead = (min_on - min_off) / min_off;
    assert!(
        overhead < MAX_OVERHEAD,
        "tracing overhead gate: traced {:.4}s vs untraced {:.4}s \
         ({:+.2}%, need < {:.0}%)",
        min_on,
        min_off,
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    // Gate 2: the no-op tracer is a branch per call.
    let noop = obs::Tracer::disabled();
    let calls: u64 = 4_000_000;
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..calls {
        acc = acc.wrapping_add(noop.record("x", "phase", None, 0.0, i as f64).0);
    }
    let ns_per_call = start.elapsed().as_secs_f64() * 1e9 / calls as f64;
    assert_eq!(acc, 0, "disabled tracer must mint no ids");
    assert!(
        ns_per_call < MAX_NOOP_NS,
        "no-op tracer gate: {ns_per_call:.1} ns/call, need < {MAX_NOOP_NS} ns"
    );

    // Gate 3: the flight recorder + profiler stay under MAX_OVERHEAD.
    // Same interleaved min-of-N shape as gate 1, toggling the global
    // recorder (the profiler itself has no off switch: it is part of every
    // execution, so it is inside *both* sides — the toggle isolates the
    // flight-ring seqlock writes, the only part that can be disabled).
    let (mut min_fl_on, mut min_fl_off) = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        obs::flight().set_enabled(true);
        min_fl_on = min_fl_on.min(time_batch(&traced, sql));
        obs::flight().set_enabled(false);
        min_fl_off = min_fl_off.min(time_batch(&traced, sql));
    }
    obs::flight().set_enabled(true);
    let flight_overhead = (min_fl_on - min_fl_off) / min_fl_off;
    assert!(
        flight_overhead < MAX_OVERHEAD,
        "flight recorder overhead gate: enabled {min_fl_on:.4}s vs disabled \
         {min_fl_off:.4}s ({:+.2}%, need < {:.0}%)",
        flight_overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    println!(
        "obs overhead check: traced {:.4}s vs untraced {:.4}s ({:+.2}%), \
         no-op tracer {:.1} ns/call, flight recorder {:+.2}%",
        min_on,
        min_off,
        overhead * 100.0,
        ns_per_call,
        flight_overhead * 100.0
    );
    ocs_bench::record_gate("obs_tracing_overhead", overhead);
    ocs_bench::record_gate("obs_noop_tracer_ns_per_call", ns_per_call);
    ocs_bench::record_gate("obs_flight_recorder_overhead", flight_overhead);

    let mut g = c.benchmark_group("obs_overhead");
    g.bench_function("q1_traced", |b| b.iter(|| time_one(&traced, sql)));
    g.bench_function("q1_untraced", |b| b.iter(|| time_one(&untraced, sql)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(benches);
