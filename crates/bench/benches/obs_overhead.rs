//! Observability overhead: span recording must be effectively free.
//!
//! The harness verifies two acceptance gates before timing anything:
//!
//! * with tracing enabled, end-to-end query wall time must be within 3% of
//!   the same query with tracing disabled (interleaved min-of-N so clock
//!   drift and thermal effects cancel);
//! * the no-op tracer (tracing disabled, or the `tracing-off` feature)
//!   must cost no more than a branch per call — gated at nanoseconds per
//!   `record`, i.e. ~0% overhead for instrumented code that runs with
//!   tracing off.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dsq::{Engine, EngineBuilder};
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownPolicy};
use workloads::{queries, TableLoader, TpchConfig};

const FILES: usize = 4;
const ROWS_PER_FILE: usize = 32 * 1024;
/// Interleaved measurement rounds (min over rounds is the statistic).
const ROUNDS: usize = 15;
/// Warmup executions per engine before measuring.
const WARMUP: usize = 3;
/// Gate: traced wall time within this fraction of untraced.
const MAX_OVERHEAD: f64 = 0.03;
/// Gate: a disabled-tracer call must cost at most this many nanoseconds.
const MAX_NOOP_NS: f64 = 25.0;

fn build_engine(store: &Arc<ObjectStore>, tracing: bool) -> Engine {
    let engine = EngineBuilder::new().tracing(tracing).build();
    {
        let loader = TableLoader::new(store, engine.metastore());
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: FILES,
                rows_per_file: ROWS_PER_FILE,
                ..Default::default()
            },
        );
    }
    register_ocs_stack(&engine, store.clone(), PushdownPolicy::all());
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .expect("lineitem");
    engine
}

fn time_one(engine: &Engine, sql: &str) -> f64 {
    let start = Instant::now();
    let r = engine.execute(sql).expect("q1");
    assert!(r.simulated_seconds > 0.0);
    start.elapsed().as_secs_f64()
}

fn bench_obs_overhead(c: &mut Criterion) {
    let sql = queries::TPCH_Q1;
    // Two engines over independent stores so neither shares cache luck.
    let store_on = Arc::new(ObjectStore::new());
    let store_off = Arc::new(ObjectStore::new());
    let traced = build_engine(&store_on, true);
    let untraced = build_engine(&store_off, false);

    for _ in 0..WARMUP {
        time_one(&traced, sql);
        time_one(&untraced, sql);
    }
    // Sanity: tracing state is what we think it is (obs built with
    // `tracing-off` forces the no-op tracer everywhere).
    let tracing_compiled_in = obs::Tracer::new().is_enabled();
    let r = traced.execute(sql).expect("traced");
    assert!(
        !r.trace.spans.is_empty() || !tracing_compiled_in,
        "traced engine produced no spans"
    );
    assert!(
        untraced
            .execute(sql)
            .expect("untraced")
            .trace
            .spans
            .is_empty(),
        "untraced engine recorded spans"
    );

    // Gate 1: interleaved min-of-N, traced within MAX_OVERHEAD of untraced.
    let (mut min_on, mut min_off) = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        min_on = min_on.min(time_one(&traced, sql));
        min_off = min_off.min(time_one(&untraced, sql));
    }
    let overhead = (min_on - min_off) / min_off;
    assert!(
        overhead < MAX_OVERHEAD,
        "tracing overhead gate: traced {:.4}s vs untraced {:.4}s \
         ({:+.2}%, need < {:.0}%)",
        min_on,
        min_off,
        overhead * 100.0,
        MAX_OVERHEAD * 100.0
    );

    // Gate 2: the no-op tracer is a branch per call.
    let noop = obs::Tracer::disabled();
    let calls: u64 = 4_000_000;
    let start = Instant::now();
    let mut acc = 0u64;
    for i in 0..calls {
        acc = acc.wrapping_add(noop.record("x", "phase", None, 0.0, i as f64).0);
    }
    let ns_per_call = start.elapsed().as_secs_f64() * 1e9 / calls as f64;
    assert_eq!(acc, 0, "disabled tracer must mint no ids");
    assert!(
        ns_per_call < MAX_NOOP_NS,
        "no-op tracer gate: {ns_per_call:.1} ns/call, need < {MAX_NOOP_NS} ns"
    );

    println!(
        "obs overhead check: traced {:.4}s vs untraced {:.4}s ({:+.2}%), \
         no-op tracer {:.1} ns/call",
        min_on,
        min_off,
        overhead * 100.0,
        ns_per_call
    );

    let mut g = c.benchmark_group("obs_overhead");
    g.bench_function("q1_traced", |b| b.iter(|| time_one(&traced, sql)));
    g.bench_function("q1_untraced", |b| b.iter(|| time_one(&untraced, sql)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_obs_overhead
}
criterion_main!(benches);
