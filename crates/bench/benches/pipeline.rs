//! The streaming boundary's pipeline overlap, on a TPC-H-Q1-shaped
//! multi-split scan + aggregation.
//!
//! The table is written with small row groups so every split streams many
//! batch frames through the bounded client window; the query runs with
//! filter-only pushdown so the engine consumes frames through streaming
//! partial aggregation — the configuration where overlap matters most.
//!
//! The harness verifies the two acceptance gates before timing anything:
//!
//! * the overlapped makespan the pipeline scheduler bills must beat the
//!   additive six-barrier model by >= 1.5x;
//! * engine-side peak buffered bytes under the bounded frame window must
//!   be >= 4x lower than whole-result buffering (the full response).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion};
use dsq::EngineBuilder;
use lzcodec::CodecKind;
use netsim::meter::human_bytes;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, OcsConnector, PushdownPolicy};
use workloads::{queries, TableLoader, TpchConfig};

const FILES: usize = 16;
const ROWS_PER_FILE: usize = 64 * 1024;
const ROW_GROUP_ROWS: usize = 2 * 1024;

fn bench_pipeline(c: &mut Criterion) {
    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());
    {
        let mut loader = TableLoader::new(&store, engine.metastore());
        loader.codec = CodecKind::None;
        loader.row_group_rows = ROW_GROUP_ROWS;
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: FILES,
                rows_per_file: ROWS_PER_FILE,
                ..Default::default()
            },
        );
    }
    let ocs = register_ocs_stack(&engine, store.clone(), PushdownPolicy::all());
    engine.register_connector(Arc::new(OcsConnector::new(
        "pd-filter",
        ocs,
        engine.cluster().clone(),
        engine.cost_params().clone(),
        PushdownPolicy::filter_only(),
    )));

    let sql = queries::TPCH_Q1;
    engine
        .metastore()
        .rebind_connector("lineitem", "pd-filter")
        .unwrap();
    let r = engine.execute(sql).expect("q1 via streaming boundary");
    let p = &r.pipeline;

    // Gate 1: pipeline overlap must beat the additive barrier model.
    assert!(
        p.overlapped_s > 0.0 && p.additive_s >= p.overlapped_s * 1.5,
        "overlap gate: additive {:.4}s vs overlapped {:.4}s ({:.2}x, need >= 1.5x)",
        p.additive_s,
        p.overlapped_s,
        p.additive_s / p.overlapped_s
    );
    // Gate 2: the bounded frame window must cap engine-side buffering at
    // a quarter of what whole-result buffering holds (the full response).
    assert!(
        p.peak_buffered_bytes > 0 && p.peak_buffered_bytes * 4 <= r.moved_bytes,
        "backpressure gate: peak {} vs whole-result {} ({:.2}x, need >= 4x)",
        p.peak_buffered_bytes,
        r.moved_bytes,
        r.moved_bytes as f64 / p.peak_buffered_bytes as f64
    );
    println!(
        "pipeline overlap check: additive {:.4}s vs overlapped {:.4}s \
         ({:.2}x faster), {} frames over {} splits, first batch at {:.5}s, \
         peak buffer {} vs whole-result {} ({:.1}x lower)",
        p.additive_s,
        p.overlapped_s,
        p.additive_s / p.overlapped_s,
        p.frames,
        r.splits,
        p.time_to_first_batch_s,
        human_bytes(p.peak_buffered_bytes),
        human_bytes(r.moved_bytes),
        r.moved_bytes as f64 / p.peak_buffered_bytes as f64,
    );
    ocs_bench::record_gate("pipeline_overlap_speedup", p.additive_s / p.overlapped_s);
    ocs_bench::record_gate(
        "pipeline_backpressure_buffer_reduction",
        r.moved_bytes as f64 / p.peak_buffered_bytes as f64,
    );

    let mut g = c.benchmark_group("pipeline");
    g.bench_function("q1_stream_filter_only", |b| {
        b.iter(|| engine.execute(sql).unwrap().pipeline.overlapped_s)
    });
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .unwrap();
    g.bench_function("q1_full_pushdown", |b| {
        b.iter(|| engine.execute(sql).unwrap().pipeline.overlapped_s)
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pipeline
}
criterion_main!(benches);
