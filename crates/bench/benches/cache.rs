//! Near-storage cache gates: the caching subsystem must pay for itself.
//!
//! Two acceptance gates are verified before timing anything:
//!
//! * **warm speedup** — a repeated TPC-H Q1-shape pushdown against an
//!   unchanged table must run at least [`MIN_WARM_SPEEDUP`]x faster in
//!   *simulated* seconds than the cold execution (the result cache
//!   replays the pushdown at zero storage cost);
//! * **cold overhead** — with caches enabled, a cold execution (every
//!   object freshly versioned, so nothing can hit) must cost within
//!   [`MAX_COLD_OVERHEAD`] wall-clock of the same execution with caches
//!   disabled, and its simulated ledger must be bit-identical.

use std::sync::Arc;
use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use dsq::{Engine, EngineBuilder};
use netsim::Phase;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack_configured, PushdownPolicy};
use workloads::{queries, TableLoader, TpchConfig};

const FILES: usize = 4;
const ROWS_PER_FILE: usize = 32 * 1024;
/// Interleaved measurement rounds (min over rounds is the statistic).
const ROUNDS: usize = 12;
/// Warmup executions per engine before wall-clock measurement.
const WARMUP: usize = 3;
/// Gate: warm repeat at least this many times faster (simulated).
const MIN_WARM_SPEEDUP: f64 = 3.0;
/// Gate: cold path with caches enabled within this fraction of disabled.
const MAX_COLD_OVERHEAD: f64 = 0.05;

fn build_engine(store: &Arc<ObjectStore>, rg_bytes: u64, result_bytes: u64) -> Engine {
    let engine = EngineBuilder::new().build();
    {
        let loader = TableLoader::new(store, engine.metastore());
        workloads::tpch::load(
            &loader,
            &TpchConfig {
                files: FILES,
                rows_per_file: ROWS_PER_FILE,
                ..Default::default()
            },
        );
    }
    register_ocs_stack_configured(
        &engine,
        store.clone(),
        PushdownPolicy::all(),
        rg_bytes,
        result_bytes,
    );
    engine
        .metastore()
        .rebind_connector("lineitem", "ocs")
        .expect("lineitem");
    engine
}

/// Rewrite every object byte-identically. The version bump invalidates
/// both cache tiers, so the next execution takes the cold path again.
fn invalidate_caches(store: &ObjectStore) {
    for meta in store.list("lake", "").expect("bucket exists") {
        let bytes = store.get_object("lake", &meta.key).expect("object exists");
        store.put_object("lake", &meta.key, bytes).expect("rewrite");
    }
}

/// Simulated seconds of the pushdown itself — the phases the near-storage
/// caches can actually elide (planning and post-scan compute are fixed
/// costs a cache cannot touch).
const PUSHDOWN_PHASES: [Phase; 5] = [
    Phase::StorageDisk,
    Phase::StorageDecompress,
    Phase::StorageCpu,
    Phase::FrontendCpu,
    Phase::NetworkTransfer,
];

struct Run {
    wall_s: f64,
    sim_total_s: f64,
    sim_pushdown_s: f64,
}

fn time_one(engine: &Engine, sql: &str) -> Run {
    let start = Instant::now();
    let r = engine.execute(sql).expect("q1");
    Run {
        wall_s: start.elapsed().as_secs_f64(),
        sim_total_s: r.simulated_seconds,
        sim_pushdown_s: PUSHDOWN_PHASES.iter().map(|p| r.ledger.get(*p)).sum(),
    }
}

fn bench_cache(c: &mut Criterion) {
    let sql = queries::TPCH_Q1;
    let defaults = ocs::OcsConfig::paper_testbed();
    let store_on = Arc::new(ObjectStore::new());
    let store_off = Arc::new(ObjectStore::new());
    let cached = build_engine(
        &store_on,
        defaults.row_group_cache_bytes,
        defaults.result_cache_bytes,
    );
    let uncached = build_engine(&store_off, 0, 0);

    // Gate 1: warm repeat >= MIN_WARM_SPEEDUP x cold, in simulated
    // pushdown seconds (the phases a near-storage cache can elide).
    invalidate_caches(&store_on);
    let cold = time_one(&cached, sql);
    let warm = time_one(&cached, sql);
    let speedup = cold.sim_pushdown_s / warm.sim_pushdown_s;
    assert!(
        speedup >= MIN_WARM_SPEEDUP,
        "warm speedup gate: cold pushdown {:.6}s vs warm {:.6}s \
         ({speedup:.2}x, need >= {MIN_WARM_SPEEDUP}x)",
        cold.sim_pushdown_s,
        warm.sim_pushdown_s
    );
    assert!(
        warm.sim_total_s < cold.sim_total_s,
        "warm run must also be cheaper end-to-end \
         (cold {:.6}s vs warm {:.6}s)",
        cold.sim_total_s,
        warm.sim_total_s
    );

    // The cost ledger is honest: a cold run bills identically whether
    // the (empty) caches are enabled or not.
    invalidate_caches(&store_on);
    let cold_on = time_one(&cached, sql);
    let cold_off = time_one(&uncached, sql);
    assert_eq!(
        cold_on.sim_total_s.to_bits(),
        cold_off.sim_total_s.to_bits(),
        "cold simulated seconds must not depend on cache configuration \
         (enabled {:.9}s vs disabled {:.9}s)",
        cold_on.sim_total_s,
        cold_off.sim_total_s
    );

    // Gate 2: cold-path wall-clock overhead of the cache machinery.
    // Interleaved min-of-N; every round re-versions the objects so the
    // cached engine never hits.
    for _ in 0..WARMUP {
        invalidate_caches(&store_on);
        time_one(&cached, sql);
        time_one(&uncached, sql);
    }
    let (mut min_on, mut min_off) = (f64::MAX, f64::MAX);
    for _ in 0..ROUNDS {
        invalidate_caches(&store_on);
        min_on = min_on.min(time_one(&cached, sql).wall_s);
        min_off = min_off.min(time_one(&uncached, sql).wall_s);
    }
    let overhead = (min_on - min_off) / min_off;
    assert!(
        overhead < MAX_COLD_OVERHEAD,
        "cold overhead gate: enabled {min_on:.4}s vs disabled {min_off:.4}s \
         ({:+.2}%, need < {:.0}%)",
        overhead * 100.0,
        MAX_COLD_OVERHEAD * 100.0
    );

    println!(
        "cache gates: warm pushdown speedup {speedup:.2}x \
         (cold {:.6}s sim, warm {:.6}s sim; end-to-end {:.6}s -> {:.6}s), \
         cold overhead {:+.2}% (enabled {min_on:.4}s, disabled {min_off:.4}s wall)",
        cold.sim_pushdown_s,
        warm.sim_pushdown_s,
        cold.sim_total_s,
        warm.sim_total_s,
        overhead * 100.0
    );
    ocs_bench::record_gate("cache_warm_speedup", speedup);
    ocs_bench::record_gate("cache_cold_overhead", overhead);

    let mut g = c.benchmark_group("cache");
    g.bench_function("q1_cold", |b| {
        b.iter(|| {
            invalidate_caches(&store_on);
            time_one(&cached, sql)
        })
    });
    g.bench_function("q1_warm", |b| b.iter(|| time_one(&cached, sql)));
    g.bench_function("q1_uncached", |b| b.iter(|| time_one(&uncached, sql)));
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache
}
criterion_main!(benches);
