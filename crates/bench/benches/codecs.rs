//! Criterion benchmarks for the compression codecs, verifying their
//! relative speed ordering matches the originals they model
//! (Snap fastest, Gz slowest compress, Zst best ratio at speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lzcodec::{compress, decompress, CodecKind};

fn scientific_payload(n: usize) -> Vec<u8> {
    // Columnar doubles with smooth variation — similar entropy to the
    // Deep Water velocity fields.
    let mut out = Vec::with_capacity(n * 8);
    for i in 0..n {
        let v = ((i as f64) * 0.001).sin() * 0.1 + 0.05;
        out.extend_from_slice(&v.to_le_bytes());
    }
    out
}

fn bench_codecs(c: &mut Criterion) {
    let data = scientific_payload(64 * 1024);
    let mut g = c.benchmark_group("codecs");
    g.throughput(Throughput::Bytes(data.len() as u64));
    for kind in [CodecKind::Snap, CodecKind::Gz, CodecKind::Zst] {
        g.bench_function(BenchmarkId::new("compress", kind.name()), |b| {
            b.iter(|| compress(kind, &data))
        });
        let packed = compress(kind, &data);
        g.bench_function(BenchmarkId::new("decompress", kind.name()), |b| {
            b.iter(|| decompress(kind, &packed).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_codecs
}
criterion_main!(benches);
