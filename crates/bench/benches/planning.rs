//! Criterion benchmarks for the planning path: SQL parse, analysis +
//! optimization, connector pushdown rewrite, and Substrait encode/decode —
//! the overheads the paper's Table 3 shows must stay marginal.

use criterion::{criterion_group, criterion_main, Criterion};
use lzcodec::CodecKind;
use ocs_bench::{build_stack, DatasetSelection, Scale};
use workloads::queries;

fn bench_planning(c: &mut Criterion) {
    let stack = build_stack(Scale::Small, CodecKind::None, DatasetSelection::all(), None);
    let mut g = c.benchmark_group("planning");

    g.bench_function("sql_parse_tpch_q1", |b| {
        b.iter(|| sqlparse::parse(queries::TPCH_Q1).unwrap())
    });

    for (name, sql, _) in queries::TABLE2 {
        g.bench_function(
            format!("plan_{}", name.to_lowercase().replace(' ', "_")),
            |b| b.iter(|| stack.engine.plan(sql).unwrap()),
        );
    }

    // Substrait wire round-trip of the full Laghos pushdown plan.
    let (_, plan) = stack.engine.plan(queries::LAGHOS).unwrap();
    if let Some(h) = plan
        .scan()
        .handle
        .as_any()
        .downcast_ref::<ocs_connector::OcsTableHandle>()
    {
        let (ir, _) = ocs_connector::translate::to_substrait(h);
        g.bench_function("substrait_encode", |b| b.iter(|| substrait_ir::encode(&ir)));
        let bytes = substrait_ir::encode(&ir);
        g.bench_function("substrait_decode", |b| {
            b.iter(|| substrait_ir::decode(&bytes).unwrap())
        });
    }

    // Planck verifier overhead on the three paper plan shapes: the full
    // pass pipeline must stay a small fraction of the `plan_*` times
    // above (EXPERIMENTS.md records the ratio).
    for (name, sql) in [
        ("tpch_q1", queries::TPCH_Q1),
        ("laghos", queries::LAGHOS),
        ("dwi", queries::DEEPWATER),
    ] {
        let (_, plan) = stack.engine.plan(sql).unwrap();
        let Some(h) = plan
            .scan()
            .handle
            .as_any()
            .downcast_ref::<ocs_connector::OcsTableHandle>()
        else {
            continue;
        };
        let (ir, _) = ocs_connector::translate::to_substrait(h);
        g.bench_function(format!("planck_verify_{name}"), |b| {
            b.iter(|| ocs_connector::planck::verify(&ir).unwrap())
        });
        g.bench_function(format!("planck_verify_pushdown_{name}"), |b| {
            b.iter(|| ocs_connector::planck::verify_pushdown(&ir).unwrap())
        });
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = bench_planning
}
criterion_main!(benches);
