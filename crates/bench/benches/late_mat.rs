//! Late-materialization scan pipeline, old vs new path, across the
//! selectivity × projection grid:
//!
//! * selectivity 0.1 % — the Laghos shape: a clustered match region that
//!   statistics pruning cannot see (the predicate wraps the column in
//!   arithmetic), so the win comes entirely from mask-skipped groups;
//! * selectivity 18 %  — uniform matches in every group: no group skips,
//!   measuring the overhead of the two-phase scan;
//! * selectivity 100 % — all-true mask: the zero-copy `Selection::All`
//!   passthrough.
//!
//! Each selectivity runs under a full projection (all 4 columns) and a
//! filter-column-only projection. The harness also verifies the headline
//! acceptance number: >= 2x decoded-bytes reduction (via `ExecStats`) on
//! the low-selectivity full-projection scan.

use std::sync::Arc;

use columnar::kernels::arith::ArithOp;
use columnar::kernels::cmp::CmpOp;
use columnar::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use netsim::CostParams;
use ocs::exec::Executor;
use parq::{ParqReader, WriteOptions};
use substrait_ir::{Expr, Plan, Rel};

const ROWS: usize = 100_000;
const GROUP_ROWS: usize = 5_000;

fn base_schema() -> Schema {
    Schema::new(vec![
        Field::new("ts", DataType::Int64, false),
        Field::new("v", DataType::Float64, false),
        Field::new("zone", DataType::Int64, false),
        Field::new("w", DataType::Float64, false),
    ])
}

/// A Laghos-shaped object: a monotone timestep column, two payload value
/// columns, and a pseudo-random measurement column spanning [0, 1000) in
/// every row group (so min/max statistics never prune on `v`).
fn make_reader() -> ParqReader {
    let schema = Arc::new(base_schema());
    let ts: Vec<i64> = (0..ROWS as i64).collect();
    let v: Vec<f64> = (0..ROWS)
        .map(|i| (i.wrapping_mul(2654435761) % 1000) as f64)
        .collect();
    let zone: Vec<i64> = (0..ROWS).map(|i| (i % 64) as i64).collect();
    let w: Vec<f64> = (0..ROWS).map(|i| i as f64 * 0.25).collect();
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Arc::new(Array::from_i64(ts)),
            Arc::new(Array::from_f64(v)),
            Arc::new(Array::from_i64(zone)),
            Arc::new(Array::from_f64(w)),
        ],
    )
    .unwrap();
    let bytes = parq::writer::write_file(
        schema,
        &[batch],
        WriteOptions {
            row_group_rows: GROUP_ROWS,
            ..Default::default()
        },
    )
    .unwrap();
    ParqReader::open(bytes.into()).unwrap()
}

/// Selectivity knobs. Every predicate wraps `ts` in arithmetic so row-group
/// statistics cannot prune: the benchmark isolates mask-driven skipping.
fn predicate(selectivity: &str) -> Expr {
    let ts_mod = |m: i64| Expr::arith(ArithOp::Mod, Expr::field(0), Expr::lit(Scalar::Int64(m)));
    match selectivity {
        // Rows 0..100 of 100_000 — all inside the first row group.
        "0.1pct" => Expr::cmp(
            CmpOp::Lt,
            ts_mod(ROWS as i64),
            Expr::lit(Scalar::Int64(100)),
        ),
        // `ts % 100 < 18`: 18% of every group matches; nothing skips.
        "18pct" => Expr::cmp(CmpOp::Lt, ts_mod(100), Expr::lit(Scalar::Int64(18))),
        // `ts % 100 < 100`: everything matches; all-true fast path.
        "100pct" => Expr::cmp(CmpOp::Lt, ts_mod(100), Expr::lit(Scalar::Int64(100))),
        other => panic!("unknown selectivity {other}"),
    }
}

fn scan_plan(selectivity: &str, projection: Option<Vec<usize>>) -> Plan {
    Plan::new(Rel::Filter {
        input: Box::new(Rel::read("t", base_schema(), projection)),
        predicate: predicate(selectivity),
    })
}

fn run(reader: &ParqReader, cost: &CostParams, plan: &Plan, late_mat: bool) -> u64 {
    let (batches, stats) = Executor::new(reader, cost)
        .late_materialization(late_mat)
        .run(plan)
        .unwrap();
    batches.iter().map(|b| b.num_rows() as u64).sum::<u64>() + stats.uncompressed_bytes
}

fn bench_late_mat(c: &mut Criterion) {
    let reader = make_reader();
    let cost = CostParams::default();

    // Acceptance gate: the Laghos-shaped low-selectivity scan must decode
    // less than half the bytes of the eager path (measured via ExecStats).
    let gate = scan_plan("0.1pct", None);
    let (_, late) = Executor::new(&reader, &cost).run(&gate).unwrap();
    let (_, eager) = Executor::new(&reader, &cost)
        .late_materialization(false)
        .run(&gate)
        .unwrap();
    assert!(
        late.uncompressed_bytes * 2 <= eager.uncompressed_bytes,
        "late materialization must halve decoded bytes: {} vs {}",
        late.uncompressed_bytes,
        eager.uncompressed_bytes
    );
    println!(
        "late_mat decoded-bytes check: {} vs {} eager ({:.1}x reduction, \
         {} of {} groups skipped, {} encoded bytes never decoded)",
        late.uncompressed_bytes,
        eager.uncompressed_bytes,
        eager.uncompressed_bytes as f64 / late.uncompressed_bytes as f64,
        late.row_groups_skipped,
        ROWS / GROUP_ROWS,
        late.decoded_bytes_avoided,
    );
    ocs_bench::record_gate(
        "late_mat_decoded_bytes_reduction",
        eager.uncompressed_bytes as f64 / late.uncompressed_bytes as f64,
    );

    let mut g = c.benchmark_group("late_mat");
    g.throughput(Throughput::Elements(ROWS as u64));
    for selectivity in ["0.1pct", "18pct", "100pct"] {
        for (proj_name, projection) in [("all_cols", None), ("filter_col_only", Some(vec![0]))] {
            let plan = scan_plan(selectivity, projection);
            g.bench_function(
                BenchmarkId::new(format!("{selectivity}/{proj_name}"), "eager"),
                |b| b.iter(|| run(&reader, &cost, &plan, false)),
            );
            g.bench_function(
                BenchmarkId::new(format!("{selectivity}/{proj_name}"), "late"),
                |b| b.iter(|| run(&reader, &cost, &plan, true)),
            );
        }
    }
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_late_mat
}
criterion_main!(benches);
