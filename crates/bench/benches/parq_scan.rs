//! Criterion benchmarks for the parq file format: write, projected read,
//! and statistics-pruned scan.

use columnar::prelude::*;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use lzcodec::CodecKind;
use parq::{ParqReader, RangePredicate, WriteOptions};
use std::sync::Arc;

fn file_bytes(rows: usize, codec: CodecKind) -> Vec<u8> {
    let schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("a", DataType::Float64, false),
        Field::new("b", DataType::Float64, false),
        Field::new("tag", DataType::Utf8, false),
    ]));
    let tags: Vec<String> = (0..rows).map(|i| format!("g{}", i % 4)).collect();
    let batch = RecordBatch::try_new(
        schema.clone(),
        vec![
            Arc::new(Array::from_i64((0..rows as i64).collect())),
            Arc::new(Array::from_f64((0..rows).map(|i| i as f64 * 0.5).collect())),
            Arc::new(Array::from_f64(
                (0..rows).map(|i| i as f64 * 0.25).collect(),
            )),
            Arc::new(Array::from_strs(tags.iter().map(|s| s.as_str()))),
        ],
    )
    .unwrap();
    parq::writer::write_file(
        schema,
        &[batch],
        WriteOptions {
            codec,
            row_group_rows: 16 * 1024,
            enable_dictionary: true,
        },
    )
    .unwrap()
}

fn bench_parq(c: &mut Criterion) {
    let rows = 128 * 1024;
    let mut g = c.benchmark_group("parq");
    g.throughput(Throughput::Elements(rows as u64));

    for codec in [CodecKind::None, CodecKind::Snap, CodecKind::Zst] {
        g.bench_function(BenchmarkId::new("write", codec.name()), |b| {
            b.iter(|| file_bytes(rows, codec))
        });
        let bytes = file_bytes(rows, codec);
        g.bench_function(BenchmarkId::new("read_all", codec.name()), |b| {
            b.iter(|| {
                let r = ParqReader::open(bytes.clone().into()).unwrap();
                r.read_all(None).unwrap()
            })
        });
        g.bench_function(BenchmarkId::new("read_projected", codec.name()), |b| {
            b.iter(|| {
                let r = ParqReader::open(bytes.clone().into()).unwrap();
                r.read_all(Some(&[0])).unwrap()
            })
        });
    }

    let bytes = file_bytes(rows, CodecKind::None);
    g.bench_function("pruned_point_lookup", |b| {
        b.iter(|| {
            let r = ParqReader::open(bytes.clone().into()).unwrap();
            let groups = r.prune_row_groups(&[RangePredicate {
                column: 0,
                op: columnar::kernels::cmp::CmpOp::Eq,
                value: Scalar::Int64(100_000),
            }]);
            groups
                .into_iter()
                .map(|rg| r.read_row_group(rg, Some(&[0])).unwrap().num_rows())
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(15);
    targets = bench_parq
}
criterion_main!(benches);
