//! Criterion micro-benchmarks for the columnar compute kernels — the hot
//! path of both the engine's workers and the OCS embedded executor.

use columnar::agg::AggFunc;
use columnar::kernels::{arith, cmp, selection};
use columnar::prelude::*;
use columnar::sort::{top_n, SortKey};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::sync::Arc;

fn batch(n: usize) -> RecordBatch {
    let schema = Arc::new(Schema::new(vec![
        Field::new("id", DataType::Int64, false),
        Field::new("v", DataType::Float64, false),
    ]));
    RecordBatch::try_new(
        schema,
        vec![
            Arc::new(Array::from_i64((0..n as i64).map(|i| i % 97).collect())),
            Arc::new(Array::from_f64(
                (0..n).map(|i| (i as f64 * 0.37) % 100.0).collect(),
            )),
        ],
    )
    .unwrap()
}

fn bench_kernels(c: &mut Criterion) {
    let n = 1 << 16;
    let b = batch(n);
    let mut g = c.benchmark_group("kernels");
    g.throughput(Throughput::Elements(n as u64));

    g.bench_function(BenchmarkId::new("filter_gt", n), |bench| {
        let col = b.column(1);
        bench.iter(|| {
            let mask = cmp::gt_scalar(col, &Scalar::Float64(50.0)).unwrap();
            selection::filter_batch(&b, &mask).unwrap()
        })
    });

    g.bench_function(BenchmarkId::new("between", n), |bench| {
        let col = b.column(1);
        bench.iter(|| cmp::between_scalar(col, &Scalar::Float64(10.0), &Scalar::Float64(60.0)))
    });

    g.bench_function(BenchmarkId::new("arith_mod_div", n), |bench| {
        let col = b.column(0);
        bench.iter(|| {
            let m = arith::arith_scalar(col, &Scalar::Int64(50), arith::ArithOp::Mod).unwrap();
            arith::arith_scalar(&m, &Scalar::Int64(7), arith::ArithOp::Div).unwrap()
        })
    });

    g.bench_function(BenchmarkId::new("hash_agg", n), |bench| {
        bench.iter(|| {
            let mut agg = dsq::exec::operators::HashAggregator::new(
                vec![(
                    dsq::expr::ScalarExpr::col(0, "id", DataType::Int64),
                    "id".into(),
                )],
                vec![dsq::expr::AggregateCall {
                    func: AggFunc::Sum,
                    arg: Some(dsq::expr::ScalarExpr::col(1, "v", DataType::Float64)),
                    output_name: "s".into(),
                }],
            )
            .unwrap();
            agg.update(&b, &netsim::CostParams::default()).unwrap();
            agg.finish().unwrap()
        })
    });

    g.bench_function(BenchmarkId::new("top_100", n), |bench| {
        bench.iter(|| top_n(&b, &[SortKey::asc(1)], 100).unwrap())
    });

    g.bench_function(BenchmarkId::new("ipc_roundtrip", n), |bench| {
        bench.iter(|| {
            let bytes = columnar::ipc::encode_batch(&b);
            columnar::ipc::decode_batch(&bytes).unwrap()
        })
    });

    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_kernels
}
criterion_main!(benches);
