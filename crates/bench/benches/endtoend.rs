//! Criterion end-to-end micro-runs: one full query execution per
//! iteration, per access path — measuring the *wall-clock* cost of the
//! reproduction itself (the simulated times are the figures' currency;
//! this keeps the harness honest about its own speed).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use lzcodec::CodecKind;
use ocs_bench::{build_stack, run_as, DatasetSelection, Scale};
use workloads::queries;

fn bench_endtoend(c: &mut Criterion) {
    let stack = build_stack(Scale::Small, CodecKind::None, DatasetSelection::all(), None);
    let mut g = c.benchmark_group("endtoend");
    g.sample_size(10);

    for (table, sql, key) in [
        ("laghos", queries::LAGHOS, "laghos"),
        ("deepwater", queries::DEEPWATER, "deepwater"),
        ("lineitem", queries::TPCH_Q1, "tpch_q1"),
    ] {
        for connector in ["raw", "hive", "pd-all"] {
            g.bench_function(BenchmarkId::new(key, connector), |b| {
                b.iter(|| run_as(&stack, table, connector, sql))
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_endtoend);
criterion_main!(benches);
