//! Table 3: breakdown of execution time for a single query over one
//! Laghos file with full pushdown — quantifying the connector's own
//! overhead (plan traversal + Substrait IR generation must stay ~2 %).
//!
//! ```sh
//! cargo run --release -p ocs-bench --bin table3
//! ```

use std::fmt::Write;
use std::sync::Arc;

use dsq::EngineBuilder;
use lzcodec::CodecKind;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, PushdownPolicy};
use workloads::{queries, LaghosConfig, TableLoader};

fn main() {
    // Exactly one file, as in the paper's Table 3 setup.
    let engine = EngineBuilder::new().build();
    let store = Arc::new(ObjectStore::new());
    {
        let mut loader = TableLoader::new(&store, engine.metastore());
        loader.codec = CodecKind::None;
        workloads::laghos::load(
            &loader,
            &LaghosConfig {
                files: 1,
                // The paper's Table 3 uses one full Laghos file (4,194,304
                // rows); match it so the fixed coordinator costs carry
                // their paper-scale share.
                rows_per_file: 4 * 1024 * 1024,
                ..Default::default()
            },
        );
    }
    register_ocs_stack(&engine, store, PushdownPolicy::all());
    let r = engine.execute(queries::LAGHOS).expect("laghos query");

    let mut out = String::new();
    writeln!(
        out,
        "## Table 3 — breakdown of execution time (single Laghos file, full pushdown)\n"
    )
    .unwrap();
    writeln!(
        out,
        "{:<32} {:>12} {:>9}",
        "Execution Stage", "Time (ms)", "Share"
    )
    .unwrap();
    for (label, secs, share) in r.ledger.breakdown() {
        writeln!(out, "{label:<32} {:>12.2} {share:>8.2} %", secs * 1000.0).unwrap();
    }
    writeln!(
        out,
        "{:<32} {:>12.2} {:>8.2} %",
        "Total",
        r.simulated_seconds * 1000.0,
        100.0
    )
    .unwrap();

    let plan_share = r
        .ledger
        .breakdown()
        .iter()
        .find(|(l, ..)| l == "Logical Plan Analysis")
        .map(|(_, _, s)| *s)
        .unwrap_or(0.0);
    let ir_share = r
        .ledger
        .breakdown()
        .iter()
        .find(|(l, ..)| l == "Substrait IR Generation")
        .map(|(_, _, s)| *s)
        .unwrap_or(0.0);
    writeln!(
        out,
        "\nconnector overhead (plan analysis + IR generation): {:.2} % \
         (paper: 0.06 % + 1.94 % = 2.00 %)",
        plan_share + ir_share
    )
    .unwrap();
    writeln!(
        out,
        "paper rows: plan analysis 1 ms (0.06 %), IR generation 33 ms (1.94 %), \
         pushdown & transfer 682 ms (40.1 %), post-scan 814 ms (47.9 %), others 169 ms (10 %)"
    )
    .unwrap();
    assert!(
        plan_share + ir_share < 10.0,
        "connector overhead must stay marginal"
    );
    ocs_bench::emit_report("table3", &out);
}
