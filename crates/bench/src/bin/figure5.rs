//! Figure 5: execution time and data movement as pushdown is applied
//! progressively to the SQL operators of each workload, in execution
//! order.
//!
//! ```sh
//! cargo run --release -p ocs-bench --bin figure5 [laghos|deepwater|tpch|all]
//! ```

use lzcodec::CodecKind;
use netsim::meter::human_bytes;
use ocs_bench::{build_stack, run_as, DatasetSelection, Measurement, Scale};
use workloads::queries;

struct WorkloadSpec {
    key: &'static str,
    table: &'static str,
    sql: &'static str,
    title: &'static str,
    paper: &'static str,
}

const WORKLOADS: [WorkloadSpec; 3] = [
    WorkloadSpec {
        key: "laghos",
        table: "laghos",
        sql: queries::LAGHOS,
        title: "Figure 5(a) — Laghos",
        paper: "paper: none 2710 s / filter 1015 s / +agg 828 s / all 450 s; \
                movement 24 GB → 5.1 GB → 0.75 GB → 0.5 MB; all vs filter = 2.25x",
    },
    WorkloadSpec {
        key: "deepwater",
        table: "deepwater",
        sql: queries::DEEPWATER,
        title: "Figure 5(b) — Deep Water Impact",
        paper: "paper: none 1033 s / filter 441 s / +proj 472 s (-7%) / +agg 335 s (1.32x); \
                movement 30 GB → 5.37 GB → 5.37 GB → 1 MB",
    },
    WorkloadSpec {
        key: "tpch",
        table: "lineitem",
        sql: queries::TPCH_Q1,
        title: "Figure 5(c) — TPC-H Q1",
        paper:
            "paper: none 11 s / filter 9 s (1.22x) / +proj 13.9 s (-55%) / +agg 2.21 s (4.07x); \
                movement 194 MB → 192 MB → 192 MB → 0.5 MB",
    },
];

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "all".into());
    let scale = Scale::from_env();
    let mut full_report = String::new();

    for w in WORKLOADS.iter() {
        if which != "all" && which != w.key {
            continue;
        }
        let stack = build_stack(
            scale,
            CodecKind::None,
            DatasetSelection::only(w.table),
            None,
        );
        let (_, stored, uncompressed, rows) = &stack.datasets[0];
        let mut measurements = Vec::new();

        // Progressive configurations, in the paper's order. "none" is the
        // raw connector (whole objects over the wire); the rest are OCS
        // pushdown depths.
        let configs: Vec<(&str, &str)> = vec![
            ("none (raw)", "raw"),
            ("filter", "pd-filter"),
            ("filter+proj", "pd-filter-proj"),
            ("filter+proj+agg", "pd-filter-proj-agg"),
            ("all operators", "pd-all"),
        ];
        let mut expect_rows = None;
        for (label, connector) in configs {
            let r = run_as(&stack, w.table, connector, w.sql);
            match expect_rows {
                None => expect_rows = Some(r.batch.num_rows()),
                Some(n) => assert_eq!(r.batch.num_rows(), n, "results must agree"),
            }
            measurements.push(Measurement::of(label, &r));
        }

        let mut section = format!(
            "{}\ndataset: {} rows, {} stored ({} uncompressed), scale {:?}\n",
            w.title,
            rows,
            human_bytes(*stored),
            human_bytes(*uncompressed),
            scale
        );
        section.push_str(&ocs_bench::render_sweep(w.title, &measurements, "filter"));
        section.push_str(&format!("{}\n\n", w.paper));
        print!("{section}");
        full_report.push_str(&section);
    }
    ocs_bench::emit_report("figure5", &full_report);
}
