//! Calibration helper: dump the per-phase ledger for every configuration
//! of every workload, so the cost-model constants can be tuned against the
//! paper's ratios. Not one of the paper's artifacts, but kept as a
//! first-class tool (EXPERIMENTS.md documents the calibration workflow).

use lzcodec::CodecKind;
use netsim::meter::human_bytes;
use ocs_bench::{build_stack, run_as, DatasetSelection, Scale};
use workloads::queries;

fn main() {
    let scale = Scale::from_env();
    for (table, sql) in [
        ("laghos", queries::LAGHOS),
        ("deepwater", queries::DEEPWATER),
        ("lineitem", queries::TPCH_Q1),
    ] {
        let stack = build_stack(scale, CodecKind::None, DatasetSelection::only(table), None);
        println!("\n================ {table} ================");
        for connector in [
            "raw",
            "hive",
            "pd-filter",
            "pd-filter-proj",
            "pd-filter-proj-agg",
            "pd-all",
        ] {
            let r = run_as(&stack, table, connector, sql);
            println!(
                "\n--- {connector}: total {:.4} s, moved {}, chain {}",
                r.simulated_seconds,
                human_bytes(r.moved_bytes),
                r.chain
            );
            for (label, secs, share) in r.ledger.breakdown() {
                println!("    {label:<30} {secs:>9.4} s {share:>6.1} %");
            }
        }
    }
}
