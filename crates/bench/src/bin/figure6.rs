//! Figure 6: impact of compression algorithms on pushdown performance —
//! the Deep Water dataset re-encoded under None/Snappy/GZip/Zstd, each
//! queried with filter-only vs all-operator pushdown.
//!
//! ```sh
//! cargo run --release -p ocs-bench --bin figure6
//! ```

use lzcodec::CodecKind;
use netsim::meter::human_bytes;
use ocs_bench::{build_stack, run_as, DatasetSelection, Scale};
use std::fmt::Write;
use workloads::queries;

fn main() {
    let scale = Scale::from_env();
    let mut out = String::new();
    writeln!(out, "## Figure 6 — compression x pushdown (Deep Water)").unwrap();
    writeln!(
        out,
        "{:<8} {:>12} {:>8} {:>14} {:>14} {:>9} {:>14}",
        "codec", "stored", "ratio", "filter-only", "all-ops", "speedup", "moved (f.o.)"
    )
    .unwrap();

    let mut rows_check = None;
    let mut prev_filter_time = f64::INFINITY;
    let mut uncompressed_all_ops = None;
    for codec in CodecKind::ALL {
        let stack = build_stack(scale, codec, DatasetSelection::only("deepwater"), None);
        let (_, stored, uncompressed, _) = stack.datasets[0].clone();

        let filter_only = run_as(&stack, "deepwater", "pd-filter", queries::DEEPWATER);
        let all_ops = run_as(&stack, "deepwater", "pd-all", queries::DEEPWATER);
        match rows_check {
            None => rows_check = Some(all_ops.batch.num_rows()),
            Some(n) => assert_eq!(all_ops.batch.num_rows(), n),
        }
        assert_eq!(filter_only.batch.num_rows(), all_ops.batch.num_rows());
        if codec == CodecKind::None {
            uncompressed_all_ops = Some(all_ops.simulated_seconds);
        }

        writeln!(
            out,
            "{:<8} {:>12} {:>7.2}x {:>11.3} s {:>11.3} s {:>8.2}x {:>14}",
            codec.name(),
            human_bytes(stored),
            uncompressed as f64 / stored as f64,
            filter_only.simulated_seconds,
            all_ops.simulated_seconds,
            filter_only.simulated_seconds / all_ops.simulated_seconds,
            human_bytes(filter_only.moved_bytes),
        )
        .unwrap();

        // The paper's orderings, asserted as we go:
        assert!(
            all_ops.simulated_seconds < filter_only.simulated_seconds,
            "{codec}: all-ops must beat filter-only"
        );
        if codec != CodecKind::None {
            // Stronger codecs should not materially regress filter-only
            // (the paper reports monotone improvement; we allow 10 % slack
            // for codec-specific decompression costs).
            assert!(
                filter_only.simulated_seconds < prev_filter_time * 1.10,
                "{codec}: filter-only regressed: {} after {}",
                filter_only.simulated_seconds,
                prev_filter_time
            );
        }
        prev_filter_time = filter_only.simulated_seconds;
        // Zstd filter-only vs uncompressed all-ops — the paper's
        // "compression + basic pushdown can beat advanced pushdown alone".
        if codec == CodecKind::Zst {
            if let Some(u) = uncompressed_all_ops {
                writeln!(
                    out,
                    "\nZstd filter-only ({:.3} s) vs uncompressed all-ops ({:.3} s): {}",
                    filter_only.simulated_seconds,
                    u,
                    if filter_only.simulated_seconds < u {
                        "compression + basic pushdown wins (paper: 451.7 s vs 530.4 s)"
                    } else {
                        "advanced pushdown wins at this scale"
                    }
                )
                .unwrap();
            }
        }
    }
    writeln!(
        out,
        "\npaper: none 649.3/530.4 s (1.22x), Snappy 1.37x, GZip 1.39x, Zstd 451.7/331.6 s (1.36x)"
    )
    .unwrap();
    ocs_bench::emit_report("figure6", &out);
}
