//! Table 2: the three queries, their measured selectivity (result bytes /
//! input bytes) and their Presto logical execution plans.
//!
//! ```sh
//! cargo run --release -p ocs-bench --bin table2
//! ```

use lzcodec::CodecKind;
use ocs_bench::{build_stack, run_as, DatasetSelection, Scale};
use std::fmt::Write;
use workloads::queries;

fn main() {
    let scale = Scale::from_env();
    let stack = build_stack(scale, CodecKind::None, DatasetSelection::all(), None);
    let mut out = String::new();
    writeln!(out, "## Table 2 — queries, selectivity, execution plans\n").unwrap();

    let paper_selectivity = [0.002_384_2, 0.000_003_2, 0.000_066_7]; // percent
    for (i, (name, sql, expected_chain)) in queries::TABLE2.iter().enumerate() {
        let table = match *name {
            "Laghos" => "laghos",
            "Deep Water" => "deepwater",
            _ => "lineitem",
        };
        // Plan shape from the engine's analyzer + global optimizer
        // (pre-pushdown), matching the paper's Table 2 plans.
        stack
            .engine
            .metastore()
            .rebind_connector(table, "raw")
            .unwrap();
        let (_, plan) = stack.engine.plan(sql).expect(name);
        assert_eq!(
            plan.chain_description(),
            *expected_chain,
            "{name} plan shape"
        );

        // Selectivity: result payload bytes / dataset bytes.
        let r = run_as(&stack, table, "pd-all", sql);
        let input_bytes = stack
            .datasets
            .iter()
            .find(|(t, ..)| t == table)
            .map(|(_, _, unc, _)| *unc)
            .unwrap();
        let result_bytes = r.batch.byte_size() as u64;
        let selectivity = result_bytes as f64 / input_bytes as f64 * 100.0;

        writeln!(out, "### {name}").unwrap();
        writeln!(out, "query: {sql}").unwrap();
        writeln!(out, "plan : {}", plan.chain_description()).unwrap();
        writeln!(
            out,
            "selectivity: {selectivity:.7} %  (result {} B of input {} B; paper: {:.7} %)",
            result_bytes, input_bytes, paper_selectivity[i]
        )
        .unwrap();
        writeln!(out, "result rows: {}\n", r.batch.num_rows()).unwrap();
    }
    ocs_bench::emit_report("table2", &out);
}
