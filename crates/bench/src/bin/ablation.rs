//! Ablation studies for the design choices DESIGN.md calls out:
//!
//! 1. **cost-aware projection guard** — with `max_project_weight` set, the
//!    Selectivity Analyzer declines the harmful projection pushdown the
//!    paper observed (Deep Water −7 %, TPC-H −55 %). Under the streamed
//!    batch boundary the penalty is workload-dependent: TPC-H's heavy
//!    expression projection still loses (weak storage cores on the
//!    critical path), while Deep Water's milder projection now *hides*
//!    inside the pipeline and pushing it wins — both directions are
//!    asserted;
//! 2. **symmetric cluster** — give the storage node the compute node's
//!    resources and the projection penalty disappears, confirming the
//!    effect comes from the resource asymmetry, not the mechanism;
//! 3. **selectivity threshold sweep** — how the filter-pushdown decision
//!    responds to the threshold, including the skewed-data failure mode
//!    the paper flags for its normal-distribution assumption.
//!
//! ```sh
//! cargo run --release -p ocs-bench --bin ablation
//! ```

use std::fmt::Write;
use std::sync::Arc;

use lzcodec::CodecKind;
use netsim::ClusterSpec;
use ocs_bench::{build_stack, run_as, DatasetSelection, Scale};
use ocs_connector::{OcsConnector, PushdownPolicy};
use workloads::queries;

fn main() {
    let scale = Scale::from_env();
    let mut out = String::new();

    // ---- 1. Cost-aware projection guard --------------------------------
    writeln!(out, "## Ablation 1 — cost-aware projection guard").unwrap();
    writeln!(
        out,
        "{:<12} {:<18} {:>12} {:>30}",
        "workload", "policy", "sim time", "pushed ops"
    )
    .unwrap();
    for (table, sql) in [
        ("deepwater", queries::DEEPWATER),
        ("lineitem", queries::TPCH_Q1),
    ] {
        let stack = build_stack(scale, CodecKind::None, DatasetSelection::only(table), None);
        // Blind filter+project vs cost-aware (projection declined above
        // weight 4: both workload projections involve division/multiplying
        // several columns, well above it).
        stack.engine.register_connector(Arc::new(OcsConnector::new(
            "cost-aware",
            ocs_for(&stack),
            stack.engine.cluster().clone(),
            stack.engine.cost_params().clone(),
            PushdownPolicy {
                max_project_weight: 4,
                ..PushdownPolicy::filter_project()
            },
        )));
        let blind = run_as(&stack, table, "pd-filter-proj", sql);
        let aware = run_as(&stack, table, "cost-aware", sql);
        writeln!(
            out,
            "{:<12} {:<18} {:>10.3} s {:>30}",
            table,
            "blind f+proj",
            blind.simulated_seconds,
            handle_of(&blind)
        )
        .unwrap();
        writeln!(
            out,
            "{:<12} {:<18} {:>10.3} s {:>30}",
            table,
            "cost-aware",
            aware.simulated_seconds,
            handle_of(&aware)
        )
        .unwrap();
        if table == "lineitem" {
            // TPC-H's expression projection stays harmful: the weight
            // guard must win by declining it.
            assert!(
                aware.simulated_seconds <= blind.simulated_seconds + 1e-9,
                "declining the TPC-H projection must not be slower"
            );
        } else {
            // Deep Water flips under the streamed boundary: the milder
            // projection overlaps with the engine's serial per-split
            // aggregation chain, so pushing it is now the faster plan and
            // the weight-only guard is measurably conservative here.
            assert!(
                blind.simulated_seconds <= aware.simulated_seconds + 1e-9,
                "streamed Deep Water projection pushdown must not be slower"
            );
        }
        assert_eq!(aware.batch.num_rows(), blind.batch.num_rows());
    }
    writeln!(
        out,
        "(TPC-H's heavy projection still loses on the weak storage node; Deep \
         Water's milder projection now hides inside the streamed pipeline, so \
         the weight-only guard is conservative there)"
    )
    .unwrap();
    writeln!(out).unwrap();

    // ---- 2. Symmetric cluster -------------------------------------------
    writeln!(
        out,
        "## Ablation 2 — projection penalty vs cluster asymmetry"
    )
    .unwrap();
    writeln!(
        out,
        "{:<22} {:>14} {:>14} {:>12} {:>12}",
        "cluster", "filter-only", "filter+proj", "streamed", "additive"
    )
    .unwrap();
    for (name, cluster) in [
        ("paper (16c storage)", None),
        ("symmetric (64c)", Some(ClusterSpec::symmetric_testbed())),
    ] {
        let stack = build_stack(
            scale,
            CodecKind::None,
            DatasetSelection::only("lineitem"),
            cluster,
        );
        let f = run_as(&stack, "lineitem", "pd-filter", queries::TPCH_Q1);
        let fp = run_as(&stack, "lineitem", "pd-filter-proj", queries::TPCH_Q1);
        let streamed = (fp.simulated_seconds / f.simulated_seconds - 1.0) * 100.0;
        let additive = (fp.pipeline.additive_s / f.pipeline.additive_s - 1.0) * 100.0;
        writeln!(
            out,
            "{:<22} {:>12.3} s {:>12.3} s {:>10.1} % {:>10.1} %",
            name, f.simulated_seconds, fp.simulated_seconds, streamed, additive
        )
        .unwrap();
    }
    writeln!(
        out,
        "(under the paper's additive stage barriers the penalty is dominated by \
         the weak storage node's expression evaluation and shrinks on a \
         symmetric cluster; the streamed pipeline hides most of that CPU time, \
         leaving the residual penalty of the *wider computed columns* crossing \
         the wire, which no amount of storage CPU removes)\n"
    )
    .unwrap();

    // ---- 3. Selectivity threshold sweep ---------------------------------
    writeln!(out, "## Ablation 3 — selectivity threshold").unwrap();
    writeln!(
        out,
        "{:<12} {:>10} {:>14} {:>24}",
        "threshold", "time", "moved", "filter pushed?"
    )
    .unwrap();
    let stack = build_stack(
        scale,
        CodecKind::None,
        DatasetSelection::only("laghos"),
        None,
    );
    for threshold in [0.05, 0.1, 0.25, 0.5, 1.0] {
        let name = format!("thr-{threshold}");
        stack.engine.register_connector(Arc::new(OcsConnector::new(
            name.clone(),
            ocs_for(&stack),
            stack.engine.cluster().clone(),
            stack.engine.cost_params().clone(),
            PushdownPolicy {
                selectivity_threshold: threshold,
                ..PushdownPolicy::filter_only()
            },
        )));
        let r = run_as(&stack, "laghos", &name, queries::LAGHOS);
        let pushed = r.optimized_plan.contains("pushed=[Filter");
        writeln!(
            out,
            "{:<12} {:>8.3} s {:>14} {:>24}",
            threshold,
            r.simulated_seconds,
            netsim::meter::human_bytes(r.moved_bytes),
            if pushed { "yes" } else { "no (kept at engine)" }
        )
        .unwrap();
    }
    writeln!(
        out,
        "(the Laghos box filter actually keeps 0.216 of rows, but the paper's \
         normal-distribution assumption over-estimates it at ~0.46 — exactly the \
         skew sensitivity the paper flags; thresholds below the estimate decline \
         the pushdown)"
    )
    .unwrap();

    ocs_bench::emit_report("ablation", &out);
}

/// The shared OCS deployment behind a stack (rebuilt cheaply — it only
/// wraps the store).
fn ocs_for(stack: &ocs_bench::BenchStack) -> Arc<ocs::Ocs> {
    Arc::new(ocs::Ocs::new(
        stack.store.clone(),
        ocs::OcsConfig {
            storage_node: stack.engine.cluster().storage.clone(),
            storage_disk: stack.engine.cluster().storage_disk,
            frontend_node: stack.engine.cluster().frontend.clone(),
            cost: stack.engine.cost_params().clone(),
            storage_nodes: 1,
            frame_window: ocs::DEFAULT_FRAME_WINDOW,
            // Ablation rows must reflect the cold pushdown path, not a
            // warm cache.
            row_group_cache_bytes: 0,
            result_cache_bytes: 0,
        },
    ))
}

fn handle_of(r: &dsq::QueryResult) -> String {
    r.optimized_plan
        .lines()
        .find(|l| l.contains("TableScan"))
        .and_then(|l| l.split("pushed=").nth(1))
        .map(|s| format!("pushed={s}"))
        .unwrap_or_else(|| "column projection only".into())
}
