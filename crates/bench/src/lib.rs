//! `ocs-bench` — the experiment harness that regenerates every table and
//! figure of the paper.
//!
//! Binaries (run with `cargo run --release -p ocs-bench --bin <name>`):
//!
//! * `table2`  — the three queries, measured selectivity, plan chains;
//! * `figure5` — progressive pushdown sweep per workload (time + movement);
//! * `figure6` — compression × pushdown matrix on Deep Water;
//! * `table3`  — per-phase breakdown of a single-file full-pushdown query;
//! * `ablation` — cost-aware policy, symmetric-cluster, and
//!   selectivity-threshold studies (the design choices DESIGN.md calls
//!   out).
//!
//! Scale is controlled by `REPRO_SCALE` (`small` | `medium` | `large`,
//! default `medium`). All results are *simulated seconds* under the
//! paper-testbed cost model; ratios are the comparison currency (see
//! EXPERIMENTS.md).

use std::sync::Arc;

use dsq::{Engine, EngineBuilder, QueryResult};
use lzcodec::CodecKind;
use netsim::meter::human_bytes;
use netsim::ClusterSpec;
use objstore::ObjectStore;
use ocs_connector::{register_ocs_stack, OcsConnector, PushdownPolicy};
use workloads::{DeepWaterConfig, LaghosConfig, TableLoader, TpchConfig};

/// Dataset scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Tiny (CI-sized).
    Small,
    /// Default bench scale.
    Medium,
    /// Larger runs for smoother ratios.
    Large,
}

impl Scale {
    /// Read from `REPRO_SCALE`.
    pub fn from_env() -> Scale {
        match std::env::var("REPRO_SCALE").as_deref() {
            Ok("small") => Scale::Small,
            Ok("large") => Scale::Large,
            _ => Scale::Medium,
        }
    }

    /// (files, rows_per_file) for Laghos. Per-file row counts stay within
    /// ~4x of the paper's 4.19 M so fixed per-split costs (IR generation,
    /// scheduling) keep their paper-scale *share* of the total.
    pub fn laghos(&self) -> (usize, usize) {
        match self {
            Scale::Small => (4, 64 * 1024),
            Scale::Medium => (8, 1024 * 1024),
            Scale::Large => (16, 2 * 1024 * 1024),
        }
    }

    /// (files, rows_per_file) for Deep Water. Few large splits: the
    /// dataset's query is a full-table aggregation, and the paper's
    /// Figure 6 contrast (engine-side aggregation of a streamed split is
    /// slower than in-storage aggregation) needs each engine driver's
    /// serial per-split chain to be the visible bottleneck rather than
    /// hiding entirely under the shared storage disk.
    pub fn deepwater(&self) -> (usize, usize) {
        match self {
            Scale::Small => (2, 128 * 1024),
            Scale::Medium => (4, 4 * 1024 * 1024),
            Scale::Large => (4, 16 * 1024 * 1024),
        }
    }

    /// (files, rows_per_file) for TPC-H lineitem.
    pub fn tpch(&self) -> (usize, usize) {
        match self {
            Scale::Small => (4, 32 * 1024),
            Scale::Medium => (4, 1024 * 1024),
            Scale::Large => (8, 2 * 1024 * 1024),
        }
    }
}

/// Named pushdown depths, in the paper's progressive order.
pub fn depth_connectors() -> Vec<(&'static str, PushdownPolicy)> {
    vec![
        ("pd-filter", PushdownPolicy::filter_only()),
        ("pd-filter-proj", PushdownPolicy::filter_project()),
        (
            "pd-filter-proj-agg",
            PushdownPolicy::filter_project_aggregate(),
        ),
        ("pd-all", PushdownPolicy::all()),
    ]
}

/// A ready-to-measure stack.
pub struct BenchStack {
    /// The engine with every connector registered.
    pub engine: Engine,
    /// The shared object store.
    pub store: Arc<ObjectStore>,
    /// Loaded datasets: (table, stored bytes, uncompressed bytes, rows).
    pub datasets: Vec<(String, u64, u64, u64)>,
}

/// Which datasets to load.
#[derive(Debug, Clone, Copy)]
pub struct DatasetSelection {
    /// Load Laghos.
    pub laghos: bool,
    /// Load Deep Water.
    pub deepwater: bool,
    /// Load TPC-H lineitem.
    pub tpch: bool,
}

impl DatasetSelection {
    /// Everything.
    pub fn all() -> Self {
        DatasetSelection {
            laghos: true,
            deepwater: true,
            tpch: true,
        }
    }

    /// A single named dataset.
    pub fn only(name: &str) -> Self {
        DatasetSelection {
            laghos: name == "laghos",
            deepwater: name == "deepwater",
            tpch: name == "tpch" || name == "lineitem",
        }
    }
}

/// Build a stack at `scale` with datasets stored under `codec`, and
/// pushdown-depth connectors registered (`pd-filter` … `pd-all`), plus the
/// standard `raw` / `hive` / `ocs` trio.
pub fn build_stack(
    scale: Scale,
    codec: CodecKind,
    select: DatasetSelection,
    cluster: Option<ClusterSpec>,
) -> BenchStack {
    let mut builder = EngineBuilder::new();
    if let Some(c) = cluster {
        builder = builder.cluster(c);
    }
    let engine = builder.build();
    let store = Arc::new(ObjectStore::new());
    let mut datasets = Vec::new();
    {
        let mut loader = TableLoader::new(&store, engine.metastore());
        loader.codec = codec;
        if select.laghos {
            let (files, rows) = scale.laghos();
            let d = workloads::laghos::load(
                &loader,
                &LaghosConfig {
                    files,
                    rows_per_file: rows,
                    ..Default::default()
                },
            );
            datasets.push((d.table, d.total_bytes, d.uncompressed_bytes, d.total_rows));
        }
        if select.deepwater {
            let (files, rows) = scale.deepwater();
            let d = workloads::deepwater::load(
                &loader,
                &DeepWaterConfig {
                    files,
                    rows_per_file: rows,
                    ..Default::default()
                },
            );
            datasets.push((d.table, d.total_bytes, d.uncompressed_bytes, d.total_rows));
        }
        if select.tpch {
            let (files, rows) = scale.tpch();
            let d = workloads::tpch::load(
                &loader,
                &TpchConfig {
                    files,
                    rows_per_file: rows,
                    ..Default::default()
                },
            );
            datasets.push((d.table, d.total_bytes, d.uncompressed_bytes, d.total_rows));
        }
    }
    let ocs = register_ocs_stack(&engine, store.clone(), PushdownPolicy::all());
    for (name, policy) in depth_connectors() {
        engine.register_connector(Arc::new(OcsConnector::new(
            name,
            ocs.clone(),
            engine.cluster().clone(),
            engine.cost_params().clone(),
            policy,
        )));
    }
    BenchStack {
        engine,
        store,
        datasets,
    }
}

/// Execute `sql` with `table` bound to `connector`.
pub fn run_as(stack: &BenchStack, table: &str, connector: &str, sql: &str) -> QueryResult {
    stack
        .engine
        .metastore()
        .rebind_connector(table, connector)
        .expect("table registered");
    stack
        .engine
        .execute(sql)
        .unwrap_or_else(|e| panic!("{table} via {connector}: {e}"))
}

/// One measured configuration row.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// Configuration label (x-axis of the figure).
    pub label: String,
    /// Simulated seconds.
    pub seconds: f64,
    /// Bytes moved storage → compute.
    pub moved_bytes: u64,
    /// Result rows.
    pub rows: u64,
    /// Residual engine chain.
    pub chain: String,
}

impl Measurement {
    /// Capture from a query result.
    pub fn of(label: impl Into<String>, r: &QueryResult) -> Measurement {
        Measurement {
            label: label.into(),
            seconds: r.simulated_seconds,
            moved_bytes: r.moved_bytes,
            rows: r.batch.num_rows() as u64,
            chain: r.chain.clone(),
        }
    }
}

/// Render a Figure-5-style table: time + movement per configuration, with
/// a speedup column relative to `baseline_label`.
pub fn render_sweep(title: &str, rows: &[Measurement], baseline_label: &str) -> String {
    use std::fmt::Write;
    let mut out = String::new();
    let baseline = rows
        .iter()
        .find(|m| m.label == baseline_label)
        .map(|m| m.seconds);
    writeln!(out, "## {title}").unwrap();
    writeln!(
        out,
        "{:<22} {:>12} {:>10} {:>14} {:>8}  residual plan",
        "config", "sim time", "vs-filter", "data moved", "rows"
    )
    .unwrap();
    for m in rows {
        let speedup = baseline
            .map(|b| format!("{:>9.2}x", b / m.seconds))
            .unwrap_or_else(|| "      n/a".into());
        writeln!(
            out,
            "{:<22} {:>10.3} s {speedup} {:>14} {:>8}  {}",
            m.label,
            m.seconds,
            human_bytes(m.moved_bytes),
            m.rows,
            m.chain
        )
        .unwrap();
    }
    out
}

/// Record one acceptance-gate ratio into `BENCH_RESULTS.json` at the
/// workspace root. Merge-on-write: each gate bench rewrites only its own
/// entry, so running a single bench never clobbers the others' numbers.
/// Best-effort — an unwritable tree must never fail a gate that passed.
pub fn record_gate(name: &str, ratio: f64) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_RESULTS.json");
    let mut gates: std::collections::BTreeMap<String, f64> = std::collections::BTreeMap::new();
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(json) = obs::chrome::parse_json(&text) {
            if let Some(obs::chrome::Json::Obj(fields)) = json.get("gates") {
                for (k, v) in fields {
                    if let Some(n) = v.as_num() {
                        gates.insert(k.clone(), n);
                    }
                }
            }
        }
    }
    gates.insert(name.to_string(), ratio);
    let mut out = String::from(
        "{\n  \"note\": \"acceptance-gate ratios recorded by the criterion gate \
         benches (cargo bench -- --test regenerates)\",\n  \"gates\": {\n",
    );
    let mut first = true;
    for (k, v) in &gates {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(&format!("    \"{k}\": {v:.6}"));
    }
    out.push_str("\n  }\n}\n");
    if std::fs::write(&path, out).is_err() {
        eprintln!("record_gate: could not write {}", path.display());
    }
}

/// Write a report under `results/` (best-effort) and echo it to stdout.
pub fn emit_report(name: &str, content: &str) {
    println!("{content}");
    let dir = std::path::Path::new("results");
    if std::fs::create_dir_all(dir).is_ok() {
        let path = dir.join(format!("{name}.txt"));
        if std::fs::write(&path, content).is_ok() {
            println!("(written to {})", path.display());
        }
    }
}
