//! Re-export of the shared cost model.
//!
//! [`CostParams`] lives in `netsim` so the OCS embedded engine and this
//! engine bill identical work for identical operators — the paper's
//! premise that pushdown moves *where* work runs, not *how much* of it
//! there is.

pub use netsim::cost::CostParams;
