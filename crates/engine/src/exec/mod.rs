//! Physical execution: split-parallel leaf pipelines feeding a final
//! single-stream stage (Presto's partial/final operator model), with every
//! unit of work billed to the `netsim` cost model.

pub mod operators;

use std::collections::HashMap;
use std::sync::Arc;

use columnar::prelude::*;
use netsim::{makespan, ClusterSpec, Ledger, Phase, Work};
use rayon::prelude::*;

use crate::catalog::Metastore;
use crate::cost::CostParams;
use crate::error::{EResult, EngineError};
use crate::plan::LogicalPlan;
use crate::spi::Connector;
use operators::{run_filter, run_limit, run_project, run_sort, run_topn, HashAggregator};

/// Everything a finished query reports back.
#[derive(Debug)]
pub struct ExecutionOutcome {
    /// The plan's output rows (pre client output-projection).
    pub batch: RecordBatch,
    /// Simulated time, bucketed by phase.
    pub ledger: Ledger,
    /// Bytes moved storage → compute (the paper's data-movement metric).
    pub moved_bytes: u64,
    /// Transfer requests on the link.
    pub moved_requests: u64,
    /// Number of splits executed.
    pub splits: usize,
    /// Row groups skipped by storage-side late materialization.
    pub row_groups_skipped: u64,
    /// Encoded bytes storage never decoded thanks to late materialization.
    pub decoded_bytes_avoided: u64,
}

/// Per-split partial result.
enum Partial {
    Batches(Vec<RecordBatch>),
    Agg(Box<HashAggregator>),
}

struct SplitOutput {
    partial: Partial,
    storage_cpu_s: f64,
    storage_decompress_s: f64,
    disk_bytes: u64,
    network_bytes: u64,
    network_requests: u64,
    frontend_cpu_s: f64,
    substrait_gen_s: f64,
    compute_cpu_s: f64,
    row_groups_skipped: u64,
    decoded_bytes_avoided: u64,
}

/// Execute a linear plan chain.
pub fn execute_plan(
    plan: &LogicalPlan,
    metastore: &Metastore,
    connectors: &HashMap<String, Arc<dyn Connector>>,
    cluster: &ClusterSpec,
    cost: &CostParams,
) -> EResult<ExecutionOutcome> {
    let ledger = Ledger::new();
    let scan = plan.scan().clone();
    let table = metastore.table(&scan.table)?;
    let connector = connectors
        .get(&scan.connector)
        .ok_or_else(|| {
            EngineError::Connector(format!("no connector registered as '{}'", scan.connector))
        })?
        .clone();
    let splits = connector.split_manager().splits(&table, &scan)?;
    let provider = connector.page_source_provider();

    // Coordinator overheads (Table 3's "Others").
    ledger.add(
        Phase::Other,
        cluster
            .compute
            .core_seconds(cost.query_fixed + cost.sched_per_split * splits.len() as f64),
    );

    // Collect the operator chain leaf→root (excluding the scan).
    let mut ops: Vec<&LogicalPlan> = Vec::new();
    {
        let mut cur = plan;
        while let Some(next) = cur.input() {
            ops.push(cur);
            cur = next;
        }
        ops.reverse();
    }
    // Streaming prefix (Filter/Project), then one optional blocking op,
    // then final-stage ops.
    let mut streaming: Vec<&LogicalPlan> = Vec::new();
    let mut blocking: Option<&LogicalPlan> = None;
    let mut final_ops: Vec<&LogicalPlan> = Vec::new();
    for op in ops {
        if blocking.is_some() {
            final_ops.push(op);
        } else {
            match op {
                LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => streaming.push(op),
                other => blocking = Some(other),
            }
        }
    }

    // ---- Parallel split phase ----------------------------------------
    let split_outputs: Vec<EResult<SplitOutput>> = splits
        .par_iter()
        .map(|split| -> EResult<SplitOutput> {
            let page = provider.create(split)?;
            let mut compute_work = Work::zero();
            // Engine-side deserialization of received pages is part of the
            // page-source accounting; operator work accumulates here.
            let mut batches = page.batches;
            for op in &streaming {
                let mut next = Vec::with_capacity(batches.len());
                for b in &batches {
                    let (out, work) = match op {
                        LogicalPlan::Filter { predicate, .. } => {
                            let (out, w) = run_filter(b, predicate, cost)?;
                            (out, Work::vector(w))
                        }
                        LogicalPlan::Project { exprs, .. } => {
                            let (out, w) = run_project(b, exprs, cost)?;
                            (out, Work::expr(w))
                        }
                        _ => unreachable!("streaming ops are Filter/Project"),
                    };
                    compute_work.add(work);
                    if out.num_rows() > 0 {
                        next.push(out);
                    }
                }
                batches = next;
            }
            let partial = match blocking {
                Some(LogicalPlan::Aggregate { group_by, aggs, .. }) => {
                    let mut agg = HashAggregator::new(group_by.clone(), aggs.clone())?;
                    for b in &batches {
                        agg.update(b, cost)?;
                    }
                    compute_work.add(Work::vector(agg.work));
                    agg.work = 0.0;
                    Partial::Agg(Box::new(agg))
                }
                Some(LogicalPlan::TopN { keys, limit, .. }) if !batches.is_empty() => {
                    let (out, work) = run_topn(&batches, keys, *limit, cost)?;
                    compute_work.add(Work::vector(work));
                    Partial::Batches(vec![out])
                }
                Some(LogicalPlan::Limit { limit, .. }) => {
                    Partial::Batches(run_limit(&batches, *limit)?)
                }
                // Sort (and empty-input TopN) defer to the final stage.
                _ => Partial::Batches(batches),
            };
            Ok(SplitOutput {
                partial,
                storage_cpu_s: page.storage_cpu_s,
                storage_decompress_s: page.storage_decompress_s,
                disk_bytes: page.disk_bytes,
                network_bytes: page.network_bytes,
                network_requests: page.network_requests,
                frontend_cpu_s: page.frontend_cpu_s,
                substrait_gen_s: page.substrait_gen_s,
                compute_cpu_s: page.compute_deser_s
                    + cluster.compute.core_seconds_for(compute_work),
                row_groups_skipped: page.row_groups_skipped,
                decoded_bytes_avoided: page.decoded_bytes_avoided,
            })
        })
        .collect();

    let mut outputs = Vec::with_capacity(split_outputs.len());
    for o in split_outputs {
        outputs.push(o?);
    }

    // ---- Resource billing for the split phase -------------------------
    let disk_bytes: u64 = outputs.iter().map(|o| o.disk_bytes).sum();
    let moved_bytes: u64 = outputs.iter().map(|o| o.network_bytes).sum();
    let moved_requests: u64 = outputs.iter().map(|o| o.network_requests).sum();
    let row_groups_skipped: u64 = outputs.iter().map(|o| o.row_groups_skipped).sum();
    let decoded_bytes_avoided: u64 = outputs.iter().map(|o| o.decoded_bytes_avoided).sum();
    ledger.add(
        Phase::StorageDisk,
        cluster.storage_disk.read_seconds(disk_bytes),
    );
    let decompress: Vec<f64> = outputs.iter().map(|o| o.storage_decompress_s).collect();
    ledger.add(
        Phase::StorageDecompress,
        makespan(&decompress, cluster.storage.cores),
    );
    let storage: Vec<f64> = outputs.iter().map(|o| o.storage_cpu_s).collect();
    ledger.add(Phase::StorageCpu, makespan(&storage, cluster.storage.cores));
    let frontend: Vec<f64> = outputs.iter().map(|o| o.frontend_cpu_s).collect();
    ledger.add(
        Phase::FrontendCpu,
        makespan(&frontend, cluster.frontend.cores),
    );
    let substrait: f64 = outputs.iter().map(|o| o.substrait_gen_s).sum();
    ledger.add(Phase::SubstraitGen, substrait);
    ledger.add(
        Phase::NetworkTransfer,
        cluster
            .network
            .transfer_seconds(moved_bytes, moved_requests.max(1)),
    );
    let compute: Vec<f64> = outputs.iter().map(|o| o.compute_cpu_s).collect();
    ledger.add(Phase::ComputeCpu, makespan(&compute, cluster.compute.cores));

    // ---- Final stage ---------------------------------------------------
    let mut final_work = Work::zero();
    let mut current: Vec<RecordBatch> = match blocking {
        Some(LogicalPlan::Aggregate { group_by, aggs, .. }) => {
            let mut merged = HashAggregator::new(group_by.clone(), aggs.clone())?;
            for o in outputs {
                if let Partial::Agg(agg) = o.partial {
                    let groups = agg.num_groups() as f64;
                    merged.merge(*agg)?;
                    final_work.add(Work::vector(
                        groups * cost.agg_update * aggs.len().max(1) as f64,
                    ));
                }
            }
            merged.work = 0.0;
            vec![merged.finish()?]
        }
        Some(LogicalPlan::TopN { keys, limit, .. }) => {
            let batches: Vec<RecordBatch> = outputs
                .into_iter()
                .flat_map(|o| match o.partial {
                    Partial::Batches(b) => b,
                    Partial::Agg(_) => unreachable!("topn splits produce batches"),
                })
                .collect();
            if batches.is_empty() {
                vec![]
            } else {
                let (out, work) = run_topn(&batches, keys, *limit, cost)?;
                final_work.add(Work::vector(work));
                vec![out]
            }
        }
        Some(LogicalPlan::Sort { keys, .. }) => {
            let batches: Vec<RecordBatch> = outputs
                .into_iter()
                .flat_map(|o| match o.partial {
                    Partial::Batches(b) => b,
                    Partial::Agg(_) => unreachable!("sort splits produce batches"),
                })
                .collect();
            if batches.is_empty() {
                vec![]
            } else {
                let (out, work) = run_sort(&batches, keys, cost)?;
                final_work.add(Work::vector(work));
                vec![out]
            }
        }
        Some(LogicalPlan::Limit { limit, .. }) => {
            let batches: Vec<RecordBatch> = outputs
                .into_iter()
                .flat_map(|o| match o.partial {
                    Partial::Batches(b) => b,
                    Partial::Agg(_) => unreachable!("limit splits produce batches"),
                })
                .collect();
            run_limit(&batches, *limit)?
        }
        None => outputs
            .into_iter()
            .flat_map(|o| match o.partial {
                Partial::Batches(b) => b,
                Partial::Agg(_) => unreachable!("no blocking op"),
            })
            .collect(),
        Some(other) => {
            return Err(EngineError::Execution(format!(
                "unsupported blocking operator {}",
                other.name()
            )))
        }
    };

    // Remaining ops above the blocking one (e.g. Sort after Aggregate).
    for op in final_ops {
        current = match op {
            LogicalPlan::Filter { predicate, .. } => {
                let mut next = Vec::new();
                for b in &current {
                    let (out, work) = run_filter(b, predicate, cost)?;
                    final_work.add(Work::vector(work));
                    next.push(out);
                }
                next
            }
            LogicalPlan::Project { exprs, .. } => {
                let mut next = Vec::new();
                for b in &current {
                    let (out, work) = run_project(b, exprs, cost)?;
                    final_work.add(Work::expr(work));
                    next.push(out);
                }
                next
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let mut agg = HashAggregator::new(group_by.clone(), aggs.clone())?;
                for b in &current {
                    agg.update(b, cost)?;
                }
                final_work.add(Work::vector(agg.work));
                vec![agg.finish()?]
            }
            LogicalPlan::Sort { keys, .. } => {
                if current.is_empty() {
                    vec![]
                } else {
                    let (out, work) = run_sort(&current, keys, cost)?;
                    final_work.add(Work::vector(work));
                    vec![out]
                }
            }
            LogicalPlan::TopN { keys, limit, .. } => {
                if current.is_empty() {
                    vec![]
                } else {
                    let (out, work) = run_topn(&current, keys, *limit, cost)?;
                    final_work.add(Work::vector(work));
                    vec![out]
                }
            }
            LogicalPlan::Limit { limit, .. } => run_limit(&current, *limit)?,
            LogicalPlan::TableScan(_) => {
                return Err(EngineError::Execution("scan above leaf".into()))
            }
        };
    }
    // Final stage runs on a handful of driver threads; bill one lane.
    ledger.add(
        Phase::ComputeCpu,
        cluster.compute.core_seconds_for(final_work),
    );

    let schema = plan.schema()?;
    let batch = if current.is_empty() {
        RecordBatch::empty(schema)
    } else {
        let all = RecordBatch::concat(&current)?;
        if all.schema() != &schema {
            // Names/nullability may differ slightly (e.g. empty vs non-empty
            // paths); rebuild against the plan schema for a stable contract.
            RecordBatch::try_new(schema, all.columns().to_vec()).unwrap_or(all)
        } else {
            all
        }
    };

    Ok(ExecutionOutcome {
        batch,
        ledger,
        moved_bytes,
        moved_requests,
        splits: splits.len(),
        row_groups_skipped,
        decoded_bytes_avoided,
    })
}
