//! Physical execution: split-parallel leaf pipelines feeding a final
//! single-stream stage (Presto's partial/final operator model), with every
//! unit of work billed to the `netsim` cost model.

pub mod operators;

use std::collections::HashMap;
use std::sync::Arc;

use columnar::prelude::*;
use netsim::{makespan, pipeline_grouped, ClusterSpec, FrameTiming, Ledger, Phase, Work};
use rayon::prelude::*;

use crate::catalog::Metastore;
use crate::cost::CostParams;
use crate::error::{EResult, EngineError};
use crate::plan::LogicalPlan;
use crate::spi::{Connector, PageMetrics};
use operators::{run_filter, run_limit, run_project, run_sort, run_topn, HashAggregator};

/// How the split phase was scheduled: the overlapped pipeline makespan
/// versus the additive stage-barrier model it replaces, plus streaming
/// observability.
#[derive(Debug, Clone, Default)]
pub struct PipelineSummary {
    /// Overlapped wall-clock of the split phase (what the ledger bills).
    pub overlapped_s: f64,
    /// What the same work would cost under the additive model, where every
    /// stage is a global barrier (disk, then decompress, then scan, …).
    pub additive_s: f64,
    /// Completion time of the earliest batch frame through the whole
    /// pipeline — how long the final stage waited for its first rows.
    pub time_to_first_batch_s: f64,
    /// Total frames that crossed the boundary (schema + batch + trailer).
    pub frames: u64,
    /// Sum of per-split peak encoded bytes buffered engine-side while
    /// draining the streams (bounded by the client frame window).
    pub peak_buffered_bytes: u64,
    /// Busy seconds per pipeline stage (disk, decompress, storage CPU,
    /// frontend CPU, network, compute CPU) — the denominator used to
    /// apportion the overlapped makespan into ledger phases.
    pub stage_busy_s: Vec<f64>,
}

/// Everything a finished query reports back.
#[derive(Debug)]
pub struct ExecutionOutcome {
    /// The plan's output rows (pre client output-projection).
    pub batch: RecordBatch,
    /// Simulated time, bucketed by phase.
    pub ledger: Ledger,
    /// Bytes moved storage → compute (the paper's data-movement metric).
    pub moved_bytes: u64,
    /// Transfer requests on the link.
    pub moved_requests: u64,
    /// Number of splits executed.
    pub splits: usize,
    /// Row groups skipped by storage-side late materialization.
    pub row_groups_skipped: u64,
    /// Encoded bytes storage never decoded thanks to late materialization.
    pub decoded_bytes_avoided: u64,
    /// Column chunks served from the storage-side decoded row-group cache.
    pub rg_cache_hits: u64,
    /// Pushed subplans answered from the storage-side result cache.
    pub result_cache_hits: u64,
    /// Disk + decode bytes the storage caches kept off the cost ledger.
    pub cache_bytes_avoided: u64,
    /// Split-phase scheduling report (overlap vs. additive, streaming
    /// observability).
    pub pipeline: PipelineSummary,
    /// Per-resource utilization timelines over the split phase, on the
    /// query's simulated clock — the input to bottleneck attribution and
    /// the Chrome counter tracks.
    pub profile: obs::Profile,
}

/// Per-split partial result.
enum Partial {
    Batches(Vec<RecordBatch>),
    Agg(Box<HashAggregator>),
}

struct SplitOutput {
    partial: Partial,
    metrics: PageMetrics,
    substrait_gen_s: f64,
}

/// Fold engine-side compute seconds into the frame timeline. Per-batch
/// operator work pairs one-to-one with batch frames when the counts line
/// up (streaming connectors yield one batch per frame); otherwise it lumps
/// onto the last batch frame. Result deserialization follows the bytes
/// that needed deserializing; tail work (top-N / limit finishing after the
/// stream drained) lands on the last batch frame since it cannot start
/// earlier.
fn attach_compute(metrics: &mut PageMetrics, batch_compute_s: &[f64], tail_compute_s: f64) {
    if metrics.frames.is_empty() {
        metrics.frames.push(FrameTiming {
            is_batch: true,
            ..Default::default()
        });
    }
    let batch_idx: Vec<usize> = metrics
        .frames
        .iter()
        .enumerate()
        .filter(|(_, f)| f.is_batch)
        .map(|(i, _)| i)
        .collect();
    let last = batch_idx
        .last()
        .copied()
        .unwrap_or(metrics.frames.len() - 1);
    if batch_idx.len() == batch_compute_s.len() {
        for (&i, &s) in batch_idx.iter().zip(batch_compute_s) {
            metrics.frames[i].compute_s += s;
        }
    } else {
        metrics.frames[last].compute_s += batch_compute_s.iter().sum::<f64>();
    }
    let total_bytes: f64 = batch_idx
        .iter()
        .map(|&i| metrics.frames[i].bytes as f64)
        .sum();
    if total_bytes > 0.0 {
        let deser = metrics.compute_deser_s;
        for &i in &batch_idx {
            metrics.frames[i].compute_s += deser * metrics.frames[i].bytes as f64 / total_bytes;
        }
    } else {
        metrics.frames[last].compute_s += metrics.compute_deser_s;
    }
    metrics.frames[last].compute_s += tail_compute_s;
}

/// Execute a linear plan chain.
///
/// `tracer` receives the query's span tree on the simulated clock (pass
/// [`obs::Tracer::disabled`] to skip all span work); `analysis_s` is the
/// coordinator's plan-analysis cost, billed here so the trace's phase
/// spans can be laid out in execution order from one place.
pub fn execute_plan(
    plan: &LogicalPlan,
    metastore: &Metastore,
    connectors: &HashMap<String, Arc<dyn Connector>>,
    cluster: &ClusterSpec,
    cost: &CostParams,
    tracer: &obs::Tracer,
    analysis_s: f64,
) -> EResult<ExecutionOutcome> {
    let ledger = Ledger::new();
    let scan = plan.scan().clone();
    let table = metastore.table(&scan.table)?;
    let connector = connectors
        .get(&scan.connector)
        .ok_or_else(|| {
            EngineError::Connector(format!("no connector registered as '{}'", scan.connector))
        })?
        .clone();
    let splits = connector.split_manager().splits(&table, &scan)?;
    let provider = connector.page_source_provider();

    // Coordinator overheads (Table 3's "Others").
    let other_s = cluster
        .compute
        .core_seconds(cost.query_fixed + cost.sched_per_split * splits.len() as f64);
    ledger.add(Phase::Other, other_s);
    ledger.add(Phase::PlanAnalysis, analysis_s);

    // The query's root span. The netsim clock is computed, not observed,
    // so phases are laid out back-to-back as their seconds become known;
    // `cursor` is the layout position on the simulated clock.
    let root = tracer.start("query", "phase", None, 0.0);
    let root_id = root.id();
    let mut cursor = Ledger::layout_spans(
        tracer,
        root_id,
        0.0,
        &[(Phase::Other, other_s), (Phase::PlanAnalysis, analysis_s)],
    );

    // Collect the operator chain leaf→root (excluding the scan).
    let mut ops: Vec<&LogicalPlan> = Vec::new();
    {
        let mut cur = plan;
        while let Some(next) = cur.input() {
            ops.push(cur);
            cur = next;
        }
        ops.reverse();
    }
    // Streaming prefix (Filter/Project), then one optional blocking op,
    // then final-stage ops.
    let mut streaming: Vec<&LogicalPlan> = Vec::new();
    let mut blocking: Option<&LogicalPlan> = None;
    let mut final_ops: Vec<&LogicalPlan> = Vec::new();
    for op in ops {
        if blocking.is_some() {
            final_ops.push(op);
        } else {
            match op {
                LogicalPlan::Filter { .. } | LogicalPlan::Project { .. } => streaming.push(op),
                other => blocking = Some(other),
            }
        }
    }

    // ---- Parallel split phase ----------------------------------------
    // Each worker pulls its split's stream batch-at-a-time: streaming
    // Filter/Project and partial-aggregation updates run per yielded
    // batch, so consumption overlaps production and per-batch compute
    // seconds can be pinned to the frame that carried the batch.
    let split_outputs: Vec<EResult<SplitOutput>> = splits
        .par_iter()
        .map(|split| -> EResult<SplitOutput> {
            let page = provider.create(split)?;
            let mut stream = page.stream;
            let mut batch_compute_s: Vec<f64> = Vec::new();
            let mut agg = match blocking {
                Some(LogicalPlan::Aggregate { group_by, aggs, .. }) => {
                    Some(HashAggregator::new(group_by.clone(), aggs.clone())?)
                }
                _ => None,
            };
            let mut survivors: Vec<RecordBatch> = Vec::new();
            while let Some(batch) = stream.next_batch()? {
                let mut work = Work::zero();
                let mut cur = Some(batch);
                for op in &streaming {
                    let Some(b) = cur.take() else { break };
                    let (out, w) = match op {
                        LogicalPlan::Filter { predicate, .. } => {
                            let (out, w) = run_filter(&b, predicate, cost)?;
                            (out, Work::vector(w))
                        }
                        LogicalPlan::Project { exprs, .. } => {
                            let (out, w) = run_project(&b, exprs, cost)?;
                            (out, Work::expr(w))
                        }
                        _ => unreachable!("streaming ops are Filter/Project"),
                    };
                    work.add(w);
                    if out.num_rows() > 0 {
                        cur = Some(out);
                    }
                }
                if let Some(b) = cur {
                    match agg.as_mut() {
                        Some(agg) => {
                            let before = agg.work;
                            agg.update(&b, cost)?;
                            work.add(Work::vector(agg.work - before));
                        }
                        None => survivors.push(b),
                    }
                }
                batch_compute_s.push(cluster.compute.core_seconds_for(work));
            }
            // Tail ops that can only run once the stream has drained.
            let mut tail_work = Work::zero();
            let partial = if let Some(mut agg) = agg {
                agg.work = 0.0;
                Partial::Agg(Box::new(agg))
            } else {
                match blocking {
                    Some(LogicalPlan::TopN { keys, limit, .. }) if !survivors.is_empty() => {
                        let (out, work) = run_topn(&survivors, keys, *limit, cost)?;
                        tail_work.add(Work::vector(work));
                        Partial::Batches(vec![out])
                    }
                    Some(LogicalPlan::Limit { limit, .. }) => {
                        Partial::Batches(run_limit(&survivors, *limit)?)
                    }
                    // Sort (and empty-input TopN) defer to the final stage.
                    _ => Partial::Batches(survivors),
                }
            };
            let mut metrics = stream.finish()?;
            attach_compute(
                &mut metrics,
                &batch_compute_s,
                cluster.compute.core_seconds_for(tail_work),
            );
            Ok(SplitOutput {
                partial,
                metrics,
                substrait_gen_s: page.substrait_gen_s,
            })
        })
        .collect();

    let mut outputs = Vec::with_capacity(split_outputs.len());
    for o in split_outputs {
        outputs.push(o?);
    }

    // ---- Pipeline-overlap billing for the split phase ------------------
    let moved_bytes: u64 = outputs.iter().map(|o| o.metrics.network_bytes).sum();
    let moved_requests: u64 = outputs.iter().map(|o| o.metrics.network_requests).sum();
    let row_groups_skipped: u64 = outputs
        .iter()
        .map(|o| o.metrics.stats.row_groups_skipped)
        .sum();
    let decoded_bytes_avoided: u64 = outputs
        .iter()
        .map(|o| o.metrics.stats.decoded_bytes_avoided)
        .sum();
    let rg_cache_hits: u64 = outputs.iter().map(|o| o.metrics.stats.rg_cache_hits).sum();
    let result_cache_hits: u64 = outputs
        .iter()
        .map(|o| o.metrics.stats.result_cache_hits)
        .sum();
    let cache_bytes_avoided: u64 = outputs
        .iter()
        .map(|o| o.metrics.stats.cache_bytes_avoided)
        .sum();

    // One pipeline item per frame, split-major, with per-stage durations:
    // disk read, decompress, storage scan, frontend relay, network, engine
    // compute. A frame only occupies a stage's lane for its own share of
    // the work, so stage k of frame n+1 overlaps stage k+1 of frame n —
    // the whole point of the streaming boundary.
    let bps = cluster.network.bytes_per_second();
    let mut items: Vec<Vec<f64>> = Vec::new();
    let mut batch_items: Vec<usize> = Vec::new();
    let mut groups: Vec<usize> = Vec::new();
    // Frames are interleaved round-robin across splits because that is how
    // the wall clock sees them: every split issues its request up front and
    // the shared resources (the storage disk, the link) serve the
    // concurrent streams fairly, not one split start-to-finish before the
    // next. Within a split, frames stay in wire order.
    let max_frames = outputs
        .iter()
        .map(|o| o.metrics.frames.len())
        .max()
        .unwrap_or(0);
    for frame_ix in 0..max_frames {
        for (split_ix, o) in outputs.iter().enumerate() {
            let Some(f) = o.metrics.frames.get(frame_ix) else {
                continue;
            };
            // Per-request round trips and any unframed (request-direction)
            // bytes ride on the split's first frame.
            let first_extra = if frame_ix == 0 {
                let framed_bytes: u64 = o.metrics.frames.iter().map(|fr| fr.bytes).sum();
                o.metrics.network_requests as f64 * cluster.network.latency_s
                    + o.metrics.network_bytes.saturating_sub(framed_bytes) as f64 / bps
            } else {
                0.0
            };
            let disk_s = cluster.storage_disk.read_seconds(f.disk_bytes);
            // A frame whose input side spans several scanned row groups
            // (aggregation pushdown collapses a whole split's scan into
            // one output batch) is split into per-row-group input slices
            // so disk read and scan overlap exactly as the storage
            // executor performs them. The output-side frame item carries
            // no input cost; group-serial FCFS on the frontend stage makes
            // it wait for every slice of its own split.
            let chunks = f.input_chunks.max(1) as usize;
            if chunks > 1 {
                let per = 1.0 / chunks as f64;
                for _ in 0..chunks {
                    groups.push(split_ix);
                    items.push(vec![
                        disk_s * per,
                        f.decompress_s * per,
                        f.storage_s * per,
                        0.0,
                        0.0,
                        0.0,
                    ]);
                }
            }
            if f.is_batch {
                batch_items.push(items.len());
            }
            groups.push(split_ix);
            let (in_disk, in_dec, in_sto) = if chunks > 1 {
                (0.0, 0.0, 0.0)
            } else {
                (disk_s, f.decompress_s, f.storage_s)
            };
            items.push(vec![
                in_disk,
                in_dec,
                in_sto,
                f.frontend_s,
                f.bytes as f64 / bps + first_extra,
                f.compute_s,
            ]);
        }
    }
    let lanes = [
        1, // one disk
        cluster.storage.cores,
        cluster.storage.cores,
        cluster.frontend.cores,
        1, // one link
        cluster.compute.cores,
    ];
    // Disk/decompress/scan parallelize *within* a split (row groups decode
    // on independent storage cores), but one frontend thread relays a
    // request's frames in order and one engine driver drains a split's
    // batches in order — those two stages are serial per split.
    let serial = [false, false, false, true, false, true];
    let report = pipeline_grouped(&items, &lanes, &groups, &serial);

    // What the same work costs under the additive model this replaces:
    // every stage a global barrier across all splits.
    let additive_s = {
        let disk_bytes: u64 = outputs.iter().map(|o| o.metrics.stats.disk_bytes).sum();
        let decompress: Vec<f64> = outputs
            .iter()
            .map(|o| o.metrics.stats.storage_decompress_s)
            .collect();
        let storage: Vec<f64> = outputs
            .iter()
            .map(|o| o.metrics.stats.storage_cpu_s)
            .collect();
        let frontend: Vec<f64> = outputs
            .iter()
            .map(|o| o.metrics.stats.frontend_cpu_s)
            .collect();
        let compute: Vec<f64> = outputs
            .iter()
            .map(|o| o.metrics.frames.iter().map(|f| f.compute_s).sum())
            .collect();
        cluster.storage_disk.read_seconds(disk_bytes)
            + makespan(&decompress, cluster.storage.cores)
            + makespan(&storage, cluster.storage.cores)
            + makespan(&frontend, cluster.frontend.cores)
            + cluster
                .network
                .transfer_seconds(moved_bytes, moved_requests.max(1))
            + makespan(&compute, cluster.compute.cores)
    };

    // Substrait IR generation happens before any request is issued; it is
    // not part of the frame pipeline and stays additive.
    let substrait: f64 = outputs.iter().map(|o| o.substrait_gen_s).sum();
    ledger.add(Phase::SubstraitGen, substrait);
    cursor = Ledger::layout_spans(tracer, root_id, cursor, &[(Phase::SubstraitGen, substrait)]);

    // Bill the overlapped makespan, apportioned back into ledger phases
    // proportional to each stage's busy time so the breakdown still says
    // *where* the time went.
    let busy_total: f64 = report.stage_busy.iter().sum();
    let phases = [
        Phase::StorageDisk,
        Phase::StorageDecompress,
        Phase::StorageCpu,
        Phase::FrontendCpu,
        Phase::NetworkTransfer,
        Phase::ComputeCpu,
    ];
    let mut apportioned: Vec<(Phase, f64)> = Vec::with_capacity(phases.len());
    if busy_total > 0.0 {
        for (phase, &busy) in phases.iter().zip(&report.stage_busy) {
            let share = report.makespan * busy / busy_total;
            ledger.add(*phase, share);
            apportioned.push((*phase, share));
        }
    }

    let time_to_first_batch_s = report.first_done_among(batch_items);
    let frames_total: u64 = outputs.iter().map(|o| o.metrics.frames.len() as u64).sum();
    let peak_buffered: u64 = outputs.iter().map(|o| o.metrics.peak_buffered_bytes).sum();

    // Resource-utilization profile: fold the scheduler's per-stage busy
    // intervals into named resources on the query clock (the split phase
    // starts at `cursor`). The two storage-CPU stages (decompress, scan)
    // share the same physical cores, so they merge into one timeline.
    let stage_resources: [(&str, usize); 6] = [
        ("storage-disk", 1),
        ("storage-cores", cluster.storage.cores),
        ("storage-cores", cluster.storage.cores),
        ("frontend-cores", cluster.frontend.cores),
        ("link", 1),
        ("compute-cores", cluster.compute.cores),
    ];
    let mut profile = obs::Profile::new(cursor, cursor + report.makespan);
    for (stage, (resource, lanes)) in stage_resources.iter().enumerate() {
        let intervals: Vec<(f64, f64)> = report
            .stage_intervals
            .get(stage)
            .map(|iv| iv.iter().map(|&(s, e)| (cursor + s, cursor + e)).collect())
            .unwrap_or_default();
        profile.add_resource(resource, *lanes, intervals);
    }

    // The split-phase span covers the overlapped makespan. Its children:
    // the six apportioned stage shares laid back-to-back (their sum is the
    // makespan by construction, so the phase breakdown stays exact), plus
    // one span per split on its *actual* overlapped timeline — split spans
    // run concurrently, and each receives the storage-executor spans that
    // crossed the boundary in its trailer frame, re-scaled into the
    // split's window ([`obs::Tracer::graft`]).
    if tracer.is_enabled() {
        let mut split_phase = tracer.start("split_phase", "phase", Some(root_id), cursor);
        split_phase.attr("splits", outputs.len() as u64);
        split_phase.attr("frames", frames_total);
        split_phase.attr("bytes", moved_bytes);
        split_phase.attr("time_to_first_batch_s", time_to_first_batch_s);
        split_phase.attr("peak_buffered_bytes", peak_buffered);
        if let Some(b) = profile.bottleneck() {
            split_phase.attr("bottleneck", b.resource.as_str());
            split_phase.attr(
                "bottleneck_util_pct",
                (b.utilization * 100.0).round() as u64,
            );
        }
        let split_phase_id = split_phase.close(cursor + report.makespan);
        Ledger::layout_spans(tracer, split_phase_id, cursor, &apportioned);

        // Per-split completion times from the pipeline report.
        let mut split_end = vec![0.0f64; outputs.len()];
        for (item_ix, &g) in groups.iter().enumerate() {
            if let Some(&done) = report.item_done.get(item_ix) {
                split_end[g] = split_end[g].max(done);
            }
        }
        for (split_ix, o) in outputs.iter().enumerate() {
            let end = cursor + split_end[split_ix].min(report.makespan);
            let mut span = tracer.start(
                format!("split[{split_ix}]"),
                "split",
                Some(split_phase_id),
                cursor,
            );
            span.attr("rows", o.metrics.stats.rows_returned);
            span.attr("bytes", o.metrics.network_bytes);
            span.attr("frames", o.metrics.frames.len() as u64);
            if let Some(b) = profile.bottleneck_in(cursor, end) {
                span.attr("bottleneck", b.resource.as_str());
                span.attr(
                    "bottleneck_util_pct",
                    (b.utilization * 100.0).round() as u64,
                );
            }
            let id = span.close(end);
            tracer.graft(&o.metrics.stats.spans, id, cursor, end);
        }
    }
    cursor += report.makespan;

    let pipeline_summary = PipelineSummary {
        overlapped_s: report.makespan,
        additive_s,
        time_to_first_batch_s,
        frames: frames_total,
        peak_buffered_bytes: peak_buffered,
        stage_busy_s: report.stage_busy.clone(),
    };

    // ---- Final stage ---------------------------------------------------
    // Per-operator (name, output rows, core-seconds) for the final span's
    // children; seconds come from the same `Work` units billed to the
    // ledger so the children sum to the final span.
    let mut final_op_spans: Vec<(String, u64, f64)> = Vec::new();
    let mut final_work = Work::zero();
    let mut current: Vec<RecordBatch> = match blocking {
        Some(LogicalPlan::Aggregate { group_by, aggs, .. }) => {
            let mut merged = HashAggregator::new(group_by.clone(), aggs.clone())?;
            let mut w = Work::zero();
            for o in outputs {
                if let Partial::Agg(agg) = o.partial {
                    let groups = agg.num_groups() as f64;
                    merged.merge(*agg)?;
                    w.add(Work::vector(
                        groups * cost.agg_update * aggs.len().max(1) as f64,
                    ));
                }
            }
            merged.work = 0.0;
            let out = merged.finish()?;
            final_op_spans.push((
                "merge_aggregate".into(),
                out.num_rows() as u64,
                cluster.compute.core_seconds_for(w),
            ));
            final_work.add(w);
            vec![out]
        }
        Some(LogicalPlan::TopN { keys, limit, .. }) => {
            let batches: Vec<RecordBatch> = outputs
                .into_iter()
                .flat_map(|o| match o.partial {
                    Partial::Batches(b) => b,
                    Partial::Agg(_) => unreachable!("topn splits produce batches"),
                })
                .collect();
            if batches.is_empty() {
                vec![]
            } else {
                let (out, work) = run_topn(&batches, keys, *limit, cost)?;
                let w = Work::vector(work);
                final_op_spans.push((
                    "merge_topn".into(),
                    out.num_rows() as u64,
                    cluster.compute.core_seconds_for(w),
                ));
                final_work.add(w);
                vec![out]
            }
        }
        Some(LogicalPlan::Sort { keys, .. }) => {
            let batches: Vec<RecordBatch> = outputs
                .into_iter()
                .flat_map(|o| match o.partial {
                    Partial::Batches(b) => b,
                    Partial::Agg(_) => unreachable!("sort splits produce batches"),
                })
                .collect();
            if batches.is_empty() {
                vec![]
            } else {
                let (out, work) = run_sort(&batches, keys, cost)?;
                let w = Work::vector(work);
                final_op_spans.push((
                    "merge_sort".into(),
                    out.num_rows() as u64,
                    cluster.compute.core_seconds_for(w),
                ));
                final_work.add(w);
                vec![out]
            }
        }
        Some(LogicalPlan::Limit { limit, .. }) => {
            let batches: Vec<RecordBatch> = outputs
                .into_iter()
                .flat_map(|o| match o.partial {
                    Partial::Batches(b) => b,
                    Partial::Agg(_) => unreachable!("limit splits produce batches"),
                })
                .collect();
            run_limit(&batches, *limit)?
        }
        None => outputs
            .into_iter()
            .flat_map(|o| match o.partial {
                Partial::Batches(b) => b,
                Partial::Agg(_) => unreachable!("no blocking op"),
            })
            .collect(),
        Some(other) => {
            return Err(EngineError::Execution(format!(
                "unsupported blocking operator {}",
                other.name()
            )))
        }
    };

    // Remaining ops above the blocking one (e.g. Sort after Aggregate).
    for op in final_ops {
        let mut w = Work::zero();
        current = match op {
            LogicalPlan::Filter { predicate, .. } => {
                let mut next = Vec::new();
                for b in &current {
                    let (out, work) = run_filter(b, predicate, cost)?;
                    w.add(Work::vector(work));
                    next.push(out);
                }
                next
            }
            LogicalPlan::Project { exprs, .. } => {
                let mut next = Vec::new();
                for b in &current {
                    let (out, work) = run_project(b, exprs, cost)?;
                    w.add(Work::expr(work));
                    next.push(out);
                }
                next
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                let mut agg = HashAggregator::new(group_by.clone(), aggs.clone())?;
                for b in &current {
                    agg.update(b, cost)?;
                }
                w.add(Work::vector(agg.work));
                vec![agg.finish()?]
            }
            LogicalPlan::Sort { keys, .. } => {
                if current.is_empty() {
                    vec![]
                } else {
                    let (out, work) = run_sort(&current, keys, cost)?;
                    w.add(Work::vector(work));
                    vec![out]
                }
            }
            LogicalPlan::TopN { keys, limit, .. } => {
                if current.is_empty() {
                    vec![]
                } else {
                    let (out, work) = run_topn(&current, keys, *limit, cost)?;
                    w.add(Work::vector(work));
                    vec![out]
                }
            }
            LogicalPlan::Limit { limit, .. } => run_limit(&current, *limit)?,
            LogicalPlan::TableScan(_) => {
                return Err(EngineError::Execution("scan above leaf".into()))
            }
        };
        let rows: u64 = current.iter().map(|b| b.num_rows() as u64).sum();
        final_op_spans.push((
            op.name().to_ascii_lowercase(),
            rows,
            cluster.compute.core_seconds_for(w),
        ));
        final_work.add(w);
    }
    // Final stage runs on a handful of driver threads; bill one lane.
    let final_s = cluster.compute.core_seconds_for(final_work);
    ledger.add(Phase::ComputeCpu, final_s);
    // The final-stage span is the root's last sequential child; its
    // operator children are laid back-to-back inside it with the same
    // core-seconds the ledger was billed.
    if tracer.is_enabled() && final_s > 0.0 {
        let final_id = tracer.record(
            Phase::ComputeCpu.label(),
            "phase",
            Some(root_id),
            cursor,
            cursor + final_s,
        );
        let mut op_cursor = cursor;
        for (name, rows, secs) in &final_op_spans {
            if *secs <= 0.0 {
                continue;
            }
            let id = tracer.record(
                format!("final.{name}"),
                "op",
                Some(final_id),
                op_cursor,
                op_cursor + secs,
            );
            tracer.attr(id, "rows", *rows);
            op_cursor += secs;
        }
    }
    cursor += final_s;
    root.close(cursor);

    let schema = plan.schema()?;
    let batch = if current.is_empty() {
        RecordBatch::empty(schema)
    } else {
        let all = RecordBatch::concat(&current)?;
        if all.schema() != &schema {
            // Names/nullability may differ slightly (e.g. empty vs non-empty
            // paths); rebuild against the plan schema for a stable contract.
            RecordBatch::try_new(schema, all.columns().to_vec()).unwrap_or(all)
        } else {
            all
        }
    };

    Ok(ExecutionOutcome {
        batch,
        ledger,
        moved_bytes,
        moved_requests,
        splits: splits.len(),
        row_groups_skipped,
        decoded_bytes_avoided,
        rg_cache_hits,
        result_cache_hits,
        cache_bytes_avoided,
        pipeline: pipeline_summary,
        profile,
    })
}
