//! Vectorized physical operators with work accounting.
//!
//! These are shared between the engine's worker pipelines and (via the
//! `ocs` crate) the OCS embedded executor, so a pushed-down operator does
//! exactly the same computation in storage as it would at the compute
//! layer — only the node executing it differs.

use std::sync::Arc;

use columnar::groupby::GroupedAggregator;
use columnar::kernels::selection;
use columnar::prelude::*;
use columnar::sort::{self, SortKey as ColSortKey};

use crate::cost::CostParams;
use crate::error::{EResult, EngineError};
use crate::expr::{AggregateCall, ScalarExpr};
use crate::plan::SortKey;

/// Apply a filter, returning the surviving rows and the work spent.
pub fn run_filter(
    batch: &RecordBatch,
    predicate: &ScalarExpr,
    cost: &CostParams,
) -> EResult<(RecordBatch, f64)> {
    let work = cost.eval_work(batch.num_rows() as u64, predicate.weight());
    let mask = predicate.eval(batch)?;
    let mask = mask.as_bool().map_err(EngineError::Columnar)?;
    let out = selection::filter_batch(batch, mask).map_err(EngineError::Columnar)?;
    Ok((out, work))
}

/// Apply a projection.
pub fn run_project(
    batch: &RecordBatch,
    exprs: &[(ScalarExpr, String)],
    cost: &CostParams,
) -> EResult<(RecordBatch, f64)> {
    let weight: u32 = exprs.iter().map(|(e, _)| e.weight()).sum();
    let work = cost.eval_work(batch.num_rows() as u64, weight.max(1));
    let fields = exprs
        .iter()
        .map(|(e, n)| Field::new(n.clone(), e.data_type(), true))
        .collect::<Vec<_>>();
    let schema = Arc::new(Schema::new(fields));
    let columns = exprs
        .iter()
        .map(|(e, _)| e.eval(batch).map(Arc::new))
        .collect::<EResult<Vec<_>>>()?;
    let out = RecordBatch::try_new(schema, columns).map_err(EngineError::Columnar)?;
    Ok((out, work))
}

/// A two-phase (partial/final) hash aggregator.
///
/// This is a thin expression-evaluating wrapper around the shared
/// vectorized kernel in [`columnar::groupby`]: key and argument
/// expressions are evaluated once per batch, then rows are resolved to
/// dense group ids and folded into columnar accumulators — the same code
/// path the OCS storage executor runs, so a pushed-down aggregate computes
/// exactly what the compute layer would.
#[derive(Debug)]
pub struct HashAggregator {
    group_by: Vec<(ScalarExpr, String)>,
    aggs: Vec<AggregateCall>,
    inner: GroupedAggregator,
    /// Accumulated work units.
    pub work: f64,
}

impl HashAggregator {
    /// New aggregator for the given keys and calls.
    pub fn new(group_by: Vec<(ScalarExpr, String)>, aggs: Vec<AggregateCall>) -> EResult<Self> {
        let key_types = group_by.iter().map(|(e, _)| e.data_type()).collect();
        let specs: Vec<_> = aggs
            .iter()
            .map(|a| (a.func, a.arg.as_ref().map(|e| e.data_type())))
            .collect();
        let inner = GroupedAggregator::new(key_types, &specs).map_err(EngineError::Columnar)?;
        Ok(HashAggregator {
            group_by,
            aggs,
            inner,
            work: 0.0,
        })
    }

    /// Consume one batch.
    pub fn update(&mut self, batch: &RecordBatch, cost: &CostParams) -> EResult<()> {
        let rows = batch.num_rows();
        if rows == 0 {
            return Ok(());
        }
        self.work += cost.agg_work(rows as u64, self.group_by.len(), self.aggs.len());
        // Evaluate key and argument expressions once per batch.
        let key_arrays = self
            .group_by
            .iter()
            .map(|(e, _)| e.eval(batch))
            .collect::<EResult<Vec<_>>>()?;
        let arg_arrays = self
            .aggs
            .iter()
            .map(|a| a.arg.as_ref().map(|e| e.eval(batch)).transpose())
            .collect::<EResult<Vec<_>>>()?;
        let key_refs: Vec<&Array> = key_arrays.iter().collect();
        let arg_refs: Vec<Option<&Array>> = arg_arrays.iter().map(|a| a.as_ref()).collect();
        self.inner
            .update(&key_refs, &arg_refs, rows)
            .map_err(EngineError::Columnar)
    }

    /// Merge a partial aggregator (distributed combine).
    pub fn merge(&mut self, other: HashAggregator) -> EResult<()> {
        self.inner
            .merge(&other.inner)
            .map_err(EngineError::Columnar)?;
        self.work += other.work;
        Ok(())
    }

    /// Number of groups so far.
    pub fn num_groups(&self) -> usize {
        self.inner.num_groups()
    }

    /// Produce the output batch: keys then measures, groups in first-seen
    /// order.
    ///
    /// A *global* aggregate (no group keys) over zero input rows emits one
    /// row of initial states (`COUNT(*) = 0`, `SUM = NULL`, ...) per SQL
    /// semantics.
    pub fn finish(mut self) -> EResult<RecordBatch> {
        if self.group_by.is_empty() {
            self.inner.ensure_global_group();
        }
        let mut fields = Vec::with_capacity(self.group_by.len() + self.aggs.len());
        for (e, name) in &self.group_by {
            fields.push(Field::new(name.clone(), e.data_type(), true));
        }
        for a in &self.aggs {
            fields.push(Field::new(a.output_name.clone(), a.output_type()?, true));
        }
        let schema = Arc::new(Schema::new(fields));
        let (keys, measures) = self.inner.finish();
        let columns = keys
            .into_iter()
            .chain(measures)
            .map(Arc::new)
            .collect::<Vec<_>>();
        RecordBatch::try_new(schema, columns).map_err(EngineError::Columnar)
    }
}

fn to_col_keys(keys: &[SortKey]) -> Vec<ColSortKey> {
    keys.iter()
        .map(|k| ColSortKey {
            column: k.column,
            ascending: k.ascending,
            nulls_first: k.nulls_first,
        })
        .collect()
}

/// Full sort of concatenated batches.
pub fn run_sort(
    batches: &[RecordBatch],
    keys: &[SortKey],
    cost: &CostParams,
) -> EResult<(RecordBatch, f64)> {
    let all = RecordBatch::concat(batches).map_err(EngineError::Columnar)?;
    let work = cost.sort_work(all.num_rows() as u64, keys.len());
    let out = sort::sort_batch(&all, &to_col_keys(keys)).map_err(EngineError::Columnar)?;
    Ok((out, work))
}

/// Bounded top-N over concatenated batches.
pub fn run_topn(
    batches: &[RecordBatch],
    keys: &[SortKey],
    limit: u64,
    cost: &CostParams,
) -> EResult<(RecordBatch, f64)> {
    let all = RecordBatch::concat(batches).map_err(EngineError::Columnar)?;
    let work = cost.topn_work(all.num_rows() as u64, keys.len(), limit);
    let out =
        sort::top_n(&all, &to_col_keys(keys), limit as usize).map_err(EngineError::Columnar)?;
    Ok((out, work))
}

/// Limit (keeps first `limit` rows across batches, in order).
pub fn run_limit(batches: &[RecordBatch], limit: u64) -> EResult<Vec<RecordBatch>> {
    let mut out = Vec::new();
    let mut remaining = limit as usize;
    for b in batches {
        if remaining == 0 {
            break;
        }
        if b.num_rows() <= remaining {
            remaining -= b.num_rows();
            out.push(b.clone());
        } else {
            out.push(selection::limit_batch(b, remaining).map_err(EngineError::Columnar)?);
            remaining = 0;
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::agg::AggFunc;
    use columnar::builder::ArrayBuilder;
    use columnar::kernels::cmp::CmpOp;

    fn batch(ids: Vec<i64>, vs: Vec<f64>) -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]));
        RecordBatch::try_new(
            schema,
            vec![
                Arc::new(Array::from_i64(ids)),
                Arc::new(Array::from_f64(vs)),
            ],
        )
        .unwrap()
    }

    fn cost() -> CostParams {
        CostParams::default()
    }

    #[test]
    fn filter_and_project() {
        let b = batch(vec![1, 2, 3, 4], vec![0.1, 0.2, 0.3, 0.4]);
        let pred = ScalarExpr::Cmp {
            op: CmpOp::GtEq,
            left: Arc::new(ScalarExpr::col(1, "v", DataType::Float64)),
            right: Arc::new(ScalarExpr::lit(Scalar::Float64(0.25))),
        };
        let (f, w) = run_filter(&b, &pred, &cost()).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert!(w > 0.0);
        let (p, _) = run_project(
            &f,
            &[(
                ScalarExpr::Arith {
                    op: columnar::kernels::arith::ArithOp::Mul,
                    left: Arc::new(ScalarExpr::col(0, "id", DataType::Int64)),
                    right: Arc::new(ScalarExpr::lit(Scalar::Int64(10))),
                },
                "id10".into(),
            )],
            &cost(),
        )
        .unwrap();
        assert_eq!(p.schema().names(), vec!["id10"]);
        assert_eq!(p.column(0).as_i64().unwrap().values, vec![30, 40]);
    }

    fn agg_fixture() -> (Vec<(ScalarExpr, String)>, Vec<AggregateCall>) {
        (
            vec![(ScalarExpr::col(0, "id", DataType::Int64), "id".into())],
            vec![
                AggregateCall {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::col(1, "v", DataType::Float64)),
                    output_name: "s".into(),
                },
                AggregateCall {
                    func: AggFunc::Count,
                    arg: None,
                    output_name: "n".into(),
                },
            ],
        )
    }

    #[test]
    fn hash_aggregation_basic() {
        let (keys, calls) = agg_fixture();
        let mut agg = HashAggregator::new(keys, calls).unwrap();
        agg.update(
            &batch(vec![1, 2, 1, 2, 1], vec![1.0, 2.0, 3.0, 4.0, 5.0]),
            &cost(),
        )
        .unwrap();
        assert_eq!(agg.num_groups(), 2);
        let out = agg.finish().unwrap();
        assert_eq!(out.num_rows(), 2);
        // First-seen order: group 1 then group 2.
        assert_eq!(
            out.row(0),
            vec![Scalar::Int64(1), Scalar::Float64(9.0), Scalar::Int64(3)]
        );
        assert_eq!(
            out.row(1),
            vec![Scalar::Int64(2), Scalar::Float64(6.0), Scalar::Int64(2)]
        );
    }

    #[test]
    fn partial_final_equals_single_pass() {
        let (keys, calls) = agg_fixture();
        let b1 = batch(vec![1, 2, 3], vec![1.0, 2.0, 3.0]);
        let b2 = batch(vec![2, 3, 4], vec![20.0, 30.0, 40.0]);

        // Single pass.
        let mut single = HashAggregator::new(keys.clone(), calls.clone()).unwrap();
        single.update(&b1, &cost()).unwrap();
        single.update(&b2, &cost()).unwrap();
        let expect = single.finish().unwrap();

        // Partial per "split", then merge.
        let mut p1 = HashAggregator::new(keys.clone(), calls.clone()).unwrap();
        p1.update(&b1, &cost()).unwrap();
        let mut p2 = HashAggregator::new(keys, calls).unwrap();
        p2.update(&b2, &cost()).unwrap();
        p1.merge(p2).unwrap();
        let got = p1.finish().unwrap();

        assert_eq!(got.rows(), expect.rows());
    }

    #[test]
    fn aggregation_with_null_keys() {
        let schema = Arc::new(Schema::new(vec![Field::new("k", DataType::Int64, true)]));
        let mut builder = ArrayBuilder::new(DataType::Int64);
        builder.push_i64(1);
        builder.push_null();
        builder.push_null();
        let b = RecordBatch::try_new(schema, vec![Arc::new(builder.finish())]).unwrap();
        let mut agg = HashAggregator::new(
            vec![(ScalarExpr::col(0, "k", DataType::Int64), "k".into())],
            vec![AggregateCall {
                func: AggFunc::Count,
                arg: None,
                output_name: "n".into(),
            }],
        )
        .unwrap();
        agg.update(&b, &cost()).unwrap();
        let out = agg.finish().unwrap();
        // NULL is one group with count 2.
        assert_eq!(out.num_rows(), 2);
        assert_eq!(out.row(1), vec![Scalar::Null, Scalar::Int64(2)]);
    }

    #[test]
    fn global_aggregate_no_keys() {
        let mut agg = HashAggregator::new(
            vec![],
            vec![AggregateCall {
                func: AggFunc::Max,
                arg: Some(ScalarExpr::col(0, "id", DataType::Int64)),
                output_name: "m".into(),
            }],
        )
        .unwrap();
        agg.update(&batch(vec![5, 9, 3], vec![0.0; 3]), &cost())
            .unwrap();
        let out = agg.finish().unwrap();
        assert_eq!(out.num_rows(), 1);
        assert_eq!(out.row(0), vec![Scalar::Int64(9)]);
    }

    #[test]
    fn sort_topn_limit() {
        let b1 = batch(vec![3, 1], vec![0.3, 0.1]);
        let b2 = batch(vec![4, 2], vec![0.4, 0.2]);
        let keys = [SortKey {
            column: 0,
            ascending: true,
            nulls_first: true,
        }];
        let (sorted, _) = run_sort(&[b1.clone(), b2.clone()], &keys, &cost()).unwrap();
        assert_eq!(sorted.column(0).as_i64().unwrap().values, vec![1, 2, 3, 4]);
        let (top, _) = run_topn(&[b1.clone(), b2.clone()], &keys, 2, &cost()).unwrap();
        assert_eq!(top.column(0).as_i64().unwrap().values, vec![1, 2]);
        let limited = run_limit(&[b1, b2], 3).unwrap();
        let total: usize = limited.iter().map(|b| b.num_rows()).sum();
        assert_eq!(total, 3);
    }
}
