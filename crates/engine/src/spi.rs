//! The Connector Service Provider Interface (SPI) — the seam the paper's
//! connector plugs into, mirroring Presto's `ConnectorPlanOptimizer`,
//! `ConnectorSplitManager` and `ConnectorPageSourceProvider`.

use std::any::Any;
use std::fmt::Debug;
use std::sync::Arc;

use columnar::RecordBatch;

use crate::catalog::{Metastore, TableMeta};
use crate::cost::CostParams;
use crate::error::EResult;
use crate::plan::{LogicalPlan, TableScanNode};

/// Connector-private scan state attached to a [`TableScanNode`]. The OCS
/// connector stores the whole pushed-down operator chain in its handle —
/// the paper's "modified TableScan operator [that] encapsulates the
/// pushdown operators".
pub trait TableHandle: Send + Sync + Debug {
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// One-line description for plan display.
    fn describe(&self) -> String;
}

/// The default handle: a plain scan, optionally with a column projection
/// (ordinals into the table schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultTableHandle {
    /// Columns the scan should emit (None = all).
    pub projection: Option<Vec<usize>>,
}

impl DefaultTableHandle {
    /// A handle emitting every column.
    pub fn all_columns() -> Self {
        DefaultTableHandle { projection: None }
    }

    /// A handle emitting the given column ordinals.
    pub fn projected(projection: Vec<usize>) -> Self {
        DefaultTableHandle {
            projection: Some(projection),
        }
    }
}

impl TableHandle for DefaultTableHandle {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn describe(&self) -> String {
        match &self.projection {
            None => "columns=*".into(),
            Some(p) => format!("columns={p:?}"),
        }
    }
}

/// A unit of parallel scan work: one storage object.
#[derive(Debug, Clone)]
pub struct Split {
    /// Serving connector.
    pub connector: String,
    /// Table name.
    pub table: String,
    /// Object bucket.
    pub bucket: String,
    /// Object key.
    pub key: String,
    /// Scan handle (shared with the scan node).
    pub handle: Arc<dyn TableHandle>,
    /// Sequence number for deterministic ordering.
    pub seq: usize,
}

/// What a page source returns for one split: the data plus the simulated
/// resource consumption needed to produce and move it.
#[derive(Debug, Clone, Default)]
pub struct PageSourceResult {
    /// The scan output (post any connector-side pushdown).
    pub batches: Vec<RecordBatch>,
    /// Core-seconds of operator work on the storage node.
    pub storage_cpu_s: f64,
    /// Core-seconds of decompression on the storage node.
    pub storage_decompress_s: f64,
    /// Compressed bytes read from the storage node's disk.
    pub disk_bytes: u64,
    /// Bytes that crossed the storage→compute link for this split.
    pub network_bytes: u64,
    /// Request/response exchanges on the link.
    pub network_requests: u64,
    /// Core-seconds on the OCS frontend node.
    pub frontend_cpu_s: f64,
    /// Core-seconds of Substrait IR generation (billed to the compute
    /// node, Table 3's "Substrait IR Generation" row).
    pub substrait_gen_s: f64,
    /// Core-seconds of result deserialization on the compute node.
    pub compute_deser_s: f64,
    /// Row groups the storage-side scan skipped after evaluating the
    /// filter mask on the filter columns alone (late materialization).
    /// Zero for connectors without a storage-side executor.
    pub row_groups_skipped: u64,
    /// Encoded bytes the storage-side scan never decoded thanks to
    /// mask-skipped row groups. Zero for pass-through connectors.
    pub decoded_bytes_avoided: u64,
}

/// Creates page sources for splits (Presto's `ConnectorPageSourceProvider`).
pub trait PageSourceProvider: Send + Sync {
    /// Fetch (and possibly storage-side execute) one split.
    fn create(&self, split: &Split) -> EResult<PageSourceResult>;
}

/// Enumerates splits for a scan (Presto's `ConnectorSplitManager`).
pub trait SplitManager: Send + Sync {
    /// One split per storage object by default.
    fn splits(&self, table: &TableMeta, scan: &TableScanNode) -> EResult<Vec<Split>> {
        Ok(table
            .objects
            .iter()
            .enumerate()
            .map(|(seq, obj)| Split {
                connector: scan.connector.clone(),
                table: table.name.clone(),
                bucket: obj.bucket.clone(),
                key: obj.key.clone(),
                handle: scan.handle.clone(),
                seq,
            })
            .collect())
    }
}

/// Context handed to connector plan optimizers.
pub struct OptimizerContext<'a> {
    /// The metastore (for statistics).
    pub metastore: &'a Metastore,
    /// Cost parameters in force.
    pub cost: &'a CostParams,
}

/// The connector-specific local-optimizer hook (Presto's
/// `ConnectorPlanOptimizer`): inspect the plan after global optimization
/// and rewrite the subtree it owns.
pub trait ConnectorPlanOptimizer: Send + Sync {
    /// Return the (possibly rewritten) plan.
    fn optimize(&self, plan: LogicalPlan, ctx: &OptimizerContext<'_>) -> EResult<LogicalPlan>;
}

/// A storage connector: the unit of pluggability.
pub trait Connector: Send + Sync {
    /// Registry name (matched against `TableMeta::connector`).
    fn name(&self) -> &str;
    /// Optional plan-optimizer hook.
    fn plan_optimizer(&self) -> Option<Arc<dyn ConnectorPlanOptimizer>> {
        None
    }
    /// Split enumeration.
    fn split_manager(&self) -> Arc<dyn SplitManager>;
    /// Page sources.
    fn page_source_provider(&self) -> Arc<dyn PageSourceProvider>;
}

/// Pass-through split manager usable by simple connectors.
#[derive(Debug, Default)]
pub struct DefaultSplitManager;

impl SplitManager for DefaultSplitManager {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ObjectLocation, TableStats};
    use columnar::{DataType, Field, Schema};

    #[test]
    fn default_split_manager_one_split_per_object() {
        let schema = Arc::new(Schema::new(vec![Field::new("a", DataType::Int64, false)]));
        let meta = TableMeta {
            name: "t".into(),
            connector: "raw".into(),
            schema: schema.clone(),
            objects: (0..3)
                .map(|i| ObjectLocation {
                    bucket: "b".into(),
                    key: format!("t/{i}"),
                    rows: 10,
                    bytes: 100,
                    ..Default::default()
                })
                .collect(),
            stats: TableStats::default(),
        };
        let scan = TableScanNode {
            table: "t".into(),
            connector: "raw".into(),
            output_schema: schema,
            handle: Arc::new(DefaultTableHandle::all_columns()),
        };
        let splits = DefaultSplitManager.splits(&meta, &scan).unwrap();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[2].key, "t/2");
        assert_eq!(splits[2].seq, 2);
    }

    #[test]
    fn handle_downcast() {
        let h: Arc<dyn TableHandle> = Arc::new(DefaultTableHandle::projected(vec![1, 3]));
        let back = h
            .as_any()
            .downcast_ref::<DefaultTableHandle>()
            .expect("downcast");
        assert_eq!(back.projection, Some(vec![1, 3]));
        assert!(h.describe().contains("[1, 3]"));
    }
}
