//! The Connector Service Provider Interface (SPI) — the seam the paper's
//! connector plugs into, mirroring Presto's `ConnectorPlanOptimizer`,
//! `ConnectorSplitManager` and `ConnectorPageSourceProvider`.

use std::any::Any;
use std::collections::VecDeque;
use std::fmt::Debug;
use std::sync::Arc;

use columnar::{RecordBatch, SchemaRef};
use netsim::{ExecStats, FrameTiming};

use crate::catalog::{Metastore, TableMeta};
use crate::cost::CostParams;
use crate::error::EResult;
use crate::plan::{LogicalPlan, TableScanNode};

/// Connector-private scan state attached to a [`TableScanNode`]. The OCS
/// connector stores the whole pushed-down operator chain in its handle —
/// the paper's "modified TableScan operator \[that\] encapsulates the
/// pushdown operators".
pub trait TableHandle: Send + Sync + Debug {
    /// Downcast support.
    fn as_any(&self) -> &dyn Any;
    /// One-line description for plan display.
    fn describe(&self) -> String;
    /// True when the handle carries operators pushed into storage. The
    /// default handle never does; the OCS handle reports its actual
    /// pushdown state so listeners don't have to sniff [`Self::describe`].
    fn pushes_operators(&self) -> bool {
        false
    }
}

/// The default handle: a plain scan, optionally with a column projection
/// (ordinals into the table schema).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DefaultTableHandle {
    /// Columns the scan should emit (None = all).
    pub projection: Option<Vec<usize>>,
}

impl DefaultTableHandle {
    /// A handle emitting every column.
    pub fn all_columns() -> Self {
        DefaultTableHandle { projection: None }
    }

    /// A handle emitting the given column ordinals.
    pub fn projected(projection: Vec<usize>) -> Self {
        DefaultTableHandle {
            projection: Some(projection),
        }
    }
}

impl TableHandle for DefaultTableHandle {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn describe(&self) -> String {
        match &self.projection {
            None => "columns=*".into(),
            Some(p) => format!("columns={p:?}"),
        }
    }
}

/// A unit of parallel scan work: one storage object.
#[derive(Debug, Clone)]
pub struct Split {
    /// Serving connector.
    pub connector: String,
    /// Table name.
    pub table: String,
    /// Object bucket.
    pub bucket: String,
    /// Object key.
    pub key: String,
    /// The table's base schema (so providers can serve plain projected
    /// reads even from a never-rewritten default handle).
    pub schema: SchemaRef,
    /// Scan handle (shared with the scan node).
    pub handle: Arc<dyn TableHandle>,
    /// Sequence number for deterministic ordering.
    pub seq: usize,
}

/// Per-split accounting available once a [`PageStream`] has been fully
/// consumed. Resource counters are consolidated in the shared
/// [`ExecStats`] (carried in the stream trailer by streaming connectors);
/// `frames` holds the per-frame timeline the engine's pipeline scheduler
/// composes into an overlapped makespan.
#[derive(Debug, Clone, Default)]
pub struct PageMetrics {
    /// Consolidated storage/frontend execution statistics.
    pub stats: ExecStats,
    /// Bytes that crossed the storage→compute link for this split
    /// (request + response directions).
    pub network_bytes: u64,
    /// Request/response exchanges on the link.
    pub network_requests: u64,
    /// Core-seconds of result deserialization on the compute node.
    pub compute_deser_s: f64,
    /// Per-frame simulated timings, in wire order.
    pub frames: Vec<FrameTiming>,
    /// Peak encoded bytes buffered engine-side while draining the stream.
    pub peak_buffered_bytes: u64,
}

/// A lazy batch stream for one split: the engine's split workers pull
/// batches one at a time through the streaming operator path, overlapping
/// consumption with production instead of materializing the whole result.
pub trait PageStream: Send {
    /// Next decoded batch, or `None` at end of stream.
    fn next_batch(&mut self) -> EResult<Option<RecordBatch>>;
    /// Consume the stream and return its accounting. Call after
    /// `next_batch` returns `None`.
    fn finish(self: Box<Self>) -> EResult<PageMetrics>;
}

/// What a page source returns for one split: a lazy batch stream plus the
/// plan-generation cost paid before the request was issued.
pub struct PageSourceResult {
    /// The scan output, streamed batch-at-a-time.
    pub stream: Box<dyn PageStream>,
    /// Core-seconds of Substrait IR generation (billed to the compute
    /// node, Table 3's "Substrait IR Generation" row). Zero for
    /// connectors that ship no plan.
    pub substrait_gen_s: f64,
}

/// Compatibility stream for whole-result connectors (raw GET, S3-Select
/// style): every batch is materialized up front, so the stream reports a
/// single indivisible frame — peak buffering equals the full payload and
/// the pipeline scheduler sees no intra-split overlap, which is exactly
/// how a monolithic fetch behaves.
#[derive(Debug)]
pub struct BufferedPageStream {
    batches: VecDeque<RecordBatch>,
    metrics: PageMetrics,
}

impl BufferedPageStream {
    /// Wrap an already-materialized result. `stats` carries the
    /// storage/frontend accounting; the whole payload counts as one frame.
    pub fn whole_result(
        batches: Vec<RecordBatch>,
        stats: ExecStats,
        network_bytes: u64,
        network_requests: u64,
        compute_deser_s: f64,
    ) -> Box<Self> {
        let frame = FrameTiming {
            bytes: network_bytes,
            disk_bytes: stats.disk_bytes,
            decompress_s: stats.storage_decompress_s,
            storage_s: stats.storage_cpu_s,
            frontend_s: stats.frontend_cpu_s,
            compute_s: 0.0,
            is_batch: true,
            input_chunks: 1,
        };
        Box::new(BufferedPageStream {
            batches: batches.into(),
            metrics: PageMetrics {
                stats,
                network_bytes,
                network_requests,
                compute_deser_s,
                frames: vec![frame],
                peak_buffered_bytes: network_bytes,
            },
        })
    }
}

impl PageStream for BufferedPageStream {
    fn next_batch(&mut self) -> EResult<Option<RecordBatch>> {
        Ok(self.batches.pop_front())
    }

    fn finish(self: Box<Self>) -> EResult<PageMetrics> {
        Ok(self.metrics)
    }
}

/// Creates page sources for splits (Presto's `ConnectorPageSourceProvider`).
pub trait PageSourceProvider: Send + Sync {
    /// Open (and possibly storage-side execute) one split as a stream.
    fn create(&self, split: &Split) -> EResult<PageSourceResult>;
}

/// Enumerates splits for a scan (Presto's `ConnectorSplitManager`).
pub trait SplitManager: Send + Sync {
    /// One split per storage object by default.
    fn splits(&self, table: &TableMeta, scan: &TableScanNode) -> EResult<Vec<Split>> {
        Ok(table
            .objects
            .iter()
            .enumerate()
            .map(|(seq, obj)| Split {
                connector: scan.connector.clone(),
                table: table.name.clone(),
                bucket: obj.bucket.clone(),
                key: obj.key.clone(),
                schema: table.schema.clone(),
                handle: scan.handle.clone(),
                seq,
            })
            .collect())
    }
}

/// Context handed to connector plan optimizers.
pub struct OptimizerContext<'a> {
    /// The metastore (for statistics).
    pub metastore: &'a Metastore,
    /// Cost parameters in force.
    pub cost: &'a CostParams,
}

/// The connector-specific local-optimizer hook (Presto's
/// `ConnectorPlanOptimizer`): inspect the plan after global optimization
/// and rewrite the subtree it owns.
pub trait ConnectorPlanOptimizer: Send + Sync {
    /// Return the (possibly rewritten) plan.
    fn optimize(&self, plan: LogicalPlan, ctx: &OptimizerContext<'_>) -> EResult<LogicalPlan>;
}

/// A storage connector: the unit of pluggability.
pub trait Connector: Send + Sync {
    /// Registry name (matched against `TableMeta::connector`).
    fn name(&self) -> &str;
    /// Optional plan-optimizer hook.
    fn plan_optimizer(&self) -> Option<Arc<dyn ConnectorPlanOptimizer>> {
        None
    }
    /// Split enumeration.
    fn split_manager(&self) -> Arc<dyn SplitManager>;
    /// Page sources.
    fn page_source_provider(&self) -> Arc<dyn PageSourceProvider>;
}

/// Pass-through split manager usable by simple connectors.
#[derive(Debug, Default)]
pub struct DefaultSplitManager;

impl SplitManager for DefaultSplitManager {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ObjectLocation, TableStats};
    use columnar::{DataType, Field, Schema};

    #[test]
    fn default_split_manager_one_split_per_object() {
        let schema = Arc::new(Schema::new(vec![Field::new("a", DataType::Int64, false)]));
        let meta = TableMeta {
            name: "t".into(),
            connector: "raw".into(),
            schema: schema.clone(),
            objects: (0..3)
                .map(|i| ObjectLocation {
                    bucket: "b".into(),
                    key: format!("t/{i}"),
                    rows: 10,
                    bytes: 100,
                    ..Default::default()
                })
                .collect(),
            stats: TableStats::default(),
        };
        let scan = TableScanNode {
            table: "t".into(),
            connector: "raw".into(),
            output_schema: schema,
            handle: Arc::new(DefaultTableHandle::all_columns()),
        };
        let splits = DefaultSplitManager.splits(&meta, &scan).unwrap();
        assert_eq!(splits.len(), 3);
        assert_eq!(splits[2].key, "t/2");
        assert_eq!(splits[2].seq, 2);
    }

    #[test]
    fn handle_downcast() {
        let h: Arc<dyn TableHandle> = Arc::new(DefaultTableHandle::projected(vec![1, 3]));
        let back = h
            .as_any()
            .downcast_ref::<DefaultTableHandle>()
            .expect("downcast");
        assert_eq!(back.projection, Some(vec![1, 3]));
        assert!(h.describe().contains("[1, 3]"));
    }
}
