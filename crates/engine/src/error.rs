//! Engine error type.

use std::fmt;

/// Result alias used across the engine.
pub type EResult<T> = std::result::Result<T, EngineError>;

/// Errors surfaced by planning or execution.
#[derive(Debug)]
pub enum EngineError {
    /// SQL failed to parse.
    Parse(sqlparse::ParseError),
    /// Semantic analysis failed (unknown table/column, type error, …).
    Analysis(String),
    /// The catalog has no such table.
    UnknownTable(String),
    /// A connector failed.
    Connector(String),
    /// Execution failed.
    Execution(String),
    /// Columnar-layer error.
    Columnar(columnar::ColumnarError),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Parse(e) => write!(f, "{e}"),
            EngineError::Analysis(m) => write!(f, "analysis error: {m}"),
            EngineError::UnknownTable(t) => write!(f, "unknown table: {t}"),
            EngineError::Connector(m) => write!(f, "connector error: {m}"),
            EngineError::Execution(m) => write!(f, "execution error: {m}"),
            EngineError::Columnar(e) => write!(f, "columnar error: {e}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<sqlparse::ParseError> for EngineError {
    fn from(e: sqlparse::ParseError) -> Self {
        EngineError::Parse(e)
    }
}

impl From<columnar::ColumnarError> for EngineError {
    fn from(e: columnar::ColumnarError) -> Self {
        EngineError::Columnar(e)
    }
}
