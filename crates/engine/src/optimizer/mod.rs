//! The global (rule-based) optimizer — step 3 of the coordinator pipeline.
//!
//! Rules, applied in order:
//!
//! 1. [`fold_constants`] — literal-only subexpressions become literals
//!    (e.g. `DATE '1998-12-01' - INTERVAL '90' DAY` and `500*500`);
//! 2. [`merge_sort_limit`] — `Limit(Sort(x))` becomes `TopN(x)`, the
//!    operator OCS can execute in-storage;
//! 3. [`prune_projection`] — the scan is narrowed to the columns the query
//!    actually references (column pruning, which even conventional object
//!    stores support and every configuration in the paper enjoys).
//!
//! Connector-specific optimization (the paper's local-optimizer hook) runs
//! *after* these, from [`crate::session::Engine`].

mod const_fold;
pub mod invariant;
mod prune;

pub use const_fold::fold_constants;
pub use invariant::{check_rewrite, checked};
pub use prune::prune_projection;

use crate::error::EResult;
use crate::plan::LogicalPlan;

/// `Limit(Sort(x), n)` → `TopN(x, keys, n)`.
pub fn merge_sort_limit(plan: LogicalPlan) -> LogicalPlan {
    match plan {
        LogicalPlan::Limit { input, limit } => match *input {
            LogicalPlan::Sort { input, keys } => LogicalPlan::TopN {
                input: Box::new(merge_sort_limit(*input)),
                keys,
                limit,
            },
            other => LogicalPlan::Limit {
                input: Box::new(merge_sort_limit(other)),
                limit,
            },
        },
        LogicalPlan::TableScan(s) => LogicalPlan::TableScan(s),
        other => {
            let input = merge_sort_limit(other.input().expect("non-leaf").clone());
            other.with_input(input)
        }
    }
}

/// Run the full global rule pipeline.
///
/// Every rule runs under the differential [`invariant`] check: the
/// rewritten plan must re-validate and its inferred output schema must be
/// unchanged, so a broken rule is caught at the rule that introduced it
/// (the trailing whole-plan `validate()` this pipeline used to run could
/// only say *that* something broke, never *which rule* broke it).
pub fn optimize(plan: LogicalPlan) -> EResult<LogicalPlan> {
    let baseline = plan.schema()?;
    let plan = checked("fold_constants", &baseline, fold_constants(plan)?)?;
    let plan = checked("merge_sort_limit", &baseline, merge_sort_limit(plan))?;
    let plan = checked("prune_projection", &baseline, prune_projection(plan)?)?;
    Ok(plan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::{SortKey, TableScanNode};
    use crate::spi::DefaultTableHandle;
    use columnar::{DataType, Field, Schema};
    use std::sync::Arc;

    fn scan() -> LogicalPlan {
        LogicalPlan::TableScan(TableScanNode {
            table: "t".into(),
            connector: "raw".into(),
            output_schema: Arc::new(Schema::new(vec![
                Field::new("a", DataType::Int64, false),
                Field::new("b", DataType::Float64, false),
            ])),
            handle: Arc::new(DefaultTableHandle::all_columns()),
        })
    }

    #[test]
    fn limit_of_sort_becomes_topn() {
        let plan = LogicalPlan::Limit {
            input: Box::new(LogicalPlan::Sort {
                input: Box::new(scan()),
                keys: vec![SortKey {
                    column: 0,
                    ascending: true,
                    nulls_first: true,
                }],
            }),
            limit: 10,
        };
        let out = merge_sort_limit(plan);
        assert_eq!(out.chain_description(), "TableScan -> TopN");
        match out {
            LogicalPlan::TopN { limit, keys, .. } => {
                assert_eq!(limit, 10);
                assert_eq!(keys.len(), 1);
            }
            other => panic!("got {}", other.name()),
        }
    }

    #[test]
    fn lone_limit_untouched() {
        let plan = LogicalPlan::Limit {
            input: Box::new(scan()),
            limit: 3,
        };
        let out = merge_sort_limit(plan);
        assert_eq!(out.chain_description(), "TableScan -> Limit");
    }

    #[test]
    fn lone_sort_untouched() {
        let plan = LogicalPlan::Sort {
            input: Box::new(scan()),
            keys: vec![SortKey {
                column: 1,
                ascending: false,
                nulls_first: false,
            }],
        };
        let out = merge_sort_limit(plan);
        assert_eq!(out.chain_description(), "TableScan -> Sort");
    }
}
