//! Projection pruning: narrow the scan to the columns the query touches
//! and remap every scan-schema reference.
//!
//! Column pruning is the one storage optimization *every* configuration in
//! the paper benefits from (columnar formats make it nearly free), so it
//! lives in the global optimizer, not in any connector.

use std::sync::Arc;

use crate::error::EResult;
use crate::expr::AggregateCall;
use crate::plan::{LogicalPlan, TableScanNode};
use crate::spi::DefaultTableHandle;

/// Narrow the scan of a linear plan chain.
pub fn prune_projection(plan: LogicalPlan) -> EResult<LogicalPlan> {
    // Collect the chain root→leaf.
    let mut chain: Vec<&LogicalPlan> = Vec::new();
    let mut cur = &plan;
    loop {
        chain.push(cur);
        match cur.input() {
            Some(next) => cur = next,
            None => break,
        }
    }
    // chain.last() is the scan; walk upward (reverse) collecting the nodes
    // that consume the *scan* schema: every node up to and including the
    // first schema-changing node (Project or Aggregate).
    let scan = match chain.last() {
        Some(LogicalPlan::TableScan(s)) => s.clone(),
        _ => return Ok(plan), // defensive: unknown shape, leave untouched
    };
    // Only prune scans still carrying the default (unprojected) handle —
    // re-running the rule or running it after a connector rewrite must be
    // a no-op.
    let already = scan
        .handle
        .as_any()
        .downcast_ref::<DefaultTableHandle>()
        .map(|h| h.projection.is_some())
        .unwrap_or(true);
    if already {
        return Ok(plan);
    }

    let mut needed: Vec<usize> = Vec::new();
    let mut saw_changer = false;
    for node in chain.iter().rev().skip(1) {
        match node {
            LogicalPlan::Filter { predicate, .. } if !saw_changer => {
                predicate.referenced_columns(&mut needed);
            }
            LogicalPlan::Project { exprs, .. } if !saw_changer => {
                for (e, _) in exprs {
                    e.referenced_columns(&mut needed);
                }
                saw_changer = true;
            }
            LogicalPlan::Aggregate { group_by, aggs, .. } if !saw_changer => {
                for (e, _) in group_by {
                    e.referenced_columns(&mut needed);
                }
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        arg.referenced_columns(&mut needed);
                    }
                }
                saw_changer = true;
            }
            LogicalPlan::Sort { keys, .. } | LogicalPlan::TopN { keys, .. } if !saw_changer => {
                for k in keys {
                    if !needed.contains(&k.column) {
                        needed.push(k.column);
                    }
                }
            }
            _ => {}
        }
    }
    if !saw_changer {
        // No Project/Aggregate: the query emits scan columns directly
        // (shouldn't happen with our analyzer, which always inserts one);
        // leave the plan alone rather than risk dropping output columns.
        return Ok(plan);
    }
    needed.sort_unstable();
    needed.dedup();
    if needed.len() == scan.output_schema.len() {
        return Ok(plan); // nothing to prune
    }
    let new_schema = Arc::new(scan.output_schema.project(&needed)?);
    // Old index → new index. By construction every column the chain
    // references is in `needed` (the collection pass above walked the same
    // nodes), so the lookup cannot miss; if a future edit breaks that, the
    // sentinel makes the reference out-of-range and the per-rule invariant
    // check in [`super::optimize`] reports a structured error naming this
    // rule instead of panicking mid-rewrite.
    let needed_for_map = needed.clone();
    let map = move |old: usize| -> usize {
        needed_for_map
            .iter()
            .position(|&c| c == old)
            .unwrap_or(usize::MAX)
    };

    // Rebuild the chain bottom-up.
    let mut rebuilt = LogicalPlan::TableScan(TableScanNode {
        table: scan.table.clone(),
        connector: scan.connector.clone(),
        output_schema: new_schema,
        handle: Arc::new(DefaultTableHandle::projected(needed)),
    });
    let mut saw_changer = false;
    for node in chain.iter().rev().skip(1) {
        rebuilt = if saw_changer {
            (*node).with_input(rebuilt)
        } else {
            match node {
                LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                    input: Box::new(rebuilt),
                    predicate: predicate.remap_columns(&map),
                },
                LogicalPlan::Project { exprs, .. } => {
                    saw_changer = true;
                    LogicalPlan::Project {
                        input: Box::new(rebuilt),
                        exprs: exprs
                            .iter()
                            .map(|(e, n)| (e.remap_columns(&map), n.clone()))
                            .collect(),
                    }
                }
                LogicalPlan::Aggregate { group_by, aggs, .. } => {
                    saw_changer = true;
                    LogicalPlan::Aggregate {
                        input: Box::new(rebuilt),
                        group_by: group_by
                            .iter()
                            .map(|(e, n)| (e.remap_columns(&map), n.clone()))
                            .collect(),
                        aggs: aggs
                            .iter()
                            .map(|a| AggregateCall {
                                func: a.func,
                                arg: a.arg.as_ref().map(|e| e.remap_columns(&map)),
                                output_name: a.output_name.clone(),
                            })
                            .collect(),
                    }
                }
                LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                    input: Box::new(rebuilt),
                    keys: keys
                        .iter()
                        .map(|k| crate::plan::SortKey {
                            column: map(k.column),
                            ..*k
                        })
                        .collect(),
                },
                LogicalPlan::TopN { keys, limit, .. } => LogicalPlan::TopN {
                    input: Box::new(rebuilt),
                    keys: keys
                        .iter()
                        .map(|k| crate::plan::SortKey {
                            column: map(k.column),
                            ..*k
                        })
                        .collect(),
                    limit: *limit,
                },
                LogicalPlan::Limit { limit, .. } => LogicalPlan::Limit {
                    input: Box::new(rebuilt),
                    limit: *limit,
                },
                LogicalPlan::TableScan(_) => unreachable!("scan handled above"),
            }
        };
    }
    Ok(rebuilt)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use columnar::agg::AggFunc;
    use columnar::kernels::cmp::CmpOp;
    use columnar::{DataType, Field, Scalar, Schema};

    fn wide_scan() -> LogicalPlan {
        LogicalPlan::TableScan(TableScanNode {
            table: "t".into(),
            connector: "raw".into(),
            output_schema: Arc::new(Schema::new(
                (0..10)
                    .map(|i| Field::new(format!("c{i}"), DataType::Float64, false))
                    .collect(),
            )),
            handle: Arc::new(DefaultTableHandle::all_columns()),
        })
    }

    fn col(i: usize) -> ScalarExpr {
        ScalarExpr::col(i, format!("c{i}"), DataType::Float64)
    }

    #[test]
    fn prunes_to_referenced_columns() {
        // Filter on c7, aggregate arg c2, key c5 → scan needs {2, 5, 7}.
        let plan = LogicalPlan::Aggregate {
            input: Box::new(LogicalPlan::Filter {
                input: Box::new(wide_scan()),
                predicate: ScalarExpr::Cmp {
                    op: CmpOp::Gt,
                    left: Arc::new(col(7)),
                    right: Arc::new(ScalarExpr::lit(Scalar::Float64(0.0))),
                },
            }),
            group_by: vec![(col(5), "c5".into())],
            aggs: vec![AggregateCall {
                func: AggFunc::Sum,
                arg: Some(col(2)),
                output_name: "s".into(),
            }],
        };
        let out = prune_projection(plan).unwrap();
        let scan = out.scan();
        assert_eq!(scan.output_schema.names(), vec!["c2", "c5", "c7"]);
        let h = scan
            .handle
            .as_any()
            .downcast_ref::<DefaultTableHandle>()
            .unwrap();
        assert_eq!(h.projection, Some(vec![2, 5, 7]));
        // Expressions were remapped to the narrow schema.
        out.validate().unwrap();
        match &out {
            LogicalPlan::Aggregate { group_by, aggs, .. } => {
                assert!(matches!(group_by[0].0, ScalarExpr::Column { index: 1, .. }));
                assert!(matches!(
                    aggs[0].arg.as_ref().unwrap(),
                    ScalarExpr::Column { index: 0, .. }
                ));
            }
            _ => panic!("expected aggregate root"),
        }
    }

    #[test]
    fn idempotent() {
        let plan = LogicalPlan::Project {
            input: Box::new(wide_scan()),
            exprs: vec![(col(3), "c3".into())],
        };
        let once = prune_projection(plan).unwrap();
        let twice = prune_projection(once.clone()).unwrap();
        assert_eq!(once.scan().output_schema, twice.scan().output_schema);
        once.validate().unwrap();
    }

    #[test]
    fn full_width_reference_is_noop() {
        let plan = LogicalPlan::Project {
            input: Box::new(wide_scan()),
            exprs: (0..10).map(|i| (col(i), format!("c{i}"))).collect(),
        };
        let out = prune_projection(plan).unwrap();
        assert_eq!(out.scan().output_schema.len(), 10);
    }
}
