//! Constant folding: evaluate literal-only subexpressions at plan time.

use std::sync::Arc;

use columnar::kernels::arith::ArithOp;
use columnar::{DataType, Scalar};

use crate::error::EResult;
use crate::expr::{AggregateCall, ScalarExpr};
use crate::plan::LogicalPlan;

/// Evaluate a literal-only expression to a scalar, if possible.
fn const_eval(e: &ScalarExpr) -> Option<Scalar> {
    match e {
        ScalarExpr::Literal(s) => Some(s.clone()),
        ScalarExpr::Arith { op, left, right } => {
            let l = const_eval(left)?;
            let r = const_eval(right)?;
            if l.is_null() || r.is_null() {
                return Some(Scalar::Null);
            }
            // Date ± days keeps Date32.
            if let (Scalar::Date32(d), Some(n)) = (&l, r.as_i64()) {
                return match op {
                    ArithOp::Add => Some(Scalar::Date32(d.wrapping_add(n as i32))),
                    ArithOp::Sub => Some(Scalar::Date32(d.wrapping_sub(n as i32))),
                    _ => None,
                };
            }
            match (l.data_type()?, r.data_type()?) {
                (DataType::Int64, DataType::Int64) => {
                    let (a, b) = (l.as_i64()?, r.as_i64()?);
                    Some(match op {
                        ArithOp::Add => Scalar::Int64(a.wrapping_add(b)),
                        ArithOp::Sub => Scalar::Int64(a.wrapping_sub(b)),
                        ArithOp::Mul => Scalar::Int64(a.wrapping_mul(b)),
                        ArithOp::Div => {
                            if b == 0 {
                                Scalar::Null
                            } else {
                                Scalar::Int64(a.wrapping_div(b))
                            }
                        }
                        ArithOp::Mod => {
                            if b == 0 {
                                Scalar::Null
                            } else {
                                Scalar::Int64(a.wrapping_rem(b))
                            }
                        }
                    })
                }
                _ => {
                    let (a, b) = (l.as_f64()?, r.as_f64()?);
                    Some(Scalar::Float64(match op {
                        ArithOp::Add => a + b,
                        ArithOp::Sub => a - b,
                        ArithOp::Mul => a * b,
                        ArithOp::Div => a / b,
                        ArithOp::Mod => a % b,
                    }))
                }
            }
        }
        ScalarExpr::Cmp { op, left, right } => {
            let l = const_eval(left)?;
            let r = const_eval(right)?;
            if l.is_null() || r.is_null() {
                return Some(Scalar::Null);
            }
            use columnar::kernels::cmp::CmpOp::*;
            let ord = l.total_cmp(&r);
            Some(Scalar::Boolean(match op {
                Eq => ord.is_eq(),
                NotEq => ord.is_ne(),
                Lt => ord.is_lt(),
                LtEq => ord.is_le(),
                Gt => ord.is_gt(),
                GtEq => ord.is_ge(),
            }))
        }
        ScalarExpr::Negate(inner) => match const_eval(inner)? {
            Scalar::Int64(v) => Some(Scalar::Int64(v.wrapping_neg())),
            Scalar::Float64(v) => Some(Scalar::Float64(-v)),
            Scalar::Null => Some(Scalar::Null),
            _ => None,
        },
        ScalarExpr::Not(inner) => match const_eval(inner)? {
            Scalar::Boolean(b) => Some(Scalar::Boolean(!b)),
            Scalar::Null => Some(Scalar::Null),
            _ => None,
        },
        ScalarExpr::Cast { expr, to } => const_eval(expr)?.cast(*to).ok(),
        _ => None,
    }
}

/// Fold an expression tree (post-order).
pub fn fold_expr(e: &ScalarExpr) -> ScalarExpr {
    // Fold this node wholesale if possible.
    if !matches!(e, ScalarExpr::Literal(_)) {
        if let Some(s) = const_eval(e) {
            return ScalarExpr::Literal(s);
        }
    }
    match e {
        ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
            op: *op,
            left: Arc::new(fold_expr(left)),
            right: Arc::new(fold_expr(right)),
        },
        ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
            op: *op,
            left: Arc::new(fold_expr(left)),
            right: Arc::new(fold_expr(right)),
        },
        ScalarExpr::And(a, b) => ScalarExpr::And(Arc::new(fold_expr(a)), Arc::new(fold_expr(b))),
        ScalarExpr::Or(a, b) => ScalarExpr::Or(Arc::new(fold_expr(a)), Arc::new(fold_expr(b))),
        ScalarExpr::Not(x) => ScalarExpr::Not(Arc::new(fold_expr(x))),
        ScalarExpr::Between { expr, lo, hi } => ScalarExpr::Between {
            expr: Arc::new(fold_expr(expr)),
            lo: Arc::new(fold_expr(lo)),
            hi: Arc::new(fold_expr(hi)),
        },
        ScalarExpr::Cast { expr, to } => ScalarExpr::Cast {
            expr: Arc::new(fold_expr(expr)),
            to: *to,
        },
        ScalarExpr::Negate(x) => ScalarExpr::Negate(Arc::new(fold_expr(x))),
        ScalarExpr::IsNull(x) => ScalarExpr::IsNull(Arc::new(fold_expr(x))),
        ScalarExpr::IsNotNull(x) => ScalarExpr::IsNotNull(Arc::new(fold_expr(x))),
        other => other.clone(),
    }
}

/// Fold every expression in the plan.
pub fn fold_constants(plan: LogicalPlan) -> EResult<LogicalPlan> {
    Ok(match plan {
        LogicalPlan::TableScan(s) => LogicalPlan::TableScan(s),
        LogicalPlan::Filter { input, predicate } => LogicalPlan::Filter {
            input: Box::new(fold_constants(*input)?),
            predicate: fold_expr(&predicate),
        },
        LogicalPlan::Project { input, exprs } => LogicalPlan::Project {
            input: Box::new(fold_constants(*input)?),
            exprs: exprs.into_iter().map(|(e, n)| (fold_expr(&e), n)).collect(),
        },
        LogicalPlan::Aggregate {
            input,
            group_by,
            aggs,
        } => LogicalPlan::Aggregate {
            input: Box::new(fold_constants(*input)?),
            group_by: group_by
                .into_iter()
                .map(|(e, n)| (fold_expr(&e), n))
                .collect(),
            aggs: aggs
                .into_iter()
                .map(|a| AggregateCall {
                    func: a.func,
                    arg: a.arg.as_ref().map(fold_expr),
                    output_name: a.output_name,
                })
                .collect(),
        },
        LogicalPlan::Sort { input, keys } => LogicalPlan::Sort {
            input: Box::new(fold_constants(*input)?),
            keys,
        },
        LogicalPlan::TopN { input, keys, limit } => LogicalPlan::TopN {
            input: Box::new(fold_constants(*input)?),
            keys,
            limit,
        },
        LogicalPlan::Limit { input, limit } => LogicalPlan::Limit {
            input: Box::new(fold_constants(*input)?),
            limit,
        },
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::kernels::cmp::CmpOp;

    fn lit_i(v: i64) -> ScalarExpr {
        ScalarExpr::lit(Scalar::Int64(v))
    }

    #[test]
    fn folds_tpch_date_arithmetic() {
        // DATE '1998-12-01' - INTERVAL '90' DAY (interval resolved to Int64).
        let e = ScalarExpr::Arith {
            op: ArithOp::Sub,
            left: Arc::new(ScalarExpr::lit(Scalar::Date32(10561))),
            right: Arc::new(lit_i(90)),
        };
        assert_eq!(fold_expr(&e), ScalarExpr::lit(Scalar::Date32(10471)));
    }

    #[test]
    fn folds_deepwater_modulus_constant() {
        // 500 * 500.
        let e = ScalarExpr::Arith {
            op: ArithOp::Mul,
            left: Arc::new(lit_i(500)),
            right: Arc::new(lit_i(500)),
        };
        assert_eq!(fold_expr(&e), lit_i(250_000));
    }

    #[test]
    fn folds_inside_non_constant_parent() {
        // (a % (500*500)) stays an Arith but its right side folds.
        let e = ScalarExpr::Arith {
            op: ArithOp::Mod,
            left: Arc::new(ScalarExpr::col(0, "a", DataType::Int64)),
            right: Arc::new(ScalarExpr::Arith {
                op: ArithOp::Mul,
                left: Arc::new(lit_i(500)),
                right: Arc::new(lit_i(500)),
            }),
        };
        match fold_expr(&e) {
            ScalarExpr::Arith { right, .. } => {
                assert_eq!(right.as_ref(), &lit_i(250_000));
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn folds_comparisons_and_division_by_zero() {
        let e = ScalarExpr::Cmp {
            op: CmpOp::Lt,
            left: Arc::new(lit_i(1)),
            right: Arc::new(lit_i(2)),
        };
        assert_eq!(fold_expr(&e), ScalarExpr::lit(Scalar::Boolean(true)));
        let e = ScalarExpr::Arith {
            op: ArithOp::Div,
            left: Arc::new(lit_i(1)),
            right: Arc::new(lit_i(0)),
        };
        assert_eq!(fold_expr(&e), ScalarExpr::lit(Scalar::Null));
    }

    #[test]
    fn float_folding() {
        // 1 - 0.05 -> 0.95.
        let e = ScalarExpr::Arith {
            op: ArithOp::Sub,
            left: Arc::new(lit_i(1)),
            right: Arc::new(ScalarExpr::lit(Scalar::Float64(0.05))),
        };
        assert_eq!(fold_expr(&e), ScalarExpr::lit(Scalar::Float64(0.95)));
    }
}
