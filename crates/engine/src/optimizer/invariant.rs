//! Differential invariant checking for optimizer rewrite rules.
//!
//! Every rule in [`super::optimize`] must preserve two invariants:
//!
//! 1. the rewritten plan still validates ([`LogicalPlan::validate`]), and
//! 2. its inferred root schema — field names and types — is unchanged
//!    from the pre-rewrite plan (a rewrite may reshape the tree but never
//!    what the query returns).
//!
//! [`checked`] wraps each rule application so a broken rule is caught *at
//! the rule that introduced the damage*, not three rules later when the
//! plan reaches the connector or, worse, the storage-side verifier. This
//! subsumes the single trailing `validate()` the pipeline used to run.

use columnar::SchemaRef;

use crate::error::{EResult, EngineError};
use crate::plan::LogicalPlan;

/// Verify that `after` (the output of rewrite rule `rule`) still validates
/// and that its inferred output schema matches `baseline` field-for-field
/// (names and types; nullability is a physical property rules may refine).
pub fn check_rewrite(rule: &str, baseline: &SchemaRef, after: &LogicalPlan) -> EResult<()> {
    after.validate().map_err(|e| {
        EngineError::Analysis(format!(
            "optimizer rule `{rule}` produced an invalid plan: {e}"
        ))
    })?;
    let now = after.schema()?;
    if now.len() != baseline.len() {
        return Err(EngineError::Analysis(format!(
            "optimizer rule `{rule}` changed the output arity: {} -> {}",
            baseline.len(),
            now.len()
        )));
    }
    for (before, after_f) in baseline.fields().iter().zip(now.fields()) {
        if before.name != after_f.name || before.data_type != after_f.data_type {
            return Err(EngineError::Analysis(format!(
                "optimizer rule `{rule}` changed output field `{}: {:?}` \
                 to `{}: {:?}`",
                before.name, before.data_type, after_f.name, after_f.data_type
            )));
        }
    }
    Ok(())
}

/// Apply the differential check to a rule's output, passing the plan
/// through unchanged on success. The check is cheap (schema inference on
/// a short linear chain), so it runs in every build — a rewrite bug is a
/// wrong-answer bug, and those never get a release-mode pass.
pub fn checked(rule: &str, baseline: &SchemaRef, after: LogicalPlan) -> EResult<LogicalPlan> {
    check_rewrite(rule, baseline, &after)?;
    Ok(after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::ScalarExpr;
    use crate::plan::TableScanNode;
    use crate::spi::DefaultTableHandle;
    use columnar::{DataType, Field, Scalar, Schema};
    use std::sync::Arc;

    fn project_plan() -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Float64, false),
        ]));
        LogicalPlan::Project {
            input: Box::new(LogicalPlan::TableScan(TableScanNode {
                table: "t".into(),
                connector: "raw".into(),
                output_schema: schema,
                handle: Arc::new(DefaultTableHandle::all_columns()),
            })),
            exprs: vec![
                (ScalarExpr::col(0, "a", DataType::Int64), "a".into()),
                (ScalarExpr::col(1, "b", DataType::Float64), "b".into()),
            ],
        }
    }

    /// A deliberately broken "rule": drops the second projection column.
    fn bad_rule_drops_column(plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::Project { input, mut exprs } => {
                exprs.truncate(1);
                LogicalPlan::Project { input, exprs }
            }
            other => other,
        }
    }

    /// A deliberately broken "rule": silently retypes a column.
    fn bad_rule_retypes(plan: LogicalPlan) -> LogicalPlan {
        match plan {
            LogicalPlan::Project { input, mut exprs } => {
                exprs[0].0 = ScalarExpr::lit(Scalar::Utf8("oops".into()));
                LogicalPlan::Project { input, exprs }
            }
            other => other,
        }
    }

    #[test]
    fn identity_rewrite_passes() {
        let plan = project_plan();
        let baseline = plan.schema().unwrap();
        let out = checked("identity", &baseline, plan).unwrap();
        assert_eq!(out.schema().unwrap(), baseline);
    }

    #[test]
    fn arity_change_is_caught_at_the_rule() {
        let plan = project_plan();
        let baseline = plan.schema().unwrap();
        let err = checked("bad_rule", &baseline, bad_rule_drops_column(plan)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("bad_rule"), "{msg}");
        assert!(msg.contains("arity"), "{msg}");
    }

    #[test]
    fn type_change_is_caught_at_the_rule() {
        let plan = project_plan();
        let baseline = plan.schema().unwrap();
        let err = checked("retyper", &baseline, bad_rule_retypes(plan)).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("retyper"), "{msg}");
        assert!(msg.contains("Int64"), "{msg}");
        assert!(msg.contains("Utf8"), "{msg}");
    }

    #[test]
    fn invalid_plan_is_caught_even_with_matching_schema() {
        // An empty projection fails validate() before any schema diff.
        let plan = project_plan();
        let baseline = plan.schema().unwrap();
        let broken = match plan {
            LogicalPlan::Project { input, .. } => LogicalPlan::Project {
                input,
                exprs: vec![],
            },
            _ => unreachable!(),
        };
        let err = check_rewrite("emptier", &baseline, &broken).unwrap_err();
        assert!(err.to_string().contains("emptier"), "{err}");
    }
}
