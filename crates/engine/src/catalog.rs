//! The metastore: table schemas, object locations and column statistics.
//!
//! Plays the role of the Hive Metastore in the paper — the source of the
//! min/max/NDV/row-count statistics the Presto-OCS connector's Selectivity
//! Analyzer consumes.

use std::collections::BTreeMap;
use std::sync::Arc;
use sync::DebugRwLock;

use columnar::SchemaRef;
use parq::ColumnStats;

use crate::error::{EResult, EngineError};

/// Where one table partition/object lives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ObjectLocation {
    /// Object-store bucket.
    pub bucket: String,
    /// Object key.
    pub key: String,
    /// Rows in the object (from write-time accounting).
    pub rows: u64,
    /// Object size in bytes (compressed, on "disk").
    pub bytes: u64,
    /// Per-object column statistics (partition-level metastore stats),
    /// indexed like the table schema; may be empty when unavailable.
    /// The OCS connector uses these to *prove* group keys never span
    /// objects before pushing top-N above a full in-storage aggregation.
    pub columns: Vec<ColumnStats>,
}

/// Table-level statistics (merged across objects).
#[derive(Debug, Clone, Default)]
pub struct TableStats {
    /// Total rows.
    pub row_count: u64,
    /// Per-column merged statistics, indexed like the schema.
    pub columns: Vec<ColumnStats>,
}

/// One registered table.
#[derive(Debug, Clone)]
pub struct TableMeta {
    /// Table name (lower-case).
    pub name: String,
    /// Which connector serves it.
    pub connector: String,
    /// Schema.
    pub schema: SchemaRef,
    /// Backing objects (the scan's split universe).
    pub objects: Vec<ObjectLocation>,
    /// Metastore statistics.
    pub stats: TableStats,
}

impl TableMeta {
    /// Total on-disk bytes across objects.
    pub fn total_bytes(&self) -> u64 {
        self.objects.iter().map(|o| o.bytes).sum()
    }

    /// Statistics for the column named `name`, if gathered.
    pub fn column_stats(&self, name: &str) -> Option<&ColumnStats> {
        let idx = self.schema.index_of(name).ok()?;
        self.stats.columns.get(idx)
    }
}

/// Thread-safe table registry.
#[derive(Debug)]
pub struct Metastore {
    tables: DebugRwLock<BTreeMap<String, Arc<TableMeta>>>,
}

impl Default for Metastore {
    fn default() -> Self {
        Metastore {
            tables: DebugRwLock::named("engine.catalog.tables", BTreeMap::new()),
        }
    }
}

impl Metastore {
    /// New empty metastore.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) a table.
    pub fn register(&self, meta: TableMeta) {
        self.tables
            .write()
            .insert(meta.name.to_ascii_lowercase(), Arc::new(meta));
    }

    /// Look a table up by (case-insensitive) name.
    pub fn table(&self, name: &str) -> EResult<Arc<TableMeta>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// Remove a table.
    pub fn drop_table(&self, name: &str) -> EResult<()> {
        self.tables
            .write()
            .remove(&name.to_ascii_lowercase())
            .map(|_| ())
            .ok_or_else(|| EngineError::UnknownTable(name.to_string()))
    }

    /// All table names.
    pub fn table_names(&self) -> Vec<String> {
        self.tables.read().keys().cloned().collect()
    }

    /// Re-register the same table under a different connector (used by the
    /// benchmarks to compare Raw / Hive / OCS access paths to one dataset).
    pub fn rebind_connector(&self, table: &str, connector: &str) -> EResult<()> {
        let meta = self.table(table)?;
        let mut new_meta = (*meta).clone();
        new_meta.connector = connector.to_string();
        self.register(new_meta);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::{DataType, Field, Schema};

    fn sample() -> TableMeta {
        TableMeta {
            name: "Points".into(),
            connector: "raw".into(),
            schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("x", DataType::Float64, false),
            ])),
            objects: vec![
                ObjectLocation {
                    bucket: "lake".into(),
                    key: "points/0".into(),
                    rows: 10,
                    bytes: 100,
                    ..Default::default()
                },
                ObjectLocation {
                    bucket: "lake".into(),
                    key: "points/1".into(),
                    rows: 20,
                    bytes: 250,
                    ..Default::default()
                },
            ],
            stats: TableStats {
                row_count: 30,
                columns: vec![ColumnStats::empty(), ColumnStats::empty()],
            },
        }
    }

    #[test]
    fn register_and_lookup_case_insensitive() {
        let m = Metastore::new();
        m.register(sample());
        assert!(m.table("points").is_ok());
        assert!(m.table("POINTS").is_ok());
        assert!(matches!(m.table("nope"), Err(EngineError::UnknownTable(_))));
        assert_eq!(m.table_names(), vec!["points"]);
        assert_eq!(m.table("points").unwrap().total_bytes(), 350);
    }

    #[test]
    fn rebind_connector_swaps_access_path() {
        let m = Metastore::new();
        m.register(sample());
        m.rebind_connector("points", "ocs").unwrap();
        assert_eq!(m.table("points").unwrap().connector, "ocs");
        assert!(m.rebind_connector("ghost", "ocs").is_err());
    }

    #[test]
    fn drop_table() {
        let m = Metastore::new();
        m.register(sample());
        m.drop_table("points").unwrap();
        assert!(m.table("points").is_err());
        assert!(m.drop_table("points").is_err());
    }

    #[test]
    fn column_stats_lookup() {
        let meta = sample();
        assert!(meta.column_stats("id").is_some());
        assert!(meta.column_stats("ghost").is_none());
    }
}
