//! The engine façade: connector registry, query lifecycle, event listeners.

use std::collections::HashMap;
use std::sync::Arc;

use columnar::prelude::*;
use netsim::{ClusterSpec, Ledger, Phase};
use parking_lot::RwLock;

use crate::analyzer::{analyze, AnalyzedQuery};
use crate::catalog::Metastore;
use crate::cost::CostParams;
use crate::error::{EResult, EngineError};
use crate::exec::execute_plan;
use crate::optimizer;
use crate::plan::LogicalPlan;
use crate::spi::{Connector, OptimizerContext};

/// Event emitted after every query (Presto's `EventListener` mechanism,
/// which the paper's connector uses for pushdown monitoring).
#[derive(Debug, Clone)]
pub struct QueryEvent {
    /// The SQL text.
    pub sql: String,
    /// Operator chain of the *optimized* plan.
    pub chain: String,
    /// Total simulated seconds.
    pub simulated_seconds: f64,
    /// Bytes moved storage → compute.
    pub moved_bytes: u64,
    /// Rows returned to the client.
    pub result_rows: u64,
    /// Description of the scan handle (reveals what was pushed down).
    pub scan_handle: String,
    /// Per-phase breakdown `(label, seconds, share %)`.
    pub breakdown: Vec<(String, f64, f64)>,
    /// Row groups storage skipped via late materialization.
    pub row_groups_skipped: u64,
    /// Encoded bytes storage never decoded via late materialization.
    pub decoded_bytes_avoided: u64,
    /// Pipeline completion time of the earliest batch frame.
    pub time_to_first_batch_s: f64,
    /// Peak encoded bytes buffered engine-side across all split streams.
    pub peak_buffered_bytes: u64,
    /// Frames that crossed the storage boundary.
    pub frames: u64,
}

/// Observer of query completion.
pub trait EventListener: Send + Sync {
    /// Called once per successfully executed query.
    fn query_completed(&self, event: &QueryEvent);
}

/// A finished query.
#[derive(Debug)]
pub struct QueryResult {
    /// Client-visible rows (output projection and names applied).
    pub batch: RecordBatch,
    /// Simulated-time ledger.
    pub ledger: Ledger,
    /// Total simulated seconds.
    pub simulated_seconds: f64,
    /// Bytes moved storage → compute.
    pub moved_bytes: u64,
    /// Link round trips.
    pub moved_requests: u64,
    /// Splits executed.
    pub splits: usize,
    /// Pretty-printed logical plan (pre-optimization).
    pub logical_plan: String,
    /// Pretty-printed optimized plan (post connector pushdown).
    pub optimized_plan: String,
    /// Operator chain string (Table 2 style).
    pub chain: String,
    /// Split-phase scheduling report (overlapped vs. additive makespan,
    /// streaming observability).
    pub pipeline: crate::exec::PipelineSummary,
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    cluster: ClusterSpec,
    cost: CostParams,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            cluster: ClusterSpec::paper_testbed(),
            cost: CostParams::default(),
        }
    }
}

impl EngineBuilder {
    /// Start from defaults (the paper's testbed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the cluster model.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Override cost parameters.
    pub fn cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Build the engine.
    pub fn build(self) -> Engine {
        Engine {
            metastore: Arc::new(Metastore::new()),
            connectors: RwLock::new(HashMap::new()),
            listeners: RwLock::new(Vec::new()),
            cluster: self.cluster,
            cost: self.cost,
        }
    }
}

/// The query engine (coordinator + in-process workers).
pub struct Engine {
    metastore: Arc<Metastore>,
    connectors: RwLock<HashMap<String, Arc<dyn Connector>>>,
    listeners: RwLock<Vec<Arc<dyn EventListener>>>,
    cluster: ClusterSpec,
    cost: CostParams,
}

impl Engine {
    /// The metastore, for dataset registration.
    pub fn metastore(&self) -> &Arc<Metastore> {
        &self.metastore
    }

    /// The cluster model in force.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The cost parameters in force.
    pub fn cost_params(&self) -> &CostParams {
        &self.cost
    }

    /// Register a connector under its own name.
    pub fn register_connector(&self, connector: Arc<dyn Connector>) {
        self.connectors
            .write()
            .insert(connector.name().to_string(), connector);
    }

    /// Attach an event listener.
    pub fn add_listener(&self, listener: Arc<dyn EventListener>) {
        self.listeners.write().push(listener);
    }

    /// Parse + analyze + optimize, without executing. Returns the analyzed
    /// query and the optimized plan.
    pub fn plan(&self, sql: &str) -> EResult<(AnalyzedQuery, LogicalPlan)> {
        let query = sqlparse::parse(sql)?;
        let analyzed = analyze(&query, &self.metastore)?;
        let plan = optimizer::optimize(analyzed.plan.clone())?;
        // Connector-specific local optimization (the paper's hook). A
        // connector rewrite is a rule like any other: it must preserve the
        // plan's output schema, so it runs under the same differential
        // invariant check as the global rules.
        let baseline = plan.schema()?;
        let scan_connector = plan.scan().connector.clone();
        let plan = match self
            .connectors
            .read()
            .get(&scan_connector)
            .and_then(|c| c.plan_optimizer())
        {
            Some(opt) => {
                let ctx = OptimizerContext {
                    metastore: &self.metastore,
                    cost: &self.cost,
                };
                optimizer::checked("connector pushdown", &baseline, opt.optimize(plan, &ctx)?)?
            }
            None => plan,
        };
        Ok((analyzed, plan))
    }

    /// Execute a SQL query end to end.
    pub fn execute(&self, sql: &str) -> EResult<QueryResult> {
        let query = sqlparse::parse(sql)?;
        let analyzed = analyze(&query, &self.metastore)?;
        let logical_plan = analyzed.plan.to_string();

        let pre = optimizer::optimize(analyzed.plan.clone())?;
        // Bill the connector plan traversal (Table 3 "Logical Plan
        // Analysis") even when no connector hook is present, since the
        // traversal itself always happens.
        let analysis_work = self.cost.plan_node_analyze * pre.node_count() as f64;

        let baseline = pre.schema()?;
        let scan_connector = pre.scan().connector.clone();
        let connectors = self.connectors.read().clone();
        let plan = match connectors
            .get(&scan_connector)
            .and_then(|c| c.plan_optimizer())
        {
            Some(opt) => {
                let ctx = OptimizerContext {
                    metastore: &self.metastore,
                    cost: &self.cost,
                };
                optimizer::checked("connector pushdown", &baseline, opt.optimize(pre, &ctx)?)?
            }
            None => pre,
        };
        let optimized_plan = plan.to_string();
        let chain = plan.chain_description();

        let outcome = execute_plan(
            &plan,
            &self.metastore,
            &connectors,
            &self.cluster,
            &self.cost,
        )?;
        outcome.ledger.add(
            Phase::PlanAnalysis,
            self.cluster.compute.core_seconds(analysis_work),
        );

        // Apply the client output projection (names + order).
        let projected = outcome.batch.project(&analyzed.output_columns)?;
        let fields = projected
            .schema()
            .fields()
            .iter()
            .zip(&analyzed.output_names)
            .map(|(f, name)| Field::new(name.clone(), f.data_type, f.nullable))
            .collect::<Vec<_>>();
        let batch =
            RecordBatch::try_new(Arc::new(Schema::new(fields)), projected.columns().to_vec())
                .map_err(EngineError::Columnar)?;

        let simulated_seconds = outcome.ledger.total();
        let event = QueryEvent {
            sql: sql.to_string(),
            chain: chain.clone(),
            simulated_seconds,
            moved_bytes: outcome.moved_bytes,
            result_rows: batch.num_rows() as u64,
            scan_handle: plan.scan().handle.describe(),
            breakdown: outcome.ledger.breakdown(),
            row_groups_skipped: outcome.row_groups_skipped,
            decoded_bytes_avoided: outcome.decoded_bytes_avoided,
            time_to_first_batch_s: outcome.pipeline.time_to_first_batch_s,
            peak_buffered_bytes: outcome.pipeline.peak_buffered_bytes,
            frames: outcome.pipeline.frames,
        };
        for l in self.listeners.read().iter() {
            l.query_completed(&event);
        }

        Ok(QueryResult {
            batch,
            simulated_seconds,
            moved_bytes: outcome.moved_bytes,
            moved_requests: outcome.moved_requests,
            splits: outcome.splits,
            ledger: outcome.ledger,
            logical_plan,
            optimized_plan,
            chain,
            pipeline: outcome.pipeline,
        })
    }
}
