//! The engine façade: connector registry, query lifecycle, event listeners.

use std::collections::HashMap;
use std::path::PathBuf;
use std::sync::Arc;

use columnar::prelude::*;
use netsim::{ClusterSpec, Ledger};
use sqlparse::{Query, StatementKind};
use sync::{DebugMutex, DebugRwLock};

use crate::analyzer::{analyze, AnalyzedQuery};
use crate::catalog::Metastore;
use crate::cost::CostParams;
use crate::error::{EResult, EngineError};
use crate::exec::execute_plan;
use crate::optimizer;
use crate::plan::LogicalPlan;
use crate::spi::{Connector, OptimizerContext};

/// Event emitted after every query (Presto's `EventListener` mechanism,
/// which the paper's connector uses for pushdown monitoring).
#[derive(Debug, Clone)]
pub struct QueryEvent {
    /// The SQL text.
    pub sql: String,
    /// Operator chain of the *optimized* plan.
    pub chain: String,
    /// Total simulated seconds.
    pub simulated_seconds: f64,
    /// Bytes moved storage → compute.
    pub moved_bytes: u64,
    /// Rows returned to the client.
    pub result_rows: u64,
    /// Description of the scan handle (reveals what was pushed down).
    pub scan_handle: String,
    /// Whether the scan handle pushed any operators into storage
    /// ([`crate::spi::TableHandle::pushes_operators`]).
    pub pushed: bool,
    /// Row groups storage skipped via late materialization.
    pub row_groups_skipped: u64,
    /// Encoded bytes storage never decoded via late materialization.
    pub decoded_bytes_avoided: u64,
    /// Column chunks served from the storage-side decoded row-group cache.
    pub rg_cache_hits: u64,
    /// Pushed subplans answered from the storage-side result cache.
    pub result_cache_hits: u64,
    /// Disk + decode bytes the storage caches kept off the cost ledger.
    pub cache_bytes_avoided: u64,
    /// The query's span tree on the simulated clock. Phase breakdowns,
    /// time-to-first-batch and peak buffered bytes are all derivable from
    /// it (see `split_phase` attrs). Empty when tracing is disabled.
    pub trace: Arc<obs::Trace>,
    /// Per-resource utilization timelines over the split phase (the input
    /// to bottleneck attribution; empty when no split work ran).
    pub profile: Arc<obs::Profile>,
}

/// Observer of query completion.
pub trait EventListener: Send + Sync {
    /// Called once per successfully executed query.
    fn query_completed(&self, event: &QueryEvent);
}

/// A finished query.
#[derive(Debug)]
pub struct QueryResult {
    /// Client-visible rows (output projection and names applied).
    pub batch: RecordBatch,
    /// Simulated-time ledger.
    pub ledger: Ledger,
    /// Total simulated seconds.
    pub simulated_seconds: f64,
    /// Bytes moved storage → compute.
    pub moved_bytes: u64,
    /// Link round trips.
    pub moved_requests: u64,
    /// Splits executed.
    pub splits: usize,
    /// Pretty-printed logical plan (pre-optimization).
    pub logical_plan: String,
    /// Pretty-printed optimized plan (post connector pushdown).
    pub optimized_plan: String,
    /// Operator chain string (Table 2 style).
    pub chain: String,
    /// Split-phase scheduling report (overlapped vs. additive makespan,
    /// streaming observability).
    pub pipeline: crate::exec::PipelineSummary,
    /// The query's span tree on the simulated clock (empty when tracing
    /// is disabled).
    pub trace: Arc<obs::Trace>,
    /// Per-resource utilization timelines over the split phase, with
    /// bottleneck attribution ([`obs::Profile::bottleneck`]).
    pub profile: Arc<obs::Profile>,
}

/// Output of [`Engine::execute_statement`]: rows for a plain query, text
/// for `EXPLAIN` / `EXPLAIN ANALYZE`.
#[derive(Debug)]
pub enum StatementOutput {
    /// A plain query's result (boxed: `QueryResult` is a large struct).
    Rows(Box<QueryResult>),
    /// Rendered `EXPLAIN` plan or `EXPLAIN ANALYZE` span tree.
    Text(String),
}

/// Builder for [`Engine`].
pub struct EngineBuilder {
    cluster: ClusterSpec,
    cost: CostParams,
    tracing: bool,
    slow_query_threshold: Option<f64>,
    incident_dir: Option<PathBuf>,
}

impl Default for EngineBuilder {
    fn default() -> Self {
        EngineBuilder {
            cluster: ClusterSpec::paper_testbed(),
            cost: CostParams::default(),
            tracing: true,
            slow_query_threshold: None,
            incident_dir: None,
        }
    }
}

impl EngineBuilder {
    /// Start from defaults (the paper's testbed).
    pub fn new() -> Self {
        Self::default()
    }

    /// Override the cluster model.
    pub fn cluster(mut self, cluster: ClusterSpec) -> Self {
        self.cluster = cluster;
        self
    }

    /// Override cost parameters.
    pub fn cost(mut self, cost: CostParams) -> Self {
        self.cost = cost;
        self
    }

    /// Enable or disable span recording (on by default; the `tracing-off`
    /// obs feature forces it off regardless).
    pub fn tracing(mut self, on: bool) -> Self {
        self.tracing = on;
        self
    }

    /// Auto-capture an incident report for any query whose simulated time
    /// exceeds `seconds` (off by default). A captured incident records a
    /// [`FlightKind::SlowQuery`](obs::FlightKind::SlowQuery) event and is
    /// retrievable via [`Engine::take_last_incident`].
    pub fn slow_query_threshold(mut self, seconds: f64) -> Self {
        self.slow_query_threshold = Some(seconds);
        self
    }

    /// Also write each captured incident report to
    /// `dir/incident-<seq>.json` (for `xtask report`).
    pub fn incident_dir(mut self, dir: impl Into<PathBuf>) -> Self {
        self.incident_dir = Some(dir.into());
        self
    }

    /// Build the engine.
    pub fn build(self) -> Engine {
        Engine {
            metastore: Arc::new(Metastore::new()),
            connectors: DebugRwLock::named("engine.session.connectors", HashMap::new()),
            listeners: DebugRwLock::named("engine.session.listeners", Vec::new()),
            cluster: self.cluster,
            cost: self.cost,
            tracing: self.tracing,
            slow_query_threshold: self.slow_query_threshold,
            incident_dir: self.incident_dir,
            last_incident: DebugMutex::named("engine.session.incident", None),
        }
    }
}

/// The query engine (coordinator + in-process workers).
pub struct Engine {
    metastore: Arc<Metastore>,
    connectors: DebugRwLock<HashMap<String, Arc<dyn Connector>>>,
    listeners: DebugRwLock<Vec<Arc<dyn EventListener>>>,
    cluster: ClusterSpec,
    cost: CostParams,
    tracing: bool,
    slow_query_threshold: Option<f64>,
    incident_dir: Option<PathBuf>,
    last_incident: DebugMutex<Option<String>>,
}

impl Engine {
    /// The metastore, for dataset registration.
    pub fn metastore(&self) -> &Arc<Metastore> {
        &self.metastore
    }

    /// The cluster model in force.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The cost parameters in force.
    pub fn cost_params(&self) -> &CostParams {
        &self.cost
    }

    /// Register a connector under its own name.
    pub fn register_connector(&self, connector: Arc<dyn Connector>) {
        self.connectors
            .write()
            .insert(connector.name().to_string(), connector);
    }

    /// Attach an event listener.
    pub fn add_listener(&self, listener: Arc<dyn EventListener>) {
        self.listeners.write().push(listener);
    }

    /// Parse + analyze + optimize, without executing. Returns the analyzed
    /// query and the optimized plan.
    pub fn plan(&self, sql: &str) -> EResult<(AnalyzedQuery, LogicalPlan)> {
        let query = sqlparse::parse(sql)?;
        self.plan_parsed(&query)
    }

    fn plan_parsed(&self, query: &Query) -> EResult<(AnalyzedQuery, LogicalPlan)> {
        let analyzed = analyze(query, &self.metastore)?;
        let plan = optimizer::optimize(analyzed.plan.clone())?;
        // Connector-specific local optimization (the paper's hook). A
        // connector rewrite is a rule like any other: it must preserve the
        // plan's output schema, so it runs under the same differential
        // invariant check as the global rules.
        let baseline = plan.schema()?;
        let scan_connector = plan.scan().connector.clone();
        let plan = match self
            .connectors
            .read()
            .get(&scan_connector)
            .and_then(|c| c.plan_optimizer())
        {
            Some(opt) => {
                let ctx = OptimizerContext {
                    metastore: &self.metastore,
                    cost: &self.cost,
                };
                optimizer::checked("connector pushdown", &baseline, opt.optimize(plan, &ctx)?)?
            }
            None => plan,
        };
        Ok((analyzed, plan))
    }

    /// Execute a SQL query end to end.
    pub fn execute(&self, sql: &str) -> EResult<QueryResult> {
        let query = sqlparse::parse(sql)?;
        let tracer = self.new_tracer();
        self.execute_parsed(&query, sql, &tracer)
    }

    /// Execute a statement: a plain query returns rows; `EXPLAIN` returns
    /// the optimized plan without executing; `EXPLAIN ANALYZE` executes
    /// and renders the annotated span tree over the simulated clock
    /// (tracing is forced on for it, regardless of the builder flag).
    pub fn execute_statement(&self, sql: &str) -> EResult<StatementOutput> {
        let stmt = sqlparse::parse_statement(sql)?;
        match stmt.kind {
            StatementKind::Query => {
                let tracer = self.new_tracer();
                Ok(StatementOutput::Rows(Box::new(self.execute_parsed(
                    &stmt.query,
                    sql,
                    &tracer,
                )?)))
            }
            StatementKind::Explain => {
                let (_, plan) = self.plan_parsed(&stmt.query)?;
                Ok(StatementOutput::Text(format!(
                    "EXPLAIN\nquery: {}\n\n{plan}",
                    sql.trim()
                )))
            }
            StatementKind::ExplainAnalyze => {
                let tracer = obs::Tracer::new();
                let flight_start = obs::flight().cursor();
                let result = self.execute_parsed(&stmt.query, sql, &tracer)?;
                let mut text = obs::explain::render_analyze(sql.trim(), &result.trace);
                if let Some(b) = result.profile.bottleneck() {
                    text.push_str(&format!("\nbottleneck: {b}\n"));
                }
                let events = obs::flight().since(flight_start);
                if !events.is_empty() {
                    text.push_str(&format!(
                        "flight events during query ({}, last {} shown):\n",
                        events.len(),
                        events.len().min(8)
                    ));
                    let tail = events.len().saturating_sub(8);
                    for e in &events[tail..] {
                        text.push_str(&format!("  #{} {}\n", e.seq, e.describe()));
                    }
                }
                Ok(StatementOutput::Text(text))
            }
        }
    }

    fn new_tracer(&self) -> obs::Tracer {
        if self.tracing {
            obs::Tracer::new()
        } else {
            obs::Tracer::disabled()
        }
    }

    /// The most recently captured slow-query incident report (JSON),
    /// clearing it. `None` when no query has tripped the threshold since
    /// the last take.
    pub fn take_last_incident(&self) -> Option<String> {
        self.last_incident.lock().take()
    }

    /// Capture a slow-query incident: record the [`obs::FlightKind::SlowQuery`]
    /// event, render the report and stash it (plus write it to the
    /// incident dir when configured — write failures surface as a metric,
    /// never as a query error).
    fn capture_incident(
        &self,
        sql: &str,
        simulated_seconds: f64,
        threshold_s: f64,
        flight_start: u64,
        trace: &obs::Trace,
        profile: &obs::Profile,
    ) {
        let recorder = obs::flight();
        let seq = recorder.record(
            obs::FlightKind::SlowQuery,
            (simulated_seconds * 1e6) as u64,
            (threshold_s * 1e6) as u64,
            flight_start,
        );
        let events = recorder.since(flight_start);
        let report = obs::incident::render(
            &obs::incident::IncidentMeta {
                sql: sql.to_string(),
                simulated_seconds,
                threshold_s,
            },
            trace,
            profile,
            &events,
        );
        if let Some(dir) = &self.incident_dir {
            let path = dir.join(format!("incident-{seq}.json"));
            if std::fs::create_dir_all(dir)
                .and_then(|_| std::fs::write(&path, &report))
                .is_err()
            {
                obs::metrics().counter("engine.incident_write_errors").inc();
            }
        }
        obs::metrics().counter("engine.slow_queries").inc();
        *self.last_incident.lock() = Some(report);
    }

    fn execute_parsed(
        &self,
        query: &Query,
        sql: &str,
        tracer: &obs::Tracer,
    ) -> EResult<QueryResult> {
        let flight_start = obs::flight().cursor();
        let analyzed = analyze(query, &self.metastore)?;
        let logical_plan = analyzed.plan.to_string();

        let pre = optimizer::optimize(analyzed.plan.clone())?;
        // Bill the connector plan traversal (Table 3 "Logical Plan
        // Analysis") even when no connector hook is present, since the
        // traversal itself always happens.
        let analysis_work = self.cost.plan_node_analyze * pre.node_count() as f64;

        let baseline = pre.schema()?;
        let scan_connector = pre.scan().connector.clone();
        let connectors = self.connectors.read().clone();
        let plan = match connectors
            .get(&scan_connector)
            .and_then(|c| c.plan_optimizer())
        {
            Some(opt) => {
                let ctx = OptimizerContext {
                    metastore: &self.metastore,
                    cost: &self.cost,
                };
                optimizer::checked("connector pushdown", &baseline, opt.optimize(pre, &ctx)?)?
            }
            None => pre,
        };
        let optimized_plan = plan.to_string();
        let chain = plan.chain_description();

        let outcome = execute_plan(
            &plan,
            &self.metastore,
            &connectors,
            &self.cluster,
            &self.cost,
            tracer,
            self.cluster.compute.core_seconds(analysis_work),
        )?;

        // Apply the client output projection (names + order).
        let projected = outcome.batch.project(&analyzed.output_columns)?;
        let fields = projected
            .schema()
            .fields()
            .iter()
            .zip(&analyzed.output_names)
            .map(|(f, name)| Field::new(name.clone(), f.data_type, f.nullable))
            .collect::<Vec<_>>();
        let batch =
            RecordBatch::try_new(Arc::new(Schema::new(fields)), projected.columns().to_vec())
                .map_err(EngineError::Columnar)?;

        let simulated_seconds = outcome.ledger.total();
        let trace = Arc::new(tracer.finish());
        let profile = Arc::new(outcome.profile);

        if let Some(threshold_s) = self.slow_query_threshold {
            if simulated_seconds > threshold_s {
                self.capture_incident(
                    sql,
                    simulated_seconds,
                    threshold_s,
                    flight_start,
                    &trace,
                    &profile,
                );
            }
        }

        let m = obs::metrics();
        m.counter("engine.queries").inc();
        m.counter("engine.moved_bytes").add(outcome.moved_bytes);
        m.counter("engine.result_rows").add(batch.num_rows() as u64);
        m.histogram("engine.simulated_seconds", obs::metrics::SECONDS_BUCKETS)
            .observe(simulated_seconds);

        let event = QueryEvent {
            sql: sql.to_string(),
            chain: chain.clone(),
            simulated_seconds,
            moved_bytes: outcome.moved_bytes,
            result_rows: batch.num_rows() as u64,
            scan_handle: plan.scan().handle.describe(),
            pushed: plan.scan().handle.pushes_operators(),
            row_groups_skipped: outcome.row_groups_skipped,
            decoded_bytes_avoided: outcome.decoded_bytes_avoided,
            rg_cache_hits: outcome.rg_cache_hits,
            result_cache_hits: outcome.result_cache_hits,
            cache_bytes_avoided: outcome.cache_bytes_avoided,
            trace: trace.clone(),
            profile: profile.clone(),
        };
        for l in self.listeners.read().iter() {
            l.query_completed(&event);
        }

        Ok(QueryResult {
            batch,
            simulated_seconds,
            moved_bytes: outcome.moved_bytes,
            moved_requests: outcome.moved_requests,
            splits: outcome.splits,
            ledger: outcome.ledger,
            logical_plan,
            optimized_plan,
            chain,
            pipeline: outcome.pipeline,
            trace,
            profile,
        })
    }
}
