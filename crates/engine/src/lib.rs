//! `dsq` — a distributed SQL query engine with a connector SPI, modeled on
//! Presto's architecture.
//!
//! This crate is the "Presto 0.286" of the reproduction. It implements the
//! coordinator pipeline of the paper's Figure 3:
//!
//! 1. **SQL parsing** (via the `sqlparse` crate) into an AST;
//! 2. **analysis** ([`analyzer`]) — name/type resolution against the
//!    [`catalog`] metastore, producing a logical plan of
//!    `TableScan`/`Filter`/`Project`/`Aggregation`/`Sort`/`TopN` nodes;
//! 3. **global optimization** ([`optimizer`]) — constant folding,
//!    projection pruning, `Sort+Limit → TopN` merging;
//! 4. **connector-specific optimization** — the
//!    [`spi::ConnectorPlanOptimizer`] hook, the exact seam the Presto-OCS
//!    connector plugs into;
//! 5. **physical planning and split generation** — one split per storage
//!    object, scheduled over the (simulated) worker cores;
//! 6. **vectorized execution** ([`exec`]) — parallel per-split pipelines
//!    (scan → filter → project → partial aggregation / local top-N)
//!    feeding a final single-stream stage, exactly Presto's
//!    partial/final two-phase operator model.
//!
//! Execution is real (correct results over real data); *time* is billed to
//! the `netsim` cost model, which is how the reproduction recovers the
//! paper's performance shapes without the 3-node testbed.
//!
//! The engine knows nothing about OCS: all storage access goes through the
//! [`spi::Connector`] trait, and the `ocs-connector` crate provides the
//! paper's contribution as a plugin, plus `HiveConnector` (filter-only
//! pushdown) and `RawConnector` (no pushdown) baselines.

#![warn(missing_docs)]

pub mod analyzer;
pub mod catalog;
pub mod cost;
pub mod error;
pub mod exec;
pub mod expr;
pub mod optimizer;
pub mod plan;
pub mod session;
pub mod spi;

pub use error::{EResult, EngineError};
pub use exec::PipelineSummary;
pub use session::{Engine, EngineBuilder, QueryEvent, QueryResult, StatementOutput};
