//! Logical plan nodes (Presto's `PlanNode` tree).

use std::fmt;
use std::sync::Arc;

use columnar::{Field, Schema, SchemaRef};

use crate::error::{EResult, EngineError};
use crate::expr::{AggregateCall, ScalarExpr};
use crate::spi::TableHandle;

/// One `ORDER BY` key resolved to a column ordinal of the node's input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Input column ordinal.
    pub column: usize,
    /// Ascending.
    pub ascending: bool,
    /// NULLs first.
    pub nulls_first: bool,
}

/// The table-scan leaf. `handle` is connector-private state; after
/// connector optimization it may encode an entire pushed-down operator
/// chain (the paper's "modified TableScan operator").
#[derive(Debug, Clone)]
pub struct TableScanNode {
    /// Catalog table name.
    pub table: String,
    /// Serving connector name.
    pub connector: String,
    /// Schema this scan emits (changes when operators are folded in).
    pub output_schema: SchemaRef,
    /// Connector-specific handle.
    pub handle: Arc<dyn TableHandle>,
}

/// The logical plan tree. All plans in this dialect are linear chains over
/// a single scan (joins are future work, as in the paper's evaluation).
#[derive(Debug, Clone)]
pub enum LogicalPlan {
    /// Leaf scan.
    TableScan(TableScanNode),
    /// Row filter.
    Filter {
        /// Input.
        input: Box<LogicalPlan>,
        /// Boolean predicate.
        predicate: ScalarExpr,
    },
    /// Expression projection (replaces columns).
    Project {
        /// Input.
        input: Box<LogicalPlan>,
        /// `(expr, output name)` pairs.
        exprs: Vec<(ScalarExpr, String)>,
    },
    /// Hash aggregation.
    Aggregate {
        /// Input.
        input: Box<LogicalPlan>,
        /// Group-by expressions with output names.
        group_by: Vec<(ScalarExpr, String)>,
        /// Aggregate calls.
        aggs: Vec<AggregateCall>,
    },
    /// Full sort.
    Sort {
        /// Input.
        input: Box<LogicalPlan>,
        /// Keys, major first.
        keys: Vec<SortKey>,
    },
    /// Bounded sort (`ORDER BY … LIMIT n`).
    TopN {
        /// Input.
        input: Box<LogicalPlan>,
        /// Keys.
        keys: Vec<SortKey>,
        /// Row bound.
        limit: u64,
    },
    /// Plain limit.
    Limit {
        /// Input.
        input: Box<LogicalPlan>,
        /// Row bound.
        limit: u64,
    },
}

impl LogicalPlan {
    /// The node's input, if any.
    pub fn input(&self) -> Option<&LogicalPlan> {
        match self {
            LogicalPlan::TableScan(_) => None,
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Project { input, .. }
            | LogicalPlan::Aggregate { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::TopN { input, .. }
            | LogicalPlan::Limit { input, .. } => Some(input),
        }
    }

    /// Replace this node's input (panics on a leaf — callers check).
    pub fn with_input(&self, new_input: LogicalPlan) -> LogicalPlan {
        match self {
            LogicalPlan::TableScan(_) => panic!("TableScan has no input"),
            LogicalPlan::Filter { predicate, .. } => LogicalPlan::Filter {
                input: Box::new(new_input),
                predicate: predicate.clone(),
            },
            LogicalPlan::Project { exprs, .. } => LogicalPlan::Project {
                input: Box::new(new_input),
                exprs: exprs.clone(),
            },
            LogicalPlan::Aggregate { group_by, aggs, .. } => LogicalPlan::Aggregate {
                input: Box::new(new_input),
                group_by: group_by.clone(),
                aggs: aggs.clone(),
            },
            LogicalPlan::Sort { keys, .. } => LogicalPlan::Sort {
                input: Box::new(new_input),
                keys: keys.clone(),
            },
            LogicalPlan::TopN { keys, limit, .. } => LogicalPlan::TopN {
                input: Box::new(new_input),
                keys: keys.clone(),
                limit: *limit,
            },
            LogicalPlan::Limit { limit, .. } => LogicalPlan::Limit {
                input: Box::new(new_input),
                limit: *limit,
            },
        }
    }

    /// The scan leaf of the chain.
    pub fn scan(&self) -> &TableScanNode {
        match self {
            LogicalPlan::TableScan(s) => s,
            other => other.input().expect("non-leaf has input").scan(),
        }
    }

    /// Compute the output schema.
    pub fn schema(&self) -> EResult<SchemaRef> {
        match self {
            LogicalPlan::TableScan(s) => Ok(s.output_schema.clone()),
            LogicalPlan::Filter { input, .. }
            | LogicalPlan::Sort { input, .. }
            | LogicalPlan::TopN { input, .. }
            | LogicalPlan::Limit { input, .. } => input.schema(),
            LogicalPlan::Project { input, exprs } => {
                input.schema()?; // validate below
                let fields = exprs
                    .iter()
                    .map(|(e, name)| Field::new(name.clone(), e.data_type(), true))
                    .collect();
                Ok(Arc::new(Schema::new(fields)))
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                input.schema()?;
                let mut fields = Vec::with_capacity(group_by.len() + aggs.len());
                for (e, name) in group_by {
                    fields.push(Field::new(name.clone(), e.data_type(), true));
                }
                for a in aggs {
                    fields.push(Field::new(a.output_name.clone(), a.output_type()?, true));
                }
                Ok(Arc::new(Schema::new(fields)))
            }
        }
    }

    /// Operator-name chain from leaf to root, e.g.
    /// `TableScan → Filter → Aggregation → TopN` (the paper's Table 2
    /// "Execution Plan" column).
    pub fn chain_description(&self) -> String {
        let mut names = Vec::new();
        let mut cur = Some(self);
        while let Some(node) = cur {
            names.push(node.name());
            cur = node.input();
        }
        names.reverse();
        names.join(" -> ")
    }

    /// Node display name (Presto's naming).
    pub fn name(&self) -> &'static str {
        match self {
            LogicalPlan::TableScan(_) => "TableScan",
            LogicalPlan::Filter { .. } => "Filter",
            LogicalPlan::Project { .. } => "Project",
            LogicalPlan::Aggregate { .. } => "Aggregation",
            LogicalPlan::Sort { .. } => "Sort",
            LogicalPlan::TopN { .. } => "TopN",
            LogicalPlan::Limit { .. } => "Limit",
        }
    }

    /// Total node count.
    pub fn node_count(&self) -> usize {
        1 + self.input().map(|i| i.node_count()).unwrap_or(0)
    }

    /// Validate plan shape: sort keys and expression column references in
    /// range of the input arity, non-empty Project/Aggregate.
    pub fn validate(&self) -> EResult<()> {
        if let Some(input) = self.input() {
            input.validate()?;
        }
        match self {
            LogicalPlan::Sort { input, keys } | LogicalPlan::TopN { input, keys, .. } => {
                let arity = input.schema()?.len();
                for k in keys {
                    if k.column >= arity {
                        return Err(EngineError::Analysis(format!(
                            "sort key #{} out of range for arity {arity}",
                            k.column
                        )));
                    }
                }
            }
            LogicalPlan::Filter { input, predicate } => {
                expr_refs_in_range(predicate, input.schema()?.len(), "filter predicate")?;
            }
            LogicalPlan::Project { input, exprs } => {
                if exprs.is_empty() {
                    return Err(EngineError::Analysis("empty projection".into()));
                }
                let arity = input.schema()?.len();
                for (e, _) in exprs {
                    expr_refs_in_range(e, arity, "projection")?;
                }
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                if group_by.is_empty() && aggs.is_empty() {
                    return Err(EngineError::Analysis("empty aggregation".into()));
                }
                let arity = input.schema()?.len();
                for (e, _) in group_by {
                    expr_refs_in_range(e, arity, "group-by key")?;
                }
                for a in aggs {
                    if let Some(arg) = &a.arg {
                        expr_refs_in_range(arg, arity, "aggregate argument")?;
                    }
                }
            }
            _ => {}
        }
        self.schema().map(|_| ())
    }

    fn fmt_indent(&self, f: &mut fmt::Formatter<'_>, depth: usize) -> fmt::Result {
        let pad = "  ".repeat(depth);
        match self {
            LogicalPlan::TableScan(s) => writeln!(
                f,
                "{pad}TableScan[{} via {}] {}",
                s.table,
                s.connector,
                s.handle.describe()
            ),
            LogicalPlan::Filter { input, predicate } => {
                writeln!(f, "{pad}Filter[{predicate}]")?;
                input.fmt_indent(f, depth + 1)
            }
            LogicalPlan::Project { input, exprs } => {
                let cols: Vec<String> = exprs.iter().map(|(e, n)| format!("{n}:={e}")).collect();
                writeln!(f, "{pad}Project[{}]", cols.join(", "))?;
                input.fmt_indent(f, depth + 1)
            }
            LogicalPlan::Aggregate {
                input,
                group_by,
                aggs,
            } => {
                let keys: Vec<String> = group_by.iter().map(|(e, n)| format!("{n}:={e}")).collect();
                let calls: Vec<String> = aggs
                    .iter()
                    .map(|a| format!("{}:={a}", a.output_name))
                    .collect();
                writeln!(
                    f,
                    "{pad}Aggregation[keys=({}) aggs=({})]",
                    keys.join(", "),
                    calls.join(", ")
                )?;
                input.fmt_indent(f, depth + 1)
            }
            LogicalPlan::Sort { input, keys } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("#{}{}", k.column, if k.ascending { "" } else { " DESC" }))
                    .collect();
                writeln!(f, "{pad}Sort[{}]", ks.join(", "))?;
                input.fmt_indent(f, depth + 1)
            }
            LogicalPlan::TopN { input, keys, limit } => {
                let ks: Vec<String> = keys
                    .iter()
                    .map(|k| format!("#{}{}", k.column, if k.ascending { "" } else { " DESC" }))
                    .collect();
                writeln!(f, "{pad}TopN[{} limit={limit}]", ks.join(", "))?;
                input.fmt_indent(f, depth + 1)
            }
            LogicalPlan::Limit { input, limit } => {
                writeln!(f, "{pad}Limit[{limit}]")?;
                input.fmt_indent(f, depth + 1)
            }
        }
    }
}

/// Every column `e` references must be `< arity` (the engine-side mirror
/// of the storage verifier's field-bounds pass).
fn expr_refs_in_range(e: &ScalarExpr, arity: usize, node: &str) -> EResult<()> {
    let mut refs = Vec::new();
    e.referenced_columns(&mut refs);
    if let Some(&bad) = refs.iter().find(|&&c| c >= arity) {
        return Err(EngineError::Analysis(format!(
            "{node} references column #{bad} but its input has arity {arity}"
        )));
    }
    Ok(())
}

impl fmt::Display for LogicalPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.fmt_indent(f, 0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spi::DefaultTableHandle;
    use columnar::agg::AggFunc;
    use columnar::{DataType, Scalar};

    fn scan() -> LogicalPlan {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Float64, false),
        ]));
        LogicalPlan::TableScan(TableScanNode {
            table: "t".into(),
            connector: "raw".into(),
            output_schema: schema,
            handle: Arc::new(DefaultTableHandle::all_columns()),
        })
    }

    fn filter_plan() -> LogicalPlan {
        LogicalPlan::Filter {
            input: Box::new(scan()),
            predicate: ScalarExpr::Cmp {
                op: columnar::kernels::cmp::CmpOp::Gt,
                left: Arc::new(ScalarExpr::col(1, "x", DataType::Float64)),
                right: Arc::new(ScalarExpr::lit(Scalar::Float64(0.0))),
            },
        }
    }

    #[test]
    fn schema_through_chain() {
        let agg = LogicalPlan::Aggregate {
            input: Box::new(filter_plan()),
            group_by: vec![(ScalarExpr::col(0, "id", DataType::Int64), "id".into())],
            aggs: vec![AggregateCall {
                func: AggFunc::Avg,
                arg: Some(ScalarExpr::col(1, "x", DataType::Float64)),
                output_name: "avg_x".into(),
            }],
        };
        let s = agg.schema().unwrap();
        assert_eq!(s.names(), vec!["id", "avg_x"]);
        assert_eq!(
            agg.chain_description(),
            "TableScan -> Filter -> Aggregation"
        );
        assert_eq!(agg.node_count(), 3);
        assert_eq!(agg.scan().table, "t");
        agg.validate().unwrap();
    }

    #[test]
    fn sort_key_validation() {
        let bad = LogicalPlan::TopN {
            input: Box::new(scan()),
            keys: vec![SortKey {
                column: 7,
                ascending: true,
                nulls_first: true,
            }],
            limit: 5,
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn with_input_replaces_child() {
        let f = filter_plan();
        let replaced = f.with_input(scan());
        assert_eq!(replaced.node_count(), 2);
        assert!(matches!(replaced, LogicalPlan::Filter { .. }));
    }

    #[test]
    fn display_shows_structure() {
        let p = filter_plan();
        let text = p.to_string();
        assert!(text.contains("Filter[(x > 0)]"));
        assert!(text.contains("TableScan[t via raw]"));
    }
}
