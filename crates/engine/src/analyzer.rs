//! Semantic analysis: AST → logical plan (step 2 of the coordinator
//! pipeline in the paper's Figure 3).
//!
//! Resolves names against the metastore, types every expression, detects
//! aggregation queries, and produces the node shapes the paper's Table 2
//! reports (e.g. Laghos: `TableScan → Filter → Aggregation → TopN` with no
//! Project because all aggregate arguments are plain columns, Deep Water:
//! `TableScan → Filter → Project → Aggregation` because `MAX` is applied
//! to an arithmetic expression).

use std::sync::Arc;

use columnar::agg::AggFunc;
use columnar::kernels::arith::ArithOp;
use columnar::kernels::cmp::CmpOp;
use columnar::{DataType, Scalar, Schema, SchemaRef};
use sqlparse::ast::{AstExpr, BinaryOp, Query, UnaryOp};

use crate::catalog::Metastore;
use crate::error::{EResult, EngineError};
use crate::expr::{AggregateCall, ScalarExpr};
use crate::plan::{LogicalPlan, SortKey, TableScanNode};
use crate::spi::DefaultTableHandle;

/// A fully analyzed query: the plan plus the output mapping (Presto's
/// OutputNode: which plan columns, under which names, in which order).
#[derive(Debug, Clone)]
pub struct AnalyzedQuery {
    /// The logical plan chain.
    pub plan: LogicalPlan,
    /// For each SELECT item: the plan-output column it maps to.
    pub output_columns: Vec<usize>,
    /// Client-visible column names.
    pub output_names: Vec<String>,
}

impl AnalyzedQuery {
    /// The client-visible schema.
    pub fn output_schema(&self) -> EResult<SchemaRef> {
        let plan_schema = self.plan.schema()?;
        let fields = self
            .output_columns
            .iter()
            .zip(&self.output_names)
            .map(|(&i, name)| {
                let f = plan_schema.field(i);
                columnar::Field::new(name.clone(), f.data_type, f.nullable)
            })
            .collect();
        Ok(Arc::new(Schema::new(fields)))
    }
}

/// Analyze a parsed query against the metastore.
pub fn analyze(query: &Query, metastore: &Metastore) -> EResult<AnalyzedQuery> {
    let table = metastore.table(&query.from.name)?;
    let scan_schema = table.schema.clone();
    let mut plan = LogicalPlan::TableScan(TableScanNode {
        table: table.name.clone(),
        connector: table.connector.clone(),
        output_schema: scan_schema.clone(),
        handle: Arc::new(DefaultTableHandle::all_columns()),
    });

    // WHERE.
    if let Some(w) = &query.where_clause {
        let predicate = resolve(w, &scan_schema)?;
        if predicate.data_type() != DataType::Boolean {
            return Err(EngineError::Analysis(format!(
                "WHERE clause has type {}, expected Boolean",
                predicate.data_type()
            )));
        }
        plan = LogicalPlan::Filter {
            input: Box::new(plan),
            predicate,
        };
    }

    let is_aggregate = !query.group_by.is_empty()
        || query
            .select
            .iter()
            .any(|item| contains_aggregate(&item.expr));

    let (mut plan, output_columns, output_names) = if is_aggregate {
        build_aggregate(query, plan, &scan_schema)?
    } else {
        build_projection(query, plan, &scan_schema)?
    };

    // ORDER BY against the current plan output (aliases resolve naturally
    // because aggregate/project outputs carry their aliases as names).
    if !query.order_by.is_empty() {
        let schema = plan.schema()?;
        let mut keys = Vec::with_capacity(query.order_by.len());
        for item in &query.order_by {
            let column = resolve_order_key(&item.expr, &schema, query)?;
            keys.push(SortKey {
                column,
                ascending: item.ascending,
                nulls_first: item.ascending, // ASC ⇒ NULLS FIRST convention
            });
        }
        plan = LogicalPlan::Sort {
            input: Box::new(plan),
            keys,
        };
    }

    if let Some(limit) = query.limit {
        plan = LogicalPlan::Limit {
            input: Box::new(plan),
            limit,
        };
    }

    plan.validate()?;
    Ok(AnalyzedQuery {
        plan,
        output_columns,
        output_names,
    })
}

/// Build the aggregate path. Returns (plan, output mapping, names).
fn build_aggregate(
    query: &Query,
    input: LogicalPlan,
    scan_schema: &SchemaRef,
) -> EResult<(LogicalPlan, Vec<usize>, Vec<String>)> {
    // Resolve group keys.
    let mut group_by: Vec<(ScalarExpr, String)> = Vec::with_capacity(query.group_by.len());
    for (i, g) in query.group_by.iter().enumerate() {
        let e = resolve(g, scan_schema)?;
        let name = match &e {
            ScalarExpr::Column { name, .. } => name.clone(),
            _ => format!("group_{i}"),
        };
        group_by.push((e, name));
    }

    // Resolve select items into measures / key references.
    let mut aggs: Vec<AggregateCall> = Vec::new();
    let mut output_columns = Vec::with_capacity(query.select.len());
    let mut output_names = Vec::with_capacity(query.select.len());
    for (i, item) in query.select.iter().enumerate() {
        match &item.expr {
            AstExpr::Func { name, args, star } if AggFunc::from_name(name).is_some() => {
                let func = AggFunc::from_name(name).expect("checked");
                let arg = if *star {
                    None
                } else {
                    if args.len() != 1 {
                        return Err(EngineError::Analysis(format!(
                            "{name} takes exactly one argument"
                        )));
                    }
                    Some(resolve(&args[0], scan_schema)?)
                };
                let output_name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| format!("{}_{i}", func.sql()));
                // Output position: after all group keys.
                output_columns.push(group_by.len() + aggs.len());
                output_names.push(output_name.clone());
                aggs.push(AggregateCall {
                    func,
                    arg,
                    output_name,
                });
            }
            other => {
                // Must match a group key.
                let e = resolve(other, scan_schema)?;
                let pos = group_by.iter().position(|(g, _)| *g == e).ok_or_else(|| {
                    EngineError::Analysis(format!(
                        "select item '{other}' is neither aggregated nor in GROUP BY"
                    ))
                })?;
                let name = item
                    .alias
                    .clone()
                    .unwrap_or_else(|| group_by[pos].1.clone());
                // Rename the key if aliased.
                if item.alias.is_some() {
                    group_by[pos].1 = name.clone();
                }
                output_columns.push(pos);
                output_names.push(name);
            }
        }
    }

    // If any key or argument is a non-trivial expression, materialize a
    // Project beneath the aggregation (the Table 2 "Project" node).
    let needs_project = group_by
        .iter()
        .map(|(e, _)| e)
        .chain(aggs.iter().filter_map(|a| a.arg.as_ref()))
        .any(|e| !matches!(e, ScalarExpr::Column { .. }));

    let input = if needs_project {
        let mut proj_exprs: Vec<(ScalarExpr, String)> = Vec::new();
        let intern = |e: &ScalarExpr, hint: String, proj: &mut Vec<(ScalarExpr, String)>| {
            if let Some(pos) = proj.iter().position(|(p, _)| p == e) {
                pos
            } else {
                proj.push((e.clone(), hint));
                proj.len() - 1
            }
        };
        // Rebind keys and args to projected columns.
        let mut new_group: Vec<(ScalarExpr, String)> = Vec::new();
        for (e, name) in &group_by {
            let pos = intern(e, name.clone(), &mut proj_exprs);
            new_group.push((
                ScalarExpr::col(pos, proj_exprs[pos].1.clone(), e.data_type()),
                name.clone(),
            ));
        }
        let mut new_aggs: Vec<AggregateCall> = Vec::new();
        for (i, a) in aggs.iter().enumerate() {
            let arg = match &a.arg {
                None => None,
                Some(e) => {
                    let pos = intern(e, format!("expr_{i}"), &mut proj_exprs);
                    Some(ScalarExpr::col(
                        pos,
                        proj_exprs[pos].1.clone(),
                        e.data_type(),
                    ))
                }
            };
            new_aggs.push(AggregateCall {
                func: a.func,
                arg,
                output_name: a.output_name.clone(),
            });
        }
        group_by = new_group;
        aggs = new_aggs;
        LogicalPlan::Project {
            input: Box::new(input),
            exprs: proj_exprs,
        }
    } else {
        input
    };

    let plan = LogicalPlan::Aggregate {
        input: Box::new(input),
        group_by,
        aggs,
    };
    Ok((plan, output_columns, output_names))
}

/// Build the non-aggregate path: a Project of the select list.
fn build_projection(
    query: &Query,
    input: LogicalPlan,
    scan_schema: &SchemaRef,
) -> EResult<(LogicalPlan, Vec<usize>, Vec<String>)> {
    let mut exprs = Vec::with_capacity(query.select.len());
    let mut output_columns = Vec::with_capacity(query.select.len());
    let mut output_names = Vec::with_capacity(query.select.len());
    for (i, item) in query.select.iter().enumerate() {
        let e = resolve(&item.expr, scan_schema)?;
        let name = item.alias.clone().unwrap_or_else(|| match &e {
            ScalarExpr::Column { name, .. } => name.clone(),
            _ => format!("col_{i}"),
        });
        output_columns.push(i);
        output_names.push(name.clone());
        exprs.push((e, name));
    }
    let plan = LogicalPlan::Project {
        input: Box::new(input),
        exprs,
    };
    Ok((plan, output_columns, output_names))
}

/// Resolve an ORDER BY key: by output-schema name first, then (for
/// aggregates) by matching a select alias.
fn resolve_order_key(expr: &AstExpr, schema: &SchemaRef, query: &Query) -> EResult<usize> {
    if let AstExpr::Ident(name) = expr {
        if let Ok(i) = schema.index_of(name) {
            return Ok(i);
        }
        // Alias of a select item → its plan column (aliases were already
        // written into aggregate/project output names, so reaching here
        // means the name simply doesn't exist).
        let _ = query;
        return Err(EngineError::Analysis(format!(
            "ORDER BY column '{name}' not found in output {schema}"
        )));
    }
    Err(EngineError::Analysis(format!(
        "ORDER BY only supports output column references, got '{expr}'"
    )))
}

/// True if the expression contains an aggregate function call.
fn contains_aggregate(e: &AstExpr) -> bool {
    match e {
        AstExpr::Func { name, .. } => AggFunc::from_name(name).is_some(),
        AstExpr::Binary { left, right, .. } => {
            contains_aggregate(left) || contains_aggregate(right)
        }
        AstExpr::Unary { expr, .. } => contains_aggregate(expr),
        AstExpr::Between { expr, lo, hi, .. } => {
            contains_aggregate(expr) || contains_aggregate(lo) || contains_aggregate(hi)
        }
        AstExpr::IsNull { expr, .. } => contains_aggregate(expr),
        _ => false,
    }
}

/// Resolve an AST expression against `schema`.
pub fn resolve(e: &AstExpr, schema: &SchemaRef) -> EResult<ScalarExpr> {
    Ok(match e {
        AstExpr::Ident(name) => {
            let idx = schema.index_of(name).map_err(|_| {
                EngineError::Analysis(format!("unknown column '{name}' in {schema}"))
            })?;
            ScalarExpr::col(idx, name.clone(), schema.field(idx).data_type)
        }
        AstExpr::Int(v) => ScalarExpr::lit(Scalar::Int64(*v)),
        AstExpr::Float(v) => ScalarExpr::lit(Scalar::Float64(*v)),
        AstExpr::Str(s) => ScalarExpr::lit(Scalar::Utf8(s.clone())),
        AstExpr::Date(d) => ScalarExpr::lit(Scalar::Date32(*d)),
        AstExpr::Bool(b) => ScalarExpr::lit(Scalar::Boolean(*b)),
        AstExpr::Null => ScalarExpr::lit(Scalar::Null),
        AstExpr::IntervalDays(n) => ScalarExpr::lit(Scalar::Int64(*n)),
        AstExpr::Binary { op, left, right } => {
            let l = resolve(left, schema)?;
            let r = resolve(right, schema)?;
            match op {
                BinaryOp::And => ScalarExpr::And(Arc::new(l), Arc::new(r)),
                BinaryOp::Or => ScalarExpr::Or(Arc::new(l), Arc::new(r)),
                BinaryOp::Eq => cmp(CmpOp::Eq, l, r),
                BinaryOp::NotEq => cmp(CmpOp::NotEq, l, r),
                BinaryOp::Lt => cmp(CmpOp::Lt, l, r),
                BinaryOp::LtEq => cmp(CmpOp::LtEq, l, r),
                BinaryOp::Gt => cmp(CmpOp::Gt, l, r),
                BinaryOp::GtEq => cmp(CmpOp::GtEq, l, r),
                BinaryOp::Add => arith(ArithOp::Add, l, r)?,
                BinaryOp::Sub => arith(ArithOp::Sub, l, r)?,
                BinaryOp::Mul => arith(ArithOp::Mul, l, r)?,
                BinaryOp::Div => arith(ArithOp::Div, l, r)?,
                BinaryOp::Mod => arith(ArithOp::Mod, l, r)?,
            }
        }
        AstExpr::Unary { op, expr } => {
            let inner = resolve(expr, schema)?;
            match op {
                UnaryOp::Neg => ScalarExpr::Negate(Arc::new(inner)),
                UnaryOp::Not => ScalarExpr::Not(Arc::new(inner)),
            }
        }
        AstExpr::Between {
            expr,
            lo,
            hi,
            negated,
        } => {
            let b = ScalarExpr::Between {
                expr: Arc::new(resolve(expr, schema)?),
                lo: Arc::new(resolve(lo, schema)?),
                hi: Arc::new(resolve(hi, schema)?),
            };
            if *negated {
                ScalarExpr::Not(Arc::new(b))
            } else {
                b
            }
        }
        AstExpr::IsNull { expr, negated } => {
            let inner = Arc::new(resolve(expr, schema)?);
            if *negated {
                ScalarExpr::IsNotNull(inner)
            } else {
                ScalarExpr::IsNull(inner)
            }
        }
        AstExpr::Func { name, .. } => {
            return Err(EngineError::Analysis(format!(
                "function '{name}' is not valid in this context \
                 (aggregates belong in the SELECT list)"
            )));
        }
    })
}

fn cmp(op: CmpOp, l: ScalarExpr, r: ScalarExpr) -> ScalarExpr {
    ScalarExpr::Cmp {
        op,
        left: Arc::new(l),
        right: Arc::new(r),
    }
}

fn arith(op: ArithOp, l: ScalarExpr, r: ScalarExpr) -> EResult<ScalarExpr> {
    // Validate typing eagerly for a friendly error.
    op.result_type(l.data_type(), r.data_type())
        .map_err(|e| EngineError::Analysis(e.to_string()))?;
    Ok(ScalarExpr::Arith {
        op,
        left: Arc::new(l),
        right: Arc::new(r),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::{ObjectLocation, TableMeta, TableStats};
    use columnar::Field;

    fn metastore() -> Metastore {
        let m = Metastore::new();
        m.register(TableMeta {
            name: "points".into(),
            connector: "raw".into(),
            schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int64, false),
                Field::new("x", DataType::Float64, false),
                Field::new("y", DataType::Float64, false),
                Field::new("tag", DataType::Utf8, false),
                Field::new("d", DataType::Date32, false),
            ])),
            objects: vec![ObjectLocation {
                bucket: "lake".into(),
                key: "points/0".into(),
                rows: 100,
                bytes: 1000,
                ..Default::default()
            }],
            stats: TableStats::default(),
        });
        m
    }

    fn plan_for(sql: &str) -> AnalyzedQuery {
        let q = sqlparse::parse(sql).unwrap();
        analyze(&q, &metastore()).unwrap()
    }

    #[test]
    fn simple_projection_plan() {
        let a = plan_for("SELECT x, id FROM points WHERE x > 0.5");
        assert_eq!(a.plan.chain_description(), "TableScan -> Filter -> Project");
        assert_eq!(a.output_names, vec!["x", "id"]);
        assert_eq!(a.output_schema().unwrap().names(), vec!["x", "id"]);
    }

    #[test]
    fn laghos_shape_has_no_project() {
        let a = plan_for(
            "SELECT min(id) AS vid, avg(x) AS e FROM points \
             WHERE x BETWEEN 0.8 AND 3.2 GROUP BY id ORDER BY e LIMIT 100",
        );
        // Plain-column agg args → Aggregation sits directly on the Filter.
        assert_eq!(
            a.plan.chain_description(),
            "TableScan -> Filter -> Aggregation -> Sort -> Limit"
        );
    }

    #[test]
    fn deepwater_shape_has_project() {
        let a =
            plan_for("SELECT MAX((id % 250000)/500), tag FROM points WHERE x > 0.1 GROUP BY tag");
        assert_eq!(
            a.plan.chain_description(),
            "TableScan -> Filter -> Project -> Aggregation"
        );
        // Output order: MAX first, key second.
        assert_eq!(a.output_columns, vec![1, 0]);
    }

    #[test]
    fn group_key_alias_and_order() {
        let a =
            plan_for("SELECT tag AS t, count(*) AS n FROM points GROUP BY tag ORDER BY n DESC, t");
        let schema = a.plan.schema().unwrap();
        assert_eq!(schema.names(), vec!["t", "n"]);
        match &a.plan {
            LogicalPlan::Sort { keys, .. } => {
                assert_eq!(keys[0].column, 1);
                assert!(!keys[0].ascending);
                assert_eq!(keys[1].column, 0);
            }
            other => panic!("expected sort at root, got {}", other.name()),
        }
    }

    #[test]
    fn date_interval_arithmetic_resolves() {
        let a = plan_for("SELECT id FROM points WHERE d <= DATE '1998-12-01' - INTERVAL '90' DAY");
        assert!(a.plan.chain_description().contains("Filter"));
    }

    #[test]
    fn errors() {
        let m = metastore();
        let bad = |sql: &str| {
            let q = sqlparse::parse(sql).unwrap();
            analyze(&q, &m).unwrap_err()
        };
        assert!(matches!(
            bad("SELECT a FROM ghost"),
            EngineError::UnknownTable(_)
        ));
        assert!(bad("SELECT nope FROM points").to_string().contains("nope"));
        assert!(bad("SELECT x FROM points WHERE x + 1")
            .to_string()
            .contains("Boolean"));
        assert!(bad("SELECT x, count(*) FROM points GROUP BY id")
            .to_string()
            .contains("neither aggregated"));
        assert!(bad("SELECT count(*) FROM points ORDER BY ghost")
            .to_string()
            .contains("ghost"));
        assert!(bad("SELECT median(x) FROM points GROUP BY id")
            .to_string()
            .contains("median"));
        // String arithmetic is rejected at analysis.
        assert!(bad("SELECT tag + 1 FROM points")
            .to_string()
            .contains("arithmetic"));
    }

    #[test]
    fn count_star_global_aggregate() {
        let a = plan_for("SELECT count(*) FROM points");
        assert_eq!(a.plan.chain_description(), "TableScan -> Aggregation");
        let s = a.plan.schema().unwrap();
        assert_eq!(s.len(), 1);
        assert_eq!(s.field(0).data_type, DataType::Int64);
    }
}
