//! The engine's internal scalar expression representation and its
//! vectorized evaluator.
//!
//! This is deliberately a *separate* type from `substrait_ir::Expr`: Presto
//! evaluates its own `RowExpression`s, and the Presto-OCS connector's job
//! (implemented in the `ocs-connector` crate) is to *translate* these into
//! Substrait IR — the translation whose overhead the paper's Table 3
//! quantifies.

use std::fmt;
use std::sync::Arc;

use columnar::kernels::arith::{arith, negate, ArithOp};
use columnar::kernels::boolean;
use columnar::kernels::cast::cast;
use columnar::kernels::cmp::{self, CmpOp};
use columnar::prelude::*;

use crate::error::{EResult, EngineError};

/// A typed, resolved scalar expression.
#[derive(Debug, Clone, PartialEq)]
pub enum ScalarExpr {
    /// Reference to input column `index` (name and type kept for display
    /// and translation).
    Column {
        /// Ordinal in the input schema.
        index: usize,
        /// Resolved column name.
        name: String,
        /// Resolved type.
        dtype: DataType,
    },
    /// A literal.
    Literal(Scalar),
    /// Comparison.
    Cmp {
        /// Operator.
        op: CmpOp,
        /// Left operand.
        left: Arc<ScalarExpr>,
        /// Right operand.
        right: Arc<ScalarExpr>,
    },
    /// Arithmetic.
    Arith {
        /// Operator.
        op: ArithOp,
        /// Left operand.
        left: Arc<ScalarExpr>,
        /// Right operand.
        right: Arc<ScalarExpr>,
    },
    /// Kleene AND.
    And(Arc<ScalarExpr>, Arc<ScalarExpr>),
    /// Kleene OR.
    Or(Arc<ScalarExpr>, Arc<ScalarExpr>),
    /// NOT.
    Not(Arc<ScalarExpr>),
    /// Inclusive range test.
    Between {
        /// Tested expression.
        expr: Arc<ScalarExpr>,
        /// Lower bound.
        lo: Arc<ScalarExpr>,
        /// Upper bound.
        hi: Arc<ScalarExpr>,
    },
    /// Cast.
    Cast {
        /// Input.
        expr: Arc<ScalarExpr>,
        /// Target type.
        to: DataType,
    },
    /// Unary minus.
    Negate(Arc<ScalarExpr>),
    /// IS NULL.
    IsNull(Arc<ScalarExpr>),
    /// IS NOT NULL.
    IsNotNull(Arc<ScalarExpr>),
}

impl ScalarExpr {
    /// Shorthand column reference.
    pub fn col(index: usize, name: impl Into<String>, dtype: DataType) -> ScalarExpr {
        ScalarExpr::Column {
            index,
            name: name.into(),
            dtype,
        }
    }

    /// Shorthand literal.
    pub fn lit(s: Scalar) -> ScalarExpr {
        ScalarExpr::Literal(s)
    }

    /// The expression's output type (inputs were resolved at analysis).
    pub fn data_type(&self) -> DataType {
        match self {
            ScalarExpr::Column { dtype, .. } => *dtype,
            ScalarExpr::Literal(s) => s.data_type().unwrap_or(DataType::Boolean),
            ScalarExpr::Cmp { .. }
            | ScalarExpr::And(..)
            | ScalarExpr::Or(..)
            | ScalarExpr::Not(..)
            | ScalarExpr::Between { .. }
            | ScalarExpr::IsNull(..)
            | ScalarExpr::IsNotNull(..) => DataType::Boolean,
            ScalarExpr::Arith { op, left, right } => op
                .result_type(left.data_type(), right.data_type())
                .unwrap_or(DataType::Float64),
            ScalarExpr::Cast { to, .. } => *to,
            ScalarExpr::Negate(e) => e.data_type(),
        }
    }

    /// Evaluate over a batch, producing one array of `batch.num_rows()`.
    pub fn eval(&self, batch: &RecordBatch) -> EResult<Array> {
        match self {
            ScalarExpr::Column { index, name, .. } => {
                if *index >= batch.num_columns() {
                    return Err(EngineError::Execution(format!(
                        "column {name} (#{index}) out of range"
                    )));
                }
                Ok(batch.column(*index).as_ref().clone())
            }
            ScalarExpr::Literal(s) => {
                let dt = s.data_type().unwrap_or(DataType::Boolean);
                Array::from_scalar(s, dt, batch.num_rows()).map_err(EngineError::Columnar)
            }
            ScalarExpr::Cmp { op, left, right } => {
                // Scalar fast path: column vs literal.
                if let ScalarExpr::Literal(s) = right.as_ref() {
                    let l = left.eval(batch)?;
                    return Ok(Array::Boolean(
                        cmp::compare_scalar(&l, s, *op).map_err(EngineError::Columnar)?,
                    ));
                }
                if let ScalarExpr::Literal(s) = left.as_ref() {
                    let r = right.eval(batch)?;
                    return Ok(Array::Boolean(
                        cmp::compare_scalar(&r, s, op.flip()).map_err(EngineError::Columnar)?,
                    ));
                }
                let (l, r) = (left.eval(batch)?, right.eval(batch)?);
                Ok(Array::Boolean(
                    cmp::compare(&l, &r, *op).map_err(EngineError::Columnar)?,
                ))
            }
            ScalarExpr::Arith { op, left, right } => {
                if let ScalarExpr::Literal(s) = right.as_ref() {
                    let l = left.eval(batch)?;
                    return columnar::kernels::arith::arith_scalar(&l, s, *op)
                        .map_err(EngineError::Columnar);
                }
                let (l, r) = (left.eval(batch)?, right.eval(batch)?);
                arith(&l, &r, *op).map_err(EngineError::Columnar)
            }
            ScalarExpr::And(a, b) => {
                let (x, y) = (a.eval(batch)?, b.eval(batch)?);
                Ok(Array::Boolean(
                    boolean::and(x.as_bool()?, y.as_bool()?).map_err(EngineError::Columnar)?,
                ))
            }
            ScalarExpr::Or(a, b) => {
                let (x, y) = (a.eval(batch)?, b.eval(batch)?);
                Ok(Array::Boolean(
                    boolean::or(x.as_bool()?, y.as_bool()?).map_err(EngineError::Columnar)?,
                ))
            }
            ScalarExpr::Not(e) => {
                let x = e.eval(batch)?;
                Ok(Array::Boolean(boolean::not(x.as_bool()?)))
            }
            ScalarExpr::Between { expr, lo, hi } => {
                // Common fast path: literal bounds.
                if let (ScalarExpr::Literal(l), ScalarExpr::Literal(h)) = (lo.as_ref(), hi.as_ref())
                {
                    let x = expr.eval(batch)?;
                    return Ok(Array::Boolean(
                        cmp::between_scalar(&x, l, h).map_err(EngineError::Columnar)?,
                    ));
                }
                let x = expr.eval(batch)?;
                let l = lo.eval(batch)?;
                let h = hi.eval(batch)?;
                let ge = cmp::compare(&x, &l, CmpOp::GtEq).map_err(EngineError::Columnar)?;
                let le = cmp::compare(&x, &h, CmpOp::LtEq).map_err(EngineError::Columnar)?;
                Ok(Array::Boolean(
                    boolean::and(&ge, &le).map_err(EngineError::Columnar)?,
                ))
            }
            ScalarExpr::Cast { expr, to } => {
                let x = expr.eval(batch)?;
                cast(&x, *to).map_err(EngineError::Columnar)
            }
            ScalarExpr::Negate(e) => {
                let x = e.eval(batch)?;
                negate(&x).map_err(EngineError::Columnar)
            }
            ScalarExpr::IsNull(e) => {
                let x = e.eval(batch)?;
                Ok(Array::Boolean(cmp::is_null(&x)))
            }
            ScalarExpr::IsNotNull(e) => {
                let x = e.eval(batch)?;
                Ok(Array::Boolean(cmp::is_not_null(&x)))
            }
        }
    }

    /// Column indices this expression reads.
    pub fn referenced_columns(&self, out: &mut Vec<usize>) {
        match self {
            ScalarExpr::Column { index, .. } => {
                if !out.contains(index) {
                    out.push(*index);
                }
            }
            ScalarExpr::Literal(_) => {}
            ScalarExpr::Cmp { left, right, .. } | ScalarExpr::Arith { left, right, .. } => {
                left.referenced_columns(out);
                right.referenced_columns(out);
            }
            ScalarExpr::And(a, b) | ScalarExpr::Or(a, b) => {
                a.referenced_columns(out);
                b.referenced_columns(out);
            }
            ScalarExpr::Not(e)
            | ScalarExpr::Cast { expr: e, .. }
            | ScalarExpr::Negate(e)
            | ScalarExpr::IsNull(e)
            | ScalarExpr::IsNotNull(e) => e.referenced_columns(out),
            ScalarExpr::Between { expr, lo, hi } => {
                expr.referenced_columns(out);
                lo.referenced_columns(out);
                hi.referenced_columns(out);
            }
        }
    }

    /// Rewrite column indices through `map` (old → new).
    pub fn remap_columns(&self, map: &dyn Fn(usize) -> usize) -> ScalarExpr {
        match self {
            ScalarExpr::Column { index, name, dtype } => ScalarExpr::Column {
                index: map(*index),
                name: name.clone(),
                dtype: *dtype,
            },
            ScalarExpr::Literal(s) => ScalarExpr::Literal(s.clone()),
            ScalarExpr::Cmp { op, left, right } => ScalarExpr::Cmp {
                op: *op,
                left: Arc::new(left.remap_columns(map)),
                right: Arc::new(right.remap_columns(map)),
            },
            ScalarExpr::Arith { op, left, right } => ScalarExpr::Arith {
                op: *op,
                left: Arc::new(left.remap_columns(map)),
                right: Arc::new(right.remap_columns(map)),
            },
            ScalarExpr::And(a, b) => ScalarExpr::And(
                Arc::new(a.remap_columns(map)),
                Arc::new(b.remap_columns(map)),
            ),
            ScalarExpr::Or(a, b) => ScalarExpr::Or(
                Arc::new(a.remap_columns(map)),
                Arc::new(b.remap_columns(map)),
            ),
            ScalarExpr::Not(e) => ScalarExpr::Not(Arc::new(e.remap_columns(map))),
            ScalarExpr::Between { expr, lo, hi } => ScalarExpr::Between {
                expr: Arc::new(expr.remap_columns(map)),
                lo: Arc::new(lo.remap_columns(map)),
                hi: Arc::new(hi.remap_columns(map)),
            },
            ScalarExpr::Cast { expr, to } => ScalarExpr::Cast {
                expr: Arc::new(expr.remap_columns(map)),
                to: *to,
            },
            ScalarExpr::Negate(e) => ScalarExpr::Negate(Arc::new(e.remap_columns(map))),
            ScalarExpr::IsNull(e) => ScalarExpr::IsNull(Arc::new(e.remap_columns(map))),
            ScalarExpr::IsNotNull(e) => ScalarExpr::IsNotNull(Arc::new(e.remap_columns(map))),
        }
    }

    /// Complexity weight per row (mirrors `substrait_ir::Expr::op_weight`).
    pub fn weight(&self) -> u32 {
        match self {
            ScalarExpr::Column { .. } | ScalarExpr::Literal(_) => 0,
            ScalarExpr::Cmp { left, right, .. } => 1 + left.weight() + right.weight(),
            ScalarExpr::Arith { op, left, right } => {
                let base = match op {
                    ArithOp::Div | ArithOp::Mod => 4,
                    _ => 1,
                };
                base + left.weight() + right.weight()
            }
            ScalarExpr::And(a, b) | ScalarExpr::Or(a, b) => 1 + a.weight() + b.weight(),
            ScalarExpr::Not(e) | ScalarExpr::Negate(e) => 1 + e.weight(),
            ScalarExpr::Between { expr, lo, hi } => 2 + expr.weight() + lo.weight() + hi.weight(),
            ScalarExpr::Cast { expr, .. } => 1 + expr.weight(),
            ScalarExpr::IsNull(e) | ScalarExpr::IsNotNull(e) => 1 + e.weight(),
        }
    }

    /// True if the expression contains no column references (foldable).
    pub fn is_constant(&self) -> bool {
        let mut refs = Vec::new();
        self.referenced_columns(&mut refs);
        refs.is_empty()
    }
}

impl fmt::Display for ScalarExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ScalarExpr::Column { name, .. } => write!(f, "{name}"),
            ScalarExpr::Literal(s) => write!(f, "{s}"),
            ScalarExpr::Cmp { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            ScalarExpr::Arith { op, left, right } => {
                write!(f, "({left} {} {right})", op.sql())
            }
            ScalarExpr::And(a, b) => write!(f, "({a} AND {b})"),
            ScalarExpr::Or(a, b) => write!(f, "({a} OR {b})"),
            ScalarExpr::Not(e) => write!(f, "(NOT {e})"),
            ScalarExpr::Between { expr, lo, hi } => {
                write!(f, "({expr} BETWEEN {lo} AND {hi})")
            }
            ScalarExpr::Cast { expr, to } => write!(f, "CAST({expr} AS {to})"),
            ScalarExpr::Negate(e) => write!(f, "(-{e})"),
            ScalarExpr::IsNull(e) => write!(f, "({e} IS NULL)"),
            ScalarExpr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
        }
    }
}

/// One aggregate call in an `Aggregate` plan node.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateCall {
    /// The function.
    pub func: columnar::agg::AggFunc,
    /// Argument expression (None = `COUNT(*)`).
    pub arg: Option<ScalarExpr>,
    /// Output column name.
    pub output_name: String,
}

impl AggregateCall {
    /// Output type of this call.
    pub fn output_type(&self) -> EResult<DataType> {
        self.func
            .result_type(self.arg.as_ref().map(|a| a.data_type()))
            .map_err(EngineError::Columnar)
    }
}

impl fmt::Display for AggregateCall {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}({})",
            self.func.sql(),
            self.arg
                .as_ref()
                .map(|a| a.to_string())
                .unwrap_or_else(|| "*".into())
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc as StdArc;

    fn batch() -> RecordBatch {
        let schema = StdArc::new(Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("x", DataType::Float64, false),
        ]));
        RecordBatch::try_new(
            schema,
            vec![
                StdArc::new(Array::from_i64(vec![1, 2, 3, 4])),
                StdArc::new(Array::from_f64(vec![0.5, 1.5, 2.5, 3.5])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn eval_comparison_and_boolean() {
        let b = batch();
        let e = ScalarExpr::And(
            Arc::new(ScalarExpr::Cmp {
                op: CmpOp::Gt,
                left: Arc::new(ScalarExpr::col(0, "a", DataType::Int64)),
                right: Arc::new(ScalarExpr::lit(Scalar::Int64(1))),
            }),
            Arc::new(ScalarExpr::Cmp {
                op: CmpOp::Lt,
                left: Arc::new(ScalarExpr::col(1, "x", DataType::Float64)),
                right: Arc::new(ScalarExpr::lit(Scalar::Float64(3.0))),
            }),
        );
        let out = e.eval(&b).unwrap();
        let mask = out.as_bool().unwrap();
        assert_eq!(mask.values.set_indices(), vec![1, 2]);
        assert_eq!(e.data_type(), DataType::Boolean);
    }

    #[test]
    fn eval_arithmetic_expression() {
        let b = batch();
        // (a % 3) / 2 over ints.
        let e = ScalarExpr::Arith {
            op: ArithOp::Div,
            left: Arc::new(ScalarExpr::Arith {
                op: ArithOp::Mod,
                left: Arc::new(ScalarExpr::col(0, "a", DataType::Int64)),
                right: Arc::new(ScalarExpr::lit(Scalar::Int64(3))),
            }),
            right: Arc::new(ScalarExpr::lit(Scalar::Int64(2))),
        };
        let out = e.eval(&b).unwrap();
        assert_eq!(out.as_i64().unwrap().values, vec![0, 1, 0, 0]);
        assert_eq!(e.data_type(), DataType::Int64);
        assert!(e.weight() >= 8, "division-heavy expr weight {}", e.weight());
    }

    #[test]
    fn eval_literal_flipped_comparison() {
        let b = batch();
        // 2 < a  ==  a > 2.
        let e = ScalarExpr::Cmp {
            op: CmpOp::Lt,
            left: Arc::new(ScalarExpr::lit(Scalar::Int64(2))),
            right: Arc::new(ScalarExpr::col(0, "a", DataType::Int64)),
        };
        let out = e.eval(&b).unwrap();
        assert_eq!(out.as_bool().unwrap().values.set_indices(), vec![2, 3]);
    }

    #[test]
    fn eval_between_and_cast() {
        let b = batch();
        let e = ScalarExpr::Between {
            expr: Arc::new(ScalarExpr::col(1, "x", DataType::Float64)),
            lo: Arc::new(ScalarExpr::lit(Scalar::Float64(1.0))),
            hi: Arc::new(ScalarExpr::lit(Scalar::Float64(3.0))),
        };
        let out = e.eval(&b).unwrap();
        assert_eq!(out.as_bool().unwrap().values.set_indices(), vec![1, 2]);
        let c = ScalarExpr::Cast {
            expr: Arc::new(ScalarExpr::col(0, "a", DataType::Int64)),
            to: DataType::Float64,
        };
        assert_eq!(c.eval(&b).unwrap().data_type(), DataType::Float64);
    }

    #[test]
    fn referenced_and_remap() {
        let e = ScalarExpr::Arith {
            op: ArithOp::Add,
            left: Arc::new(ScalarExpr::col(3, "p", DataType::Int64)),
            right: Arc::new(ScalarExpr::col(1, "q", DataType::Int64)),
        };
        let mut refs = Vec::new();
        e.referenced_columns(&mut refs);
        assert_eq!(refs, vec![3, 1]);
        let r = e.remap_columns(&|i| i * 10);
        let mut refs = Vec::new();
        r.referenced_columns(&mut refs);
        assert_eq!(refs, vec![30, 10]);
    }

    #[test]
    fn constant_detection() {
        assert!(ScalarExpr::lit(Scalar::Int64(5)).is_constant());
        let e = ScalarExpr::Arith {
            op: ArithOp::Mul,
            left: Arc::new(ScalarExpr::lit(Scalar::Int64(500))),
            right: Arc::new(ScalarExpr::lit(Scalar::Int64(500))),
        };
        assert!(e.is_constant());
        assert!(!ScalarExpr::col(0, "a", DataType::Int64).is_constant());
    }
}
