//! Span trees over the simulated clock.
//!
//! The workspace's "time" is the netsim cost model: simulated seconds are
//! *computed*, not observed, so a span's placement on the sim clock is
//! supplied explicitly by the layer that computed it — the engine lays its
//! phase spans out of the ledger, the pipeline scheduler supplies per-frame
//! completion times, and the OCS storage node records a local timeline
//! starting at its own `t = 0`. Wall-clock seconds (for real CPU work such
//! as decode/agg kernels) ride along as an optional annotation.
//!
//! Crossing the RPC boundary: the storage side exports its spans as flat
//! [`SpanRec`] records (explicit ids, local clock), the trailer frame
//! carries them, and the engine side [`Tracer::graft`]s them under the
//! query's split span — ids are re-minted, times are mapped monotonically
//! into the parent's window, and the original local duration is kept as a
//! `local_s` attribute.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use sync::DebugMutex;

/// Identifier of one span within a [`Tracer`]. Ids are dense, start at 1,
/// and id 0 is the wire encoding of "no parent".
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(pub u64);

/// An attribute value attached to a span.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned counter (rows, bytes, frames, …).
    U64(u64),
    /// Seconds, rates, shares.
    F64(f64),
    /// Free-form label.
    Str(String),
}

impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}

impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}

impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::U64(v) => write!(f, "{v}"),
            AttrValue::F64(v) => write!(f, "{v:.6}"),
            AttrValue::Str(v) => write!(f, "{v}"),
        }
    }
}

/// One finished span.
#[derive(Debug, Clone, PartialEq)]
pub struct Span {
    /// Dense id within the owning trace.
    pub id: SpanId,
    /// Parent span, `None` for roots.
    pub parent: Option<SpanId>,
    /// Name (dotted, e.g. `split_phase` or `storage.scan`).
    pub name: String,
    /// Category: groups spans onto display tracks (`phase`, `split`,
    /// `op`, `storage`, …). Chrome export maps one category per thread
    /// row so same-track spans never overlap.
    pub cat: String,
    /// Simulated start, seconds from the query epoch.
    pub start_s: f64,
    /// Simulated end, seconds from the query epoch.
    pub end_s: f64,
    /// Measured wall-clock seconds of real CPU work, when recorded.
    pub wall_s: Option<f64>,
    /// Attached attributes (rows, bytes, …), in insertion order.
    pub attrs: Vec<(String, AttrValue)>,
    /// True when the span was closed exactly once (guards that are
    /// dropped without an explicit close are flagged, which the span
    /// property tests assert never happens in the instrumented paths).
    pub closed_cleanly: bool,
}

impl Span {
    /// Simulated duration in seconds.
    pub fn seconds(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }

    /// Look up an attribute.
    pub fn attr(&self, key: &str) -> Option<&AttrValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a `u64` attribute.
    pub fn attr_u64(&self, key: &str) -> Option<u64> {
        match self.attr(key) {
            Some(AttrValue::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// Look up an `f64` attribute.
    pub fn attr_f64(&self, key: &str) -> Option<f64> {
        match self.attr(key) {
            Some(AttrValue::F64(v)) => Some(*v),
            _ => None,
        }
    }
}

#[derive(Debug)]
struct TracerInner {
    spans: DebugMutex<Vec<Span>>,
    next: AtomicU64,
}

impl Default for TracerInner {
    fn default() -> TracerInner {
        TracerInner {
            spans: DebugMutex::named("obs.span.spans", Vec::new()),
            next: AtomicU64::new(0),
        }
    }
}

/// A handle recording spans for one query. Clones share the same trace;
/// the disabled tracer records nothing and costs one branch per call.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<TracerInner>>,
}

impl Tracer {
    /// An enabled tracer (no-op when built with `tracing-off`).
    pub fn new() -> Tracer {
        if cfg!(feature = "tracing-off") {
            return Tracer::disabled();
        }
        Tracer {
            inner: Some(Arc::new(TracerInner::default())),
        }
    }

    /// The no-op tracer.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// True when spans are being recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn push(&self, span: Span) -> SpanId {
        match &self.inner {
            None => SpanId(0),
            Some(inner) => {
                let id = span.id;
                inner.spans.lock().push(span);
                id
            }
        }
    }

    fn mint(&self) -> SpanId {
        match &self.inner {
            None => SpanId(0),
            // RELAXED: a pure id allocator — ids only need uniqueness, no
            // ordering with any other memory access.
            Some(inner) => SpanId(inner.next.fetch_add(1, Ordering::Relaxed) + 1),
        }
    }

    /// Record a closed span `[start_s, end_s]` on the simulated clock.
    pub fn record(
        &self,
        name: impl Into<String>,
        cat: &str,
        parent: Option<SpanId>,
        start_s: f64,
        end_s: f64,
    ) -> SpanId {
        if self.inner.is_none() {
            return SpanId(0);
        }
        let id = self.mint();
        self.push(Span {
            id,
            parent,
            name: name.into(),
            cat: cat.to_string(),
            start_s,
            end_s: end_s.max(start_s),
            wall_s: None,
            attrs: Vec::new(),
            closed_cleanly: true,
        })
    }

    /// Open a span at `start_s`; the returned guard must be closed with
    /// an explicit simulated end time. A guard dropped without closing
    /// records a zero-length span flagged `closed_cleanly = false`.
    pub fn start(
        &self,
        name: impl Into<String>,
        cat: &str,
        parent: Option<SpanId>,
        start_s: f64,
    ) -> SpanGuard {
        if self.inner.is_none() {
            return SpanGuard {
                tracer: Tracer::disabled(),
                span: None,
            };
        }
        let id = self.mint();
        SpanGuard {
            tracer: self.clone(),
            span: Some(Span {
                id,
                parent,
                name: name.into(),
                cat: cat.to_string(),
                start_s,
                end_s: start_s,
                wall_s: None,
                attrs: Vec::new(),
                closed_cleanly: false,
            }),
        }
    }

    /// Attach an attribute to an already-recorded span.
    pub fn attr(&self, id: SpanId, key: &str, value: impl Into<AttrValue>) {
        let Some(inner) = &self.inner else { return };
        let mut spans = inner.spans.lock();
        if let Some(s) = spans.iter_mut().find(|s| s.id == id) {
            s.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Attach measured wall-clock seconds to an already-recorded span.
    pub fn set_wall(&self, id: SpanId, wall_s: f64) {
        let Some(inner) = &self.inner else { return };
        let mut spans = inner.spans.lock();
        if let Some(s) = spans.iter_mut().find(|s| s.id == id) {
            s.wall_s = Some(wall_s);
        }
    }

    /// Re-parent spans that crossed the RPC boundary.
    ///
    /// `recs` is a flat forest on the producer's local clock (ids local to
    /// the producer, parent 0 = local root). Each span is re-minted with a
    /// fresh engine-side id, local roots are attached under `parent`, and
    /// local times `[0, local_max]` are mapped monotonically (linearly)
    /// into `[start_s, end_s]` so the grafted subtree nests exactly inside
    /// its new parent while preserving the producer's ordering. The
    /// original local duration survives as a `local_s` attribute.
    ///
    /// Returns the number of spans grafted.
    pub fn graft(&self, recs: &[SpanRec], parent: SpanId, start_s: f64, end_s: f64) -> usize {
        let Some(inner) = &self.inner else { return 0 };
        if recs.is_empty() {
            return 0;
        }
        let local_max = recs.iter().fold(0.0f64, |m, r| m.max(r.end_s));
        let window = (end_s - start_s).max(0.0);
        let scale = if local_max > 0.0 {
            window / local_max
        } else {
            0.0
        };
        // Local id -> fresh engine id.
        let mut map: Vec<(u64, SpanId)> = Vec::with_capacity(recs.len());
        for r in recs {
            map.push((r.id, self.mint()));
        }
        let lookup = |local: u64| -> Option<SpanId> {
            map.iter().find(|(l, _)| *l == local).map(|(_, id)| *id)
        };
        let mut spans = inner.spans.lock();
        for (r, (_, id)) in recs.iter().zip(&map) {
            let new_parent = if r.parent == 0 {
                Some(parent)
            } else {
                // A dangling parent ref (corrupt producer) attaches to the
                // graft point rather than being dropped or panicking.
                lookup(r.parent).or(Some(parent))
            };
            spans.push(Span {
                id: *id,
                parent: new_parent,
                name: r.name.clone(),
                cat: "storage".to_string(),
                start_s: start_s + r.start_s.max(0.0) * scale,
                end_s: start_s + r.end_s.max(r.start_s).max(0.0) * scale,
                wall_s: if r.wall_s > 0.0 { Some(r.wall_s) } else { None },
                attrs: {
                    let mut attrs = r.attrs.clone();
                    attrs.push(("local_s".to_string(), AttrValue::F64(r.seconds())));
                    attrs
                },
                closed_cleanly: true,
            });
        }
        recs.len()
    }

    /// Snapshot the recorded spans as a finished [`Trace`], sorted by
    /// (start, id). The tracer stays usable afterwards.
    pub fn finish(&self) -> Trace {
        let mut spans = match &self.inner {
            None => Vec::new(),
            Some(inner) => inner.spans.lock().clone(),
        };
        spans.sort_by(|a, b| {
            a.start_s
                .partial_cmp(&b.start_s)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.id.cmp(&b.id))
        });
        Trace { spans }
    }
}

/// An open span that must be closed with an explicit simulated end time.
/// Closing consumes the guard, so a span can close at most once; dropping
/// without closing records the span flagged as not cleanly closed.
#[derive(Debug)]
pub struct SpanGuard {
    tracer: Tracer,
    span: Option<Span>,
}

impl SpanGuard {
    /// The id of the span being recorded (0 when tracing is disabled).
    pub fn id(&self) -> SpanId {
        self.span.as_ref().map(|s| s.id).unwrap_or(SpanId(0))
    }

    /// Attach an attribute before closing.
    pub fn attr(&mut self, key: &str, value: impl Into<AttrValue>) {
        if let Some(s) = self.span.as_mut() {
            s.attrs.push((key.to_string(), value.into()));
        }
    }

    /// Attach measured wall-clock seconds before closing.
    pub fn wall(&mut self, wall_s: f64) {
        if let Some(s) = self.span.as_mut() {
            s.wall_s = Some(wall_s);
        }
    }

    /// Close the span at `end_s` and record it.
    pub fn close(mut self, end_s: f64) -> SpanId {
        match self.span.take() {
            None => SpanId(0),
            Some(mut s) => {
                s.end_s = end_s.max(s.start_s);
                s.closed_cleanly = true;
                self.tracer.push(s)
            }
        }
    }
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if let Some(s) = self.span.take() {
            // Not closed explicitly: record as zero-length, flagged.
            self.tracer.push(s);
        }
    }
}

/// A finished span tree.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Trace {
    /// All spans, sorted by (start, id).
    pub spans: Vec<Span>,
}

impl Trace {
    /// The root span (no parent), if exactly one exists that one,
    /// otherwise the earliest-starting parentless span.
    pub fn root(&self) -> Option<&Span> {
        self.spans.iter().find(|s| s.parent.is_none())
    }

    /// Children of `id`, in start order.
    pub fn children(&self, id: SpanId) -> Vec<&Span> {
        self.spans.iter().filter(|s| s.parent == Some(id)).collect()
    }

    /// First span with the given name.
    pub fn find(&self, name: &str) -> Option<&Span> {
        self.spans.iter().find(|s| s.name == name)
    }

    /// Simulated duration of the root span (0 with no root).
    pub fn total_s(&self) -> f64 {
        self.root().map(|r| r.seconds()).unwrap_or(0.0)
    }

    /// Structural invariants: every span closed exactly once (flagged at
    /// close time), finite non-negative intervals, parents exist, and
    /// every child nests inside its parent's interval (with tolerance
    /// `eps` for float placement).
    pub fn verify(&self, eps: f64) -> Result<(), String> {
        for s in &self.spans {
            if !s.closed_cleanly {
                return Err(format!("span '{}' was dropped without closing", s.name));
            }
            if !s.start_s.is_finite() || !s.end_s.is_finite() || s.end_s < s.start_s {
                return Err(format!(
                    "span '{}' has a bad interval [{}, {}]",
                    s.name, s.start_s, s.end_s
                ));
            }
            if let Some(p) = s.parent {
                let Some(parent) = self.spans.iter().find(|x| x.id == p) else {
                    return Err(format!("span '{}' has a missing parent {p:?}", s.name));
                };
                if s.start_s < parent.start_s - eps || s.end_s > parent.end_s + eps {
                    return Err(format!(
                        "span '{}' [{:.9}, {:.9}] escapes parent '{}' [{:.9}, {:.9}]",
                        s.name, s.start_s, s.end_s, parent.name, parent.start_s, parent.end_s
                    ));
                }
            }
        }
        Ok(())
    }

    /// Export as flat wire records on this trace's own clock (used by the
    /// OCS storage side to ship its spans in the stream trailer).
    pub fn to_recs(&self) -> Vec<SpanRec> {
        self.spans
            .iter()
            .map(|s| SpanRec {
                id: s.id.0,
                parent: s.parent.map(|p| p.0).unwrap_or(0),
                name: s.name.clone(),
                start_s: s.start_s,
                end_s: s.end_s,
                wall_s: s.wall_s.unwrap_or(0.0),
                attrs: s.attrs.clone(),
            })
            .collect()
    }
}

/// A span flattened for the wire: explicit ids, producer-local clock.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRec {
    /// Producer-local span id (non-zero).
    pub id: u64,
    /// Producer-local parent id; 0 = local root.
    pub parent: u64,
    /// Span name.
    pub name: String,
    /// Local simulated start seconds.
    pub start_s: f64,
    /// Local simulated end seconds.
    pub end_s: f64,
    /// Measured wall seconds (0 = not recorded).
    pub wall_s: f64,
    /// Attributes attached by the producer (rows, bytes, cache tier, …),
    /// preserved verbatim across the wire so `EXPLAIN ANALYZE` can render
    /// per-scan annotations the engine side never computed.
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanRec {
    /// Local simulated duration.
    pub fn seconds(&self) -> f64 {
        (self.end_s - self.start_s).max(0.0)
    }
}

/// Longest span name accepted on the wire (corruption guard).
const MAX_WIRE_NAME: usize = 4096;
/// Most spans accepted in one wire payload (corruption guard).
const MAX_WIRE_SPANS: usize = 1 << 20;
/// Most attributes accepted per span on the wire (corruption guard).
const MAX_WIRE_ATTRS: usize = 256;

/// Attribute value wire tags.
const ATTR_TAG_U64: u8 = 0;
const ATTR_TAG_F64: u8 = 1;
const ATTR_TAG_STR: u8 = 2;

fn encode_str(out: &mut Vec<u8>, s: &str) {
    let bytes = &s.as_bytes()[..s.len().min(MAX_WIRE_NAME)];
    out.extend_from_slice(&(bytes.len() as u32).to_le_bytes());
    out.extend_from_slice(bytes);
}

/// Encode span records (length-prefixed, little-endian).
pub fn encode_spans(recs: &[SpanRec]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + recs.len() * 48);
    out.extend_from_slice(&(recs.len() as u32).to_le_bytes());
    for r in recs {
        out.extend_from_slice(&r.id.to_le_bytes());
        out.extend_from_slice(&r.parent.to_le_bytes());
        out.extend_from_slice(&r.start_s.to_le_bytes());
        out.extend_from_slice(&r.end_s.to_le_bytes());
        out.extend_from_slice(&r.wall_s.to_le_bytes());
        encode_str(&mut out, &r.name);
        let attrs = &r.attrs[..r.attrs.len().min(MAX_WIRE_ATTRS)];
        out.extend_from_slice(&(attrs.len() as u32).to_le_bytes());
        for (key, value) in attrs {
            encode_str(&mut out, key);
            match value {
                AttrValue::U64(v) => {
                    out.push(ATTR_TAG_U64);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                AttrValue::F64(v) => {
                    out.push(ATTR_TAG_F64);
                    out.extend_from_slice(&v.to_le_bytes());
                }
                AttrValue::Str(v) => {
                    out.push(ATTR_TAG_STR);
                    encode_str(&mut out, v);
                }
            }
        }
    }
    out
}

fn take<'a>(bytes: &'a [u8], pos: &mut usize, n: usize) -> Result<&'a [u8], String> {
    let end = pos
        .checked_add(n)
        .ok_or_else(|| "span payload length overflow".to_string())?;
    if end > bytes.len() {
        return Err(format!(
            "span payload truncated: need {end} bytes, have {}",
            bytes.len()
        ));
    }
    let s = &bytes[*pos..end];
    *pos = end;
    Ok(s)
}

fn take_u32(bytes: &[u8], pos: &mut usize) -> Result<u32, String> {
    let s = take(bytes, pos, 4)?;
    let mut a = [0u8; 4];
    a.copy_from_slice(s);
    Ok(u32::from_le_bytes(a))
}

fn take_u64(bytes: &[u8], pos: &mut usize) -> Result<u64, String> {
    let s = take(bytes, pos, 8)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(s);
    Ok(u64::from_le_bytes(a))
}

fn take_f64(bytes: &[u8], pos: &mut usize) -> Result<f64, String> {
    Ok(f64::from_bits(take_u64(bytes, pos)?))
}

fn take_str(bytes: &[u8], pos: &mut usize, what: &str) -> Result<String, String> {
    let len = take_u32(bytes, pos)? as usize;
    if len > MAX_WIRE_NAME {
        return Err(format!("span {what} claims {len} bytes"));
    }
    let raw = take(bytes, pos, len)?;
    Ok(String::from_utf8_lossy(raw).into_owned())
}

/// Decode an [`encode_spans`] payload, starting at `*pos` and advancing
/// it. Bound-checked: truncation and absurd counts are structured errors,
/// never panics.
pub fn decode_spans(bytes: &[u8], pos: &mut usize) -> Result<Vec<SpanRec>, String> {
    let count = take_u32(bytes, pos)? as usize;
    if count > MAX_WIRE_SPANS {
        return Err(format!("span payload claims {count} spans"));
    }
    let mut recs = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let id = take_u64(bytes, pos)?;
        let parent = take_u64(bytes, pos)?;
        let start_s = take_f64(bytes, pos)?;
        let end_s = take_f64(bytes, pos)?;
        let wall_s = take_f64(bytes, pos)?;
        let name = take_str(bytes, pos, "name")?;
        let attr_count = take_u32(bytes, pos)? as usize;
        if attr_count > MAX_WIRE_ATTRS {
            return Err(format!("span claims {attr_count} attributes"));
        }
        let mut attrs = Vec::with_capacity(attr_count);
        for _ in 0..attr_count {
            let key = take_str(bytes, pos, "attr key")?;
            let tag = take(bytes, pos, 1)?[0];
            let value = match tag {
                ATTR_TAG_U64 => AttrValue::U64(take_u64(bytes, pos)?),
                ATTR_TAG_F64 => AttrValue::F64(take_f64(bytes, pos)?),
                ATTR_TAG_STR => AttrValue::Str(take_str(bytes, pos, "attr value")?),
                other => return Err(format!("unknown attr tag {other}")),
            };
            attrs.push((key, value));
        }
        recs.push(SpanRec {
            id,
            parent,
            name,
            start_s,
            end_s,
            wall_s,
            attrs,
        });
    }
    Ok(recs)
}

/// A wall-clock timer for real CPU work in kernels. Armed only when
/// [`crate::kernel_timing_enabled`] — the cold path costs one relaxed
/// atomic load. On drop, observes the elapsed seconds into the process
/// metrics histogram `name`.
#[derive(Debug)]
pub struct KernelTimer {
    name: &'static str,
    start: std::time::Instant,
}

impl KernelTimer {
    /// Start a timer for `name`, or `None` when kernel timing is off.
    pub fn start(name: &'static str) -> Option<KernelTimer> {
        if !crate::kernel_timing_enabled() {
            return None;
        }
        Some(KernelTimer {
            name,
            start: std::time::Instant::now(),
        })
    }
}

impl Drop for KernelTimer {
    fn drop(&mut self) {
        crate::metrics()
            .histogram(self.name, crate::metrics::SECONDS_BUCKETS)
            .observe(self.start.elapsed().as_secs_f64());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_and_nest() {
        let t = Tracer::new();
        let root = t.record("query", "phase", None, 0.0, 10.0);
        let a = t.record("plan", "phase", Some(root), 0.0, 1.0);
        t.attr(a, "nodes", 4u64);
        let b = t.record("exec", "phase", Some(root), 1.0, 10.0);
        let trace = t.finish();
        assert_eq!(trace.spans.len(), 3);
        trace.verify(1e-12).expect("valid tree");
        assert_eq!(trace.total_s(), 10.0);
        assert_eq!(trace.children(root).len(), 2);
        assert_eq!(
            trace.find("plan").and_then(|s| s.attr_u64("nodes")),
            Some(4)
        );
        assert_eq!(trace.children(b).len(), 0);
    }

    #[test]
    fn guard_closes_exactly_once() {
        let t = Tracer::new();
        let g = t.start("phase1", "phase", None, 0.0);
        let id = g.close(2.0);
        assert_ne!(id, SpanId(0));
        let trace = t.finish();
        assert!(trace.spans[0].closed_cleanly);
        assert_eq!(trace.spans[0].end_s, 2.0);
        trace.verify(0.0).expect("clean close");
    }

    #[test]
    fn dropped_guard_is_flagged() {
        let t = Tracer::new();
        {
            let _g = t.start("leaked", "phase", None, 1.0);
        }
        let trace = t.finish();
        assert!(!trace.spans[0].closed_cleanly);
        assert!(trace.verify(0.0).is_err());
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        assert!(!t.is_enabled());
        let id = t.record("x", "phase", None, 0.0, 1.0);
        assert_eq!(id, SpanId(0));
        let g = t.start("y", "phase", None, 0.0);
        g.close(1.0);
        assert!(t.finish().spans.is_empty());
    }

    #[test]
    fn graft_scales_and_reparents() {
        // Producer side: local clock 0..4.
        let producer = Tracer::new();
        let root = producer.record("storage.execute", "storage", None, 0.0, 4.0);
        producer.record("storage.disk", "storage", Some(root), 0.0, 1.0);
        let scan_id = producer.record("storage.scan", "storage", Some(root), 1.0, 4.0);
        producer.attr(scan_id, "cache_hit", "row_group");
        producer.attr(scan_id, "cache_bytes_avoided", 4096u64);
        let recs = producer.finish().to_recs();

        // Consumer side: graft into [10, 12].
        let consumer = Tracer::new();
        let query = consumer.record("query", "phase", None, 0.0, 20.0);
        let split = consumer.record("split[0]", "split", Some(query), 10.0, 12.0);
        assert_eq!(consumer.graft(&recs, split, 10.0, 12.0), 3);
        let trace = consumer.finish();
        trace.verify(1e-12).expect("grafted tree nests");
        let disk = trace.find("storage.disk").expect("grafted");
        assert!((disk.start_s - 10.0).abs() < 1e-12);
        assert!((disk.end_s - 10.5).abs() < 1e-12);
        assert_eq!(disk.attr_f64("local_s"), Some(1.0));
        // Monotonic: scan starts where disk ends, ends at the window end.
        let scan = trace.find("storage.scan").expect("grafted");
        assert!(scan.start_s >= disk.end_s - 1e-12);
        assert!((scan.end_s - 12.0).abs() < 1e-12);
        // Producer attrs survive the graft alongside the added local_s.
        assert_eq!(
            scan.attr("cache_hit"),
            Some(&AttrValue::Str("row_group".into()))
        );
        assert_eq!(scan.attr_u64("cache_bytes_avoided"), Some(4096));
        assert_eq!(scan.attr_f64("local_s"), Some(3.0));
    }

    #[test]
    fn span_recs_roundtrip() {
        let recs = vec![
            SpanRec {
                id: 1,
                parent: 0,
                name: "a".into(),
                start_s: 0.0,
                end_s: 2.5,
                wall_s: 0.001,
                attrs: vec![
                    ("rows".to_string(), AttrValue::U64(42)),
                    ("local_s".to_string(), AttrValue::F64(2.5)),
                    ("cache_hit".to_string(), AttrValue::Str("result".into())),
                ],
            },
            SpanRec {
                id: 2,
                parent: 1,
                name: "b/πλ".into(),
                start_s: 0.5,
                end_s: 1.5,
                wall_s: 0.0,
                attrs: Vec::new(),
            },
        ];
        let enc = encode_spans(&recs);
        let mut pos = 0;
        let dec = decode_spans(&enc, &mut pos).expect("roundtrip");
        assert_eq!(pos, enc.len());
        assert_eq!(dec, recs);
    }

    #[test]
    fn decode_rejects_truncation_and_absurd_counts() {
        let enc = encode_spans(&[SpanRec {
            id: 1,
            parent: 0,
            name: "x".into(),
            start_s: 0.0,
            end_s: 1.0,
            wall_s: 0.0,
            attrs: vec![("bytes".to_string(), AttrValue::U64(7))],
        }]);
        for cut in 0..enc.len() {
            let mut pos = 0;
            assert!(decode_spans(&enc[..cut], &mut pos).is_err(), "cut {cut}");
        }
        let mut bad = enc.clone();
        bad[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut pos = 0;
        assert!(decode_spans(&bad, &mut pos).is_err());
    }
}
