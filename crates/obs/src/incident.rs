//! Slow-query incident reports: one JSON document tying together the
//! span tree, the flight-recorder slice and the utilization profile of a
//! query that blew past the engine's latency threshold.
//!
//! The report is the flight recorder's payoff: when a query is slow *in
//! production* (or in a seeded CI run), the incident captures not just
//! where the query's own time went (spans) but what the system around it
//! was doing (flight events) and which resource was saturated (profile +
//! bottleneck) — the three questions a human asks first, pre-joined.
//!
//! Schema (all hand-rolled JSON, no serde in the workspace):
//!
//! ```json
//! {
//!   "incident": "slow_query",
//!   "sql": "...",
//!   "simulated_seconds": 1.25,
//!   "threshold_s": 0.5,
//!   "bottleneck": {"resource": "link", "utilization_pct": 82.0} | null,
//!   "spans":   [{"id", "parent", "name", "cat", "start_s", "end_s"}...],
//!   "flight":  [{"seq", "t_s", "kind", "a", "b", "c", "desc"}...],
//!   "profile": [{"resource", "lanes", "intervals": [[s, e]...]}...]
//! }
//! ```
//!
//! [`check`] re-parses and structurally validates a report (the gate
//! behind `xtask report --check`); [`summarize`] renders the
//! human-readable view behind plain `xtask report`.

use crate::chrome::{json_escape, parse_json, Json};
use crate::flight::FlightEvent;
use crate::profile::Profile;
use crate::span::Trace;

/// Query-level facts the engine supplies alongside the captured data.
#[derive(Debug, Clone)]
pub struct IncidentMeta {
    /// The query text (or a placeholder for unnamed plans).
    pub sql: String,
    /// Total simulated seconds the query took.
    pub simulated_seconds: f64,
    /// The threshold it exceeded.
    pub threshold_s: f64,
}

fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:.9}")
    } else {
        "null".to_string()
    }
}

/// Render an incident report as a JSON document.
pub fn render(
    meta: &IncidentMeta,
    trace: &Trace,
    profile: &Profile,
    events: &[FlightEvent],
) -> String {
    let mut out = String::with_capacity(4096);
    out.push_str("{\n\"incident\":\"slow_query\",\n");
    out.push_str(&format!("\"sql\":\"{}\",\n", json_escape(&meta.sql)));
    out.push_str(&format!(
        "\"simulated_seconds\":{},\n",
        fmt_f64(meta.simulated_seconds)
    ));
    out.push_str(&format!("\"threshold_s\":{},\n", fmt_f64(meta.threshold_s)));
    match profile.bottleneck() {
        Some(b) => out.push_str(&format!(
            "\"bottleneck\":{{\"resource\":\"{}\",\"utilization_pct\":{}}},\n",
            json_escape(&b.resource),
            fmt_f64(b.utilization * 100.0)
        )),
        None => out.push_str("\"bottleneck\":null,\n"),
    }
    out.push_str("\"spans\":[");
    for (i, s) in trace.spans.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"id\":{},\"parent\":{},\"name\":\"{}\",\"cat\":\"{}\",\"start_s\":{},\"end_s\":{}}}",
            s.id.0,
            s.parent.map(|p| p.0).unwrap_or(0),
            json_escape(&s.name),
            json_escape(&s.cat),
            fmt_f64(s.start_s),
            fmt_f64(s.end_s),
        ));
    }
    out.push_str("\n],\n\"flight\":[");
    for (i, e) in events.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n{{\"seq\":{},\"t_s\":{},\"kind\":\"{}\",\"a\":{},\"b\":{},\"c\":{},\"desc\":\"{}\"}}",
            e.seq,
            fmt_f64(e.t_s),
            e.kind.label(),
            e.a,
            e.b,
            e.c,
            json_escape(&e.describe()),
        ));
    }
    out.push_str("\n],\n\"profile\":[");
    for (i, t) in profile.timelines.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let intervals: Vec<String> = t
            .intervals
            .iter()
            .map(|&(s, e)| format!("[{},{}]", fmt_f64(s), fmt_f64(e)))
            .collect();
        out.push_str(&format!(
            "\n{{\"resource\":\"{}\",\"lanes\":{},\"intervals\":[{}]}}",
            json_escape(&t.resource),
            t.lanes,
            intervals.join(",")
        ));
    }
    out.push_str("\n]\n}\n");
    out
}

fn req_num(obj: &Json, key: &str, what: &str) -> Result<f64, String> {
    obj.get(key)
        .and_then(|v| v.as_num())
        .ok_or_else(|| format!("{what}: missing numeric '{key}'"))
}

fn req_str<'a>(obj: &'a Json, key: &str, what: &str) -> Result<&'a str, String> {
    obj.get(key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("{what}: missing string '{key}'"))
}

/// Structurally validate an incident report. Returns a one-line summary
/// (`N span(s), M flight event(s), K resource(s)`) on success.
pub fn check(text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    if req_str(&doc, "incident", "report")? != "slow_query" {
        return Err("report: incident kind is not 'slow_query'".to_string());
    }
    req_str(&doc, "sql", "report")?;
    let sim = req_num(&doc, "simulated_seconds", "report")?;
    let threshold = req_num(&doc, "threshold_s", "report")?;
    if !sim.is_finite() || sim < 0.0 {
        return Err(format!("report: bad simulated_seconds {sim}"));
    }
    if !threshold.is_finite() || threshold < 0.0 {
        return Err(format!("report: bad threshold_s {threshold}"));
    }
    match doc.get("bottleneck") {
        Some(Json::Null) => {}
        Some(b) => {
            req_str(b, "resource", "bottleneck")?;
            let pct = req_num(b, "utilization_pct", "bottleneck")?;
            if !(0.0..=100.0).contains(&pct) {
                return Err(format!("bottleneck: utilization_pct {pct} out of range"));
            }
        }
        None => return Err("report: missing 'bottleneck'".to_string()),
    }
    let spans = doc
        .get("spans")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "report: missing spans array".to_string())?;
    for (i, s) in spans.iter().enumerate() {
        let what = format!("span {i}");
        req_str(s, "name", &what)?;
        req_str(s, "cat", &what)?;
        let start = req_num(s, "start_s", &what)?;
        let end = req_num(s, "end_s", &what)?;
        if !start.is_finite() || !end.is_finite() || end < start {
            return Err(format!("{what}: bad interval [{start}, {end}]"));
        }
        req_num(s, "id", &what)?;
        req_num(s, "parent", &what)?;
    }
    let flight = doc
        .get("flight")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "report: missing flight array".to_string())?;
    for (i, e) in flight.iter().enumerate() {
        let what = format!("flight event {i}");
        req_num(e, "seq", &what)?;
        req_num(e, "t_s", &what)?;
        req_str(e, "kind", &what)?;
        req_str(e, "desc", &what)?;
    }
    let resources = doc
        .get("profile")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "report: missing profile array".to_string())?;
    for (i, r) in resources.iter().enumerate() {
        let what = format!("resource {i}");
        req_str(r, "resource", &what)?;
        let lanes = req_num(r, "lanes", &what)?;
        if lanes < 1.0 {
            return Err(format!("{what}: lanes {lanes} < 1"));
        }
        let intervals = r
            .get("intervals")
            .and_then(|v| v.as_arr())
            .ok_or_else(|| format!("{what}: missing intervals array"))?;
        for (j, iv) in intervals.iter().enumerate() {
            let pair = iv
                .as_arr()
                .filter(|p| p.len() == 2)
                .ok_or_else(|| format!("{what}: interval {j} is not a [start, end] pair"))?;
            let (s, e) = match (pair[0].as_num(), pair[1].as_num()) {
                (Some(s), Some(e)) => (s, e),
                _ => return Err(format!("{what}: interval {j} is not numeric")),
            };
            if !s.is_finite() || !e.is_finite() || e < s {
                return Err(format!("{what}: interval {j} is bad [{s}, {e}]"));
            }
        }
    }
    Ok(format!(
        "{} span(s), {} flight event(s), {} resource(s)",
        spans.len(),
        flight.len(),
        resources.len()
    ))
}

/// Render the human-readable view of a (valid) report — the default
/// output of `xtask report`.
pub fn summarize(text: &str) -> Result<String, String> {
    check(text)?;
    let doc = parse_json(text)?;
    let mut out = String::new();
    let sql = req_str(&doc, "sql", "report")?;
    let sim = req_num(&doc, "simulated_seconds", "report")?;
    let threshold = req_num(&doc, "threshold_s", "report")?;
    out.push_str(&format!("slow-query incident\n  sql: {sql}\n"));
    out.push_str(&format!(
        "  simulated: {sim:.6}s (threshold {threshold:.6}s, {:.1}x over)\n",
        if threshold > 0.0 {
            sim / threshold
        } else {
            f64::INFINITY
        }
    ));
    match doc.get("bottleneck") {
        Some(Json::Null) | None => out.push_str("  bottleneck: none recorded\n"),
        Some(b) => out.push_str(&format!(
            "  bottleneck: {} at {:.0}%\n",
            req_str(b, "resource", "bottleneck")?,
            req_num(b, "utilization_pct", "bottleneck")?
        )),
    }
    if let Some(spans) = doc.get("spans").and_then(|v| v.as_arr()) {
        // Top spans by duration (roots excluded: they are the total).
        let mut durs: Vec<(&str, f64)> = spans
            .iter()
            .filter(|s| s.get("parent").and_then(|v| v.as_num()) != Some(0.0))
            .filter_map(|s| {
                let name = s.get("name").and_then(|v| v.as_str())?;
                let d = s.get("end_s").and_then(|v| v.as_num())?
                    - s.get("start_s").and_then(|v| v.as_num())?;
                Some((name, d))
            })
            .collect();
        durs.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        out.push_str(&format!("  spans: {}\n", spans.len()));
        for (name, d) in durs.iter().take(5) {
            out.push_str(&format!("    {d:>12.6}s  {name}\n"));
        }
    }
    if let Some(flight) = doc.get("flight").and_then(|v| v.as_arr()) {
        out.push_str(&format!("  flight events: {}\n", flight.len()));
        for e in flight.iter().rev().take(8).collect::<Vec<_>>().iter().rev() {
            if let Some(desc) = e.get("desc").and_then(|v| v.as_str()) {
                out.push_str(&format!("    {desc}\n"));
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::flight::{FlightEvent, FlightKind};
    use crate::span::Tracer;

    fn sample() -> String {
        let t = Tracer::new();
        let root = t.record("query", "phase", None, 0.0, 2.0);
        t.record("split_phase", "phase", Some(root), 0.5, 1.8);
        let mut p = Profile::new(0.5, 1.8);
        p.add_resource("link", 1, vec![(0.5, 1.6)]);
        p.add_resource("storage-cores", 16, vec![(0.5, 1.0); 4]);
        let events = vec![
            FlightEvent {
                seq: 7,
                t_s: 0.001,
                kind: FlightKind::RouteSpill,
                a: 0,
                b: 2,
                c: 42,
            },
            FlightEvent {
                seq: 8,
                t_s: 0.002,
                kind: FlightKind::BackpressureStall,
                a: 4,
                b: 4,
                c: 9,
            },
        ];
        render(
            &IncidentMeta {
                sql: "SELECT \"x\" FROM t".into(),
                simulated_seconds: 2.0,
                threshold_s: 0.5,
            },
            &t.finish(),
            &p,
            &events,
        )
    }

    #[test]
    fn report_roundtrips_through_check() {
        let json = sample();
        let summary = check(&json).expect("valid report");
        assert_eq!(summary, "2 span(s), 2 flight event(s), 2 resource(s)");
        let human = summarize(&json).expect("summarizes");
        assert!(human.contains("slow-query incident"));
        assert!(human.contains("bottleneck: link"), "{human}");
        assert!(human.contains("route.spill"), "{human}");
        assert!(human.contains("4.0x over"), "{human}");
    }

    #[test]
    fn check_rejects_malformed_reports() {
        assert!(check("not json").is_err());
        assert!(check("{}").is_err());
        // Wrong kind.
        assert!(check(
            "{\"incident\":\"fast\",\"sql\":\"s\",\"simulated_seconds\":1,\"threshold_s\":1,\
             \"bottleneck\":null,\"spans\":[],\"flight\":[],\"profile\":[]}"
        )
        .is_err());
        // Bad interval in a span.
        assert!(check(
            "{\"incident\":\"slow_query\",\"sql\":\"s\",\"simulated_seconds\":1,\"threshold_s\":1,\
             \"bottleneck\":null,\"spans\":[{\"id\":1,\"parent\":0,\"name\":\"a\",\"cat\":\"c\",\
             \"start_s\":2,\"end_s\":1}],\"flight\":[],\"profile\":[]}"
        )
        .is_err());
        // Utilization out of range.
        assert!(check(
            "{\"incident\":\"slow_query\",\"sql\":\"s\",\"simulated_seconds\":1,\"threshold_s\":1,\
             \"bottleneck\":{\"resource\":\"link\",\"utilization_pct\":140},\
             \"spans\":[],\"flight\":[],\"profile\":[]}"
        )
        .is_err());
        // Minimal valid report.
        assert!(check(
            "{\"incident\":\"slow_query\",\"sql\":\"s\",\"simulated_seconds\":1,\"threshold_s\":1,\
             \"bottleneck\":null,\"spans\":[],\"flight\":[],\"profile\":[]}"
        )
        .is_ok());
    }

    #[test]
    fn escaped_sql_survives() {
        let json = sample();
        let doc = parse_json(&json).expect("parses");
        assert_eq!(
            doc.get("sql").and_then(|v| v.as_str()),
            Some("SELECT \"x\" FROM t")
        );
    }
}
