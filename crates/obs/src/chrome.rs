//! Chrome trace-event export and validation.
//!
//! [`export`] renders a [`Trace`] as the Chrome trace-event JSON format
//! (`{"traceEvents": [...]}` with complete `"X"` events), loadable in
//! `chrome://tracing` and Perfetto. Simulated seconds map to microsecond
//! timestamps; each span *category* gets its own `tid` row so categories
//! whose spans overlap in simulated time (e.g. per-split lanes) render as
//! separate tracks instead of a corrupted nest.
//!
//! [`validate`] is the CI-side check: it re-parses exported JSON with a
//! small hand-rolled parser (the workspace vendors no serde) and checks
//! the structural rules Perfetto cares about — well-formed JSON, every
//! event has `name`/`ph`/`ts`/`pid`/`tid`, `"X"` events carry
//! non-negative `dur`, and any `"B"`/`"E"` pairs balance per `tid`.

use crate::profile::Profile;
use crate::span::Trace;
use std::collections::BTreeMap;

pub(crate) fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Render a trace as Chrome trace-event JSON.
///
/// Spans become complete (`"X"`) events at microsecond resolution on
/// `pid` 1; categories are assigned `tid` rows in order of first
/// appearance so the root/phase track stays on `tid` 1. Span attributes
/// and wall-clock seconds are carried in `args`.
pub fn export(trace: &Trace) -> String {
    export_with_profile(trace, None)
}

/// [`export`] plus per-resource utilization counter tracks.
///
/// Each [`Profile`] timeline becomes a Chrome counter (`"C"`) track named
/// `util:<resource>` sampling the number of busy lanes at every point the
/// concurrency changes — rendered by Perfetto as a step graph alongside
/// the span tracks, which is exactly the "what saturated while this span
/// ran" view bottleneck attribution numbers come from.
pub fn export_with_profile(trace: &Trace, profile: Option<&Profile>) -> String {
    let mut tids: BTreeMap<&str, u64> = BTreeMap::new();
    let mut next_tid = 1u64;
    let mut events: Vec<String> = Vec::with_capacity(trace.spans.len() + 4);
    for span in &trace.spans {
        let tid = *tids.entry(span.cat.as_str()).or_insert_with(|| {
            let t = next_tid;
            next_tid += 1;
            t
        });
        let ts_us = span.start_s * 1e6;
        let dur_us = span.seconds() * 1e6;
        let mut args = String::new();
        if let Some(w) = span.wall_s {
            args.push_str(&format!("\"wall_s\":{w:.9}"));
        }
        for (k, v) in &span.attrs {
            if !args.is_empty() {
                args.push(',');
            }
            match v {
                crate::span::AttrValue::U64(n) => {
                    args.push_str(&format!("\"{}\":{n}", json_escape(k)))
                }
                crate::span::AttrValue::F64(f) => {
                    if f.is_finite() {
                        args.push_str(&format!("\"{}\":{f:.9}", json_escape(k)));
                    } else {
                        args.push_str(&format!("\"{}\":null", json_escape(k)));
                    }
                }
                crate::span::AttrValue::Str(s) => {
                    args.push_str(&format!("\"{}\":\"{}\"", json_escape(k), json_escape(s)))
                }
            }
        }
        events.push(format!(
            "{{\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"X\",\"ts\":{ts_us:.3},\"dur\":{dur_us:.3},\"pid\":1,\"tid\":{tid},\"args\":{{{args}}}}}",
            json_escape(&span.name),
            json_escape(&span.cat),
        ));
    }
    // Utilization counter tracks: one "C" series per resource, sampled at
    // each concurrency change point (counters are keyed by name, so they
    // share tid 0 without colliding).
    if let Some(profile) = profile {
        for timeline in &profile.timelines {
            for (t, busy) in timeline.steps() {
                let ts_us = (t * 1e6).max(0.0);
                events.push(format!(
                    "{{\"name\":\"util:{}\",\"ph\":\"C\",\"ts\":{ts_us:.3},\"pid\":1,\"tid\":0,\"args\":{{\"busy\":{busy}}}}}",
                    json_escape(&timeline.resource),
                ));
            }
        }
    }
    // Name the thread rows after their categories so Perfetto labels them.
    for (cat, tid) in &tids {
        events.push(format!(
            "{{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"args\":{{\"name\":\"{}\"}}}}",
            json_escape(cat)
        ));
    }
    let mut out = String::from("{\"traceEvents\":[\n");
    out.push_str(&events.join(",\n"));
    out.push_str("\n],\"displayTimeUnit\":\"ms\"}\n");
    out
}

// ---------------------------------------------------------------------
// Minimal JSON parser — just enough to validate exported traces in CI
// without pulling a JSON dependency into the workspace.
// ---------------------------------------------------------------------

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number (parsed as f64).
    Num(f64),
    /// String.
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object (insertion order preserved).
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_num(&self) -> Option<f64> {
        match self {
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array items, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, msg: &str) -> String {
        format!("json error at byte {}: {msg}", self.pos)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, c: u8) -> Result<(), String> {
        if self.peek() == Some(c) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", c as char)))
        }
    }

    fn value(&mut self, depth: usize) -> Result<Json, String> {
        if depth > 64 {
            return Err(self.err("nesting too deep"));
        }
        self.skip_ws();
        match self.peek() {
            Some(b'{') => self.object(depth),
            Some(b'[') => self.array(depth),
            Some(b'"') => Ok(Json::Str(self.string()?)),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'n') => self.literal("null", Json::Null),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected byte 0x{c:02x}"))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn literal(&mut self, lit: &str, v: Json) -> Result<Json, String> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(v)
        } else {
            Err(self.err(&format!("expected '{lit}'")))
        }
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("non-utf8 number"))?;
        text.parse::<f64>()
            .map(Json::Num)
            .map_err(|_| self.err(&format!("bad number '{text}'")))
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or_else(|| self.err("truncated \\u escape"))?;
                            let hex = std::str::from_utf8(hex)
                                .map_err(|_| self.err("non-utf8 \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            // Surrogates render as the replacement char;
                            // the validator only needs structure.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                            self.pos += 4;
                        }
                        _ => return Err(self.err("bad escape")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar.
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.err("non-utf8 string"))?;
                    let c = rest.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn array(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            items.push(self.value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self, depth: usize) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            let val = self.value(depth + 1)?;
            fields.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => {
                    self.pos += 1;
                }
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Obj(fields));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }
}

/// Parse a JSON document (errors carry a byte offset; never panics).
pub fn parse_json(text: &str) -> Result<Json, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    let v = p.value(0)?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing garbage after document"));
    }
    Ok(v)
}

/// Validate a Chrome trace-event document (the CI gate behind
/// `xtask validate-trace`). Checks:
///
/// * well-formed JSON with a `traceEvents` array,
/// * at least one duration event,
/// * every event has a string `name` and `ph`, numeric `pid`/`tid`,
///   and (except metadata `"M"` events) a numeric `ts`,
/// * complete `"X"` events carry a finite, non-negative `dur`,
/// * `"B"`/`"E"` begin/end events balance per `(pid, tid)` stack,
/// * counter `"C"` events carry an `args` object with at least one
///   finite numeric series value.
///
/// Returns a short summary (event counts) on success.
pub fn validate(text: &str) -> Result<String, String> {
    let doc = parse_json(text)?;
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_arr())
        .ok_or_else(|| "missing traceEvents array".to_string())?;
    let mut complete = 0usize;
    let mut metadata = 0usize;
    let mut counters = 0usize;
    let mut open: BTreeMap<(u64, u64), usize> = BTreeMap::new();
    for (i, ev) in events.iter().enumerate() {
        let name = ev
            .get("name")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i}: missing name"))?;
        let ph = ev
            .get("ph")
            .and_then(|v| v.as_str())
            .ok_or_else(|| format!("event {i} ('{name}'): missing ph"))?;
        let pid = ev
            .get("pid")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i} ('{name}'): missing pid"))? as u64;
        let tid = ev
            .get("tid")
            .and_then(|v| v.as_num())
            .ok_or_else(|| format!("event {i} ('{name}'): missing tid"))? as u64;
        if ph != "M" {
            let ts = ev
                .get("ts")
                .and_then(|v| v.as_num())
                .ok_or_else(|| format!("event {i} ('{name}'): missing ts"))?;
            if !ts.is_finite() || ts < 0.0 {
                return Err(format!("event {i} ('{name}'): bad ts {ts}"));
            }
        }
        match ph {
            "X" => {
                let dur = ev
                    .get("dur")
                    .and_then(|v| v.as_num())
                    .ok_or_else(|| format!("event {i} ('{name}'): X without dur"))?;
                if !dur.is_finite() || dur < 0.0 {
                    return Err(format!("event {i} ('{name}'): negative dur {dur}"));
                }
                complete += 1;
            }
            "B" => {
                *open.entry((pid, tid)).or_insert(0) += 1;
                complete += 1;
            }
            "E" => {
                let depth = open.entry((pid, tid)).or_insert(0);
                if *depth == 0 {
                    return Err(format!(
                        "event {i} ('{name}'): E without matching B on pid={pid} tid={tid}"
                    ));
                }
                *depth -= 1;
            }
            "C" => {
                let args = ev
                    .get("args")
                    .ok_or_else(|| format!("event {i} ('{name}'): C without args"))?;
                let series = match args {
                    Json::Obj(fields) => fields,
                    _ => return Err(format!("event {i} ('{name}'): C args not an object")),
                };
                let numeric = series
                    .iter()
                    .any(|(_, v)| v.as_num().is_some_and(|n| n.is_finite()));
                if !numeric {
                    return Err(format!(
                        "event {i} ('{name}'): C without a finite numeric series value"
                    ));
                }
                counters += 1;
            }
            "M" => metadata += 1,
            other => {
                return Err(format!("event {i} ('{name}'): unsupported ph '{other}'"));
            }
        }
    }
    if let Some(((pid, tid), depth)) = open.iter().find(|(_, d)| **d > 0) {
        return Err(format!(
            "{depth} unclosed B event(s) on pid={pid} tid={tid}"
        ));
    }
    if complete == 0 {
        return Err("trace has no duration events".to_string());
    }
    Ok(format!(
        "{complete} duration event(s), {counters} counter sample(s), {metadata} metadata event(s)"
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    fn sample_trace() -> Trace {
        let t = Tracer::new();
        let root = t.record("query", "phase", None, 0.0, 2.0);
        let plan = t.record("plan \"q\"", "phase", Some(root), 0.0, 0.5);
        t.attr(plan, "nodes", 7u64);
        t.set_wall(plan, 0.00012);
        let s0 = t.record("split[0]", "split", Some(root), 0.5, 2.0);
        t.attr(s0, "note", "line1\nline2");
        t.finish()
    }

    #[test]
    fn export_validates() {
        let json = export(&sample_trace());
        let summary = validate(&json).expect("exported trace is valid");
        assert!(summary.contains("3 duration"));
    }

    #[test]
    fn export_structure() {
        let json = export(&sample_trace());
        let doc = parse_json(&json).expect("parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("arr");
        // 3 spans + 2 thread_name metadata rows (phase, split).
        assert_eq!(events.len(), 5);
        let plan = events
            .iter()
            .find(|e| e.get("name").and_then(|v| v.as_str()) == Some("plan \"q\""))
            .expect("escaped name roundtrips");
        assert_eq!(
            plan.get("args")
                .and_then(|a| a.get("nodes"))
                .and_then(|v| v.as_num()),
            Some(7.0)
        );
        assert_eq!(plan.get("dur").and_then(|v| v.as_num()), Some(500_000.0));
    }

    #[test]
    fn validator_rejects_bad_traces() {
        assert!(validate("not json").is_err());
        assert!(validate("{}").is_err());
        assert!(validate("{\"traceEvents\":[]}").is_err());
        // Negative duration.
        assert!(validate(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":-1,\"pid\":1,\"tid\":1}]}"
        )
        .is_err());
        // Unbalanced B.
        assert!(validate(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1}]}"
        )
        .is_err());
        // E without B.
        assert!(validate(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"E\",\"ts\":0,\"pid\":1,\"tid\":1}]}"
        )
        .is_err());
        // Balanced B/E passes.
        assert!(validate(
            "{\"traceEvents\":[{\"name\":\"a\",\"ph\":\"B\",\"ts\":0,\"pid\":1,\"tid\":1},{\"name\":\"a\",\"ph\":\"E\",\"ts\":5,\"pid\":1,\"tid\":1}]}"
        )
        .is_ok());
    }

    #[test]
    fn counter_tracks_export_and_validate() {
        let mut profile = crate::profile::Profile::new(0.0, 2.0);
        profile.add_resource("storage-cores", 2, vec![(0.0, 1.0), (0.5, 1.5)]);
        profile.add_resource("link", 1, vec![(0.2, 1.8)]);
        let json = export_with_profile(&sample_trace(), Some(&profile));
        let summary = validate(&json).expect("counter-bearing trace is valid");
        // storage-cores steps: 0.0, 0.5, 1.0, 1.5; link steps: 0.2, 1.8.
        assert!(summary.contains("6 counter sample(s)"), "{summary}");
        let doc = parse_json(&json).expect("parses");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_arr())
            .expect("arr");
        let samples: Vec<_> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|v| v.as_str()) == Some("C"))
            .collect();
        assert_eq!(samples.len(), 6);
        // The overlap window [0.5, 1.0] shows 2 busy storage lanes.
        let two_deep = samples
            .iter()
            .find(|e| {
                e.get("name").and_then(|v| v.as_str()) == Some("util:storage-cores")
                    && e.get("ts").and_then(|v| v.as_num()) == Some(500_000.0)
            })
            .expect("step at 0.5 s");
        assert_eq!(
            two_deep
                .get("args")
                .and_then(|a| a.get("busy"))
                .and_then(|v| v.as_num()),
            Some(2.0)
        );
        // Counter series end back at zero.
        let last_link = samples
            .iter()
            .rfind(|e| e.get("name").and_then(|v| v.as_str()) == Some("util:link"))
            .expect("link samples");
        assert_eq!(
            last_link
                .get("args")
                .and_then(|a| a.get("busy"))
                .and_then(|v| v.as_num()),
            Some(0.0)
        );
    }

    #[test]
    fn validator_checks_counter_events() {
        // A lone counter event has no duration events — still an error.
        assert!(validate(
            "{\"traceEvents\":[{\"name\":\"c\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"busy\":1}}]}"
        )
        .is_err());
        let with_span = |counter: &str| {
            format!(
                "{{\"traceEvents\":[{{\"name\":\"a\",\"ph\":\"X\",\"ts\":0,\"dur\":1,\"pid\":1,\"tid\":1}},{counter}]}}"
            )
        };
        assert!(validate(&with_span(
            "{\"name\":\"c\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"busy\":1}}"
        ))
        .is_ok());
        // Missing args.
        assert!(validate(&with_span(
            "{\"name\":\"c\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0}"
        ))
        .is_err());
        // args without a numeric series.
        assert!(validate(&with_span(
            "{\"name\":\"c\",\"ph\":\"C\",\"ts\":0,\"pid\":1,\"tid\":0,\"args\":{\"busy\":\"x\"}}"
        ))
        .is_err());
    }

    #[test]
    fn json_parser_basics() {
        let v = parse_json("{\"a\": [1, 2.5, \"x\\n\", true, null], \"b\": {}}").expect("parses");
        let arr = v.get("a").and_then(|v| v.as_arr()).expect("arr");
        assert_eq!(arr[1].as_num(), Some(2.5));
        assert_eq!(arr[2].as_str(), Some("x\n"));
        assert_eq!(arr[3], Json::Bool(true));
        assert!(parse_json("[1,]").is_err());
        assert!(parse_json("{\"a\":1} trailing").is_err());
        assert!(parse_json("\"\\u00e9\"").expect("escape").as_str() == Some("é"));
    }
}
