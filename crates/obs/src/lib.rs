//! `obs` — the observability spine of the reproduction.
//!
//! The paper's §4 "Pushdown Monitoring" argues the engine↔OCS boundary
//! must be *observable* to drive pushdown decisions. This crate is the
//! single instrumentation vocabulary every layer shares:
//!
//! * [`Tracer`] / [`Trace`] — a span tree stamped with the **simulated**
//!   netsim clock (plus optional wall-clock seconds for real CPU work such
//!   as decode/agg kernels). Spans carry explicit [`SpanId`]s so they
//!   survive the RPC boundary: the OCS storage executor records spans on
//!   its own local clock, serializes them as [`SpanRec`]s into the stream
//!   trailer, and the engine *grafts* them back under the query's split
//!   spans ([`Tracer::graft`]).
//! * [`Registry`] — a metrics registry of counters, gauges and
//!   fixed-bucket histograms with a diffable [`Snapshot`], plus a process
//!   [`metrics()`] default used by engine, ocs, netsim and columnar kernels.
//! * [`chrome`] — a Chrome trace-event JSON exporter (loadable in
//!   `chrome://tracing` / Perfetto) and a schema validator used by CI.
//! * [`explain`] — the `EXPLAIN ANALYZE` text renderer: the annotated
//!   span tree with per-operator rows/bytes/seconds.
//! * [`Profile`] — per-resource utilization timelines rebuilt from the
//!   pipeline scheduler's busy intervals, with bottleneck attribution
//!   ([`Profile::bottleneck`]) and Chrome counter-track export
//!   ([`chrome::export_with_profile`]).
//! * [`flight()`] — an always-on, fixed-size, lock-free flight recorder
//!   of cache/routing/backpressure decisions ([`FlightRecorder`]).
//! * [`incident`] — slow-query incident reports: SQL + span tree +
//!   profile + flight slice as one JSON document (`xtask report`).
//!
//! The crate is dependency-free and the tracer is free when disabled: a
//! [`Tracer::disabled`] handle (or building with the `tracing-off`
//! feature) records nothing and costs one branch per call site.

#![warn(missing_docs)]

pub mod chrome;
pub mod explain;
pub mod flight;
pub mod incident;
pub mod metrics;
pub mod profile;
pub mod span;

pub use flight::{flight, FlightEvent, FlightKind, FlightRecorder};
pub use metrics::{metrics, Counter, Gauge, Histogram, MetricValue, Registry, Snapshot};
pub use profile::{Bottleneck, Profile, ResourceTimeline};
pub use span::{
    decode_spans, encode_spans, AttrValue, KernelTimer, Span, SpanGuard, SpanId, SpanRec, Trace,
    Tracer,
};

use std::sync::atomic::{AtomicBool, Ordering};

/// Process-wide switch for kernel wall-clock timers (off by default so hot
/// loops never pay for `Instant::now` unless a profiling surface asked).
static KERNEL_TIMING: AtomicBool = AtomicBool::new(false);

/// Enable or disable kernel wall-clock timing hooks ([`KernelTimer`]).
pub fn set_kernel_timing(on: bool) {
    // RELAXED: an isolated on/off flag — a timer arming one toggle late
    // is harmless and nothing else is published through it.
    KERNEL_TIMING.store(on && !cfg!(feature = "tracing-off"), Ordering::Relaxed);
}

/// True when kernel timing hooks should arm.
pub fn kernel_timing_enabled() -> bool {
    // RELAXED: see `set_kernel_timing` — isolated flag read.
    !cfg!(feature = "tracing-off") && KERNEL_TIMING.load(Ordering::Relaxed)
}
