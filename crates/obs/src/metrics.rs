//! A small metrics registry: counters, gauges, fixed-bucket histograms.
//!
//! Instruments are cheap handles onto registry-owned atomics, so call
//! sites can cache them or re-look them up by name; either way updates
//! are lock-free. [`Registry::snapshot`] freezes every instrument into a
//! plain map that tests diff with [`Snapshot::diff`].

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock};

use sync::DebugMutex;

/// Histogram bucket bounds for second-scale latencies (upper-inclusive
/// edges; an implicit +inf bucket catches the rest).
pub const SECONDS_BUCKETS: &[f64] = &[
    1e-6, 1e-5, 1e-4, 1e-3, 1e-2, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 30.0, 60.0,
];

/// Histogram bucket bounds for byte sizes (1 KiB … 1 GiB).
pub const BYTES_BUCKETS: &[f64] = &[
    1024.0,
    16.0 * 1024.0,
    64.0 * 1024.0,
    256.0 * 1024.0,
    1024.0 * 1024.0,
    4.0 * 1024.0 * 1024.0,
    16.0 * 1024.0 * 1024.0,
    64.0 * 1024.0 * 1024.0,
    256.0 * 1024.0 * 1024.0,
    1024.0 * 1024.0 * 1024.0,
];

/// A monotonically increasing counter.
#[derive(Debug, Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Add `n`.
    pub fn add(&self, n: u64) {
        // RELAXED: an isolated statistics cell — no other memory is
        // published by an increment, readers tolerate any interleaving.
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        // RELAXED: statistics read; snapshots don't order against writers.
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge that can move both ways (queue depths, buffered bytes).
#[derive(Debug, Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        // RELAXED: an isolated statistics cell — the level itself is the
        // only state, nothing else is published through it.
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, delta: i64) {
        // RELAXED: see `set` — isolated statistics cell.
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Record a new value and keep the maximum (high-water marks).
    pub fn record_max(&self, v: i64) {
        // RELAXED: see `set` — isolated statistics cell.
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        // RELAXED: statistics read; snapshots don't order against writers.
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    bounds: Vec<f64>,
    /// One count per bound, plus a trailing +inf bucket.
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// f64 sum as bits, updated with a CAS loop (no atomic f64 in std).
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations.
#[derive(Debug, Clone)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: f64) {
        let i = self
            .0
            .bounds
            .iter()
            .position(|b| v <= *b)
            .unwrap_or(self.0.bounds.len());
        // RELAXED: independent statistical counters — readers tolerate a
        // momentarily torn bucket/count/sum view, nothing else is
        // published through them.
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        // RELAXED: same isolated-statistics argument as the bucket above.
        self.0.count.fetch_add(1, Ordering::Relaxed);
        // RELAXED: seed read for the CAS loop below, re-read on failure.
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            // RELAXED: CAS retry loop over a single cell — the exchanged
            // bits carry all the state, no cross-cell ordering needed.
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(actual) => cur = actual,
            }
        }
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        // RELAXED: statistics read; snapshots don't order against writers.
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observations.
    pub fn sum(&self) -> f64 {
        // RELAXED: statistics read; snapshots don't order against writers.
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// Per-bucket counts (one entry per bound, plus the +inf bucket).
    pub fn bucket_counts(&self) -> Vec<u64> {
        self.0
            .buckets
            .iter()
            // RELAXED: statistics read; a torn multi-bucket view is fine.
            .map(|b| b.load(Ordering::Relaxed))
            .collect()
    }

    /// Estimated `q`-quantile (`0.0..=1.0`) by linear interpolation inside
    /// the bucket holding the rank (see [`quantile_from_buckets`]).
    /// `None` when the histogram is empty.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        quantile_from_buckets(&self.0.bounds, &self.bucket_counts(), q)
    }
}

/// Estimate the `q`-quantile (`0.0..=1.0`) of a log-bucket histogram by
/// linear interpolation inside the bucket holding the rank.
///
/// `buckets` has one count per bound plus a trailing +inf bucket. The
/// rank's bucket spans `(previous bound, its bound]` (the first bucket's
/// lower edge is 0); the estimate interpolates linearly through that
/// span by the rank's position among the bucket's observations. A rank
/// landing in the +inf bucket is clamped to the last finite bound (the
/// histogram cannot see past it). Returns `None` for an empty histogram
/// or when there are no finite bounds to interpolate against.
pub fn quantile_from_buckets(bounds: &[f64], buckets: &[u64], q: f64) -> Option<f64> {
    let total: u64 = buckets.iter().sum();
    if total == 0 {
        return None;
    }
    let q = q.clamp(0.0, 1.0);
    // Nearest-rank target: the smallest k with cum(k) >= ceil(q * total),
    // at least 1 so q=0 reads the first observation's bucket.
    let target = ((q * total as f64).ceil() as u64).max(1);
    let mut cum = 0u64;
    for (i, &c) in buckets.iter().enumerate() {
        if c == 0 {
            continue;
        }
        let before = cum;
        cum += c;
        if cum < target {
            continue;
        }
        if i >= bounds.len() {
            // +inf bucket: clamp to the largest finite edge.
            return bounds.last().copied();
        }
        let lo = if i == 0 { 0.0 } else { bounds[i - 1] };
        let hi = bounds[i];
        let frac = (target - before) as f64 / c as f64;
        return Some(lo + frac * (hi - lo));
    }
    bounds.last().copied()
}

enum Instrument {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

/// A registry of named instruments.
pub struct Registry {
    by_name: DebugMutex<BTreeMap<String, Instrument>>,
}

impl Default for Registry {
    fn default() -> Registry {
        Registry {
            by_name: DebugMutex::named("obs.metrics.by_name", BTreeMap::new()),
        }
    }
}

impl Registry {
    /// An empty registry (tests usually make their own rather than using
    /// the process-global [`metrics`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or register the counter `name`.
    pub fn counter(&self, name: &str) -> Counter {
        let mut map = self.by_name.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Counter(Counter(Arc::new(AtomicU64::new(0)))))
        {
            Instrument::Counter(c) => c.clone(),
            // Name collision across kinds: return a detached instrument
            // rather than panicking; the registered one wins in snapshots.
            _ => Counter(Arc::new(AtomicU64::new(0))),
        }
    }

    /// Get or register the gauge `name`.
    pub fn gauge(&self, name: &str) -> Gauge {
        let mut map = self.by_name.lock();
        match map
            .entry(name.to_string())
            .or_insert_with(|| Instrument::Gauge(Gauge(Arc::new(AtomicI64::new(0)))))
        {
            Instrument::Gauge(g) => g.clone(),
            _ => Gauge(Arc::new(AtomicI64::new(0))),
        }
    }

    /// Get or register the histogram `name` with the given bucket bounds
    /// (ignored if the histogram already exists).
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        let mut map = self.by_name.lock();
        match map.entry(name.to_string()).or_insert_with(|| {
            let buckets = (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect();
            Instrument::Histogram(Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
            })))
        }) {
            Instrument::Histogram(h) => h.clone(),
            _ => Histogram(Arc::new(HistogramInner {
                bounds: bounds.to_vec(),
                buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0.0f64.to_bits()),
            })),
        }
    }

    /// Freeze every instrument into a diffable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        let map = self.by_name.lock();
        let values = map
            .iter()
            .map(|(name, inst)| {
                let v = match inst {
                    Instrument::Counter(c) => MetricValue::Counter(c.get()),
                    Instrument::Gauge(g) => MetricValue::Gauge(g.get()),
                    Instrument::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts(),
                        bounds: h.0.bounds.clone(),
                    },
                };
                (name.clone(), v)
            })
            .collect();
        Snapshot { values }
    }
}

/// The frozen value of one instrument.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Counter total.
    Counter(u64),
    /// Gauge level.
    Gauge(i64),
    /// Histogram count/sum/bucket-counts.
    Histogram {
        /// Number of observations.
        count: u64,
        /// Sum of observations.
        sum: f64,
        /// Per-bucket counts (last is +inf).
        buckets: Vec<u64>,
        /// Upper-inclusive bucket bounds (one per bucket except +inf).
        bounds: Vec<f64>,
    },
}

/// A frozen view of a [`Registry`], name → value.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Snapshot {
    /// Instrument values, sorted by name.
    pub values: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Value for `name`.
    pub fn get(&self, name: &str) -> Option<&MetricValue> {
        self.values.get(name)
    }

    /// Counter value for `name` (0 when absent — convenient in diffs).
    pub fn counter(&self, name: &str) -> u64 {
        match self.values.get(name) {
            Some(MetricValue::Counter(v)) => *v,
            _ => 0,
        }
    }

    /// Gauge value for `name` (0 when absent).
    pub fn gauge(&self, name: &str) -> i64 {
        match self.values.get(name) {
            Some(MetricValue::Gauge(v)) => *v,
            _ => 0,
        }
    }

    /// Histogram (count, sum) for `name` ((0, 0.0) when absent).
    pub fn histogram(&self, name: &str) -> (u64, f64) {
        match self.values.get(name) {
            Some(MetricValue::Histogram { count, sum, .. }) => (*count, *sum),
            _ => (0, 0.0),
        }
    }

    /// Estimated `q`-quantile of histogram `name` by bucket interpolation
    /// ([`quantile_from_buckets`]); `None` when absent or empty.
    pub fn histogram_quantile(&self, name: &str, q: f64) -> Option<f64> {
        match self.values.get(name) {
            Some(MetricValue::Histogram {
                buckets, bounds, ..
            }) => quantile_from_buckets(bounds, buckets, q),
            _ => None,
        }
    }

    /// What changed since `earlier`: counters and histogram counts/sums
    /// become deltas, gauges keep their latest level. Unchanged
    /// instruments are dropped.
    pub fn diff(&self, earlier: &Snapshot) -> Snapshot {
        let mut values = BTreeMap::new();
        for (name, now) in &self.values {
            let changed = match (now, earlier.values.get(name)) {
                (MetricValue::Counter(n), before) => {
                    let b = match before {
                        Some(MetricValue::Counter(b)) => *b,
                        _ => 0,
                    };
                    if *n == b {
                        None
                    } else {
                        Some(MetricValue::Counter(n - b))
                    }
                }
                (MetricValue::Gauge(n), before) => {
                    let b = match before {
                        Some(MetricValue::Gauge(b)) => *b,
                        _ => 0,
                    };
                    if *n == b {
                        None
                    } else {
                        Some(MetricValue::Gauge(*n))
                    }
                }
                (
                    MetricValue::Histogram {
                        count,
                        sum,
                        buckets,
                        bounds,
                    },
                    before,
                ) => {
                    let (bc, bs, bb) = match before {
                        Some(MetricValue::Histogram {
                            count,
                            sum,
                            buckets,
                            ..
                        }) => (*count, *sum, buckets.clone()),
                        _ => (0, 0.0, vec![0; buckets.len()]),
                    };
                    if *count == bc {
                        None
                    } else {
                        Some(MetricValue::Histogram {
                            count: count - bc,
                            sum: sum - bs,
                            buckets: buckets
                                .iter()
                                .zip(bb.iter().chain(std::iter::repeat(&0)))
                                .map(|(n, b)| n.saturating_sub(*b))
                                .collect(),
                            bounds: bounds.clone(),
                        })
                    }
                }
            };
            if let Some(v) = changed {
                values.insert(name.clone(), v);
            }
        }
        Snapshot { values }
    }

    /// Render as `name value` lines (stable order; used by debug dumps).
    pub fn render(&self) -> String {
        let mut out = String::new();
        for (name, v) in &self.values {
            match v {
                MetricValue::Counter(n) => out.push_str(&format!("{name} {n}\n")),
                MetricValue::Gauge(n) => out.push_str(&format!("{name} {n}\n")),
                MetricValue::Histogram { count, sum, .. } => {
                    out.push_str(&format!("{name} count={count} sum={sum:.6}\n"))
                }
            }
        }
        out
    }
}

/// The process-wide registry shared by engine, ocs, netsim and columnar.
pub fn metrics() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_and_gauges() {
        let r = Registry::new();
        let c = r.counter("frames");
        c.inc();
        c.add(4);
        assert_eq!(r.counter("frames").get(), 5);
        let g = r.gauge("depth");
        g.add(3);
        g.add(-1);
        assert_eq!(g.get(), 2);
        g.record_max(10);
        g.record_max(7);
        assert_eq!(r.gauge("depth").get(), 10);
    }

    #[test]
    fn histogram_buckets_and_sum() {
        let r = Registry::new();
        let h = r.histogram("lat", &[1.0, 10.0]);
        h.observe(0.5);
        h.observe(5.0);
        h.observe(50.0);
        assert_eq!(h.count(), 3);
        assert!((h.sum() - 55.5).abs() < 1e-9);
        assert_eq!(h.bucket_counts(), vec![1, 1, 1]);
    }

    #[test]
    fn snapshot_diff() {
        let r = Registry::new();
        let c = r.counter("a");
        let g = r.gauge("g");
        let h = r.histogram("h", &[1.0]);
        c.add(2);
        g.set(5);
        h.observe(0.5);
        let before = r.snapshot();
        c.add(3);
        h.observe(2.0);
        let after = r.snapshot();
        let d = after.diff(&before);
        assert_eq!(d.counter("a"), 3);
        assert_eq!(d.get("g"), None, "unchanged gauge dropped");
        assert_eq!(d.histogram("h"), (1, 2.0));
        assert!(d.render().contains("a 3"));
    }

    #[test]
    fn quantiles_interpolate_within_buckets() {
        let r = Registry::new();
        let h = r.histogram("lat", &[1.0, 2.0, 4.0]);
        // 10 observations in (1, 2]: ranks spread linearly through the
        // bucket, so p50 reads halfway up the (1, 2] span.
        for _ in 0..10 {
            h.observe(1.5);
        }
        assert!((h.quantile(0.5).unwrap() - 1.5).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-9);
        // p0 still reads inside the occupied bucket, above its lower edge.
        assert!(h.quantile(0.0).unwrap() > 1.0);
        // Snapshot path agrees with the live instrument.
        let snap = r.snapshot();
        assert_eq!(snap.histogram_quantile("lat", 0.5), h.quantile(0.5));
        assert_eq!(snap.histogram_quantile("missing", 0.5), None);
    }

    #[test]
    fn quantile_exact_boundary_observations() {
        // Observations exactly on an upper-inclusive bound land in that
        // bound's bucket; p100 must come back as the bound itself.
        let r = Registry::new();
        let h = r.histogram("b", &[1.0, 2.0, 4.0]);
        for _ in 0..4 {
            h.observe(2.0);
        }
        assert!((h.quantile(1.0).unwrap() - 2.0).abs() < 1e-9);
        // All mass in one bucket: every quantile interpolates in (1, 2].
        for q in [0.0, 0.25, 0.5, 0.95, 0.99] {
            let v = h.quantile(q).unwrap();
            assert!(v > 1.0 && v <= 2.0, "q={q} -> {v}");
        }
    }

    #[test]
    fn quantile_single_bucket_and_overflow() {
        // Single-bound histogram: one finite bucket (0, 10] + the +inf
        // overflow.
        let r = Registry::new();
        let h = r.histogram("s", &[10.0]);
        assert_eq!(h.quantile(0.5), None, "empty histogram has no quantile");
        h.observe(5.0);
        h.observe(5.0);
        assert!((h.quantile(0.5).unwrap() - 5.0).abs() < 1e-9);
        assert!((h.quantile(1.0).unwrap() - 10.0).abs() < 1e-9);
        // Overflow observations clamp to the last finite bound.
        for _ in 0..100 {
            h.observe(1e9);
        }
        assert!((h.quantile(0.99).unwrap() - 10.0).abs() < 1e-9);
        // No finite bounds at all: nothing to interpolate against.
        assert_eq!(quantile_from_buckets(&[], &[7], 0.5), None);
    }

    #[test]
    fn concurrent_updates() {
        let r = Arc::new(Registry::new());
        let mut joins = Vec::new();
        for _ in 0..8 {
            let r = r.clone();
            joins.push(std::thread::spawn(move || {
                let c = r.counter("n");
                let h = r.histogram("s", SECONDS_BUCKETS);
                for _ in 0..1000 {
                    c.inc();
                    h.observe(0.001);
                }
            }));
        }
        for j in joins {
            j.join().expect("worker");
        }
        assert_eq!(r.counter("n").get(), 8000);
        let (count, sum) = r.snapshot().histogram("s");
        assert_eq!(count, 8000);
        assert!((sum - 8.0).abs() < 1e-9);
    }
}
