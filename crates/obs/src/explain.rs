//! `EXPLAIN ANALYZE` text rendering: the annotated span tree.
//!
//! Renders a [`Trace`] as an indented tree with per-span simulated
//! seconds, percent-of-total, wall seconds when measured, and the
//! rows/bytes attributes the instrumented layers attach. The output is
//! deterministic (spans render in start order, ties by id) so tests can
//! assert against it.

use crate::span::{AttrValue, Span, SpanId, Trace};

/// Attribute keys rendered inline after the timing columns, in this
/// order, when present on a span.
const INLINE_ATTRS: &[&str] = &[
    "rows",
    "bytes",
    "frames",
    "splits",
    "nodes",
    "ops",
    "workers",
    "selectivity",
    "bottleneck",
    "bottleneck_util_pct",
    "local_s",
    "cache_hit",
    "rg_cache_hits",
    "cache_bytes_avoided",
];

fn fmt_value(key: &str, v: &AttrValue) -> String {
    match v {
        AttrValue::U64(n) if key == "bytes" || key.ends_with("bytes_avoided") => {
            if *n >= 1024 * 1024 {
                format!("{:.1} MiB", *n as f64 / (1024.0 * 1024.0))
            } else if *n >= 1024 {
                format!("{:.1} KiB", *n as f64 / 1024.0)
            } else {
                format!("{n} B")
            }
        }
        AttrValue::U64(n) => format!("{n}"),
        AttrValue::F64(f) if key.ends_with("_s") => format!("{f:.6}s"),
        AttrValue::F64(f) => format!("{f:.4}"),
        AttrValue::Str(s) => s.clone(),
    }
}

fn render_span(trace: &Trace, span: &Span, total_s: f64, depth: usize, out: &mut String) {
    let indent = "  ".repeat(depth);
    let pct = if total_s > 0.0 {
        span.seconds() / total_s * 100.0
    } else {
        0.0
    };
    out.push_str(&format!(
        "{indent}{}  sim={:.6}s ({pct:.1}%)",
        span.name,
        span.seconds()
    ));
    if let Some(w) = span.wall_s {
        out.push_str(&format!("  wall={w:.6}s"));
    }
    let mut extras: Vec<String> = Vec::new();
    for key in INLINE_ATTRS {
        if let Some(v) = span.attr(key) {
            extras.push(format!("{key}={}", fmt_value(key, v)));
        }
    }
    for (k, v) in &span.attrs {
        if !INLINE_ATTRS.contains(&k.as_str()) {
            extras.push(format!("{k}={}", fmt_value(k, v)));
        }
    }
    if !extras.is_empty() {
        out.push_str("  [");
        out.push_str(&extras.join(" "));
        out.push(']');
    }
    out.push('\n');
    for child in trace.children(span.id) {
        render_span(trace, child, total_s, depth + 1, out);
    }
}

/// Render the annotated span tree. Roots (parentless spans) render at
/// depth 0; percentages are relative to the first root's duration.
pub fn render(trace: &Trace) -> String {
    let total_s = trace.total_s();
    let mut out = String::new();
    let roots: Vec<&Span> = trace.spans.iter().filter(|s| s.parent.is_none()).collect();
    if roots.is_empty() {
        out.push_str("(empty trace)\n");
        return out;
    }
    for root in roots {
        render_span(trace, root, total_s, 0, &mut out);
    }
    out
}

/// Render with a header line (used by `EXPLAIN ANALYZE`): the statement,
/// the total simulated seconds, and the span count, then the tree.
pub fn render_analyze(sql: &str, trace: &Trace) -> String {
    let mut out = format!(
        "EXPLAIN ANALYZE  total_sim={:.6}s  spans={}\nquery: {}\n\n",
        trace.total_s(),
        trace.spans.len(),
        sql.trim()
    );
    out.push_str(&render(trace));
    out
}

/// Sum the simulated seconds of the direct children of `parent`
/// (the per-phase total `EXPLAIN ANALYZE` acceptance checks against).
pub fn child_sum_s(trace: &Trace, parent: SpanId) -> f64 {
    trace.children(parent).iter().map(|s| s.seconds()).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::Tracer;

    #[test]
    fn renders_tree_with_attrs() {
        let t = Tracer::new();
        let root = t.record("query", "phase", None, 0.0, 4.0);
        let scan = t.record("scan", "phase", Some(root), 0.0, 3.0);
        t.attr(scan, "rows", 6_001_215u64);
        t.attr(scan, "bytes", 3u64 * 1024 * 1024);
        t.set_wall(scan, 0.25);
        t.record("agg", "phase", Some(root), 3.0, 4.0);
        let trace = t.finish();
        let text = render_analyze("SELECT 1", &trace);
        assert!(text.contains("total_sim=4.000000s"));
        assert!(text.contains("query  sim=4.000000s (100.0%)"));
        assert!(text.contains("  scan  sim=3.000000s (75.0%)  wall=0.250000s"));
        assert!(text.contains("rows=6001215"));
        assert!(text.contains("bytes=3.0 MiB"));
        assert!(text.contains("  agg  sim=1.000000s (25.0%)"));
        assert!((child_sum_s(&trace, root) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn empty_trace() {
        assert_eq!(render(&Trace::default()), "(empty trace)\n");
    }
}
