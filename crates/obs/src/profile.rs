//! Per-resource utilization timelines and bottleneck attribution.
//!
//! The pipeline scheduler (`netsim::pipeline_grouped`) records every
//! service window it schedules as a busy interval per stage. This module
//! turns those intervals into *resource* timelines — "the storage cores
//! were k-way busy from t₀ to t₁" — and answers the question the paper's
//! evaluation keeps asking: over this span's window, **which resource was
//! the bottleneck, and how saturated was it?**
//!
//! Utilization of a resource over a window `[a, b]` is the overlap of its
//! busy intervals with the window, divided by the window length times the
//! resource's lane count (cores, or 1 for a serial link/disk). The
//! bottleneck of a window is simply the resource with the highest
//! utilization — the one whose saturation bounds the window's makespan.
//! Chrome counter tracks ([`crate::chrome::export_with_profile`]) render
//! the same timelines as step functions of busy lanes.

use std::fmt;

/// Busy timeline of one resource.
#[derive(Debug, Clone, PartialEq)]
pub struct ResourceTimeline {
    /// Resource name (`storage-cores`, `link`, `storage-disk`,
    /// `frontend-cores`, `compute-cores`, …).
    pub resource: String,
    /// Parallel lanes the resource offers (cores; 1 for serial links).
    pub lanes: usize,
    /// Busy intervals `(start, end)` on the simulated clock. Intervals
    /// may overlap up to `lanes` deep.
    pub intervals: Vec<(f64, f64)>,
}

impl ResourceTimeline {
    /// Total busy lane-seconds overlapping the window `[a, b]`.
    pub fn busy_in(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        self.intervals
            .iter()
            .map(|&(s, e)| (e.min(b) - s.max(a)).max(0.0))
            .sum()
    }

    /// Utilization of the resource over `[a, b]`: busy lane-seconds over
    /// available lane-seconds, in `0.0..=1.0`.
    pub fn utilization_in(&self, a: f64, b: f64) -> f64 {
        if b <= a {
            return 0.0;
        }
        let avail = (b - a) * self.lanes.max(1) as f64;
        (self.busy_in(a, b) / avail).clamp(0.0, 1.0)
    }

    /// The timeline as a step function of concurrently busy lanes:
    /// `(t, busy)` at every point the busy-lane count changes, in time
    /// order, ending at 0. Feeds the Chrome counter tracks.
    pub fn steps(&self) -> Vec<(f64, u64)> {
        let mut edges: Vec<(f64, i64)> = Vec::with_capacity(self.intervals.len() * 2);
        for &(s, e) in &self.intervals {
            if e > s {
                edges.push((s, 1));
                edges.push((e, -1));
            }
        }
        edges.sort_by(|x, y| {
            x.0.partial_cmp(&y.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(x.1.cmp(&y.1))
        });
        let mut out: Vec<(f64, u64)> = Vec::new();
        let mut depth = 0i64;
        for (t, d) in edges {
            depth += d;
            let busy = depth.max(0) as u64;
            match out.last_mut() {
                Some(last) if last.0 == t => last.1 = busy,
                _ => out.push((t, busy)),
            }
        }
        out
    }
}

/// A query's resource-utilization profile: one timeline per resource,
/// over the split phase's window on the simulated clock.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Profile {
    /// Per-resource timelines, in insertion order.
    pub timelines: Vec<ResourceTimeline>,
    /// Window start on the simulated clock.
    pub start_s: f64,
    /// Window end on the simulated clock.
    pub end_s: f64,
}

/// One bottleneck attribution: the busiest resource over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct Bottleneck {
    /// Name of the saturating resource.
    pub resource: String,
    /// Its utilization over the window, `0.0..=1.0`.
    pub utilization: f64,
}

impl fmt::Display for Bottleneck {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at {:.0}%", self.resource, self.utilization * 100.0)
    }
}

impl Profile {
    /// An empty profile over `[start_s, end_s]`.
    pub fn new(start_s: f64, end_s: f64) -> Profile {
        Profile {
            timelines: Vec::new(),
            start_s,
            end_s: end_s.max(start_s),
        }
    }

    /// Add (or extend) the timeline of `resource`. Intervals merge into
    /// an existing timeline of the same name so multiple pipeline runs
    /// can contribute to one profile.
    pub fn add_resource(&mut self, resource: &str, lanes: usize, intervals: Vec<(f64, f64)>) {
        match self.timelines.iter_mut().find(|t| t.resource == resource) {
            Some(t) => {
                t.lanes = t.lanes.max(lanes);
                t.intervals.extend(intervals);
            }
            None => self.timelines.push(ResourceTimeline {
                resource: resource.to_string(),
                lanes: lanes.max(1),
                intervals,
            }),
        }
    }

    /// True when no resource recorded any busy time.
    pub fn is_empty(&self) -> bool {
        self.timelines.iter().all(|t| t.intervals.is_empty())
    }

    /// Utilization of `resource` over `[a, b]`; `None` for unknown names.
    pub fn utilization_in(&self, resource: &str, a: f64, b: f64) -> Option<f64> {
        self.timelines
            .iter()
            .find(|t| t.resource == resource)
            .map(|t| t.utilization_in(a, b))
    }

    /// The bottleneck over `[a, b]`: the resource with the highest
    /// utilization (ties break toward the earlier-registered resource).
    /// `None` when the profile is empty or the window is degenerate.
    pub fn bottleneck_in(&self, a: f64, b: f64) -> Option<Bottleneck> {
        if b <= a {
            return None;
        }
        let mut best: Option<Bottleneck> = None;
        for t in &self.timelines {
            let u = t.utilization_in(a, b);
            if u <= 0.0 {
                continue;
            }
            if best.as_ref().is_none_or(|b| u > b.utilization) {
                best = Some(Bottleneck {
                    resource: t.resource.clone(),
                    utilization: u,
                });
            }
        }
        best
    }

    /// The bottleneck over the profile's whole window.
    pub fn bottleneck(&self) -> Option<Bottleneck> {
        self.bottleneck_in(self.start_s, self.end_s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn timeline(lanes: usize, intervals: &[(f64, f64)]) -> ResourceTimeline {
        ResourceTimeline {
            resource: "r".into(),
            lanes,
            intervals: intervals.to_vec(),
        }
    }

    #[test]
    fn busy_overlap_clips_to_window() {
        let t = timeline(1, &[(0.0, 2.0), (3.0, 5.0)]);
        assert_eq!(t.busy_in(0.0, 5.0), 4.0);
        assert_eq!(t.busy_in(1.0, 4.0), 2.0, "half of each interval");
        assert_eq!(t.busy_in(2.0, 3.0), 0.0, "gap");
        assert_eq!(t.busy_in(5.0, 5.0), 0.0, "degenerate window");
    }

    #[test]
    fn utilization_accounts_for_lanes() {
        // Two lanes, both busy for the first half of a 2 s window.
        let t = timeline(2, &[(0.0, 1.0), (0.0, 1.0)]);
        assert!((t.utilization_in(0.0, 2.0) - 0.5).abs() < 1e-12);
        assert!((t.utilization_in(0.0, 1.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn steps_count_concurrency() {
        let t = timeline(2, &[(0.0, 2.0), (1.0, 3.0)]);
        assert_eq!(t.steps(), vec![(0.0, 1), (1.0, 2), (2.0, 1), (3.0, 0)]);
        // Coincident edges collapse to one step entry.
        let t = timeline(2, &[(0.0, 1.0), (1.0, 2.0)]);
        assert_eq!(t.steps(), vec![(0.0, 1), (1.0, 1), (2.0, 0)]);
    }

    #[test]
    fn bottleneck_picks_highest_utilization() {
        let mut p = Profile::new(0.0, 10.0);
        p.add_resource("storage-cores", 16, vec![(0.0, 10.0); 4]); // 4/16
        p.add_resource("link", 1, vec![(0.0, 8.0)]); // 8/10
        p.add_resource("compute-cores", 64, vec![(0.0, 5.0); 8]); // 40/640
        let b = p.bottleneck().expect("non-empty");
        assert_eq!(b.resource, "link");
        assert!((b.utilization - 0.8).abs() < 1e-12);
        assert!(b.to_string().contains("link at 80%"));
        // A sub-window where the link is idle flips the answer.
        let b = p.bottleneck_in(8.0, 10.0).expect("still busy");
        assert_eq!(b.resource, "storage-cores");
    }

    #[test]
    fn merging_resources_extends_timeline() {
        let mut p = Profile::new(0.0, 4.0);
        p.add_resource("link", 1, vec![(0.0, 1.0)]);
        p.add_resource("link", 1, vec![(2.0, 3.0)]);
        assert_eq!(p.timelines.len(), 1);
        assert_eq!(p.utilization_in("link", 0.0, 4.0), Some(0.5));
        assert_eq!(p.utilization_in("nope", 0.0, 4.0), None);
    }

    #[test]
    fn empty_profile_has_no_bottleneck() {
        let p = Profile::new(0.0, 1.0);
        assert!(p.is_empty());
        assert_eq!(p.bottleneck(), None);
        assert_eq!(Profile::new(1.0, 1.0).bottleneck_in(1.0, 1.0), None);
    }
}
