//! The always-on flight recorder: a fixed-size, dependency-free ring of
//! typed structured events.
//!
//! Spans answer "where did the time go" for one traced query; the flight
//! recorder answers "what was the *system* doing around then" — cache
//! admissions and hits, routing decisions, frame-window backpressure
//! stalls, version purges, lock-audit observations — continuously, for
//! every query, traced or not. It is sized in events, not bytes, and old
//! events are overwritten oldest-first, so the cost is a fixed allocation
//! at first use plus a handful of atomic stores per event.
//!
//! Concurrency model: a per-slot seqlock over plain atomics (no locks, no
//! `unsafe`). The writer claims a sequence number from a global cursor,
//! flips the target slot's version to odd, stores the fields, and
//! publishes by storing the even successor version. Readers snapshot the
//! version, read the fields, and re-check; a torn or overwritten slot is
//! simply skipped. Two writers colliding on one slot (a wraparound more
//! than `capacity` events deep during one write) drop the later event
//! rather than interleave stores — a flight recorder prefers a hole to a
//! lie.
//!
//! The process-global recorder ([`flight`]) reads its capacity from
//! `OBS_FLIGHT_CAPACITY` (events, default 4096) once at first use, and
//! installs itself as the `sync` lock auditor's edge observer so newly
//! established lock-order edges appear in the stream as
//! [`FlightKind::LockReport`] events.

use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// Ring capacity (events) when `OBS_FLIGHT_CAPACITY` is unset.
pub const DEFAULT_CAPACITY: usize = 4096;

/// The event taxonomy. Every event carries three `u64` payload words
/// (`a`, `b`, `c`) whose meaning is per-kind (documented on each
/// variant); unknown codes read back from the ring are skipped, never
/// panicked on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FlightKind {
    /// Cache admitted an entry. `a` = tier (0 row-group, 1 result),
    /// `b` = charged bytes, `c` = node id (0 when recorded below the
    /// node layer).
    CacheAdmit,
    /// Cache evicted entries under budget pressure. `a` = tier,
    /// `b` = evictions so far (monotonic), `c` = node id.
    CacheEvict,
    /// Row-group cache hit(s) served a scan. `a` = hits in this request,
    /// `b` = bytes avoided, `c` = node id.
    CacheHit,
    /// Pushdown-result cache replayed a whole response. `a` = 1,
    /// `b` = bytes avoided, `c` = node id.
    ResultCacheHit,
    /// Router sent a request to its natural (affinity) owner.
    /// `a` = node id, `b` = node load after, `c` = key hash.
    RouteNatural,
    /// Router spilled a request off its overloaded natural owner.
    /// `a` = natural node, `b` = chosen node, `c` = key hash.
    RouteSpill,
    /// A stream's frame window was full when the consumer asked for the
    /// next batch. `a` = window size, `b` = frames buffered,
    /// `c` = frames already relayed.
    BackpressureStall,
    /// A write superseded cached object versions and purged them.
    /// `a` = new version, `b` = row-group entries purged, `c` = result
    /// entries purged.
    VersionPurge,
    /// The dynamic lock auditor recorded a new order-graph edge.
    /// `a` = FNV-1a hash of the held class, `b` = hash of the acquired
    /// class, `c` = 0.
    LockReport,
    /// A query exceeded the engine's slow-query threshold.
    /// `a` = simulated microseconds, `b` = threshold microseconds,
    /// `c` = flight cursor at query start.
    SlowQuery,
}

impl FlightKind {
    /// Stable wire/ring code.
    pub fn code(self) -> u64 {
        match self {
            FlightKind::CacheAdmit => 1,
            FlightKind::CacheEvict => 2,
            FlightKind::CacheHit => 3,
            FlightKind::ResultCacheHit => 4,
            FlightKind::RouteNatural => 5,
            FlightKind::RouteSpill => 6,
            FlightKind::BackpressureStall => 7,
            FlightKind::VersionPurge => 8,
            FlightKind::LockReport => 9,
            FlightKind::SlowQuery => 10,
        }
    }

    /// Decode a ring code (`None` for unknown codes — skipped by readers).
    pub fn from_code(code: u64) -> Option<FlightKind> {
        Some(match code {
            1 => FlightKind::CacheAdmit,
            2 => FlightKind::CacheEvict,
            3 => FlightKind::CacheHit,
            4 => FlightKind::ResultCacheHit,
            5 => FlightKind::RouteNatural,
            6 => FlightKind::RouteSpill,
            7 => FlightKind::BackpressureStall,
            8 => FlightKind::VersionPurge,
            9 => FlightKind::LockReport,
            10 => FlightKind::SlowQuery,
            _ => return None,
        })
    }

    /// Short display label.
    pub fn label(self) -> &'static str {
        match self {
            FlightKind::CacheAdmit => "cache.admit",
            FlightKind::CacheEvict => "cache.evict",
            FlightKind::CacheHit => "cache.hit",
            FlightKind::ResultCacheHit => "cache.result_hit",
            FlightKind::RouteNatural => "route.natural",
            FlightKind::RouteSpill => "route.spill",
            FlightKind::BackpressureStall => "backpressure.stall",
            FlightKind::VersionPurge => "version.purge",
            FlightKind::LockReport => "lock.edge",
            FlightKind::SlowQuery => "slow_query",
        }
    }
}

/// One decoded flight event.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightEvent {
    /// Global sequence number (monotonic across the process).
    pub seq: u64,
    /// Wall seconds since the recorder was created.
    pub t_s: f64,
    /// Event kind.
    pub kind: FlightKind,
    /// First payload word (per-kind meaning; see [`FlightKind`]).
    pub a: u64,
    /// Second payload word.
    pub b: u64,
    /// Third payload word.
    pub c: u64,
}

impl FlightEvent {
    /// One-line human rendering (`EXPLAIN ANALYZE` and incident reports).
    pub fn describe(&self) -> String {
        match self.kind {
            FlightKind::CacheAdmit => format!(
                "cache.admit tier={} bytes={} node={}",
                tier_label(self.a),
                self.b,
                self.c
            ),
            FlightKind::CacheEvict => format!(
                "cache.evict tier={} evictions={} node={}",
                tier_label(self.a),
                self.b,
                self.c
            ),
            FlightKind::CacheHit => format!(
                "cache.hit hits={} bytes_avoided={} node={}",
                self.a, self.b, self.c
            ),
            FlightKind::ResultCacheHit => {
                format!("cache.result_hit bytes_avoided={} node={}", self.b, self.c)
            }
            FlightKind::RouteNatural => {
                format!("route.natural node={} load={}", self.a, self.b)
            }
            FlightKind::RouteSpill => {
                format!("route.spill natural={} chosen={}", self.a, self.b)
            }
            FlightKind::BackpressureStall => format!(
                "backpressure.stall window={} buffered={} relayed={}",
                self.a, self.b, self.c
            ),
            FlightKind::VersionPurge => format!(
                "version.purge version={} rg_purged={} result_purged={}",
                self.a, self.b, self.c
            ),
            FlightKind::LockReport => {
                format!("lock.edge held={:016x} acquired={:016x}", self.a, self.b)
            }
            FlightKind::SlowQuery => {
                format!("slow_query sim_us={} threshold_us={}", self.a, self.b)
            }
        }
    }
}

fn tier_label(tier: u64) -> &'static str {
    match tier {
        0 => "row_group",
        1 => "result",
        _ => "unknown",
    }
}

/// One seqlock-protected ring slot: `ver` odd while a writer owns it,
/// fields valid only when two even `ver` reads bracket them.
#[derive(Debug)]
struct Slot {
    ver: AtomicU64,
    seq: AtomicU64,
    t_bits: AtomicU64,
    kind: AtomicU64,
    a: AtomicU64,
    b: AtomicU64,
    c: AtomicU64,
}

impl Slot {
    fn empty() -> Slot {
        Slot {
            ver: AtomicU64::new(0),
            seq: AtomicU64::new(u64::MAX),
            t_bits: AtomicU64::new(0),
            kind: AtomicU64::new(0),
            a: AtomicU64::new(0),
            b: AtomicU64::new(0),
            c: AtomicU64::new(0),
        }
    }
}

/// A fixed-capacity, lock-free-ish ring of [`FlightEvent`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    slots: Box<[Slot]>,
    /// Next sequence number to claim; `head - capacity .. head` is the
    /// live window.
    head: AtomicU64,
    epoch: Instant,
    enabled: AtomicBool,
}

impl FlightRecorder {
    /// A recorder holding the most recent `capacity` events (min 1).
    pub fn with_capacity(capacity: usize) -> FlightRecorder {
        let capacity = capacity.max(1);
        FlightRecorder {
            slots: (0..capacity).map(|_| Slot::empty()).collect(),
            head: AtomicU64::new(0),
            epoch: Instant::now(),
            enabled: AtomicBool::new(!cfg!(feature = "tracing-off")),
        }
    }

    /// Ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Whether events are being recorded.
    pub fn is_enabled(&self) -> bool {
        // RELAXED: isolated on/off flag; nothing is published through it.
        self.enabled.load(Ordering::Relaxed)
    }

    /// Turn recording on or off (the overhead bench compares the two;
    /// `tracing-off` builds force it off).
    pub fn set_enabled(&self, on: bool) {
        // RELAXED: isolated on/off flag — a writer observing the toggle
        // one event late is harmless.
        self.enabled
            .store(on && !cfg!(feature = "tracing-off"), Ordering::Relaxed);
    }

    /// The next sequence number to be assigned. Capture before a query
    /// and pass to [`FlightRecorder::since`] after it to slice the
    /// query's events.
    pub fn cursor(&self) -> u64 {
        // RELAXED: a monotonic cursor read; per-slot versions validate
        // any slot actually read.
        self.head.load(Ordering::Relaxed)
    }

    /// Record one event; returns its sequence number. Disabled recorders
    /// return the current cursor without claiming a slot.
    pub fn record(&self, kind: FlightKind, a: u64, b: u64, c: u64) -> u64 {
        if !self.is_enabled() {
            return self.cursor();
        }
        let t_bits = self.epoch.elapsed().as_secs_f64().to_bits();
        // RELAXED: pure sequence allocation — the slot contents are
        // published by the per-slot version protocol, not this counter.
        let seq = self.head.fetch_add(1, Ordering::Relaxed);
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        // RELAXED: optimistic pre-read for the claim CAS below; a stale
        // value just fails the claim and drops the event.
        let v = slot.ver.load(Ordering::Relaxed);
        if v & 1 == 1 {
            // Another writer owns this slot (wraparound deeper than the
            // ring during its write): drop rather than tear.
            return seq;
        }
        // RELAXED: failure means another writer claimed first — we drop
        // the event, nothing was read through the failed CAS. Success is
        // Acquire so the field stores below cannot hoist above the claim.
        if slot
            .ver
            .compare_exchange(v, v + 1, Ordering::Acquire, Ordering::Relaxed)
            .is_err()
        {
            return seq;
        }
        // RELAXED: all field stores are bracketed by the odd-version
        // claim (Acquire) above and the even-version Release publish
        // below; readers re-check the version and discard torn slots.
        slot.seq.store(seq, Ordering::Relaxed);
        // RELAXED: see the bracketing argument above.
        slot.t_bits.store(t_bits, Ordering::Relaxed);
        // RELAXED: see the bracketing argument above.
        slot.kind.store(kind.code(), Ordering::Relaxed);
        // RELAXED: see the bracketing argument above.
        slot.a.store(a, Ordering::Relaxed);
        // RELAXED: see the bracketing argument above.
        slot.b.store(b, Ordering::Relaxed);
        // RELAXED: see the bracketing argument above.
        slot.c.store(c, Ordering::Relaxed);
        slot.ver.store(v + 2, Ordering::Release);
        seq
    }

    /// Read the slot that should hold `seq`; `None` when torn, still
    /// being written, or already overwritten by a newer event.
    fn read_slot(&self, seq: u64) -> Option<FlightEvent> {
        let slot = &self.slots[(seq % self.slots.len() as u64) as usize];
        let v1 = slot.ver.load(Ordering::Acquire);
        if v1 & 1 == 1 {
            return None;
        }
        // RELAXED: seqlock read side — these field loads are validated by
        // the version re-check after the acquire fence below; a torn view
        // is detected and discarded.
        let got_seq = slot.seq.load(Ordering::Relaxed);
        // RELAXED: see the seqlock validation argument above.
        let t_bits = slot.t_bits.load(Ordering::Relaxed);
        // RELAXED: see the seqlock validation argument above.
        let kind = slot.kind.load(Ordering::Relaxed);
        // RELAXED: see the seqlock validation argument above.
        let a = slot.a.load(Ordering::Relaxed);
        // RELAXED: see the seqlock validation argument above.
        let b = slot.b.load(Ordering::Relaxed);
        // RELAXED: see the seqlock validation argument above.
        let c = slot.c.load(Ordering::Relaxed);
        fence(Ordering::Acquire);
        // RELAXED: the acquire fence orders the field loads above before
        // this validation read; inequality means a writer interleaved.
        let v2 = slot.ver.load(Ordering::Relaxed);
        if v1 != v2 || got_seq != seq {
            return None;
        }
        Some(FlightEvent {
            seq,
            t_s: f64::from_bits(t_bits),
            kind: FlightKind::from_code(kind)?,
            a,
            b,
            c,
        })
    }

    /// Events with sequence numbers `>= seq` still live in the ring,
    /// oldest first. Torn or overwritten slots are skipped.
    pub fn since(&self, seq: u64) -> Vec<FlightEvent> {
        let head = self.cursor();
        let start = seq.max(head.saturating_sub(self.slots.len() as u64));
        (start..head).filter_map(|s| self.read_slot(s)).collect()
    }

    /// Everything still live in the ring, oldest first.
    pub fn snapshot(&self) -> Vec<FlightEvent> {
        self.since(0)
    }
}

/// FNV-1a 64 of a string (local copy: `obs` stays dependency-free).
fn fnv1a64_str(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &byte in s.as_bytes() {
        h ^= byte as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// `sync` auditor edge observer: new lock-order edges become
/// [`FlightKind::LockReport`] events.
fn lock_edge_observer(held: &str, acquired: &str) {
    flight().record(
        FlightKind::LockReport,
        fnv1a64_str(held),
        fnv1a64_str(acquired),
        0,
    );
}

/// The process-global flight recorder. Capacity comes from
/// `OBS_FLIGHT_CAPACITY` (events), read once at first use; the first call
/// also registers the lock-audit edge observer.
pub fn flight() -> &'static FlightRecorder {
    static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
    GLOBAL.get_or_init(|| {
        let capacity = std::env::var("OBS_FLIGHT_CAPACITY")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .filter(|c| *c > 0)
            .unwrap_or(DEFAULT_CAPACITY);
        sync::set_audit_edge_hook(lock_edge_observer);
        FlightRecorder::with_capacity(capacity)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn kinds_roundtrip_codes() {
        for kind in [
            FlightKind::CacheAdmit,
            FlightKind::CacheEvict,
            FlightKind::CacheHit,
            FlightKind::ResultCacheHit,
            FlightKind::RouteNatural,
            FlightKind::RouteSpill,
            FlightKind::BackpressureStall,
            FlightKind::VersionPurge,
            FlightKind::LockReport,
            FlightKind::SlowQuery,
        ] {
            assert_eq!(FlightKind::from_code(kind.code()), Some(kind));
            assert!(!kind.label().is_empty());
        }
        assert_eq!(FlightKind::from_code(0), None);
        assert_eq!(FlightKind::from_code(999), None);
    }

    #[test]
    fn records_and_reads_back_in_order() {
        let r = FlightRecorder::with_capacity(16);
        for i in 0..5u64 {
            r.record(FlightKind::CacheHit, i, i * 10, i * 100);
        }
        let events = r.snapshot();
        assert_eq!(events.len(), 5);
        for (i, e) in events.iter().enumerate() {
            assert_eq!(e.seq, i as u64);
            assert_eq!(e.kind, FlightKind::CacheHit);
            assert_eq!(e.a, i as u64);
            assert_eq!(e.b, i as u64 * 10);
            assert_eq!(e.c, i as u64 * 100);
        }
        // Timestamps are monotone non-decreasing.
        for w in events.windows(2) {
            assert!(w[1].t_s >= w[0].t_s);
        }
    }

    #[test]
    fn wraparound_overwrites_oldest_first() {
        let r = FlightRecorder::with_capacity(8);
        for i in 0..20u64 {
            r.record(FlightKind::RouteNatural, i, 0, 0);
        }
        let events = r.snapshot();
        // Exactly the last `capacity` events survive, oldest first.
        assert_eq!(events.len(), 8);
        assert_eq!(
            events.iter().map(|e| e.seq).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>()
        );
        assert_eq!(
            events.iter().map(|e| e.a).collect::<Vec<_>>(),
            (12..20).collect::<Vec<_>>()
        );
        assert_eq!(r.cursor(), 20);
    }

    #[test]
    fn capacity_is_exact() {
        let r = FlightRecorder::with_capacity(3);
        assert_eq!(r.capacity(), 3);
        for i in 0..3u64 {
            r.record(FlightKind::VersionPurge, i, 0, 0);
        }
        assert_eq!(r.snapshot().len(), 3, "exactly capacity events fit");
        r.record(FlightKind::VersionPurge, 3, 0, 0);
        let events = r.snapshot();
        assert_eq!(events.len(), 3, "one past capacity still holds capacity");
        assert_eq!(events[0].a, 1, "event 0 overwritten first");
        // Degenerate capacity clamps to 1.
        let tiny = FlightRecorder::with_capacity(0);
        assert_eq!(tiny.capacity(), 1);
        tiny.record(FlightKind::SlowQuery, 1, 2, 3);
        assert_eq!(tiny.snapshot().len(), 1);
    }

    #[test]
    fn since_slices_by_cursor() {
        let r = FlightRecorder::with_capacity(64);
        r.record(FlightKind::CacheAdmit, 0, 0, 0);
        let cur = r.cursor();
        r.record(FlightKind::CacheAdmit, 1, 0, 0);
        r.record(FlightKind::CacheAdmit, 2, 0, 0);
        let slice = r.since(cur);
        assert_eq!(slice.len(), 2);
        assert_eq!(slice[0].a, 1);
        assert_eq!(slice[1].a, 2);
        assert!(r.since(r.cursor()).is_empty());
    }

    #[test]
    fn disabled_recorder_drops_everything() {
        let r = FlightRecorder::with_capacity(8);
        r.set_enabled(false);
        assert!(!r.is_enabled());
        r.record(FlightKind::CacheHit, 1, 2, 3);
        assert_eq!(r.cursor(), 0);
        assert!(r.snapshot().is_empty());
        r.set_enabled(true);
        r.record(FlightKind::CacheHit, 1, 2, 3);
        assert_eq!(
            r.snapshot().len(),
            if cfg!(feature = "tracing-off") { 0 } else { 1 }
        );
    }

    /// No tearing under concurrent writers: every event that reads back
    /// must satisfy the writer's per-event checksum invariant — a mixed
    /// slot (fields from two different writes) cannot.
    #[test]
    fn concurrent_writers_never_tear() {
        let r = Arc::new(FlightRecorder::with_capacity(32));
        let threads = 8usize;
        let per_thread = 4000u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let r = r.clone();
                s.spawn(move || {
                    for i in 0..per_thread {
                        let a = t as u64;
                        let b = i;
                        // Checksum ties all three payload words together.
                        let c = a.wrapping_mul(0x9e37_79b9).wrapping_add(b);
                        r.record(FlightKind::BackpressureStall, a, b, c);
                        if i % 64 == 0 {
                            // Concurrent readers must also never observe
                            // a torn slot.
                            for e in r.snapshot() {
                                assert_eq!(
                                    e.c,
                                    e.a.wrapping_mul(0x9e37_79b9).wrapping_add(e.b),
                                    "torn slot observed mid-flight"
                                );
                            }
                        }
                    }
                });
            }
        });
        let total = threads as u64 * per_thread;
        assert_eq!(r.cursor(), total, "every record claimed a sequence");
        let events = r.snapshot();
        assert!(!events.is_empty());
        assert!(events.len() <= r.capacity());
        for e in events {
            assert_eq!(
                e.c,
                e.a.wrapping_mul(0x9e37_79b9).wrapping_add(e.b),
                "torn slot survived to the end"
            );
            assert!(e.seq < total);
            assert!((e.a as usize) < threads);
            assert!(e.b < per_thread);
        }
    }

    #[test]
    fn describe_renders_each_kind() {
        let mk = |kind| FlightEvent {
            seq: 0,
            t_s: 0.0,
            kind,
            a: 1,
            b: 2,
            c: 3,
        };
        assert!(mk(FlightKind::CacheAdmit).describe().contains("result"));
        assert!(mk(FlightKind::RouteSpill).describe().contains("chosen=2"));
        assert!(mk(FlightKind::BackpressureStall)
            .describe()
            .contains("window=1"));
        assert!(mk(FlightKind::SlowQuery).describe().contains("sim_us=1"));
    }

    #[test]
    fn global_recorder_is_always_on() {
        let f = flight();
        assert!(f.capacity() >= 1);
        if cfg!(feature = "tracing-off") {
            return;
        }
        let cur = f.cursor();
        f.record(FlightKind::CacheAdmit, 0, 1, 2);
        assert!(f.cursor() > cur);
    }
}
