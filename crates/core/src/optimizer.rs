//! The connector's local optimizer: Selectivity Analyzer + Operator
//! Extractor + plan rewrite (paper §3.4 step 1 and §4 "Local Optimizer").
//!
//! Walks the optimized logical plan bottom-up from the scan, decides
//! per-operator pushdown eligibility (policy flags × estimated data
//! reduction × expression complexity), folds the eligible prefix into an
//! [`OcsTableHandle`], and reconstructs the residual engine plan:
//!
//! * pushed **filters/projections** disappear from the engine plan
//!   entirely (they are complete in storage);
//! * a pushed **aggregation** becomes *partial* in storage and *final* at
//!   the engine (with `AVG` recombined from `SUM`/`COUNT` partials by a
//!   generated projection), so groups spanning objects merge correctly;
//! * pushed **top-N/sort/limit** keep their engine-side node as the final
//!   merge over per-object results.

use std::sync::Arc;

use columnar::agg::AggFunc;
use columnar::kernels::arith::ArithOp;
use columnar::{DataType, Field, Schema, SchemaRef};
use dsq::error::{EResult, EngineError};
use dsq::expr::{AggregateCall, ScalarExpr};
use dsq::plan::{LogicalPlan, TableScanNode};
use dsq::spi::{ConnectorPlanOptimizer, DefaultTableHandle, OptimizerContext};

use crate::handle::{OcsTableHandle, PushedAggregate, PushedOps};
use crate::policy::PushdownPolicy;
use crate::selectivity::SelectivityAnalyzer;

/// Rows below which a bare `ORDER BY` is cheap enough to offload.
const SORT_PUSHDOWN_ROW_BOUND: f64 = 100_000.0;

/// Can the optimizer *prove*, from per-object (partition-level) min/max
/// statistics, that the aggregation's group keys never span storage
/// objects? True when some plain-column group key has pairwise
/// non-overlapping value ranges across all objects (then every group tuple
/// is confined to one object). This is what makes pushing top-N above a
/// FULL in-storage aggregation exact — e.g. Laghos files cover disjoint
/// vertex-id ranges and each Deep Water file is one timestep.
pub fn groups_object_disjoint(
    table: &dsq::catalog::TableMeta,
    projection: &[usize],
    group_by: &[(ScalarExpr, String)],
) -> bool {
    if group_by.is_empty() || table.objects.len() <= 1 {
        // A global aggregate's single "group" spans objects by definition
        // (unless there is only one object); plain-column disjointness
        // cannot help it.
        return table.objects.len() <= 1;
    }
    'keys: for (expr, _) in group_by {
        let ScalarExpr::Column { index, .. } = expr else {
            continue;
        };
        let Some(&file_col) = projection.get(*index) else {
            continue;
        };
        // Gather per-object (min, max); every object must have stats.
        let mut ranges = Vec::with_capacity(table.objects.len());
        for obj in &table.objects {
            match obj.columns.get(file_col) {
                Some(s) if !s.min.is_null() && !s.max.is_null() => {
                    ranges.push((s.min.clone(), s.max.clone()));
                }
                // All-null/empty objects contribute no key values.
                Some(s) if s.row_count == 0 || s.null_count == s.row_count => {}
                _ => continue 'keys,
            }
        }
        ranges.sort_by(|a, b| a.0.total_cmp(&b.0));
        let disjoint = ranges.windows(2).all(|w| w[0].1.total_cmp(&w[1].0).is_lt());
        if disjoint {
            return true;
        }
    }
    false
}

/// The `ConnectorPlanOptimizer` implementation for OCS.
pub struct OcsPlanOptimizer {
    connector: String,
    policy: PushdownPolicy,
}

impl OcsPlanOptimizer {
    /// New optimizer for the connector registered as `connector`.
    pub fn new(connector: String, policy: PushdownPolicy) -> Self {
        OcsPlanOptimizer { connector, policy }
    }
}

/// What happens to each captured operator on the engine side.
enum Residual {
    /// Node removed entirely (complete in storage).
    Removed,
    /// Node kept as-is (final merge over per-object results).
    Kept(LogicalPlan),
    /// Aggregation: replaced by final-agg (+ AVG recombination project).
    FinalAggregate {
        group_by: Vec<(ScalarExpr, String)>,
        finals: Vec<AggregateCall>,
        avg_project: Option<Vec<(ScalarExpr, String)>>,
    },
}

impl ConnectorPlanOptimizer for OcsPlanOptimizer {
    fn optimize(&self, plan: LogicalPlan, ctx: &OptimizerContext<'_>) -> EResult<LogicalPlan> {
        let scan = plan.scan().clone();
        if scan.connector != self.connector {
            return Ok(plan);
        }
        // Already rewritten (idempotence).
        if scan
            .handle
            .as_any()
            .downcast_ref::<OcsTableHandle>()
            .is_some()
        {
            return Ok(plan);
        }
        let table = ctx.metastore.table(&scan.table)?;
        let projection: Vec<usize> = scan
            .handle
            .as_any()
            .downcast_ref::<DefaultTableHandle>()
            .and_then(|h| h.projection.clone())
            .unwrap_or_else(|| (0..table.schema.len()).collect());
        let analyzer = SelectivityAnalyzer::new(&table, &projection);

        // Chain above the scan, leaf→root, owned.
        let mut chain: Vec<LogicalPlan> = Vec::new();
        {
            let mut cur = &plan;
            while let Some(next) = cur.input() {
                chain.push(cur.clone());
                cur = next;
            }
            chain.reverse();
        }

        let mut pushed = PushedOps::default();
        let mut residuals: Vec<Residual> = Vec::new();
        let mut scan_output: SchemaRef = scan.output_schema.clone();
        let mut est_rows = analyzer.row_count() as f64;
        let mut capturing = true;
        let mut aggregate_is_full = false;

        for (idx, op) in chain.iter().enumerate() {
            if !capturing {
                residuals.push(Residual::Kept(op.clone()));
                continue;
            }
            // Lookahead: is the next operator a top-N we intend to push?
            // If so the aggregate must be pushed in FULL form (per-object
            // complete aggregation), because the top-N sort key (e.g. an
            // AVG) does not exist in partial-state form. Full form is
            // exact only when groups never span objects — either *proven*
            // from per-object min/max statistics, or asserted by the
            // policy's explicit override.
            let next_is_topn = matches!(chain.get(idx + 1), Some(LogicalPlan::TopN { .. }));
            match op {
                LogicalPlan::Filter { predicate, .. }
                    if self.policy.filter && pushed.aggregate.is_none() =>
                {
                    let sel = analyzer.filter_selectivity(predicate);
                    if sel <= self.policy.selectivity_threshold {
                        pushed.filter = Some(match pushed.filter.take() {
                            None => predicate.clone(),
                            Some(prev) => {
                                ScalarExpr::And(Arc::new(prev), Arc::new(predicate.clone()))
                            }
                        });
                        est_rows *= sel;
                        residuals.push(Residual::Removed);
                    } else {
                        capturing = false;
                        residuals.push(Residual::Kept(op.clone()));
                    }
                }
                LogicalPlan::Project { exprs, .. }
                    if self.policy.project
                        && pushed.project.is_none()
                        && pushed.aggregate.is_none() =>
                {
                    let weight: u32 = exprs.iter().map(|(e, _)| e.weight()).sum();
                    if weight <= self.policy.max_project_weight {
                        pushed.project = Some(exprs.clone());
                        scan_output = Arc::new(Schema::new(
                            exprs
                                .iter()
                                .map(|(e, n)| Field::new(n.clone(), e.data_type(), true))
                                .collect(),
                        ));
                        residuals.push(Residual::Removed);
                    } else {
                        capturing = false;
                        residuals.push(Residual::Kept(op.clone()));
                    }
                }
                LogicalPlan::Aggregate { group_by, aggs, .. }
                    if self.policy.aggregate && pushed.aggregate.is_none() =>
                {
                    let sel = analyzer.aggregate_selectivity(group_by);
                    if sel <= self.policy.selectivity_threshold {
                        est_rows = analyzer.aggregate_output_rows(group_by) as f64;
                        let full_mode_ok = self.policy.topn
                            && (self.policy.assume_object_disjoint_groups
                                || groups_object_disjoint(&table, &projection, group_by));
                        if next_is_topn && full_mode_ok {
                            // FULL aggregation in storage: the scan emits
                            // the original aggregate output schema and the
                            // engine-side Aggregate node disappears.
                            let partials = aggs
                                .iter()
                                .map(|a| PushedAggregate {
                                    func: a.func,
                                    arg: a.arg.clone(),
                                    output_name: a.output_name.clone(),
                                })
                                .collect();
                            pushed.aggregate = Some((group_by.clone(), partials));
                            pushed.aggregate_is_full = true;
                            scan_output = op.schema()?;
                            aggregate_is_full = true;
                            residuals.push(Residual::Removed);
                        } else {
                            let (partials, finals, avg_project, partial_schema) =
                                decompose_aggregate(group_by, aggs)?;
                            pushed.aggregate = Some((group_by.clone(), partials));
                            scan_output = partial_schema;
                            residuals.push(Residual::FinalAggregate {
                                group_by: group_by.clone(),
                                finals,
                                avg_project,
                            });
                        }
                    } else {
                        capturing = false;
                        residuals.push(Residual::Kept(op.clone()));
                    }
                }
                LogicalPlan::TopN { keys, limit, .. }
                    if self.policy.topn && (pushed.aggregate.is_none() || aggregate_is_full) =>
                {
                    pushed.topn = Some((keys.clone(), *limit));
                    est_rows = est_rows.min(*limit as f64);
                    // Final merge stays engine-side.
                    residuals.push(Residual::Kept(op.clone()));
                    capturing = false; // nothing meaningful above a top-N
                }
                LogicalPlan::Sort { keys, .. }
                    if self.policy.sort
                        && (pushed.aggregate.is_none() || aggregate_is_full)
                        && est_rows <= SORT_PUSHDOWN_ROW_BOUND =>
                {
                    pushed.sort = Some(keys.clone());
                    residuals.push(Residual::Kept(op.clone()));
                    capturing = false;
                }
                LogicalPlan::Limit { limit, .. } if self.policy.topn => {
                    pushed.topn = Some((Vec::new(), *limit));
                    est_rows = est_rows.min(*limit as f64);
                    residuals.push(Residual::Kept(op.clone()));
                    capturing = false;
                }
                other => {
                    capturing = false;
                    residuals.push(Residual::Kept(other.clone()));
                }
            }
        }

        // Rebuild: modified scan + residual chain.
        let handle = OcsTableHandle {
            table: scan.table.clone(),
            base_schema: table.schema.clone(),
            projection,
            pushed,
            output_schema: scan_output.clone(),
        };

        // Layer-1 enforcement: verify the exact Substrait plan this handle
        // will ship. A rejection here is a rewrite bug in this optimizer —
        // debug builds fail loudly; under the `verify-plans` feature the
        // query hard-errors instead of shipping a plan storage would
        // reject.
        #[cfg(any(debug_assertions, feature = "verify-plans"))]
        if let Err(d) = crate::translate::to_substrait_verified(&handle) {
            if cfg!(feature = "verify-plans") {
                return Err(EngineError::Analysis(format!(
                    "pushdown rewrite produced an illegal storage plan: {d}"
                )));
            }
            debug_assert!(
                false,
                "pushdown rewrite produced an illegal storage plan: {d}"
            );
        }

        let mut rebuilt = LogicalPlan::TableScan(TableScanNode {
            table: scan.table.clone(),
            connector: scan.connector.clone(),
            output_schema: scan_output,
            handle: Arc::new(handle),
        });
        for r in residuals {
            rebuilt = match r {
                Residual::Removed => rebuilt,
                Residual::Kept(node) => node.with_input(rebuilt),
                Residual::FinalAggregate {
                    group_by,
                    finals,
                    avg_project,
                } => {
                    // Final aggregation keys reference the partial scan
                    // output: keys are columns 0..k by construction.
                    let final_keys: Vec<(ScalarExpr, String)> = group_by
                        .iter()
                        .enumerate()
                        .map(|(i, (e, n))| {
                            (ScalarExpr::col(i, n.clone(), e.data_type()), n.clone())
                        })
                        .collect();
                    let mut node = LogicalPlan::Aggregate {
                        input: Box::new(rebuilt),
                        group_by: final_keys,
                        aggs: finals,
                    };
                    if let Some(exprs) = avg_project {
                        node = LogicalPlan::Project {
                            input: Box::new(node),
                            exprs,
                        };
                    }
                    node
                }
            };
        }
        rebuilt.validate()?;
        Ok(rebuilt)
    }
}

/// Decompose an aggregation into storage partials + engine finals.
///
/// Returns `(partials, final calls, optional AVG-recombination projection,
/// partial scan output schema)`.
#[allow(clippy::type_complexity)]
pub fn decompose_aggregate(
    group_by: &[(ScalarExpr, String)],
    aggs: &[AggregateCall],
) -> EResult<(
    Vec<PushedAggregate>,
    Vec<AggregateCall>,
    Option<Vec<(ScalarExpr, String)>>,
    SchemaRef,
)> {
    let k = group_by.len();
    let mut partials: Vec<PushedAggregate> = Vec::new();
    let mut finals: Vec<AggregateCall> = Vec::new();
    let mut needs_avg = false;

    // Partial scan output schema: keys first.
    let mut fields: Vec<Field> = group_by
        .iter()
        .map(|(e, n)| Field::new(n.clone(), e.data_type(), true))
        .collect();

    for (i, a) in aggs.iter().enumerate() {
        match a.func {
            AggFunc::Count => {
                let name = format!("__p{i}_count");
                partials.push(PushedAggregate {
                    func: AggFunc::Count,
                    arg: a.arg.clone(),
                    output_name: name.clone(),
                });
                fields.push(Field::new(name.clone(), DataType::Int64, true));
                finals.push(AggregateCall {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::col(
                        k + partials.len() - 1,
                        name,
                        DataType::Int64,
                    )),
                    output_name: a.output_name.clone(),
                });
            }
            AggFunc::Sum | AggFunc::Min | AggFunc::Max => {
                let dt = a.output_type()?;
                let name = format!("__p{i}_{}", a.func.sql());
                partials.push(PushedAggregate {
                    func: a.func,
                    arg: a.arg.clone(),
                    output_name: name.clone(),
                });
                fields.push(Field::new(name.clone(), dt, true));
                finals.push(AggregateCall {
                    func: a.func,
                    arg: Some(ScalarExpr::col(k + partials.len() - 1, name, dt)),
                    output_name: a.output_name.clone(),
                });
            }
            AggFunc::Avg => {
                needs_avg = true;
                let arg = a
                    .arg
                    .clone()
                    .ok_or_else(|| EngineError::Analysis("AVG requires an argument".into()))?;
                // Partial SUM must accumulate in f64 so the final division
                // is exact SQL AVG semantics even for integer inputs.
                let sum_arg = if arg.data_type() == DataType::Float64 {
                    arg.clone()
                } else {
                    ScalarExpr::Cast {
                        expr: Arc::new(arg.clone()),
                        to: DataType::Float64,
                    }
                };
                let sum_name = format!("__p{i}_sum");
                let cnt_name = format!("__p{i}_count");
                partials.push(PushedAggregate {
                    func: AggFunc::Sum,
                    arg: Some(sum_arg),
                    output_name: sum_name.clone(),
                });
                fields.push(Field::new(sum_name.clone(), DataType::Float64, true));
                finals.push(AggregateCall {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::col(
                        k + partials.len() - 1,
                        sum_name,
                        DataType::Float64,
                    )),
                    output_name: format!("__f{i}_sum"),
                });
                partials.push(PushedAggregate {
                    func: AggFunc::Count,
                    arg: Some(arg),
                    output_name: cnt_name.clone(),
                });
                fields.push(Field::new(cnt_name.clone(), DataType::Int64, true));
                finals.push(AggregateCall {
                    func: AggFunc::Sum,
                    arg: Some(ScalarExpr::col(
                        k + partials.len() - 1,
                        cnt_name,
                        DataType::Int64,
                    )),
                    output_name: format!("__f{i}_count"),
                });
            }
        }
    }

    // AVG recombination projection, reproducing the ORIGINAL aggregate
    // output schema (keys…, agg outputs…) so upstream sort keys stay valid.
    let avg_project = if needs_avg {
        let mut exprs: Vec<(ScalarExpr, String)> = Vec::with_capacity(k + aggs.len());
        // Final agg output: keys 0..k, then finals in order.
        for (j, (e, n)) in group_by.iter().enumerate() {
            exprs.push((ScalarExpr::col(j, n.clone(), e.data_type()), n.clone()));
        }
        let mut fpos = k;
        for a in aggs {
            match a.func {
                AggFunc::Avg => {
                    let sum =
                        ScalarExpr::col(fpos, format!("{}__s", a.output_name), DataType::Float64);
                    let cnt =
                        ScalarExpr::col(fpos + 1, format!("{}__c", a.output_name), DataType::Int64);
                    exprs.push((
                        ScalarExpr::Arith {
                            op: ArithOp::Div,
                            left: Arc::new(sum),
                            right: Arc::new(ScalarExpr::Cast {
                                expr: Arc::new(cnt),
                                to: DataType::Float64,
                            }),
                        },
                        a.output_name.clone(),
                    ));
                    fpos += 2;
                }
                _ => {
                    exprs.push((
                        ScalarExpr::col(fpos, a.output_name.clone(), a.output_type()?),
                        a.output_name.clone(),
                    ));
                    fpos += 1;
                }
            }
        }
        Some(exprs)
    } else {
        None
    };

    Ok((partials, finals, avg_project, Arc::new(Schema::new(fields))))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn call(func: AggFunc, col: usize, dt: DataType, name: &str) -> AggregateCall {
        AggregateCall {
            func,
            arg: Some(ScalarExpr::col(col, format!("c{col}"), dt)),
            output_name: name.into(),
        }
    }

    #[test]
    fn decompose_simple_functions() {
        let keys = vec![(ScalarExpr::col(0, "g", DataType::Int64), "g".into())];
        let aggs = vec![
            call(AggFunc::Min, 1, DataType::Float64, "lo"),
            call(AggFunc::Sum, 1, DataType::Float64, "s"),
            AggregateCall {
                func: AggFunc::Count,
                arg: None,
                output_name: "n".into(),
            },
        ];
        let (partials, finals, avg_proj, schema) = decompose_aggregate(&keys, &aggs).unwrap();
        assert_eq!(partials.len(), 3);
        assert!(avg_proj.is_none());
        assert_eq!(
            schema.names(),
            vec!["g", "__p0_min", "__p1_sum", "__p2_count"]
        );
        // Finals preserve original output names; COUNT becomes SUM of counts.
        assert_eq!(finals[2].func, AggFunc::Sum);
        assert_eq!(finals[2].output_name, "n");
        assert_eq!(finals[0].func, AggFunc::Min);
    }

    #[test]
    fn decompose_avg_splits_into_sum_count() {
        let keys = vec![(ScalarExpr::col(0, "g", DataType::Int64), "g".into())];
        let aggs = vec![
            call(AggFunc::Avg, 1, DataType::Float64, "a"),
            call(AggFunc::Max, 1, DataType::Float64, "m"),
        ];
        let (partials, finals, avg_proj, schema) = decompose_aggregate(&keys, &aggs).unwrap();
        assert_eq!(partials.len(), 3, "avg → sum+count, max → max");
        assert_eq!(
            schema.names(),
            vec!["g", "__p0_sum", "__p0_count", "__p1_max"]
        );
        assert_eq!(finals.len(), 3);
        let proj = avg_proj.expect("avg requires projection");
        // Projection output order matches the original aggregate schema.
        let names: Vec<&str> = proj.iter().map(|(_, n)| n.as_str()).collect();
        assert_eq!(names, vec!["g", "a", "m"]);
        // The AVG expression divides final sum by final count.
        assert!(matches!(
            proj[1].0,
            ScalarExpr::Arith {
                op: ArithOp::Div,
                ..
            }
        ));
    }

    #[test]
    fn decompose_avg_of_integers_casts_to_float() {
        let keys = vec![];
        let aggs = vec![call(AggFunc::Avg, 0, DataType::Int64, "a")];
        let (partials, _, _, schema) = decompose_aggregate(&keys, &aggs).unwrap();
        assert!(matches!(
            partials[0].arg.as_ref().unwrap(),
            ScalarExpr::Cast {
                to: DataType::Float64,
                ..
            }
        ));
        assert_eq!(schema.field(0).data_type, DataType::Float64);
    }
}
