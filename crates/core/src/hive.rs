//! The Hive-connector baseline: filter + column-projection pushdown only,
//! at the S3-Select/MinIO-Select capability level (paper §2.4).
//!
//! Its plan optimizer converts *simple conjunctive* predicates
//! (`col op literal`, `col BETWEEN a AND b`) into the object store's
//! restricted `select()` API. Anything richer — expression projection,
//! aggregation, top-N — stays at the compute layer, which is exactly the
//! limitation the paper's OCS connector removes.

use std::any::Any;
use std::sync::Arc;

use columnar::{Scalar, SchemaRef};
use dsq::error::{EResult, EngineError};
use dsq::expr::ScalarExpr;
use dsq::plan::{LogicalPlan, TableScanNode};
use dsq::spi::{
    BufferedPageStream, Connector, ConnectorPlanOptimizer, DefaultSplitManager, DefaultTableHandle,
    OptimizerContext, PageSourceProvider, PageSourceResult, Split, SplitManager, TableHandle,
};
use lzcodec::CodecKind;
use netsim::{ClusterSpec, CostParams, ExecStats, Work};
use objstore::{ObjectStore, SelectPredicate, SelectRequest};

/// Scan handle carrying the select-API request.
#[derive(Debug, Clone)]
pub struct HiveTableHandle {
    /// Projected column names (select API takes names).
    pub projection_names: Vec<String>,
    /// File-column ordinals of the projection (for stats lookups).
    pub projection: Vec<usize>,
    /// Converted predicates (complete conjunction).
    pub predicates: Vec<SelectPredicate>,
    /// Schema the scan emits.
    pub output_schema: SchemaRef,
}

impl TableHandle for HiveTableHandle {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn describe(&self) -> String {
        format!(
            "hive columns={:?} filters={}",
            self.projection,
            self.predicates.len()
        )
    }
}

/// Convert a predicate into select-API conjuncts. Returns `None` when any
/// part of the conjunction is inexpressible (the S3-Select ceiling).
pub fn to_select_predicates(
    e: &ScalarExpr,
    schema: &SchemaRef,
    out: &mut Vec<SelectPredicate>,
) -> Option<()> {
    match e {
        ScalarExpr::And(a, b) => {
            to_select_predicates(a, schema, out)?;
            to_select_predicates(b, schema, out)
        }
        ScalarExpr::Between { expr, lo, hi } => {
            if let (
                ScalarExpr::Column { index, .. },
                ScalarExpr::Literal(l),
                ScalarExpr::Literal(h),
            ) = (expr.as_ref(), lo.as_ref(), hi.as_ref())
            {
                out.push(SelectPredicate::Between {
                    column: schema.field(*index).name.clone(),
                    lo: l.clone(),
                    hi: h.clone(),
                });
                Some(())
            } else {
                None
            }
        }
        ScalarExpr::Cmp { op, left, right } => match (left.as_ref(), right.as_ref()) {
            (ScalarExpr::Column { index, .. }, ScalarExpr::Literal(v)) => {
                out.push(SelectPredicate::Compare {
                    column: schema.field(*index).name.clone(),
                    op: *op,
                    value: v.clone(),
                });
                Some(())
            }
            (ScalarExpr::Literal(v), ScalarExpr::Column { index, .. }) => {
                out.push(SelectPredicate::Compare {
                    column: schema.field(*index).name.clone(),
                    op: op.flip(),
                    value: v.clone(),
                });
                Some(())
            }
            _ => None,
        },
        ScalarExpr::Literal(Scalar::Boolean(true)) => Some(()),
        _ => None,
    }
}

struct HivePlanOptimizer {
    connector: String,
}

impl ConnectorPlanOptimizer for HivePlanOptimizer {
    fn optimize(&self, plan: LogicalPlan, ctx: &OptimizerContext<'_>) -> EResult<LogicalPlan> {
        let scan = plan.scan().clone();
        if scan.connector != self.connector
            || scan
                .handle
                .as_any()
                .downcast_ref::<HiveTableHandle>()
                .is_some()
        {
            return Ok(plan);
        }
        let table = ctx.metastore.table(&scan.table)?;
        let projection: Vec<usize> = scan
            .handle
            .as_any()
            .downcast_ref::<DefaultTableHandle>()
            .and_then(|h| h.projection.clone())
            .unwrap_or_else(|| (0..table.schema.len()).collect());
        let projection_names: Vec<String> = projection
            .iter()
            .map(|&i| table.schema.field(i).name.clone())
            .collect();

        // The node directly above the scan must be the filter (if any).
        let mut chain: Vec<LogicalPlan> = Vec::new();
        {
            let mut cur = &plan;
            while let Some(next) = cur.input() {
                chain.push(cur.clone());
                cur = next;
            }
            chain.reverse();
        }
        let mut predicates = Vec::new();
        let mut drop_first_filter = false;
        if let Some(LogicalPlan::Filter { predicate, .. }) = chain.first() {
            let mut converted = Vec::new();
            if to_select_predicates(predicate, &scan.output_schema, &mut converted).is_some() {
                predicates = converted;
                drop_first_filter = true;
            }
        }

        let handle = HiveTableHandle {
            projection_names,
            projection,
            predicates,
            output_schema: scan.output_schema.clone(),
        };
        let mut rebuilt = LogicalPlan::TableScan(TableScanNode {
            table: scan.table,
            connector: scan.connector,
            output_schema: scan.output_schema,
            handle: Arc::new(handle),
        });
        for (i, node) in chain.iter().enumerate() {
            if i == 0 && drop_first_filter {
                continue;
            }
            rebuilt = node.with_input(rebuilt);
        }
        rebuilt.validate()?;
        Ok(rebuilt)
    }
}

struct HivePageSourceProvider {
    store: Arc<ObjectStore>,
    cluster: ClusterSpec,
    cost: CostParams,
}

impl PageSourceProvider for HivePageSourceProvider {
    fn create(&self, split: &Split) -> EResult<PageSourceResult> {
        let handle = split
            .handle
            .as_any()
            .downcast_ref::<HiveTableHandle>()
            .ok_or_else(|| {
                EngineError::Connector(format!(
                    "hive connector received an unknown handle: {}",
                    split.handle.describe()
                ))
            })?;
        let request = SelectRequest {
            projection: Some(handle.projection_names.clone()),
            predicates: handle.predicates.clone(),
        };
        let resp = objstore::select(&self.store, &split.bucket, &split.key, &request)
            .map_err(|e| EngineError::Connector(e.to_string()))?;

        // Codec of the object (for decompression billing).
        let codec = self
            .store
            .get_object(&split.bucket, &split.key)
            .ok()
            .and_then(|b| parq::ParqReader::open(b).ok())
            .map(|r| r.codec())
            .unwrap_or(CodecKind::None);

        // Storage side: decode + filter evaluation (that is the "Select"
        // compute the storage layer performs).
        let filter_weight: f64 = handle
            .predicates
            .iter()
            .map(|p| match p {
                SelectPredicate::Between { .. } => 2.0,
                SelectPredicate::Compare { .. } => 1.0,
            })
            .sum();
        let storage_work = Work {
            decode: resp.stats.uncompressed_bytes as f64 * self.cost.byte_decode
                + resp.stats.returned_bytes as f64 * self.cost.byte_ser,
            vector: resp.stats.rows_scanned as f64 * (self.cost.row_overhead + filter_weight),
            expr: 0.0,
        };
        let storage_cpu_s = self.cluster.storage.core_seconds_for(storage_work);
        let storage_decompress_s = match codec {
            CodecKind::None => 0.0,
            other => resp.stats.uncompressed_bytes as f64 / (other.spec().decompress_gbps * 1e9),
        };
        let compute_deser_s = self.cluster.compute.core_seconds_for(Work::decode(
            resp.stats.returned_bytes as f64 * self.cost.byte_deser,
        ));

        let rows_returned: u64 = resp.batches.iter().map(|b| b.num_rows() as u64).sum();
        // The select API hands back one monolithic response — a single
        // indivisible frame as far as the pipeline scheduler is concerned.
        Ok(PageSourceResult {
            stream: BufferedPageStream::whole_result(
                resp.batches,
                ExecStats {
                    storage_cpu_s,
                    storage_decompress_s,
                    disk_bytes: resp.stats.disk_bytes,
                    rows_scanned: resp.stats.rows_scanned,
                    rows_returned,
                    ..Default::default()
                },
                resp.stats.returned_bytes,
                1,
                compute_deser_s,
            ),
            substrait_gen_s: 0.0,
        })
    }
}

/// The Hive/S3-Select-level connector.
pub struct HiveConnector {
    name: String,
    optimizer: Arc<HivePlanOptimizer>,
    splits: Arc<DefaultSplitManager>,
    pages: Arc<HivePageSourceProvider>,
}

impl HiveConnector {
    /// Build a Hive connector over `store`.
    pub fn new(
        name: impl Into<String>,
        store: Arc<ObjectStore>,
        cluster: ClusterSpec,
        cost: CostParams,
    ) -> Self {
        let name = name.into();
        HiveConnector {
            optimizer: Arc::new(HivePlanOptimizer {
                connector: name.clone(),
            }),
            splits: Arc::new(DefaultSplitManager),
            pages: Arc::new(HivePageSourceProvider {
                store,
                cluster,
                cost,
            }),
            name,
        }
    }
}

impl Connector for HiveConnector {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan_optimizer(&self) -> Option<Arc<dyn ConnectorPlanOptimizer>> {
        Some(self.optimizer.clone())
    }

    fn split_manager(&self) -> Arc<dyn SplitManager> {
        self.splits.clone()
    }

    fn page_source_provider(&self) -> Arc<dyn PageSourceProvider> {
        self.pages.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::kernels::cmp::CmpOp;
    use columnar::{DataType, Field, Schema};

    fn schema() -> SchemaRef {
        Arc::new(Schema::new(vec![
            Field::new("x", DataType::Float64, false),
            Field::new("tag", DataType::Utf8, false),
        ]))
    }

    #[test]
    fn converts_simple_conjunctions() {
        let s = schema();
        let pred = ScalarExpr::And(
            Arc::new(ScalarExpr::Between {
                expr: Arc::new(ScalarExpr::col(0, "x", DataType::Float64)),
                lo: Arc::new(ScalarExpr::lit(Scalar::Float64(0.8))),
                hi: Arc::new(ScalarExpr::lit(Scalar::Float64(3.2))),
            }),
            Arc::new(ScalarExpr::Cmp {
                op: CmpOp::Eq,
                left: Arc::new(ScalarExpr::col(1, "tag", DataType::Utf8)),
                right: Arc::new(ScalarExpr::lit(Scalar::Utf8("a".into()))),
            }),
        );
        let mut out = Vec::new();
        assert!(to_select_predicates(&pred, &s, &mut out).is_some());
        assert_eq!(out.len(), 2);
        assert!(matches!(&out[0], SelectPredicate::Between { column, .. } if column == "x"));
        assert!(matches!(
            &out[1],
            SelectPredicate::Compare { op: CmpOp::Eq, .. }
        ));
    }

    #[test]
    fn rejects_inexpressible_predicates() {
        let s = schema();
        // OR is beyond the restricted API.
        let pred = ScalarExpr::Or(
            Arc::new(ScalarExpr::lit(Scalar::Boolean(true))),
            Arc::new(ScalarExpr::lit(Scalar::Boolean(false))),
        );
        let mut out = Vec::new();
        assert!(to_select_predicates(&pred, &s, &mut out).is_none());
        // Column-to-column comparison too.
        let pred = ScalarExpr::Cmp {
            op: CmpOp::Lt,
            left: Arc::new(ScalarExpr::col(0, "x", DataType::Float64)),
            right: Arc::new(ScalarExpr::col(0, "x", DataType::Float64)),
        };
        let mut out = Vec::new();
        assert!(to_select_predicates(&pred, &s, &mut out).is_none());
        // Flipped literal-first comparison is fine.
        let pred = ScalarExpr::Cmp {
            op: CmpOp::Gt,
            left: Arc::new(ScalarExpr::lit(Scalar::Float64(0.1))),
            right: Arc::new(ScalarExpr::col(0, "x", DataType::Float64)),
        };
        let mut out = Vec::new();
        assert!(to_select_predicates(&pred, &s, &mut out).is_some());
        assert!(matches!(
            &out[0],
            SelectPredicate::Compare { op: CmpOp::Lt, .. }
        ));
    }
}
