//! Pushdown monitoring (paper §4, "Pushdown Monitoring and Auxiliary
//! Components"): an `EventListener` collecting runtime statistics into a
//! sliding window of recent executions — operator chains, data volumes,
//! pushdown success rates — to inform future optimization decisions.

use std::collections::VecDeque;

use dsq::session::{EventListener, QueryEvent};
use sync::DebugMutex;

/// One remembered execution. Streaming metrics (time to first batch, peak
/// buffer, frames) and the phase breakdown are derived from the query's
/// span tree rather than carried as dedicated event fields.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// The operator chain that ran.
    pub chain: String,
    /// What the scan handle says was pushed down.
    pub scan_handle: String,
    /// Simulated seconds.
    pub seconds: f64,
    /// Bytes moved storage → compute.
    pub moved_bytes: u64,
    /// Rows returned.
    pub result_rows: u64,
    /// Whether anything beyond column projection was pushed.
    pub pushed: bool,
    /// Row groups the storage scan skipped via late materialization.
    pub row_groups_skipped: u64,
    /// Encoded bytes the storage scan never decoded.
    pub decoded_bytes_avoided: u64,
    /// Column chunks served from the storage-side decoded row-group cache.
    pub rg_cache_hits: u64,
    /// Pushed subplans answered from the storage-side result cache.
    pub result_cache_hits: u64,
    /// Disk + decode bytes the storage caches kept off the cost ledger.
    pub cache_bytes_avoided: u64,
    /// Pipeline completion time of the earliest batch frame (from the
    /// `split_phase` span's `time_to_first_batch_s` attribute).
    pub time_to_first_batch_s: f64,
    /// Peak encoded bytes buffered engine-side across split streams (from
    /// the `split_phase` span).
    pub peak_buffered_bytes: u64,
    /// Frames that crossed the storage boundary (from the `split_phase`
    /// span).
    pub frames: u64,
    /// Per-phase `(label, simulated seconds)` — the root span's direct
    /// phase children, in execution order. Empty when tracing was off.
    pub breakdown: Vec<(String, f64)>,
}

/// Sliding window of recent executions.
#[derive(Debug)]
pub struct PushdownHistory {
    window: usize,
    entries: VecDeque<HistoryEntry>,
}

impl PushdownHistory {
    fn new(window: usize) -> Self {
        PushdownHistory {
            window: window.max(1),
            entries: VecDeque::new(),
        }
    }

    fn push(&mut self, e: HistoryEntry) {
        if self.entries.len() == self.window {
            self.entries.pop_front();
        }
        self.entries.push_back(e);
    }

    /// Entries currently in the window, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.entries.iter()
    }

    /// Number of remembered executions.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when no executions are remembered.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Fraction of recent queries where pushdown engaged.
    pub fn pushdown_rate(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().filter(|e| e.pushed).count() as f64 / self.entries.len() as f64
    }

    /// Mean data movement over the window.
    pub fn mean_moved_bytes(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries
            .iter()
            .map(|e| e.moved_bytes as f64)
            .sum::<f64>()
            / self.entries.len() as f64
    }

    /// Mean simulated latency over the window.
    pub fn mean_seconds(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.seconds).sum::<f64>() / self.entries.len() as f64
    }

    /// Latency percentile over the window (nearest-rank; 0 when empty).
    fn percentile_seconds(&self, q: f64) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        let mut secs: Vec<f64> = self.entries.iter().map(|e| e.seconds).collect();
        secs.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let rank = (q * secs.len() as f64).ceil() as usize;
        secs[rank.clamp(1, secs.len()) - 1]
    }

    /// Median simulated latency over the window.
    pub fn p50_seconds(&self) -> f64 {
        self.percentile_seconds(0.50)
    }

    /// 95th-percentile simulated latency over the window.
    pub fn p95_seconds(&self) -> f64 {
        self.percentile_seconds(0.95)
    }

    /// Total row groups skipped by late materialization over the window.
    pub fn total_row_groups_skipped(&self) -> u64 {
        self.entries.iter().map(|e| e.row_groups_skipped).sum()
    }

    /// Total encoded bytes late materialization avoided decoding over the
    /// window (the scan-efficiency counterpart of `mean_moved_bytes`).
    pub fn total_decoded_bytes_avoided(&self) -> u64 {
        self.entries.iter().map(|e| e.decoded_bytes_avoided).sum()
    }

    /// Fraction of recent queries served at least partly from a
    /// storage-side cache tier (row-group or result).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries
            .iter()
            .filter(|e| e.rg_cache_hits > 0 || e.result_cache_hits > 0)
            .count() as f64
            / self.entries.len() as f64
    }

    /// Total disk + decode bytes the storage caches saved over the window.
    pub fn total_cache_bytes_avoided(&self) -> u64 {
        self.entries.iter().map(|e| e.cache_bytes_avoided).sum()
    }

    /// Mean pipeline time-to-first-batch over the window — how quickly the
    /// streaming boundary starts delivering rows to the final stage.
    pub fn mean_time_to_first_batch_s(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries
            .iter()
            .map(|e| e.time_to_first_batch_s)
            .sum::<f64>()
            / self.entries.len() as f64
    }

    /// Largest engine-side stream buffer any remembered query needed —
    /// bounded by `frame window × frame size × splits`, and the number the
    /// backpressure window exists to keep small.
    pub fn max_peak_buffered_bytes(&self) -> u64 {
        self.entries
            .iter()
            .map(|e| e.peak_buffered_bytes)
            .max()
            .unwrap_or(0)
    }

    /// Mean frames per remembered query (schema + batch + trailer frames
    /// across all splits).
    pub fn mean_frames_per_query(&self) -> f64 {
        if self.entries.is_empty() {
            return 0.0;
        }
        self.entries.iter().map(|e| e.frames as f64).sum::<f64>() / self.entries.len() as f64
    }

    /// One-line operator-facing summary of the window.
    pub fn summary(&self) -> String {
        format!(
            "{} queries: pushdown {:.0}%, mean {:.3}s, p50 {:.3}s, p95 {:.3}s, \
             mean moved {:.0} B, first batch {:.4}s, {:.1} frames/query, \
             peak stream buffer {} B",
            self.len(),
            self.pushdown_rate() * 100.0,
            self.mean_seconds(),
            self.p50_seconds(),
            self.p95_seconds(),
            self.mean_moved_bytes(),
            self.mean_time_to_first_batch_s(),
            self.mean_frames_per_query(),
            self.max_peak_buffered_bytes(),
        )
    }
}

/// The `EventListener` feeding the history.
#[derive(Debug)]
pub struct PushdownMonitor {
    history: DebugMutex<PushdownHistory>,
}

impl PushdownMonitor {
    /// Monitor keeping the last `window` executions.
    pub fn new(window: usize) -> Self {
        PushdownMonitor {
            history: DebugMutex::named("core.monitor.history", PushdownHistory::new(window)),
        }
    }

    /// Run `f` against the current history.
    pub fn with_history<R>(&self, f: impl FnOnce(&PushdownHistory) -> R) -> R {
        f(&self.history.lock())
    }
}

impl EventListener for PushdownMonitor {
    fn query_completed(&self, event: &QueryEvent) {
        let m = obs::metrics();
        m.counter("connector.queries").inc();
        if event.pushed {
            m.counter("connector.pushdown_hits").inc();
        }
        // Streaming metrics ride on the split_phase span; the per-phase
        // breakdown is the root span's direct phase children.
        let split = event.trace.find("split_phase");
        let breakdown = event
            .trace
            .root()
            .map(|root| {
                event
                    .trace
                    .children(root.id)
                    .into_iter()
                    .filter(|s| s.cat == "phase")
                    .map(|s| (s.name.clone(), s.seconds()))
                    .collect()
            })
            .unwrap_or_default();
        self.history.lock().push(HistoryEntry {
            chain: event.chain.clone(),
            scan_handle: event.scan_handle.clone(),
            seconds: event.simulated_seconds,
            moved_bytes: event.moved_bytes,
            result_rows: event.result_rows,
            pushed: event.pushed,
            row_groups_skipped: event.row_groups_skipped,
            decoded_bytes_avoided: event.decoded_bytes_avoided,
            rg_cache_hits: event.rg_cache_hits,
            result_cache_hits: event.result_cache_hits,
            cache_bytes_avoided: event.cache_bytes_avoided,
            time_to_first_batch_s: split
                .and_then(|s| s.attr_f64("time_to_first_batch_s"))
                .unwrap_or(0.0),
            peak_buffered_bytes: split
                .and_then(|s| s.attr_u64("peak_buffered_bytes"))
                .unwrap_or(0),
            frames: split.and_then(|s| s.attr_u64("frames")).unwrap_or(0),
            breakdown,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn event(pushed: bool, bytes: u64, secs: f64) -> QueryEvent {
        // A minimal span tree shaped like the engine's: root "query" with
        // phase children, split_phase carrying the streaming attrs.
        let t = obs::Tracer::new();
        let root = t.record("query", "phase", None, 0.0, secs);
        t.record("Others", "phase", Some(root), 0.0, secs * 0.25);
        let sp = t.record("split_phase", "phase", Some(root), secs * 0.25, secs);
        t.attr(sp, "time_to_first_batch_s", 0.25);
        t.attr(sp, "peak_buffered_bytes", bytes / 4);
        t.attr(sp, "frames", 12u64);
        QueryEvent {
            sql: "SELECT 1".into(),
            chain: "TableScan".into(),
            simulated_seconds: secs,
            moved_bytes: bytes,
            result_rows: 1,
            scan_handle: if pushed {
                "ocs columns=[0] pushed=[Filter]".into()
            } else {
                "ocs columns=[0]".into()
            },
            pushed,
            row_groups_skipped: if pushed { 3 } else { 0 },
            decoded_bytes_avoided: if pushed { 4096 } else { 0 },
            rg_cache_hits: if pushed { 2 } else { 0 },
            result_cache_hits: 0,
            cache_bytes_avoided: if pushed { 512 } else { 0 },
            trace: Arc::new(t.finish()),
            profile: Arc::new(obs::Profile::default()),
        }
    }

    #[test]
    fn sliding_window_evicts_oldest() {
        let m = PushdownMonitor::new(3);
        for i in 0..5 {
            m.query_completed(&event(i % 2 == 0, i, i as f64));
        }
        m.with_history(|h| {
            assert_eq!(h.len(), 3);
            let bytes: Vec<u64> = h.entries().map(|e| e.moved_bytes).collect();
            assert_eq!(bytes, vec![2, 3, 4], "oldest entries evicted");
        });
    }

    #[test]
    fn rates_and_means() {
        let m = PushdownMonitor::new(10);
        m.query_completed(&event(true, 100, 2.0));
        m.query_completed(&event(false, 300, 4.0));
        m.with_history(|h| {
            assert!(!h.is_empty());
            assert_eq!(h.pushdown_rate(), 0.5);
            assert_eq!(h.mean_moved_bytes(), 200.0);
            assert_eq!(h.mean_seconds(), 3.0);
            assert_eq!(h.total_row_groups_skipped(), 3);
            assert_eq!(h.total_decoded_bytes_avoided(), 4096);
            assert_eq!(h.cache_hit_rate(), 0.5);
            assert_eq!(h.total_cache_bytes_avoided(), 512);
            assert_eq!(h.mean_time_to_first_batch_s(), 0.25);
            assert_eq!(h.max_peak_buffered_bytes(), 75);
            assert_eq!(h.mean_frames_per_query(), 12.0);
            // Derived from the span tree, not dedicated event fields.
            let e = h.entries().next().expect("entry");
            assert_eq!(e.breakdown.len(), 2);
            assert_eq!(e.breakdown[0].0, "Others");
            assert!((e.breakdown[0].1 - 0.5).abs() < 1e-12);
            let s = h.summary();
            assert!(s.contains("2 queries"));
            assert!(s.contains("50%"));
            assert!(s.contains("12.0 frames/query"));
            assert!(s.contains("peak stream buffer 75 B"));
        });
        let empty = PushdownMonitor::new(5);
        empty.with_history(|h| {
            assert_eq!(h.pushdown_rate(), 0.0);
            assert_eq!(h.mean_moved_bytes(), 0.0);
            assert_eq!(h.p50_seconds(), 0.0);
            assert_eq!(h.p95_seconds(), 0.0);
        });
    }

    #[test]
    fn latency_percentiles() {
        let m = PushdownMonitor::new(100);
        // 1..=20 seconds, shuffled-ish insertion order.
        for i in [
            7, 1, 20, 3, 14, 2, 19, 5, 10, 4, 13, 6, 18, 8, 11, 9, 16, 12, 17, 15,
        ] {
            m.query_completed(&event(true, 0, i as f64));
        }
        m.with_history(|h| {
            assert_eq!(h.p50_seconds(), 10.0);
            assert_eq!(h.p95_seconds(), 19.0);
            let s = h.summary();
            assert!(s.contains("p50 10.000s"), "{s}");
            assert!(s.contains("p95 19.000s"), "{s}");
        });
        let one = PushdownMonitor::new(5);
        one.query_completed(&event(true, 0, 2.5));
        one.with_history(|h| {
            assert_eq!(h.p50_seconds(), 2.5);
            assert_eq!(h.p95_seconds(), 2.5);
        });
    }

    #[test]
    fn concurrent_dispatch_is_safe() {
        // The engine calls query_completed from whatever thread ran the
        // query; the monitor must take concurrent dispatch without losing
        // or corrupting entries.
        let m = Arc::new(PushdownMonitor::new(10_000));
        let threads: Vec<_> = (0..8)
            .map(|t| {
                let m = m.clone();
                std::thread::spawn(move || {
                    for i in 0..100 {
                        m.query_completed(&event(t % 2 == 0, i, i as f64 + 1.0));
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().expect("listener thread");
        }
        m.with_history(|h| {
            assert_eq!(h.len(), 800);
            assert_eq!(h.pushdown_rate(), 0.5);
            assert!(h.entries().all(|e| e.frames == 12));
        });
    }
}
