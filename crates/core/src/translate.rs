//! Translation of the engine's internal representations into Substrait IR
//! — the paper's "complex mappings: SQL clauses become Substrait
//! relations, expressions are transformed with proper type casting, and
//! Presto's function signatures map to Substrait's standardized
//! namespace".

use dsq::expr::ScalarExpr;
use dsq::plan::SortKey;
use substrait_ir::planck;
use substrait_ir::{Expr, Measure, Plan, Rel, SortField};

use crate::handle::OcsTableHandle;

/// Translate one engine expression. Returns the IR expression and the
/// number of IR nodes generated (for Table-3-style overhead billing).
pub fn translate_expr(e: &ScalarExpr) -> (Expr, u64) {
    match e {
        ScalarExpr::Column { index, .. } => (Expr::FieldRef(*index), 1),
        ScalarExpr::Literal(s) => (Expr::Literal(s.clone()), 1),
        ScalarExpr::Cmp { op, left, right } => {
            let (l, nl) = translate_expr(left);
            let (r, nr) = translate_expr(right);
            (
                Expr::Cmp {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                },
                1 + nl + nr,
            )
        }
        ScalarExpr::Arith { op, left, right } => {
            let (l, nl) = translate_expr(left);
            let (r, nr) = translate_expr(right);
            (
                Expr::Arith {
                    op: *op,
                    left: Box::new(l),
                    right: Box::new(r),
                },
                1 + nl + nr,
            )
        }
        ScalarExpr::And(a, b) => {
            let (l, nl) = translate_expr(a);
            let (r, nr) = translate_expr(b);
            (Expr::And(Box::new(l), Box::new(r)), 1 + nl + nr)
        }
        ScalarExpr::Or(a, b) => {
            let (l, nl) = translate_expr(a);
            let (r, nr) = translate_expr(b);
            (Expr::Or(Box::new(l), Box::new(r)), 1 + nl + nr)
        }
        ScalarExpr::Not(x) => {
            let (i, n) = translate_expr(x);
            (Expr::Not(Box::new(i)), 1 + n)
        }
        ScalarExpr::Between { expr, lo, hi } => {
            let (e1, n1) = translate_expr(expr);
            let (e2, n2) = translate_expr(lo);
            let (e3, n3) = translate_expr(hi);
            (
                Expr::Between {
                    expr: Box::new(e1),
                    lo: Box::new(e2),
                    hi: Box::new(e3),
                },
                1 + n1 + n2 + n3,
            )
        }
        ScalarExpr::Cast { expr, to } => {
            let (i, n) = translate_expr(expr);
            (
                Expr::Cast {
                    expr: Box::new(i),
                    to: *to,
                },
                1 + n,
            )
        }
        ScalarExpr::Negate(x) => {
            let (i, n) = translate_expr(x);
            (Expr::Negate(Box::new(i)), 1 + n)
        }
        ScalarExpr::IsNull(x) => {
            let (i, n) = translate_expr(x);
            (Expr::IsNull(Box::new(i)), 1 + n)
        }
        ScalarExpr::IsNotNull(x) => {
            let (i, n) = translate_expr(x);
            (Expr::IsNotNull(Box::new(i)), 1 + n)
        }
    }
}

fn translate_sort_keys(keys: &[SortKey]) -> (Vec<SortField>, u64) {
    let fields = keys
        .iter()
        .map(|k| SortField {
            expr: Expr::FieldRef(k.column),
            ascending: k.ascending,
            nulls_first: k.nulls_first,
        })
        .collect::<Vec<_>>();
    let nodes = 2 * keys.len() as u64;
    (fields, nodes)
}

/// Build the complete Substrait plan for a pushed-down scan. Returns the
/// plan and the total IR node count generated.
pub fn to_substrait(handle: &OcsTableHandle) -> (Plan, u64) {
    let mut nodes: u64 = 1; // ReadRel
    let mut rel = Rel::Read {
        table: handle.table.clone(),
        base_schema: (*handle.base_schema).clone(),
        projection: Some(handle.projection.clone()),
    };
    nodes += handle.projection.len() as u64;

    if let Some(filter) = &handle.pushed.filter {
        let (pred, n) = translate_expr(filter);
        nodes += 1 + n;
        rel = Rel::Filter {
            input: Box::new(rel),
            predicate: pred,
        };
    }
    if let Some(project) = &handle.pushed.project {
        let mut exprs = Vec::with_capacity(project.len());
        for (e, name) in project {
            let (ie, n) = translate_expr(e);
            nodes += n;
            exprs.push((ie, name.clone()));
        }
        nodes += 1;
        rel = Rel::Project {
            input: Box::new(rel),
            exprs,
        };
    }
    if let Some((group_by, partials)) = &handle.pushed.aggregate {
        let mut keys = Vec::with_capacity(group_by.len());
        for (e, name) in group_by {
            let (ie, n) = translate_expr(e);
            nodes += n;
            keys.push((ie, name.clone()));
        }
        let mut measures = Vec::with_capacity(partials.len());
        for p in partials {
            let arg = match &p.arg {
                None => None,
                Some(a) => {
                    let (ie, n) = translate_expr(a);
                    nodes += n;
                    Some(ie)
                }
            };
            nodes += 1;
            measures.push(Measure {
                func: p.func,
                arg,
                name: p.output_name.clone(),
            });
        }
        nodes += 1;
        rel = Rel::Aggregate {
            input: Box::new(rel),
            group_by: keys,
            measures,
        };
    }
    if let Some(keys) = &handle.pushed.sort {
        let (fields, n) = translate_sort_keys(keys);
        nodes += 1 + n;
        rel = Rel::Sort {
            input: Box::new(rel),
            keys: fields,
        };
    }
    if let Some((keys, limit)) = &handle.pushed.topn {
        // Empty keys = a bare LIMIT (Fetch without an ordering).
        let input = if keys.is_empty() {
            rel
        } else {
            let (fields, n) = translate_sort_keys(keys);
            nodes += 1 + n;
            Rel::Sort {
                input: Box::new(rel),
                keys: fields,
            }
        };
        nodes += 1;
        rel = Rel::Fetch {
            input: Box::new(input),
            offset: 0,
            limit: *limit,
        };
    }
    (Plan::new(rel), nodes)
}

/// [`to_substrait`] followed by the planck pushdown verifier — the single
/// post-translate check on everything the connector ships: structure,
/// typing, operator shape and pushdown legality (Fetch at root, offset 0,
/// one Aggregate, deterministic expressions). Returns the primary
/// diagnostic on failure so callers can log the offending plan node.
pub fn to_substrait_verified(handle: &OcsTableHandle) -> Result<(Plan, u64), planck::Diagnostic> {
    let (plan, nodes) = to_substrait(handle);
    planck::verify_pushdown(&plan).map_err(planck::primary)?;
    Ok((plan, nodes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::handle::{PushedAggregate, PushedOps};
    use columnar::agg::AggFunc;
    use columnar::kernels::cmp::CmpOp;
    use columnar::{DataType, Field, Scalar, Schema};
    use std::sync::Arc;

    fn handle() -> OcsTableHandle {
        let base = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("x", DataType::Float64, false),
            Field::new("e", DataType::Float64, false),
        ]));
        OcsTableHandle {
            table: "laghos".into(),
            base_schema: base.clone(),
            projection: vec![0, 1, 2],
            pushed: PushedOps {
                aggregate_is_full: false,
                filter: Some(ScalarExpr::Between {
                    expr: Arc::new(ScalarExpr::col(1, "x", DataType::Float64)),
                    lo: Arc::new(ScalarExpr::lit(Scalar::Float64(0.8))),
                    hi: Arc::new(ScalarExpr::lit(Scalar::Float64(3.2))),
                }),
                project: None,
                aggregate: Some((
                    vec![(ScalarExpr::col(0, "id", DataType::Int64), "id".into())],
                    vec![
                        PushedAggregate {
                            func: AggFunc::Min,
                            arg: Some(ScalarExpr::col(1, "x", DataType::Float64)),
                            output_name: "__p0_min".into(),
                        },
                        PushedAggregate {
                            func: AggFunc::Sum,
                            arg: Some(ScalarExpr::col(2, "e", DataType::Float64)),
                            output_name: "__p1_sum".into(),
                        },
                        PushedAggregate {
                            func: AggFunc::Count,
                            arg: Some(ScalarExpr::col(2, "e", DataType::Float64)),
                            output_name: "__p1_count".into(),
                        },
                    ],
                )),
                sort: None,
                topn: Some((
                    vec![dsq::plan::SortKey {
                        column: 2,
                        ascending: true,
                        nulls_first: true,
                    }],
                    100,
                )),
            },
            output_schema: Arc::new(Schema::new(vec![
                Field::new("id", DataType::Int64, true),
                Field::new("__p0_min", DataType::Float64, true),
                Field::new("__p1_sum", DataType::Float64, true),
                Field::new("__p1_count", DataType::Int64, true),
            ])),
        }
    }

    #[test]
    fn builds_verifying_plan() {
        let (plan, nodes) = to_substrait_verified(&handle()).expect("generated plan must verify");
        let schema = planck::verify_pushdown(&plan).expect("pushdown-legal");
        // Read → Filter → Aggregate → Sort → Fetch.
        assert_eq!(plan.root.operator_count(), 5);
        assert!(nodes > 10);
        assert_eq!(
            schema.names(),
            vec!["id", "__p0_min", "__p1_sum", "__p1_count"]
        );
        // And it survives the wire.
        let bytes = substrait_ir::encode(&plan);
        assert_eq!(substrait_ir::decode(&bytes).unwrap(), plan);
    }

    #[test]
    fn expression_translation_counts_nodes() {
        let e = ScalarExpr::Cmp {
            op: CmpOp::Gt,
            left: Arc::new(ScalarExpr::col(0, "a", DataType::Float64)),
            right: Arc::new(ScalarExpr::lit(Scalar::Float64(0.1))),
        };
        let (ie, n) = translate_expr(&e);
        assert_eq!(n, 3);
        assert_eq!(ie.to_string(), "($0 > 0.1)");
    }

    #[test]
    fn plain_projection_scan() {
        let mut h = handle();
        h.pushed = PushedOps::default();
        h.output_schema = Arc::new(h.base_schema.project(&[0, 1, 2]).unwrap());
        let (plan, nodes) = to_substrait_verified(&h).unwrap();
        assert_eq!(plan.root.operator_count(), 1);
        assert_eq!(nodes, 4); // ReadRel + 3 projection entries
    }
}
