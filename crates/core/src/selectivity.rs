//! The Selectivity Analyzer (paper §4, "Local Optimizer").
//!
//! Estimates each operator's data-reduction potential from metastore
//! statistics, following the paper's recipe exactly:
//!
//! * **range filters** — "the optimizer assumes a normal distribution of
//!   values between the column's min/max boundaries and estimates the
//!   proportion of rows falling within the query's range predicate";
//! * **aggregations** — "output cardinality as `row_count / NDV` of the
//!   GROUP BY column(s)" (i.e. output rows = product of key NDVs, capped);
//! * **top-N** — "the LIMIT clause explicitly specifies the output row
//!   count, which can be directly compared against the total row count".
//!
//! The paper also notes the normal-distribution assumption "may not hold
//! for skewed data distributions" — reproduced faithfully, and exercised
//! by the ablation bench.

use columnar::kernels::cmp::CmpOp;
use columnar::Scalar;
use dsq::catalog::TableMeta;
use dsq::expr::ScalarExpr;
use parq::ColumnStats;

/// Standard normal CDF via the Abramowitz–Stegun erf approximation
/// (max error ~1.5e-7, far below estimation noise).
pub fn normal_cdf(z: f64) -> f64 {
    let x = z / std::f64::consts::SQRT_2;
    let t = 1.0 / (1.0 + 0.327_591_1 * x.abs());
    let poly = t
        * (0.254_829_592
            + t * (-0.284_496_736
                + t * (1.421_413_741 + t * (-1.453_152_027 + t * 1.061_405_429))));
    let erf = 1.0 - poly * (-x * x).exp();
    let erf = if x >= 0.0 { erf } else { -erf };
    0.5 * (1.0 + erf)
}

/// The analyzer: borrowed table statistics + scan projection context.
pub struct SelectivityAnalyzer<'a> {
    table: &'a TableMeta,
    /// Scan projection: scan-output ordinal → file column ordinal.
    projection: &'a [usize],
}

impl<'a> SelectivityAnalyzer<'a> {
    /// New analyzer for a scan of `table` emitting `projection` columns.
    pub fn new(table: &'a TableMeta, projection: &'a [usize]) -> Self {
        SelectivityAnalyzer { table, projection }
    }

    fn stats_for(&self, scan_col: usize) -> Option<&ColumnStats> {
        let file_col = *self.projection.get(scan_col)?;
        self.table.stats.columns.get(file_col)
    }

    /// Fraction of a normal distribution fit to `[min, max]` that lies in
    /// `[lo, hi]` (clamped). The paper's mean/σ choice is unspecified; we
    /// center the normal and set σ so that min/max sit at ±2σ (95% mass
    /// inside the observed range).
    fn normal_mass(min: f64, max: f64, lo: f64, hi: f64) -> f64 {
        if max <= min {
            // Degenerate column: all rows share one value.
            return if lo <= min && min <= hi { 1.0 } else { 0.0 };
        }
        let mean = (min + max) / 2.0;
        let sigma = (max - min) / 4.0;
        let a = normal_cdf((lo.max(min) - mean) / sigma);
        let b = normal_cdf((hi.min(max) - mean) / sigma);
        (b - a).clamp(0.0, 1.0)
    }

    /// Estimated selectivity (kept fraction) of a predicate over the scan.
    pub fn filter_selectivity(&self, predicate: &ScalarExpr) -> f64 {
        match predicate {
            ScalarExpr::And(a, b) => {
                // Independence assumption, as in the paper's simple model.
                self.filter_selectivity(a) * self.filter_selectivity(b)
            }
            ScalarExpr::Or(a, b) => {
                let (x, y) = (self.filter_selectivity(a), self.filter_selectivity(b));
                (x + y - x * y).clamp(0.0, 1.0)
            }
            ScalarExpr::Not(e) => 1.0 - self.filter_selectivity(e),
            ScalarExpr::Between { expr, lo, hi } => {
                if let (
                    ScalarExpr::Column { index, .. },
                    ScalarExpr::Literal(l),
                    ScalarExpr::Literal(h),
                ) = (expr.as_ref(), lo.as_ref(), hi.as_ref())
                {
                    self.range_selectivity(*index, l.as_f64(), h.as_f64())
                } else {
                    0.33
                }
            }
            ScalarExpr::Cmp { op, left, right } => match (left.as_ref(), right.as_ref()) {
                (ScalarExpr::Column { index, .. }, ScalarExpr::Literal(v)) => {
                    self.cmp_selectivity(*index, *op, v)
                }
                (ScalarExpr::Literal(v), ScalarExpr::Column { index, .. }) => {
                    self.cmp_selectivity(*index, op.flip(), v)
                }
                _ => 0.33,
            },
            ScalarExpr::IsNull(e) => {
                if let ScalarExpr::Column { index, .. } = e.as_ref() {
                    if let Some(s) = self.stats_for(*index) {
                        if s.row_count > 0 {
                            return s.null_count as f64 / s.row_count as f64;
                        }
                    }
                }
                0.1
            }
            ScalarExpr::IsNotNull(e) => {
                1.0 - self.filter_selectivity(&ScalarExpr::IsNull(e.clone()))
            }
            ScalarExpr::Literal(Scalar::Boolean(b)) => {
                if *b {
                    1.0
                } else {
                    0.0
                }
            }
            _ => 0.33, // unknown shape: the paper's fallback regime
        }
    }

    fn range_selectivity(&self, scan_col: usize, lo: Option<f64>, hi: Option<f64>) -> f64 {
        let (Some(lo), Some(hi)) = (lo, hi) else {
            return 0.33;
        };
        let Some(stats) = self.stats_for(scan_col) else {
            return 0.33;
        };
        let (Some(min), Some(max)) = (stats.min.as_f64(), stats.max.as_f64()) else {
            return 0.33;
        };
        if hi < min || lo > max {
            return 0.0;
        }
        Self::normal_mass(min, max, lo, hi)
    }

    fn cmp_selectivity(&self, scan_col: usize, op: CmpOp, v: &Scalar) -> f64 {
        let Some(stats) = self.stats_for(scan_col) else {
            return 0.33;
        };
        match op {
            CmpOp::Eq => {
                // Uniform over distinct values.
                if stats.distinct > 0 {
                    (1.0 / stats.distinct as f64).min(1.0)
                } else {
                    0.0
                }
            }
            CmpOp::NotEq => {
                if stats.distinct > 0 {
                    1.0 - (1.0 / stats.distinct as f64).min(1.0)
                } else {
                    1.0
                }
            }
            CmpOp::Lt | CmpOp::LtEq => {
                self.range_selectivity(scan_col, stats.min.as_f64(), v.as_f64())
            }
            CmpOp::Gt | CmpOp::GtEq => {
                self.range_selectivity(scan_col, v.as_f64(), stats.max.as_f64())
            }
        }
    }

    /// Estimated output rows of a `GROUP BY` on the given key expressions.
    pub fn aggregate_output_rows(&self, group_by: &[(ScalarExpr, String)]) -> u64 {
        if group_by.is_empty() {
            return 1;
        }
        let rows = self.table.stats.row_count.max(1);
        let mut ndv: u128 = 1;
        for (e, _) in group_by {
            let key_ndv = match e {
                ScalarExpr::Column { index, .. } => self
                    .stats_for(*index)
                    .map(|s| s.distinct.max(1))
                    .unwrap_or(rows),
                // Expression key: unknown; assume it can hit every row.
                _ => rows,
            };
            ndv = ndv.saturating_mul(key_ndv as u128);
            if ndv > rows as u128 {
                return rows;
            }
        }
        (ndv as u64).min(rows)
    }

    /// Estimated selectivity of an aggregation (output rows / input rows).
    pub fn aggregate_selectivity(&self, group_by: &[(ScalarExpr, String)]) -> f64 {
        let rows = self.table.stats.row_count.max(1);
        self.aggregate_output_rows(group_by) as f64 / rows as f64
    }

    /// Top-N selectivity: limit over estimated input rows.
    pub fn topn_selectivity(&self, limit: u64, input_rows: u64) -> f64 {
        if input_rows == 0 {
            return 1.0;
        }
        (limit as f64 / input_rows as f64).min(1.0)
    }

    /// Total table rows (estimation input for chained operators).
    pub fn row_count(&self) -> u64 {
        self.table.stats.row_count
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::{DataType, Field, Schema};
    use dsq::catalog::{TableMeta, TableStats};
    use std::sync::Arc;

    fn table() -> TableMeta {
        // Column 0: x in [0, 10], 1000 distinct; column 1: g with NDV 4.
        let mk = |min: f64, max: f64, ndv: u64| ColumnStats {
            min: Scalar::Float64(min),
            max: Scalar::Float64(max),
            null_count: 0,
            row_count: 100_000,
            distinct: ndv,
        };
        TableMeta {
            name: "t".into(),
            connector: "ocs".into(),
            schema: Arc::new(Schema::new(vec![
                Field::new("x", DataType::Float64, false),
                Field::new("g", DataType::Float64, false),
            ])),
            objects: vec![],
            stats: TableStats {
                row_count: 100_000,
                columns: vec![mk(0.0, 10.0, 1000), mk(0.0, 3.0, 4)],
            },
        }
    }

    fn col(i: usize) -> ScalarExpr {
        ScalarExpr::col(i, format!("c{i}"), DataType::Float64)
    }

    fn lit(v: f64) -> ScalarExpr {
        ScalarExpr::lit(Scalar::Float64(v))
    }

    #[test]
    fn normal_cdf_sanity() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-6);
        assert!(normal_cdf(3.0) > 0.99);
        assert!(normal_cdf(-3.0) < 0.01);
        // Symmetry.
        assert!((normal_cdf(1.2) + normal_cdf(-1.2) - 1.0).abs() < 1e-6);
    }

    #[test]
    fn range_filter_normal_assumption() {
        let t = table();
        let proj = [0usize, 1];
        let a = SelectivityAnalyzer::new(&t, &proj);
        // Whole range keeps ~everything (95% of the fitted normal).
        let full = a.filter_selectivity(&ScalarExpr::Between {
            expr: std::sync::Arc::new(col(0)),
            lo: std::sync::Arc::new(lit(0.0)),
            hi: std::sync::Arc::new(lit(10.0)),
        });
        assert!(full > 0.9, "{full}");
        // Central half keeps more than a uniform model would say.
        let center = a.filter_selectivity(&ScalarExpr::Between {
            expr: std::sync::Arc::new(col(0)),
            lo: std::sync::Arc::new(lit(2.5)),
            hi: std::sync::Arc::new(lit(7.5)),
        });
        assert!(center > 0.5 && center < full, "{center}");
        // Disjoint range keeps nothing.
        let out = a.filter_selectivity(&ScalarExpr::Between {
            expr: std::sync::Arc::new(col(0)),
            lo: std::sync::Arc::new(lit(20.0)),
            hi: std::sync::Arc::new(lit(30.0)),
        });
        assert_eq!(out, 0.0);
        // Tail range keeps little.
        let tail = a.filter_selectivity(&ScalarExpr::Between {
            expr: std::sync::Arc::new(col(0)),
            lo: std::sync::Arc::new(lit(9.0)),
            hi: std::sync::Arc::new(lit(10.0)),
        });
        assert!(tail < 0.1, "{tail}");
    }

    #[test]
    fn conjunction_multiplies() {
        let t = table();
        let proj = [0usize, 1];
        let a = SelectivityAnalyzer::new(&t, &proj);
        let half = ScalarExpr::Cmp {
            op: CmpOp::Gt,
            left: std::sync::Arc::new(col(0)),
            right: std::sync::Arc::new(lit(5.0)),
        };
        let s1 = a.filter_selectivity(&half);
        let s2 = a.filter_selectivity(&ScalarExpr::And(
            std::sync::Arc::new(half.clone()),
            std::sync::Arc::new(half),
        ));
        assert!((s2 - s1 * s1).abs() < 1e-9);
    }

    #[test]
    fn equality_uses_ndv() {
        let t = table();
        let proj = [0usize, 1];
        let a = SelectivityAnalyzer::new(&t, &proj);
        let eq = ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left: std::sync::Arc::new(col(1)),
            right: std::sync::Arc::new(lit(1.0)),
        };
        assert!((a.filter_selectivity(&eq) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn aggregate_cardinality_from_ndv() {
        let t = table();
        let proj = [0usize, 1];
        let a = SelectivityAnalyzer::new(&t, &proj);
        assert_eq!(a.aggregate_output_rows(&[]), 1);
        assert_eq!(a.aggregate_output_rows(&[(col(1), "g".into())]), 4);
        assert_eq!(
            a.aggregate_output_rows(&[(col(0), "x".into()), (col(1), "g".into())]),
            4000
        );
        assert!((a.aggregate_selectivity(&[(col(1), "g".into())]) - 4e-5).abs() < 1e-9);
        // Expression keys fall back to row count (no reduction assumed).
        let expr_key = ScalarExpr::Negate(std::sync::Arc::new(col(0)));
        assert_eq!(a.aggregate_output_rows(&[(expr_key, "e".into())]), 100_000);
    }

    #[test]
    fn topn_selectivity_is_exact() {
        let t = table();
        let proj = [0usize];
        let a = SelectivityAnalyzer::new(&t, &proj);
        assert!((a.topn_selectivity(100, 100_000) - 0.001).abs() < 1e-12);
        assert_eq!(a.topn_selectivity(100, 10), 1.0);
        assert_eq!(a.topn_selectivity(5, 0), 1.0);
    }

    #[test]
    fn projection_remaps_columns() {
        // Scan emits only file column 1 (g). Scan col 0 == file col 1.
        let t = table();
        let proj = [1usize];
        let a = SelectivityAnalyzer::new(&t, &proj);
        let eq = ScalarExpr::Cmp {
            op: CmpOp::Eq,
            left: std::sync::Arc::new(col(0)),
            right: std::sync::Arc::new(lit(1.0)),
        };
        assert!(
            (a.filter_selectivity(&eq) - 0.25).abs() < 1e-9,
            "NDV of g, not x"
        );
    }
}
