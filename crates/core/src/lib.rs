//! `ocs-connector` — the Presto-OCS connector: this crate is the paper's
//! primary contribution, reproduced in Rust against the `dsq` engine and
//! the `ocs` storage system.
//!
//! # What it does
//!
//! The connector plugs into the engine's Connector SPI and, during the
//! **local-optimizer** pass (Figure 3, step 4), walks the logical plan
//! bottom-up from the table scan:
//!
//! 1. the [`selectivity::SelectivityAnalyzer`] estimates each operator's
//!    data-reduction potential from metastore statistics (min/max for
//!    range filters under a normal-distribution assumption, NDV for
//!    aggregation cardinality, `LIMIT` for top-N);
//! 2. the operator extractor ([`optimizer`]) captures the eligible prefix
//!    of the chain — filter predicates, projection expressions,
//!    aggregation keys/functions, sort/limit criteria — into an
//!    [`handle::OcsTableHandle`], merging the nodes into a *modified
//!    TableScan*;
//! 3. at execution, the [`pagesource::OcsPageSourceProvider`] reconstructs
//!    the captured operators, translates them into Substrait IR
//!    ([`translate`]), ships them to OCS over the byte-counted RPC
//!    boundary, and deserializes the Arrow results back into engine pages;
//! 4. the engine runs only *residual* operators (final aggregation of
//!    partial states, top-N merge, output) over the pre-reduced data.
//!
//! Aggregates are pushed in **partial/final** form: OCS returns per-object
//! partial states (`AVG` decomposes into `SUM` + `COUNT`, recombined by a
//! generated projection), and the engine's final aggregation merges
//! per-object groups — so results are exact even when groups span objects.
//! Pushing top-N *above* a partial aggregation additionally requires
//! groups not to span objects (true for the paper's workloads, where each
//! file covers a disjoint key range); the
//! [`policy::PushdownPolicy::assume_object_disjoint_groups`] flag gates
//! this, and the connector declines that pushdown when unset.
//!
//! # Baselines
//!
//! Two more connectors reproduce the paper's comparison points:
//!
//! * [`raw::RawConnector`] — *no pushdown*: whole objects cross the
//!   network and every operator runs at the compute layer;
//! * [`hive::HiveConnector`] — *filter-only pushdown* at the
//!   S3-Select/MinIO-Select capability level, via the object store's
//!   restricted `select()` API.
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use ocs_connector::{register_ocs_stack, PushdownPolicy};
//! use dsq::EngineBuilder;
//! use objstore::ObjectStore;
//!
//! let store = Arc::new(ObjectStore::new());
//! let engine = EngineBuilder::new().build();
//! // Registers the "ocs", "hive" and "raw" connectors over `store`.
//! register_ocs_stack(&engine, store, PushdownPolicy::all());
//! ```

#![warn(missing_docs)]

pub mod handle;
pub mod hive;
pub mod monitor;
pub mod optimizer;
pub mod pagesource;
pub mod policy;
pub mod raw;
pub mod selectivity;
pub mod translate;

pub use handle::{OcsTableHandle, PushedAggregate, PushedOps};
pub use hive::HiveConnector;
pub use monitor::{PushdownHistory, PushdownMonitor};
pub use optimizer::OcsPlanOptimizer;
pub use policy::PushdownPolicy;
pub use raw::RawConnector;
pub use selectivity::SelectivityAnalyzer;
// The static plan verifier lives in `substrait-ir`; re-exported so the
// engine side names one crate for the whole trust boundary.
pub use substrait_ir::planck;

use std::sync::Arc;

use dsq::spi::{Connector, ConnectorPlanOptimizer, PageSourceProvider, SplitManager};
use dsq::Engine;
use objstore::ObjectStore;

/// The Presto-OCS connector.
pub struct OcsConnector {
    name: String,
    policy: PushdownPolicy,
    optimizer: Arc<OcsPlanOptimizer>,
    splits: Arc<dsq::spi::DefaultSplitManager>,
    pages: Arc<pagesource::OcsPageSourceProvider>,
}

impl OcsConnector {
    /// Build an OCS connector named `name` over an OCS deployment.
    pub fn new(
        name: impl Into<String>,
        ocs: Arc<ocs::Ocs>,
        cluster: netsim::ClusterSpec,
        cost: netsim::CostParams,
        policy: PushdownPolicy,
    ) -> Self {
        let name = name.into();
        OcsConnector {
            optimizer: Arc::new(OcsPlanOptimizer::new(name.clone(), policy.clone())),
            splits: Arc::new(dsq::spi::DefaultSplitManager),
            pages: Arc::new(pagesource::OcsPageSourceProvider::new(
                ocs.client(),
                cluster,
                cost,
            )),
            name,
            policy,
        }
    }

    /// The pushdown policy in force.
    pub fn policy(&self) -> &PushdownPolicy {
        &self.policy
    }
}

impl Connector for OcsConnector {
    fn name(&self) -> &str {
        &self.name
    }

    fn plan_optimizer(&self) -> Option<Arc<dyn ConnectorPlanOptimizer>> {
        Some(self.optimizer.clone())
    }

    fn split_manager(&self) -> Arc<dyn SplitManager> {
        self.splits.clone()
    }

    fn page_source_provider(&self) -> Arc<dyn PageSourceProvider> {
        self.pages.clone()
    }
}

/// Convenience: stand up the full comparison stack on one engine —
/// an OCS deployment plus the `"ocs"`, `"hive"` and `"raw"` connectors,
/// all over the same object store, using the engine's cluster/cost model.
pub fn register_ocs_stack(
    engine: &Engine,
    store: Arc<ObjectStore>,
    policy: PushdownPolicy,
) -> Arc<ocs::Ocs> {
    let defaults = ocs::OcsConfig::paper_testbed();
    register_ocs_stack_configured(
        engine,
        store,
        policy,
        defaults.row_group_cache_bytes,
        defaults.result_cache_bytes,
    )
}

/// [`register_ocs_stack`] with explicit near-storage cache budgets (zero
/// disables a tier) — the cold-path A/B configuration for benchmarks and
/// tests that compare repeated executions.
pub fn register_ocs_stack_configured(
    engine: &Engine,
    store: Arc<ObjectStore>,
    policy: PushdownPolicy,
    row_group_cache_bytes: u64,
    result_cache_bytes: u64,
) -> Arc<ocs::Ocs> {
    let cluster = engine.cluster().clone();
    let cost = engine.cost_params().clone();
    let ocs = Arc::new(ocs::Ocs::new(
        store.clone(),
        ocs::OcsConfig {
            storage_node: cluster.storage.clone(),
            storage_disk: cluster.storage_disk,
            frontend_node: cluster.frontend.clone(),
            cost: cost.clone(),
            storage_nodes: 1,
            frame_window: ocs::DEFAULT_FRAME_WINDOW,
            row_group_cache_bytes,
            result_cache_bytes,
        },
    ));
    engine.register_connector(Arc::new(OcsConnector::new(
        "ocs",
        ocs.clone(),
        cluster.clone(),
        cost.clone(),
        policy,
    )));
    engine.register_connector(Arc::new(HiveConnector::new(
        "hive",
        store.clone(),
        cluster.clone(),
        cost.clone(),
    )));
    engine.register_connector(Arc::new(RawConnector::new("raw", store, cluster, cost)));
    ocs
}
