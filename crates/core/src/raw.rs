//! The no-pushdown baseline: whole objects cross the network and every
//! operator runs at the compute layer (Figure 2(a) of the paper —
//! "traditional object storage systems execute all SQL operators at the
//! compute node, requiring full dataset or column chunk transfer").

use std::sync::Arc;

use dsq::error::{EResult, EngineError};
use dsq::spi::{
    BufferedPageStream, Connector, DefaultSplitManager, DefaultTableHandle, PageSourceProvider,
    PageSourceResult, Split, SplitManager,
};
use lzcodec::CodecKind;
use netsim::{ClusterSpec, CostParams, ExecStats, Work};
use objstore::ObjectStore;
use parq::ParqReader;

/// The raw GET-the-object connector.
pub struct RawConnector {
    name: String,
    splits: Arc<DefaultSplitManager>,
    pages: Arc<RawPageSourceProvider>,
}

impl RawConnector {
    /// Build a raw connector over `store`.
    pub fn new(
        name: impl Into<String>,
        store: Arc<ObjectStore>,
        cluster: ClusterSpec,
        cost: CostParams,
    ) -> Self {
        RawConnector {
            name: name.into(),
            splits: Arc::new(DefaultSplitManager),
            pages: Arc::new(RawPageSourceProvider {
                store,
                cluster,
                cost,
            }),
        }
    }
}

impl Connector for RawConnector {
    fn name(&self) -> &str {
        &self.name
    }

    fn split_manager(&self) -> Arc<dyn SplitManager> {
        self.splits.clone()
    }

    fn page_source_provider(&self) -> Arc<dyn PageSourceProvider> {
        self.pages.clone()
    }
}

struct RawPageSourceProvider {
    store: Arc<ObjectStore>,
    cluster: ClusterSpec,
    cost: CostParams,
}

impl PageSourceProvider for RawPageSourceProvider {
    fn create(&self, split: &Split) -> EResult<PageSourceResult> {
        // The whole object crosses the network — that is the point of this
        // baseline.
        let bytes = self
            .store
            .get_object(&split.bucket, &split.key)
            .map_err(|e| EngineError::Connector(e.to_string()))?;
        let object_bytes = bytes.len() as u64;

        let reader = ParqReader::open(bytes).map_err(|e| EngineError::Connector(e.to_string()))?;
        let projection: Option<Vec<usize>> = split
            .handle
            .as_any()
            .downcast_ref::<DefaultTableHandle>()
            .and_then(|h| h.projection.clone());
        let batches = reader
            .read_all(projection.as_deref())
            .map_err(|e| EngineError::Connector(e.to_string()))?;

        // Storage side: the GET streams the file off the disk; serving it
        // costs a little CPU per byte.
        let storage_cpu_s = self
            .cluster
            .storage
            .core_seconds_for(Work::decode(object_bytes as f64 * 0.02));

        // Compute side: decompression (if any) + columnar decode of the
        // columns the query needs, all at the compute layer.
        let uncompressed: u64 = batches.iter().map(|b| b.byte_size() as u64).sum();
        let decompress_s = match reader.codec() {
            CodecKind::None => 0.0,
            other => uncompressed as f64 / (other.spec().decompress_gbps * 1e9),
        };
        let compute_deser_s = self
            .cluster
            .compute
            .core_seconds_for(Work::decode(uncompressed as f64 * self.cost.byte_decode))
            + decompress_s;

        let rows: u64 = batches.iter().map(|b| b.num_rows() as u64).sum();
        // A raw GET is one monolithic fetch: the stream reports a single
        // indivisible frame, so the pipeline scheduler sees no intra-split
        // overlap and peak buffering equals the whole payload.
        Ok(PageSourceResult {
            stream: BufferedPageStream::whole_result(
                batches,
                ExecStats {
                    storage_cpu_s,
                    disk_bytes: object_bytes,
                    rows_scanned: rows,
                    rows_returned: rows,
                    ..Default::default()
                },
                object_bytes,
                1,
                compute_deser_s,
            ),
            substrait_gen_s: 0.0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::prelude::*;

    #[test]
    fn whole_object_crosses_network_regardless_of_projection() {
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Float64, false),
        ]));
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64((0..5000).collect())),
                Arc::new(Array::from_f64(vec![1.0; 5000])),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
        let object_size = bytes.len() as u64;
        store.put_object("lake", "t/0", bytes.into()).unwrap();

        let provider = RawPageSourceProvider {
            store,
            cluster: ClusterSpec::paper_testbed(),
            cost: CostParams::default(),
        };
        let split = Split {
            connector: "raw".into(),
            table: "t".into(),
            bucket: "lake".into(),
            key: "t/0".into(),
            schema,
            handle: Arc::new(DefaultTableHandle::projected(vec![0])),
            seq: 0,
        };
        let page = provider.create(&split).unwrap();
        let mut stream = page.stream;
        let mut rows = 0usize;
        let mut cols = 0usize;
        while let Some(b) = stream.next_batch().unwrap() {
            rows += b.num_rows();
            cols = b.num_columns();
        }
        assert_eq!(cols, 1, "only col 0 decoded");
        assert_eq!(rows, 5000);
        let metrics = stream.finish().unwrap();
        assert_eq!(metrics.network_bytes, object_size, "entire file moved");
        assert!(metrics.compute_deser_s > 0.0);
        assert_eq!(metrics.stats.storage_decompress_s, 0.0);
        assert_eq!(metrics.frames.len(), 1, "monolithic fetch = one frame");
        assert_eq!(metrics.peak_buffered_bytes, object_size);
    }
}
