//! Pushdown policy: which operator classes may be offloaded, and the
//! thresholds the Selectivity Analyzer applies.
//!
//! The paper's Figure 5 sweeps exactly these knobs ("query pushdown was
//! progressively applied to SQL operators in execution order").

/// User-configurable pushdown policy for one OCS connector instance.
#[derive(Debug, Clone, PartialEq)]
pub struct PushdownPolicy {
    /// Offload `WHERE` filters.
    pub filter: bool,
    /// Offload expression projections.
    pub project: bool,
    /// Offload aggregations (as partial aggregation).
    pub aggregate: bool,
    /// Offload `ORDER BY … LIMIT` (top-N).
    pub topn: bool,
    /// Offload bare `ORDER BY` (only useful on already-reduced data).
    pub sort: bool,
    /// Maximum estimated output/input ratio for an operator to be worth
    /// pushing (the paper: "operators with selectivity above the threshold
    /// … are marked as pushdown candidates"; we express it as a *reduction*
    /// requirement — estimated output/input must be **below** this).
    pub selectivity_threshold: f64,
    /// Maximum per-row expression weight the weak storage node should
    /// accept for compute-only operators (projection). `u32::MAX`
    /// disables the guard — which is how Figure 5's "+Proj" configurations
    /// reproduce the paper's projection-pushdown slowdown.
    pub max_project_weight: u32,
    /// Explicit override asserting that aggregation group keys never span
    /// storage objects. Normally unnecessary: the optimizer *proves*
    /// disjointness from per-object min/max statistics (which holds for
    /// all three paper workloads). Leave false unless the metastore lacks
    /// partition-level statistics and you know the layout.
    pub assume_object_disjoint_groups: bool,
}

impl PushdownPolicy {
    /// Everything on, thresholds permissive — the paper's "all operators"
    /// configuration.
    pub fn all() -> Self {
        PushdownPolicy {
            filter: true,
            project: true,
            aggregate: true,
            topn: true,
            sort: true,
            selectivity_threshold: 1.0,
            max_project_weight: u32::MAX,
            assume_object_disjoint_groups: false,
        }
    }

    /// Nothing pushed (plain column-projected reads).
    pub fn none() -> Self {
        PushdownPolicy {
            filter: false,
            project: false,
            aggregate: false,
            topn: false,
            sort: false,
            selectivity_threshold: 1.0,
            max_project_weight: u32::MAX,
            assume_object_disjoint_groups: false,
        }
    }

    /// Filter-only — the S3-Select capability level, the paper's baseline.
    pub fn filter_only() -> Self {
        PushdownPolicy {
            filter: true,
            ..Self::none()
        }
    }

    /// Filter + expression projection (the configuration in which the
    /// paper observes slowdowns on the weak storage node).
    pub fn filter_project() -> Self {
        PushdownPolicy {
            filter: true,
            project: true,
            ..Self::none()
        }
    }

    /// Filter + projection + aggregation.
    pub fn filter_project_aggregate() -> Self {
        PushdownPolicy {
            filter: true,
            project: true,
            aggregate: true,
            ..Self::none()
        }
    }

    /// Filter + aggregation (no projection pushdown) — the configuration a
    /// cost-aware analyzer would actually pick for Deep Water / TPC-H.
    pub fn filter_aggregate() -> Self {
        PushdownPolicy {
            filter: true,
            aggregate: true,
            ..Self::none()
        }
    }

    /// A *cost-aware* variant of [`PushdownPolicy::all`]: expression
    /// projections heavier than `weight` are declined (the adaptive
    /// behaviour the paper's future-work section calls for).
    pub fn cost_aware(weight: u32) -> Self {
        PushdownPolicy {
            max_project_weight: weight,
            ..Self::all()
        }
    }
}

impl Default for PushdownPolicy {
    fn default() -> Self {
        Self::all()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_compose_sensibly() {
        assert!(PushdownPolicy::all().filter);
        assert!(PushdownPolicy::all().topn);
        let f = PushdownPolicy::filter_only();
        assert!(f.filter && !f.project && !f.aggregate && !f.topn);
        let fp = PushdownPolicy::filter_project();
        assert!(fp.filter && fp.project && !fp.aggregate);
        let fpa = PushdownPolicy::filter_project_aggregate();
        assert!(fpa.aggregate && !fpa.topn);
        assert!(!PushdownPolicy::none().filter);
        assert_eq!(PushdownPolicy::cost_aware(6).max_project_weight, 6);
        assert_eq!(PushdownPolicy::default(), PushdownPolicy::all());
    }
}
