//! The OCS table handle: the "modified TableScan operator" that
//! encapsulates the pushed-down operator chain (paper §4, Local Optimizer:
//! "The corresponding PlanNodes are merged into a modified TableScan
//! operator").

use std::any::Any;
use std::sync::Arc;

use columnar::agg::AggFunc;
use columnar::SchemaRef;
use dsq::expr::ScalarExpr;
use dsq::plan::SortKey;
use dsq::spi::TableHandle;

/// One pushed-down partial aggregate.
///
/// `AVG` is decomposed into `SUM` + `COUNT` partials at extraction time, so
/// `func` here is always decomposable (Count/Sum/Min/Max).
#[derive(Debug, Clone, PartialEq)]
pub struct PushedAggregate {
    /// The partial function executed in storage.
    pub func: AggFunc,
    /// Argument (None = `COUNT(*)`), in scan-output coordinates.
    pub arg: Option<ScalarExpr>,
    /// Name of the partial column the scan will emit.
    pub output_name: String,
}

/// Named group-key expressions of a pushed aggregation.
pub type GroupKeys = Vec<(ScalarExpr, String)>;

/// The operators captured by the Operator Extractor, in execution order.
///
/// All expressions are in the coordinates of the (column-pruned) scan
/// output — the same coordinates the generated Substrait `ReadRel`
/// emits.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct PushedOps {
    /// `WHERE` predicate.
    pub filter: Option<ScalarExpr>,
    /// Expression projection (replaces columns when present).
    pub project: Option<Vec<(ScalarExpr, String)>>,
    /// Pushed aggregation: group keys + measures (partial form unless
    /// [`PushedOps::aggregate_is_full`]).
    pub aggregate: Option<(GroupKeys, Vec<PushedAggregate>)>,
    /// True when the aggregation is pushed in FULL form (per-object
    /// complete aggregation; requires object-disjoint group keys).
    pub aggregate_is_full: bool,
    /// Bare sort (pushed only on already-reduced data).
    pub sort: Option<Vec<SortKey>>,
    /// Top-N: sort keys + limit.
    pub topn: Option<(Vec<SortKey>, u64)>,
}

impl PushedOps {
    /// Names of the pushed operator classes, in execution order (drives
    /// the monitoring output and plan display).
    pub fn pushed_names(&self) -> Vec<&'static str> {
        let mut v = Vec::new();
        if self.filter.is_some() {
            v.push("Filter");
        }
        if self.project.is_some() {
            v.push("Project");
        }
        if self.aggregate.is_some() {
            v.push(if self.aggregate_is_full {
                "Aggregation(full)"
            } else {
                "Aggregation(partial)"
            });
        }
        if self.sort.is_some() {
            v.push("Sort");
        }
        if self.topn.is_some() {
            v.push("TopN");
        }
        v
    }

    /// True when nothing is pushed beyond column projection.
    pub fn is_empty(&self) -> bool {
        self.filter.is_none()
            && self.project.is_none()
            && self.aggregate.is_none()
            && self.sort.is_none()
            && self.topn.is_none()
    }
}

/// The connector-private scan handle.
#[derive(Debug, Clone)]
pub struct OcsTableHandle {
    /// Catalog table name.
    pub table: String,
    /// Full stored schema of the table.
    pub base_schema: SchemaRef,
    /// Column pruning: file-column ordinals the `ReadRel` emits.
    pub projection: Vec<usize>,
    /// The captured operator chain.
    pub pushed: PushedOps,
    /// Schema the modified scan emits back to the engine.
    pub output_schema: SchemaRef,
}

impl TableHandle for OcsTableHandle {
    fn as_any(&self) -> &dyn Any {
        self
    }

    fn describe(&self) -> String {
        let pushed = self.pushed.pushed_names();
        if pushed.is_empty() {
            format!("ocs columns={:?}", self.projection)
        } else {
            format!(
                "ocs columns={:?} pushed=[{}]",
                self.projection,
                pushed.join(", ")
            )
        }
    }

    fn pushes_operators(&self) -> bool {
        !self.pushed.is_empty()
    }
}

/// Helper: wrap a handle for a scan node.
pub fn handle_ref(h: OcsTableHandle) -> Arc<dyn TableHandle> {
    Arc::new(h)
}

#[cfg(test)]
mod tests {
    use super::*;
    use columnar::{DataType, Field, Schema};
    use std::sync::Arc;

    #[test]
    fn describe_lists_pushed_ops() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        let mut h = OcsTableHandle {
            table: "t".into(),
            base_schema: schema.clone(),
            projection: vec![0],
            pushed: PushedOps::default(),
            output_schema: schema,
        };
        assert!(h.pushed.is_empty());
        assert!(!h.pushes_operators());
        assert_eq!(h.describe(), "ocs columns=[0]");
        h.pushed.filter = Some(ScalarExpr::lit(columnar::Scalar::Boolean(true)));
        h.pushed.topn = Some((vec![], 10));
        assert_eq!(h.pushed.pushed_names(), vec!["Filter", "TopN"]);
        assert!(h.pushes_operators());
        assert!(h.describe().contains("pushed=[Filter, TopN]"));
        // Downcast through the SPI trait works.
        let dynh: Arc<dyn TableHandle> = Arc::new(h);
        assert!(dynh.as_any().downcast_ref::<OcsTableHandle>().is_some());
    }
}
