//! The OCS PageSourceProvider (paper §3.4 steps 3–5): reconstructs the
//! pushed-down operators from the table handle, translates them to
//! Substrait IR, dispatches to OCS over the framed streaming RPC
//! boundary, and hands the engine a lazy batch stream so split workers
//! consume results frame-at-a-time while storage is still producing.

use std::sync::Arc;

use columnar::{RecordBatch, Schema};
use dsq::error::{EResult, EngineError};
use dsq::spi::{PageMetrics, PageSourceProvider, PageSourceResult, PageStream, Split};
use netsim::{ClusterSpec, CostParams, Work};
use ocs::{BatchStream, OcsClient, OcsError};

use crate::handle::OcsTableHandle;
use crate::translate::to_substrait;

/// Page sources backed by an OCS deployment.
pub struct OcsPageSourceProvider {
    client: OcsClient,
    cluster: ClusterSpec,
    cost: CostParams,
}

impl OcsPageSourceProvider {
    /// Bind to an OCS client.
    pub fn new(client: OcsClient, cluster: ClusterSpec, cost: CostParams) -> Self {
        OcsPageSourceProvider {
            client,
            cluster,
            cost,
        }
    }
}

fn map_ocs_err(e: OcsError) -> EngineError {
    // A plan rejection comes back as a structured diagnostic — log the
    // offending node's path and code, not just a flattened message.
    match e.diagnostic() {
        Some(d) => EngineError::Connector(format!(
            "ocs rejected the shipped plan at {} [{}]: {}",
            d.path, d.code, d.message
        )),
        None => EngineError::Connector(format!("ocs rpc: {e}")),
    }
}

/// A [`PageStream`] over the OCS streaming boundary: each `next_batch`
/// pulls one framed batch through the client's bounded in-flight window;
/// `finish` converts the stream trailer into engine-side accounting.
struct OcsPageStream {
    stream: BatchStream,
    cluster: ClusterSpec,
    cost: CostParams,
}

impl PageStream for OcsPageStream {
    fn next_batch(&mut self) -> EResult<Option<RecordBatch>> {
        self.stream.next_batch().map_err(map_ocs_err)
    }

    fn finish(self: Box<Self>) -> EResult<PageMetrics> {
        let this = *self;
        let summary = this.stream.finish().map_err(map_ocs_err)?;
        // Engine-side deserialization of the framed Arrow payload.
        let compute_deser_s = this.cluster.compute.core_seconds_for(Work::decode(
            summary.response_bytes as f64 * this.cost.byte_deser,
        ));
        Ok(PageMetrics {
            stats: summary.stats,
            network_bytes: summary.request_bytes + summary.response_bytes,
            network_requests: 1,
            compute_deser_s,
            frames: summary.timings,
            peak_buffered_bytes: summary.peak_buffered_bytes,
        })
    }
}

impl PageSourceProvider for OcsPageSourceProvider {
    fn create(&self, split: &Split) -> EResult<PageSourceResult> {
        let handle = split
            .handle
            .as_any()
            .downcast_ref::<OcsTableHandle>()
            .cloned()
            .or_else(|| {
                // A scan the connector optimizer never rewrote (e.g. the
                // policy declined everything): treat the default handle as
                // a plain projected read through OCS, built against the
                // split's base schema.
                split
                    .handle
                    .as_any()
                    .downcast_ref::<dsq::spi::DefaultTableHandle>()
                    .map(|h| {
                        let projection = h
                            .projection
                            .clone()
                            .unwrap_or_else(|| (0..split.schema.fields().len()).collect());
                        let fields = projection
                            .iter()
                            .filter_map(|&i| split.schema.fields().get(i).cloned())
                            .collect();
                        OcsTableHandle {
                            table: split.table.clone(),
                            base_schema: split.schema.clone(),
                            projection,
                            pushed: Default::default(),
                            output_schema: Arc::new(Schema::new(fields)),
                        }
                    })
            })
            .ok_or_else(|| {
                EngineError::Connector(format!(
                    "ocs connector received an unknown handle: {}",
                    split.handle.describe()
                ))
            })?;

        if handle.base_schema.is_empty() {
            return Err(EngineError::Connector(
                "ocs scan over a table with an empty schema".into(),
            ));
        }

        // 1. Reconstruct + translate the pushdown plan (Table 3's
        //    "Substrait IR Generation", billed to the coordinator). Debug
        //    builds and `verify-plans` builds run the planck pushdown
        //    verifier on the generated IR before it ships.
        let (plan, ir_nodes) = if cfg!(any(debug_assertions, feature = "verify-plans")) {
            crate::translate::to_substrait_verified(&handle).map_err(|d| {
                EngineError::Connector(format!("refusing to ship illegal plan: {d}"))
            })?
        } else {
            to_substrait(&handle)
        };
        let substrait_gen_s = self
            .cluster
            .compute
            .core_seconds_for(Work::vector(ir_nodes as f64 * self.cost.substrait_node_gen));

        // 2. Open the streaming request. Storage executes eagerly but the
        //    response crosses the boundary lazily: at most the client's
        //    frame window is encoded and buffered at any time.
        let stream = self
            .client
            .execute_stream(&plan, &split.bucket, &split.key)
            .map_err(map_ocs_err)?;

        Ok(PageSourceResult {
            stream: Box::new(OcsPageStream {
                stream,
                cluster: self.cluster.clone(),
                cost: self.cost.clone(),
            }),
            substrait_gen_s,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dsq::spi::DefaultTableHandle;
    use objstore::ObjectStore;
    use ocs::{Ocs, OcsConfig};

    fn deployment() -> (OcsClient, columnar::SchemaRef) {
        use columnar::{Array, DataType, Field};
        let store = Arc::new(ObjectStore::new());
        store.create_bucket("lake").unwrap();
        let schema = Arc::new(Schema::new(vec![
            Field::new("x", DataType::Int64, false),
            Field::new("y", DataType::Float64, false),
        ]));
        let batch = RecordBatch::try_new(
            schema.clone(),
            vec![
                Arc::new(Array::from_i64((0..100).collect())),
                Arc::new(Array::from_f64((0..100).map(|v| v as f64).collect())),
            ],
        )
        .unwrap();
        let bytes = parq::writer::write_file(schema.clone(), &[batch], Default::default()).unwrap();
        store.put_object("lake", "t/0", bytes.into()).unwrap();
        let ocs = Ocs::new(store, OcsConfig::paper_testbed());
        (ocs.client(), schema)
    }

    fn split(schema: columnar::SchemaRef, handle: Arc<dyn dsq::spi::TableHandle>) -> Split {
        Split {
            connector: "ocs".into(),
            table: "t".into(),
            bucket: "lake".into(),
            key: "t/0".into(),
            schema,
            handle,
            seq: 0,
        }
    }

    /// Regression: a never-rewritten `DefaultTableHandle` must serve a
    /// plain read from the split's base schema instead of fabricating an
    /// empty-schema handle that the provider then rejects.
    #[test]
    fn default_handle_serves_plain_read() {
        let (client, schema) = deployment();
        let provider =
            OcsPageSourceProvider::new(client, ClusterSpec::paper_testbed(), CostParams::default());
        let page = provider
            .create(&split(
                schema.clone(),
                Arc::new(DefaultTableHandle::all_columns()),
            ))
            .expect("default handle must fall back to a plain read");
        let mut stream = page.stream;
        let mut rows = 0usize;
        let mut cols = 0usize;
        while let Some(b) = stream.next_batch().unwrap() {
            rows += b.num_rows();
            cols = b.num_columns();
        }
        assert_eq!(rows, 100);
        assert_eq!(cols, 2);
        let metrics = stream.finish().unwrap();
        assert_eq!(metrics.stats.rows_returned, 100);
        assert!(metrics.frames.len() >= 3, "schema + batches + trailer");
    }

    #[test]
    fn default_handle_respects_projection() {
        let (client, schema) = deployment();
        let provider =
            OcsPageSourceProvider::new(client, ClusterSpec::paper_testbed(), CostParams::default());
        let page = provider
            .create(&split(
                schema,
                Arc::new(DefaultTableHandle::projected(vec![1])),
            ))
            .unwrap();
        let mut stream = page.stream;
        let mut rows = 0usize;
        while let Some(b) = stream.next_batch().unwrap() {
            rows += b.num_rows();
            assert_eq!(b.num_columns(), 1);
            assert_eq!(b.schema().fields()[0].name, "y");
        }
        assert_eq!(rows, 100);
    }
}
