//! The OCS PageSourceProvider (paper §3.4 steps 3–5): reconstructs the
//! pushed-down operators from the table handle, translates them to
//! Substrait IR, dispatches to OCS over the byte-counted RPC boundary, and
//! deserializes the Arrow results into engine pages.

use dsq::error::{EResult, EngineError};
use dsq::spi::{PageSourceProvider, PageSourceResult, Split};
use netsim::{ClusterSpec, CostParams, Work};
use ocs::OcsClient;

use crate::handle::OcsTableHandle;
use crate::translate::to_substrait;

/// Page sources backed by an OCS deployment.
pub struct OcsPageSourceProvider {
    client: OcsClient,
    cluster: ClusterSpec,
    cost: CostParams,
}

impl OcsPageSourceProvider {
    /// Bind to an OCS client.
    pub fn new(client: OcsClient, cluster: ClusterSpec, cost: CostParams) -> Self {
        OcsPageSourceProvider {
            client,
            cluster,
            cost,
        }
    }
}

impl PageSourceProvider for OcsPageSourceProvider {
    fn create(&self, split: &Split) -> EResult<PageSourceResult> {
        let handle = split
            .handle
            .as_any()
            .downcast_ref::<OcsTableHandle>()
            .cloned()
            .or_else(|| {
                // A scan the connector optimizer never rewrote (e.g. the
                // policy declined everything): treat the default handle as
                // a plain projected read through OCS.
                split
                    .handle
                    .as_any()
                    .downcast_ref::<dsq::spi::DefaultTableHandle>()
                    .map(|h| {
                        let projection = h.projection.clone().unwrap_or_default();
                        OcsTableHandle {
                            table: split.table.clone(),
                            base_schema: std::sync::Arc::new(columnar::Schema::empty()),
                            projection,
                            pushed: Default::default(),
                            output_schema: std::sync::Arc::new(columnar::Schema::empty()),
                        }
                    })
            })
            .ok_or_else(|| {
                EngineError::Connector(format!(
                    "ocs connector received an unknown handle: {}",
                    split.handle.describe()
                ))
            })?;

        if handle.base_schema.is_empty() {
            return Err(EngineError::Connector(
                "ocs scan without a rewritten handle; register the \
                 connector's plan optimizer"
                    .into(),
            ));
        }

        // 1. Reconstruct + translate the pushdown plan (Table 3's
        //    "Substrait IR Generation", billed to the coordinator). Debug
        //    builds and `verify-plans` builds run the planck pushdown
        //    verifier on the generated IR before it ships.
        let (plan, ir_nodes) = if cfg!(any(debug_assertions, feature = "verify-plans")) {
            crate::translate::to_substrait_verified(&handle).map_err(|d| {
                EngineError::Connector(format!("refusing to ship illegal plan: {d}"))
            })?
        } else {
            to_substrait(&handle)
        };
        let substrait_gen_s = self
            .cluster
            .compute
            .core_seconds_for(Work::vector(ir_nodes as f64 * self.cost.substrait_node_gen));

        // 2. Ship to OCS and execute in storage. A plan rejection comes
        //    back as a structured diagnostic — log the offending node's
        //    path and code, not just a flattened message.
        let resp = self
            .client
            .execute(&plan, &split.bucket, &split.key)
            .map_err(|e| match e.diagnostic() {
                Some(d) => EngineError::Connector(format!(
                    "ocs rejected the shipped plan at {} [{}]: {}",
                    d.path, d.code, d.message
                )),
                None => EngineError::Connector(format!("ocs rpc: {e}")),
            })?;

        // 3. Engine-side deserialization of the Arrow payload.
        let compute_deser_s = self.cluster.compute.core_seconds_for(Work::decode(
            resp.response_bytes as f64 * self.cost.byte_deser,
        ));

        Ok(PageSourceResult {
            batches: resp.batches,
            storage_cpu_s: resp.storage_cpu_s,
            storage_decompress_s: resp.storage_decompress_s,
            disk_bytes: resp.disk_bytes,
            network_bytes: resp.request_bytes + resp.response_bytes,
            network_requests: 1,
            frontend_cpu_s: resp.frontend_cpu_s,
            substrait_gen_s,
            compute_deser_s,
            row_groups_skipped: resp.row_groups_skipped,
            decoded_bytes_avoided: resp.decoded_bytes_avoided,
        })
    }
}
