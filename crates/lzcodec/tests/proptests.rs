//! Property-based round-trip tests: every codec must be lossless on
//! arbitrary byte strings, including highly structured and adversarial
//! inputs.

use lzcodec::{compress, decompress, CodecKind};
use proptest::prelude::*;

fn roundtrip(kind: CodecKind, data: &[u8]) {
    let packed = compress(kind, data);
    let back = decompress(kind, &packed).expect("decompress own output");
    assert_eq!(back.as_slice(), data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snap_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        roundtrip(CodecKind::Snap, &data);
    }

    #[test]
    fn gz_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        roundtrip(CodecKind::Gz, &data);
    }

    #[test]
    fn zst_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        roundtrip(CodecKind::Zst, &data);
    }

    #[test]
    fn roundtrip_structured(
        seed in any::<u8>(),
        period in 1usize..300,
        reps in 1usize..200,
    ) {
        // Periodic data with every period, stressing match distances.
        let data: Vec<u8> = (0..period * reps)
            .map(|i| seed.wrapping_add((i % period) as u8))
            .collect();
        for kind in CodecKind::ALL {
            roundtrip(kind, &data);
        }
    }

    #[test]
    fn roundtrip_low_entropy(
        byte in any::<u8>(),
        len in 0usize..50_000,
    ) {
        let data = vec![byte; len];
        for kind in CodecKind::ALL {
            roundtrip(kind, &data);
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(
        kind_tag in 1u8..4,
        data in proptest::collection::vec(any::<u8>(), 0..2_000),
    ) {
        let kind = CodecKind::from_tag(kind_tag).unwrap();
        // Must return Ok or Err, never panic or hang.
        let _ = decompress(kind, &data);
    }

    #[test]
    fn compressed_of_compressed_still_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..4_000),
    ) {
        // Double compression is a classic corruption amplifier.
        let once = compress(CodecKind::Zst, &data);
        let twice = compress(CodecKind::Gz, &once);
        let back1 = decompress(CodecKind::Gz, &twice).unwrap();
        prop_assert_eq!(&back1, &once);
        let back0 = decompress(CodecKind::Zst, &back1).unwrap();
        prop_assert_eq!(back0, data);
    }
}
