//! Property-based round-trip tests: every codec must be lossless on
//! arbitrary byte strings, including highly structured and adversarial
//! inputs.

use lzcodec::lz77::{detokenize, tokenize, Token};
use lzcodec::{compress, decompress, CodecKind};
use proptest::prelude::*;

/// Reference decoder: the straightforward bytewise back-reference copy
/// the chunked `detokenize` implementation must be equivalent to.
fn detokenize_bytewise(tokens: &[Token]) -> Vec<u8> {
    let mut out: Vec<u8> = Vec::new();
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let start = out.len() - dist as usize;
                for k in 0..len as usize {
                    let b = out[start + k];
                    out.push(b);
                }
            }
        }
    }
    out
}

/// A token stream that is valid by construction: each match distance is
/// drawn within the output produced so far. `(lit, len, dist)` triples
/// are mapped onto the running output length, so overlapping (dist < len)
/// and non-overlapping (dist >= len) matches both occur.
fn valid_tokens(spec: &[(u8, u16, u16)]) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(spec.len() * 2);
    let mut produced: usize = 0;
    for &(lit, len, dist) in spec {
        tokens.push(Token::Literal(lit));
        produced += 1;
        let len = 1 + (len % 300) as u32;
        let dist = 1 + dist as usize % produced;
        tokens.push(Token::Match {
            len,
            dist: dist as u32,
        });
        produced += len as usize;
    }
    tokens
}

fn roundtrip(kind: CodecKind, data: &[u8]) {
    let packed = compress(kind, data);
    let back = decompress(kind, &packed).expect("decompress own output");
    assert_eq!(back.as_slice(), data);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn snap_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..20_000)) {
        roundtrip(CodecKind::Snap, &data);
    }

    #[test]
    fn gz_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        roundtrip(CodecKind::Gz, &data);
    }

    #[test]
    fn zst_roundtrip_arbitrary(data in proptest::collection::vec(any::<u8>(), 0..8_000)) {
        roundtrip(CodecKind::Zst, &data);
    }

    #[test]
    fn roundtrip_structured(
        seed in any::<u8>(),
        period in 1usize..300,
        reps in 1usize..200,
    ) {
        // Periodic data with every period, stressing match distances.
        let data: Vec<u8> = (0..period * reps)
            .map(|i| seed.wrapping_add((i % period) as u8))
            .collect();
        for kind in CodecKind::ALL {
            roundtrip(kind, &data);
        }
    }

    #[test]
    fn roundtrip_low_entropy(
        byte in any::<u8>(),
        len in 0usize..50_000,
    ) {
        let data = vec![byte; len];
        for kind in CodecKind::ALL {
            roundtrip(kind, &data);
        }
    }

    #[test]
    fn decompress_never_panics_on_garbage(
        kind_tag in 1u8..4,
        data in proptest::collection::vec(any::<u8>(), 0..2_000),
    ) {
        let kind = CodecKind::from_tag(kind_tag).unwrap();
        // Must return Ok or Err, never panic or hang.
        let _ = decompress(kind, &data);
    }

    #[test]
    fn detokenize_chunked_equals_bytewise_on_random_tokens(
        spec in proptest::collection::vec(
            (any::<u8>(), any::<u16>(), any::<u16>()),
            0..200,
        ),
    ) {
        let tokens = valid_tokens(&spec);
        let expected = detokenize_bytewise(&tokens);
        let got = detokenize(&tokens, expected.len()).expect("valid tokens decode");
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn detokenize_chunked_equals_bytewise_on_real_token_streams(
        data in proptest::collection::vec(any::<u8>(), 0..8_000),
        preset in 0usize..3,
    ) {
        let params = [
            lzcodec::lz77::presets::FAST,
            lzcodec::lz77::presets::BALANCED,
            lzcodec::lz77::presets::STRONG,
        ][preset];
        let tokens = tokenize(&data, params);
        let expected = detokenize_bytewise(&tokens);
        prop_assert_eq!(&expected, &data, "reference decoder must invert tokenize");
        let got = detokenize(&tokens, data.len()).expect("tokenizer output decodes");
        prop_assert_eq!(got, data);
    }

    #[test]
    fn compressed_of_compressed_still_roundtrips(
        data in proptest::collection::vec(any::<u8>(), 0..4_000),
    ) {
        // Double compression is a classic corruption amplifier.
        let once = compress(CodecKind::Zst, &data);
        let twice = compress(CodecKind::Gz, &once);
        let back1 = decompress(CodecKind::Gz, &twice).unwrap();
        prop_assert_eq!(&back1, &once);
        let back0 = decompress(CodecKind::Zst, &back1).unwrap();
        prop_assert_eq!(back0, data);
    }
}
