//! The Huffman-entropy-coded codecs (`Gz` and `Zst` flavors).
//!
//! Token stream → three channels:
//!
//! 1. a Huffman-coded symbol stream over a 256+32+32 alphabet
//!    (literal bytes, length buckets, distance buckets),
//! 2. raw extra bits for lengths/distances interleaved in the same
//!    bit stream (DEFLATE-style),
//! 3. an end-of-block symbol.
//!
//! Frame: `[varint raw_len][huffman table][bit stream]`.

use crate::bitio::{BitReader, BitWriter};
use crate::huffman::{CodeTable, Decoder};
use crate::lz77::{self, LzParams, Token, MIN_MATCH};
use crate::{CodecError, Result};

pub(crate) const GZ_PARAMS: LzParams = lz77::presets::BALANCED;
pub(crate) const ZST_PARAMS: LzParams = lz77::presets::STRONG;

// Alphabet layout.
const LIT_BASE: usize = 0; // 0..=255 literal bytes
const EOB: usize = 256; // end of block
const LEN_BASE: usize = 257; // 257..=288: 32 length buckets
const DIST_BASE: usize = 289; // 289..=320: 32 distance buckets
const ALPHABET: usize = 321;

/// Bucketize `v` (>= 1) as (bucket, extra_bits, extra_value): bucket k covers
/// [2^k, 2^(k+1)) with k extra bits.
#[inline]
fn bucketize(v: u32) -> (u32, u8, u32) {
    debug_assert!(v >= 1);
    let k = 31 - v.leading_zeros();
    (k, k as u8, v - (1 << k))
}

#[inline]
fn unbucketize(bucket: u32, extra: u32) -> u32 {
    (1u32 << bucket) + extra
}

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = data
            .get(*pos)
            .ok_or_else(|| CodecError("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError("varint overflow".into()));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compress `data` with `params` for the LZ stage.
pub(crate) fn compress(data: &[u8], params: LzParams) -> Vec<u8> {
    let tokens = lz77::tokenize(data, params);

    // Pass 1: frequencies.
    let mut freqs = vec![0u64; ALPHABET];
    for t in &tokens {
        match *t {
            Token::Literal(b) => freqs[LIT_BASE + b as usize] += 1,
            Token::Match { len, dist } => {
                let (lb, _, _) = bucketize(len - MIN_MATCH as u32 + 1);
                let (db, _, _) = bucketize(dist);
                freqs[LEN_BASE + lb as usize] += 1;
                freqs[DIST_BASE + db as usize] += 1;
            }
        }
    }
    freqs[EOB] += 1;

    let table = CodeTable::from_freqs(&freqs).expect("freqs produce valid table");
    let mut out = Vec::with_capacity(data.len() / 3 + 64);
    put_varint(&mut out, data.len() as u64);
    table.write_table(&mut out);

    // Pass 2: encode.
    let mut w = BitWriter::new();
    for t in &tokens {
        match *t {
            Token::Literal(b) => {
                table
                    .encode(&mut w, LIT_BASE + b as usize)
                    .expect("literal coded");
            }
            Token::Match { len, dist } => {
                let (lb, lx, lv) = bucketize(len - MIN_MATCH as u32 + 1);
                table
                    .encode(&mut w, LEN_BASE + lb as usize)
                    .expect("length coded");
                if lx > 0 {
                    w.write_bits(lv, lx);
                }
                let (db, dx, dv) = bucketize(dist);
                table
                    .encode(&mut w, DIST_BASE + db as usize)
                    .expect("distance coded");
                if dx > 0 {
                    w.write_bits(dv, dx);
                }
            }
        }
    }
    table.encode(&mut w, EOB).expect("EOB coded");
    out.extend_from_slice(&w.finish());
    out
}

/// Decompress a frame produced by [`compress`] (either parameter set —
/// the frame is self-describing).
pub(crate) fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let expected = get_varint(data, &mut pos)? as usize;
    if expected > (1 << 34) {
        return Err(CodecError(format!("implausible frame length {expected}")));
    }
    let (table, consumed) = CodeTable::read_table(&data[pos..])?;
    pos += consumed;
    let dec = Decoder::new(&table);
    let mut r = BitReader::new(&data[pos..]);
    let mut out: Vec<u8> = Vec::with_capacity(expected);
    loop {
        let sym = dec.decode(&mut r)? as usize;
        if sym < 256 {
            out.push(sym as u8);
        } else if sym == EOB {
            break;
        } else if (LEN_BASE..DIST_BASE).contains(&sym) {
            let lb = (sym - LEN_BASE) as u32;
            let lx = lb as u8;
            let lv = if lx > 0 { r.read_bits(lx)? } else { 0 };
            let len = (unbucketize(lb, lv) - 1) as usize + MIN_MATCH;
            let dsym = dec.decode(&mut r)? as usize;
            if !(DIST_BASE..ALPHABET).contains(&dsym) {
                return Err(CodecError(format!("expected distance symbol, got {dsym}")));
            }
            let db = (dsym - DIST_BASE) as u32;
            let dx = db as u8;
            let dv = if dx > 0 { r.read_bits(dx)? } else { 0 };
            let dist = unbucketize(db, dv) as usize;
            if dist == 0 || dist > out.len() {
                return Err(CodecError(format!(
                    "distance {dist} out of range at {}",
                    out.len()
                )));
            }
            if out.len() + len > expected {
                return Err(CodecError("match overruns declared length".into()));
            }
            let start = out.len() - dist;
            for k in 0..len {
                let b = out[start + k];
                out.push(b);
            }
        } else {
            return Err(CodecError(format!("unexpected symbol {sym}")));
        }
        if out.len() > expected {
            return Err(CodecError("output overruns declared length".into()));
        }
    }
    if out.len() != expected {
        return Err(CodecError(format!(
            "decoded {} bytes, expected {expected}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucketize_roundtrip() {
        for v in [1u32, 2, 3, 4, 7, 8, 255, 256, 1 << 20, u32::MAX / 2] {
            let (b, x, e) = bucketize(v);
            assert_eq!(unbucketize(b, e), v);
            assert!(x < 32);
            assert!((b as usize) < 32);
        }
    }

    #[test]
    fn roundtrip_both_params() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"z".to_vec(),
            b"mississippi mississippi mississippi".to_vec(),
            vec![42u8; 50_000],
            (0..=255u8).cycle().take(10_000).collect(),
        ];
        for params in [GZ_PARAMS, ZST_PARAMS] {
            for data in &cases {
                let c = compress(data, params);
                assert_eq!(&decompress(&c).unwrap(), data);
            }
        }
    }

    #[test]
    fn entropy_beats_byte_aligned_on_skewed_text() {
        // Mostly-'a' text: Huffman gets literals below 8 bits.
        let data: Vec<u8> = (0..100_000u32)
            .map(|i| if i % 19 == 0 { b'b' } else { b'a' })
            .collect();
        let gz = compress(&data, GZ_PARAMS);
        let snap = crate::snap::compress(&data);
        assert!(
            gz.len() < snap.len(),
            "gz {} vs snap {}",
            gz.len(),
            snap.len()
        );
    }

    #[test]
    fn truncation_and_corruption_rejected() {
        let data = b"a man a plan a canal panama, a man a plan".to_vec();
        let c = compress(&data, GZ_PARAMS);
        assert!(decompress(&c[..c.len() - 1]).is_err() || decompress(&c[..c.len() - 1]).is_ok());
        // Deterministic checks:
        assert!(decompress(&[]).is_err());
        assert!(decompress(&c[..3]).is_err());
        let mut bad = c.clone();
        let last = bad.len() - 1;
        bad.truncate(last / 2);
        assert!(decompress(&bad).is_err());
    }
}
