//! The Snappy-like codec: greedy LZ with byte-aligned output, optimized for
//! speed over ratio.
//!
//! Frame layout: varint uncompressed length, then a command stream:
//!
//! * `cmd & 0x3 == 0`: literal run; `cmd >> 2` is `len - 1` when < 60, else
//!   60..63 selects 1..4 extra length bytes (Snappy's exact scheme).
//! * `cmd & 0x3 == 1`: copy; `len - MIN_MATCH` in bits 2..6 (< 60), distance
//!   as a 2-byte LE value when < 65536, otherwise the `== 2` form with a
//!   4-byte distance.

use crate::lz77::{self, presets, Token, MIN_MATCH};
use crate::{CodecError, Result};

fn put_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            break;
        }
        out.push(b | 0x80);
    }
}

fn get_varint(data: &[u8], pos: &mut usize) -> Result<u64> {
    let mut v = 0u64;
    let mut shift = 0u32;
    loop {
        let &b = data
            .get(*pos)
            .ok_or_else(|| CodecError("truncated varint".into()))?;
        *pos += 1;
        if shift >= 64 {
            return Err(CodecError("varint overflow".into()));
        }
        v |= ((b & 0x7f) as u64) << shift;
        if b & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Compress with the fast preset and byte-aligned framing.
pub fn compress(data: &[u8]) -> Vec<u8> {
    let tokens = lz77::tokenize(data, presets::FAST);
    let mut out = Vec::with_capacity(data.len() / 2 + 16);
    put_varint(&mut out, data.len() as u64);

    // Coalesce consecutive literals into runs.
    let mut i = 0usize;
    let mut src_pos = 0usize;
    while i < tokens.len() {
        match tokens[i] {
            Token::Literal(_) => {
                let mut run = 0usize;
                while i + run < tokens.len() && matches!(tokens[i + run], Token::Literal(_)) {
                    run += 1;
                }
                // Emit the run directly from the source slice.
                let mut remaining = run;
                let mut offset = src_pos;
                while remaining > 0 {
                    let chunk = remaining.min(1 << 20);
                    let n = chunk - 1;
                    if n < 60 {
                        out.push((n as u8) << 2);
                    } else {
                        let extra_bytes = (64 - (n as u64).leading_zeros()).div_ceil(8) as usize;
                        out.push(((59 + extra_bytes) as u8) << 2);
                        out.extend_from_slice(&(n as u32).to_le_bytes()[..extra_bytes]);
                    }
                    out.extend_from_slice(&data[offset..offset + chunk]);
                    offset += chunk;
                    remaining -= chunk;
                }
                src_pos += run;
                i += run;
            }
            Token::Match { len, dist } => {
                let mut remaining = len as usize;
                while remaining > 0 {
                    // Cap per-command length so the length field fits.
                    let chunk = remaining.min(MIN_MATCH + 59).max(MIN_MATCH.min(remaining));
                    let chunk = if remaining - chunk > 0 && remaining - chunk < MIN_MATCH {
                        remaining - MIN_MATCH // leave a tail >= MIN_MATCH
                    } else {
                        chunk
                    };
                    let l = chunk - MIN_MATCH;
                    if dist < 65_536 {
                        out.push(((l as u8) << 2) | 1);
                        out.extend_from_slice(&(dist as u16).to_le_bytes());
                    } else {
                        out.push(((l as u8) << 2) | 2);
                        out.extend_from_slice(&dist.to_le_bytes());
                    }
                    remaining -= chunk;
                }
                src_pos += len as usize;
                i += 1;
            }
        }
    }
    out
}

/// Decompress a [`compress`] frame.
pub fn decompress(data: &[u8]) -> Result<Vec<u8>> {
    let mut pos = 0usize;
    let expected = get_varint(data, &mut pos)? as usize;
    if expected > (1 << 34) {
        return Err(CodecError(format!("implausible frame length {expected}")));
    }
    let mut out: Vec<u8> = Vec::with_capacity(expected);
    while pos < data.len() {
        let cmd = data[pos];
        pos += 1;
        match cmd & 0x3 {
            0 => {
                let n = (cmd >> 2) as usize;
                let len = if n < 60 {
                    n + 1
                } else {
                    let extra = n - 59;
                    if pos + extra > data.len() {
                        return Err(CodecError("truncated literal length".into()));
                    }
                    let mut buf = [0u8; 4];
                    buf[..extra].copy_from_slice(&data[pos..pos + extra]);
                    pos += extra;
                    u32::from_le_bytes(buf) as usize + 1
                };
                if pos + len > data.len() {
                    return Err(CodecError("truncated literal run".into()));
                }
                out.extend_from_slice(&data[pos..pos + len]);
                pos += len;
            }
            tag @ (1 | 2) => {
                let len = ((cmd >> 2) as usize) + MIN_MATCH;
                let dist = if tag == 1 {
                    if pos + 2 > data.len() {
                        return Err(CodecError("truncated copy distance".into()));
                    }
                    let d = u16::from_le_bytes([data[pos], data[pos + 1]]) as usize;
                    pos += 2;
                    d
                } else {
                    if pos + 4 > data.len() {
                        return Err(CodecError("truncated copy distance".into()));
                    }
                    let d = u32::from_le_bytes(data[pos..pos + 4].try_into().expect("4 bytes"))
                        as usize;
                    pos += 4;
                    d
                };
                if dist == 0 || dist > out.len() {
                    return Err(CodecError(format!(
                        "copy distance {dist} out of range at output {}",
                        out.len()
                    )));
                }
                if out.len() + len > expected {
                    return Err(CodecError("copy overruns frame length".into()));
                }
                let start = out.len() - dist;
                for k in 0..len {
                    let b = out[start + k];
                    out.push(b);
                }
            }
            _ => return Err(CodecError(format!("bad command byte {cmd:#x}"))),
        }
        if out.len() > expected {
            return Err(CodecError("output overruns declared length".into()));
        }
    }
    if out.len() != expected {
        return Err(CodecError(format!(
            "decoded {} bytes, expected {expected}",
            out.len()
        )));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 1 << 20, u32::MAX as u64] {
            let mut out = Vec::new();
            put_varint(&mut out, v);
            let mut pos = 0;
            assert_eq!(get_varint(&out, &mut pos).unwrap(), v);
            assert_eq!(pos, out.len());
        }
    }

    #[test]
    fn roundtrip_basic() {
        for data in [
            b"".to_vec(),
            b"a".to_vec(),
            b"hello world hello world hello world".to_vec(),
            vec![0u8; 100_000],
            (0..=255u8).cycle().take(70_000).collect::<Vec<u8>>(),
        ] {
            let c = compress(&data);
            assert_eq!(decompress(&c).unwrap(), data);
        }
    }

    #[test]
    fn long_literal_runs() {
        // Incompressible run longer than 60 exercises the extended length
        // encoding.
        let mut x = 99u64;
        let data: Vec<u8> = (0..10_000)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect();
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn long_matches_chunked() {
        // A >63-byte match must split across commands.
        let mut data = b"0123456789abcdefABCDEF~!@#$%".to_vec();
        let head = data.clone();
        for _ in 0..20 {
            data.extend_from_slice(&head);
        }
        let c = compress(&data);
        assert_eq!(decompress(&c).unwrap(), data);
    }

    #[test]
    fn truncation_rejected() {
        let data = b"hello world hello world".to_vec();
        let c = compress(&data);
        for cut in [0, 1, c.len() / 2, c.len() - 1] {
            assert!(decompress(&c[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn fast_on_compressible_data() {
        let data: Vec<u8> = b"abcd".iter().cycle().take(1 << 20).copied().collect();
        let c = compress(&data);
        assert!(c.len() < data.len() / 10, "ratio too weak: {}", c.len());
    }
}
