//! `lzcodec` — from-scratch lossless compression codecs.
//!
//! Plays the role of Snappy / GZip / Zstd in the paper's Figure 6
//! (compression × pushdown study). Three LZ-family codecs are implemented
//! with the same *relative* speed/ratio ordering as the originals:
//!
//! | codec          | modeled after | design                                          |
//! |----------------|---------------|-------------------------------------------------|
//! | [`CodecKind::Snap`] | Snappy   | greedy LZ, 64 KiB window, byte-aligned output   |
//! | [`CodecKind::Gz`]   | GZip     | lazy LZSS, 32 KiB window, canonical Huffman     |
//! | [`CodecKind::Zst`]  | Zstd     | lazy LZ, 1 MiB window, deep chains + Huffman    |
//!
//! All three share the [`lz77`] match finder (with different parameters) and
//! the [`huffman`] entropy stage. Every codec is verified lossless by
//! round-trip property tests.
//!
//! Each codec also advertises *throughput hints*
//! ([`CodecSpec::compress_gbps`] / [`CodecSpec::decompress_gbps`]) used by
//! the `netsim` cost model to bill (de)compression work to the simulated
//! storage node, mirroring the real codecs' relative speeds.
//!
//! # Example
//!
//! ```
//! use lzcodec::{CodecKind, compress, decompress};
//!
//! let data: Vec<u8> = b"hello ".iter().cycle().take(4096).copied().collect();
//! let packed = compress(CodecKind::Zst, &data);
//! assert!(packed.len() < data.len());
//! assert_eq!(decompress(CodecKind::Zst, &packed).unwrap(), data);
//! ```

#![warn(missing_docs)]

pub mod bitio;
pub mod huffman;
pub mod lz77;

mod entropy_codec;
mod snap;

use std::fmt;

/// Errors from decompression of malformed input.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodecError(pub String);

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "codec error: {}", self.0)
    }
}

impl std::error::Error for CodecError {}

/// Result alias for codec operations.
pub type Result<T> = std::result::Result<T, CodecError>;

/// The available codecs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CodecKind {
    /// No compression (identity).
    #[default]
    None,
    /// Snappy-like: fastest, lowest ratio.
    Snap,
    /// GZip-like: slow compress, good ratio.
    Gz,
    /// Zstd-like: best ratio, fast decompress.
    Zst,
}

impl CodecKind {
    /// All codecs, in Figure-6 presentation order.
    pub const ALL: [CodecKind; 4] = [
        CodecKind::None,
        CodecKind::Snap,
        CodecKind::Gz,
        CodecKind::Zst,
    ];

    /// Stable one-byte tag for file formats.
    pub fn tag(&self) -> u8 {
        match self {
            CodecKind::None => 0,
            CodecKind::Snap => 1,
            CodecKind::Gz => 2,
            CodecKind::Zst => 3,
        }
    }

    /// Inverse of [`CodecKind::tag`].
    pub fn from_tag(tag: u8) -> Result<CodecKind> {
        Ok(match tag {
            0 => CodecKind::None,
            1 => CodecKind::Snap,
            2 => CodecKind::Gz,
            3 => CodecKind::Zst,
            other => return Err(CodecError(format!("unknown codec tag {other}"))),
        })
    }

    /// Human-readable name (as used in the paper's Figure 6 x-axis).
    pub fn name(&self) -> &'static str {
        match self {
            CodecKind::None => "None",
            CodecKind::Snap => "Snappy",
            CodecKind::Gz => "GZip",
            CodecKind::Zst => "Zstd",
        }
    }

    /// Parse a codec name (case-insensitive; accepts both our names and the
    /// originals').
    pub fn from_name(name: &str) -> Option<CodecKind> {
        Some(match name.to_ascii_lowercase().as_str() {
            "none" | "raw" | "uncompressed" => CodecKind::None,
            "snap" | "snappy" => CodecKind::Snap,
            "gz" | "gzip" => CodecKind::Gz,
            "zst" | "zstd" | "zstandard" => CodecKind::Zst,
            _ => return None,
        })
    }

    /// Throughput/behaviour metadata for the cost model.
    pub fn spec(&self) -> CodecSpec {
        // Relative numbers follow the real codecs' published single-core
        // throughputs (order of magnitude): Snappy ~0.4/1.8 GB/s,
        // gzip ~0.04/0.35 GB/s, zstd ~0.45/1.3 GB/s.
        match self {
            CodecKind::None => CodecSpec {
                kind: *self,
                compress_gbps: f64::INFINITY,
                decompress_gbps: f64::INFINITY,
            },
            CodecKind::Snap => CodecSpec {
                kind: *self,
                compress_gbps: 0.40,
                decompress_gbps: 1.80,
            },
            CodecKind::Gz => CodecSpec {
                kind: *self,
                compress_gbps: 0.04,
                decompress_gbps: 0.35,
            },
            CodecKind::Zst => CodecSpec {
                kind: *self,
                compress_gbps: 0.45,
                decompress_gbps: 1.30,
            },
        }
    }
}

impl fmt::Display for CodecKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Cost-model metadata for one codec.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CodecSpec {
    /// Which codec this describes.
    pub kind: CodecKind,
    /// Single-core compression throughput hint (GB/s of *input*).
    pub compress_gbps: f64,
    /// Single-core decompression throughput hint (GB/s of *output*).
    pub decompress_gbps: f64,
}

/// Compress `data` with `kind`. The output embeds the uncompressed length.
pub fn compress(kind: CodecKind, data: &[u8]) -> Vec<u8> {
    match kind {
        CodecKind::None => data.to_vec(),
        CodecKind::Snap => snap::compress(data),
        CodecKind::Gz => entropy_codec::compress(data, entropy_codec::GZ_PARAMS),
        CodecKind::Zst => entropy_codec::compress(data, entropy_codec::ZST_PARAMS),
    }
}

/// Decompress a buffer produced by [`compress`] with the same `kind`.
pub fn decompress(kind: CodecKind, data: &[u8]) -> Result<Vec<u8>> {
    match kind {
        CodecKind::None => Ok(data.to_vec()),
        CodecKind::Snap => snap::decompress(data),
        CodecKind::Gz => entropy_codec::decompress(data),
        CodecKind::Zst => entropy_codec::decompress(data),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn repetitive(n: usize) -> Vec<u8> {
        let phrase = b"the quick brown fox jumps over the lazy dog. ";
        phrase.iter().cycle().take(n).copied().collect()
    }

    fn pseudo_random(n: usize) -> Vec<u8> {
        // xorshift so the test is deterministic without rand in deps here.
        let mut x = 0x12345678u64;
        (0..n)
            .map(|_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                (x & 0xff) as u8
            })
            .collect()
    }

    #[test]
    fn all_codecs_roundtrip() {
        for kind in CodecKind::ALL {
            for data in [
                Vec::new(),
                vec![0u8],
                vec![7u8; 100_000],
                repetitive(50_000),
                pseudo_random(10_000),
            ] {
                let packed = compress(kind, &data);
                let back = decompress(kind, &packed).unwrap();
                assert_eq!(back, data, "{kind} len {}", data.len());
            }
        }
    }

    #[test]
    fn compression_ratio_ordering_on_text() {
        // On repetitive text, Zst/Gz must beat Snap must beat None —
        // the ordering Figure 6 depends on.
        let data = repetitive(200_000);
        let none = compress(CodecKind::None, &data).len();
        let snap = compress(CodecKind::Snap, &data).len();
        let gz = compress(CodecKind::Gz, &data).len();
        let zst = compress(CodecKind::Zst, &data).len();
        assert!(snap < none, "snap {snap} vs none {none}");
        assert!(gz < snap, "gz {gz} vs snap {snap}");
        assert!(zst <= gz + gz / 4, "zst {zst} should be near/below gz {gz}");
    }

    #[test]
    fn incompressible_data_does_not_explode() {
        let data = pseudo_random(64 * 1024);
        for kind in CodecKind::ALL {
            let packed = compress(kind, &data);
            assert!(
                packed.len() <= data.len() + data.len() / 8 + 64,
                "{kind}: {} vs {}",
                packed.len(),
                data.len()
            );
        }
    }

    #[test]
    fn tags_and_names_roundtrip() {
        for kind in CodecKind::ALL {
            assert_eq!(CodecKind::from_tag(kind.tag()).unwrap(), kind);
            assert_eq!(CodecKind::from_name(kind.name()).unwrap(), kind);
        }
        assert_eq!(CodecKind::from_name("zstd"), Some(CodecKind::Zst));
        assert_eq!(CodecKind::from_name("lz4"), None);
        assert!(CodecKind::from_tag(200).is_err());
    }

    #[test]
    fn specs_preserve_real_codec_ordering() {
        let snap = CodecKind::Snap.spec();
        let gz = CodecKind::Gz.spec();
        let zst = CodecKind::Zst.spec();
        assert!(snap.decompress_gbps > zst.decompress_gbps);
        assert!(zst.decompress_gbps > gz.decompress_gbps);
        assert!(gz.compress_gbps < snap.compress_gbps);
    }

    #[test]
    fn garbage_input_is_an_error_not_a_panic() {
        for kind in [CodecKind::Snap, CodecKind::Gz, CodecKind::Zst] {
            let garbage = pseudo_random(257);
            // Either a clean error or (extremely unlikely) a valid decode —
            // never a panic.
            let _ = decompress(kind, &garbage);
            let _ = decompress(kind, &[]);
            let _ = decompress(kind, &[0xff; 3]);
        }
    }
}
