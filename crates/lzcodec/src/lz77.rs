//! Shared LZ77 match finder with configurable aggressiveness.
//!
//! Produces a token stream of literals and `(length, distance)` matches.
//! The three codecs configure window size, chain depth and lazy matching to
//! hit their respective speed/ratio targets.

/// Minimum match length worth emitting.
pub const MIN_MATCH: usize = 4;
/// Maximum match length (fits the codecs' length encodings).
pub const MAX_MATCH: usize = 1 << 16;

/// One LZ token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Token {
    /// A literal byte.
    Literal(u8),
    /// A back-reference: copy `len` bytes from `dist` bytes back.
    Match {
        /// Copy length (≥ [`MIN_MATCH`]).
        len: u32,
        /// Distance back into the already-produced output (≥ 1).
        dist: u32,
    },
}

/// Match-finder parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LzParams {
    /// Window size in bytes (maximum distance).
    pub window: usize,
    /// How many hash-chain candidates to examine per position.
    pub max_chain: usize,
    /// Defer emitting a match by one byte if the next position matches
    /// longer (DEFLATE's "lazy matching").
    pub lazy: bool,
}

const HASH_BITS: usize = 16;
const HASH_SIZE: usize = 1 << HASH_BITS;

#[inline]
fn hash4(data: &[u8], i: usize) -> usize {
    let v = u32::from_le_bytes([data[i], data[i + 1], data[i + 2], data[i + 3]]);
    ((v.wrapping_mul(0x9E37_79B1)) >> (32 - HASH_BITS)) as usize
}

struct Matcher<'a> {
    data: &'a [u8],
    params: LzParams,
    head: Vec<u32>, // hash -> most recent position + 1 (0 = none)
    prev: Vec<u32>, // position -> previous position with same hash + 1
}

impl<'a> Matcher<'a> {
    fn new(data: &'a [u8], params: LzParams) -> Self {
        Matcher {
            data,
            params,
            head: vec![0; HASH_SIZE],
            prev: vec![0; data.len()],
        }
    }

    #[inline]
    fn insert(&mut self, i: usize) {
        if i + MIN_MATCH <= self.data.len() {
            let h = hash4(self.data, i);
            self.prev[i] = self.head[h];
            self.head[h] = (i + 1) as u32;
        }
    }

    /// Longest match at position `i`, if ≥ MIN_MATCH.
    fn best_match(&self, i: usize) -> Option<(usize, usize)> {
        if i + MIN_MATCH > self.data.len() {
            return None;
        }
        let data = self.data;
        let max_len = (data.len() - i).min(MAX_MATCH);
        let h = hash4(data, i);
        let mut cand = self.head[h];
        let mut best_len = MIN_MATCH - 1;
        let mut best_dist = 0usize;
        let mut chain = self.params.max_chain;
        while cand != 0 && chain > 0 {
            let j = (cand - 1) as usize;
            if j >= i {
                cand = self.prev[j];
                continue;
            }
            let dist = i - j;
            if dist > self.params.window {
                break; // chain only gets older
            }
            // Quick reject on the byte past the current best.
            if best_len < max_len && data[j + best_len] == data[i + best_len] {
                let mut l = 0;
                while l < max_len && data[j + l] == data[i + l] {
                    l += 1;
                }
                if l > best_len {
                    best_len = l;
                    best_dist = dist;
                    if l >= max_len {
                        break;
                    }
                }
            }
            cand = self.prev[j];
            chain -= 1;
        }
        (best_len >= MIN_MATCH).then_some((best_len, best_dist))
    }
}

/// Tokenize `data` with the given parameters.
pub fn tokenize(data: &[u8], params: LzParams) -> Vec<Token> {
    let mut tokens = Vec::with_capacity(data.len() / 4 + 16);
    let mut m = Matcher::new(data, params);
    let mut i = 0usize;
    while i < data.len() {
        let found = m.best_match(i);
        let use_match = match (found, params.lazy) {
            (Some((len, dist)), true) if i + 1 < data.len() => {
                // Peek: would deferring one byte yield a longer match?
                m.insert(i);
                let next = m.best_match(i + 1);
                match next {
                    Some((nlen, _)) if nlen > len + 1 => {
                        tokens.push(Token::Literal(data[i]));
                        i += 1;
                        continue;
                    }
                    _ => Some((len, dist)),
                }
            }
            (f, _) => {
                m.insert(i);
                f
            }
        };
        match use_match {
            Some((len, dist)) => {
                tokens.push(Token::Match {
                    len: len as u32,
                    dist: dist as u32,
                });
                // Index interior positions (sparsely for speed on long matches).
                let step = if len > 64 { 7 } else { 1 };
                let mut k = i + 1;
                while k < i + len {
                    m.insert(k);
                    k += step;
                }
                i += len;
            }
            None => {
                tokens.push(Token::Literal(data[i]));
                i += 1;
            }
        }
    }
    tokens
}

/// Reconstruct bytes from tokens (decoder side), with bounds checking.
pub fn detokenize(tokens: &[Token], expected_len: usize) -> crate::Result<Vec<u8>> {
    let mut out: Vec<u8> = Vec::with_capacity(expected_len);
    for t in tokens {
        match *t {
            Token::Literal(b) => out.push(b),
            Token::Match { len, dist } => {
                let dist = dist as usize;
                let len = len as usize;
                if dist == 0 || dist > out.len() {
                    return Err(crate::CodecError(format!(
                        "match distance {dist} out of range (output {})",
                        out.len()
                    )));
                }
                let start = out.len() - dist;
                if dist >= len {
                    // Non-overlapping: the whole source range already
                    // exists, so copy it in one chunk.
                    out.extend_from_within(start..start + len);
                } else {
                    // Overlapping (dist < len) is the RLE case: the copy
                    // reads bytes it itself produced. Grow the buffer
                    // first, then fill in dist-sized chunks — each chunk's
                    // source is fully materialized before it is read.
                    let mut written = 0;
                    out.resize(start + dist + len, 0);
                    while written < len {
                        let chunk = dist.min(len - written);
                        let src = start + written;
                        let dst = start + dist + written;
                        out.copy_within(src..src + chunk, dst);
                        written += chunk;
                    }
                }
            }
        }
    }
    if out.len() != expected_len {
        return Err(crate::CodecError(format!(
            "decoded {} bytes, expected {expected_len}",
            out.len()
        )));
    }
    Ok(out)
}

/// Parameter presets used by the codecs.
pub mod presets {
    use super::LzParams;

    /// Snappy-like: small window, shallow chains, greedy.
    pub const FAST: LzParams = LzParams {
        window: 64 * 1024,
        max_chain: 8,
        lazy: false,
    };
    /// GZip-like: 32 KiB window, deeper chains, lazy.
    pub const BALANCED: LzParams = LzParams {
        window: 32 * 1024,
        max_chain: 64,
        lazy: true,
    };
    /// Zstd-like: large window, deep chains, lazy.
    pub const STRONG: LzParams = LzParams {
        window: 1024 * 1024,
        max_chain: 128,
        lazy: true,
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(data: &[u8], params: LzParams) {
        let tokens = tokenize(data, params);
        let back = detokenize(&tokens, data.len()).unwrap();
        assert_eq!(back, data);
    }

    #[test]
    fn roundtrip_all_presets() {
        let cases: Vec<Vec<u8>> = vec![
            vec![],
            b"a".to_vec(),
            b"aaaa".to_vec(),
            b"aaaaaaaaaaaaaaaaaaaaaaaaaaaa".to_vec(),
            b"abcabcabcabcabcabc".to_vec(),
            (0..255u8).collect(),
            b"the quick brown fox jumps over the lazy dog, the quick brown fox".to_vec(),
        ];
        for params in [presets::FAST, presets::BALANCED, presets::STRONG] {
            for c in &cases {
                roundtrip(c, params);
            }
        }
    }

    #[test]
    fn rle_uses_overlapping_match() {
        let data = vec![7u8; 1000];
        let tokens = tokenize(&data, presets::FAST);
        // One literal + one (or few) overlapping matches, not 1000 literals.
        assert!(tokens.len() < 20, "got {} tokens", tokens.len());
        assert!(matches!(
            tokens[1],
            Token::Match { dist: 1, .. } | Token::Match { .. }
        ));
    }

    #[test]
    fn repeated_phrase_found() {
        let mut data = b"0123456789abcdef".to_vec();
        data.extend_from_slice(b"XYZ");
        data.extend_from_slice(b"0123456789abcdef");
        let tokens = tokenize(&data, presets::BALANCED);
        assert!(
            tokens
                .iter()
                .any(|t| matches!(t, Token::Match { len, .. } if *len >= 16)),
            "{tokens:?}"
        );
    }

    #[test]
    fn detokenize_rejects_bad_distance() {
        let tokens = vec![Token::Literal(1), Token::Match { len: 4, dist: 9 }];
        assert!(detokenize(&tokens, 5).is_err());
        let tokens = vec![Token::Match { len: 4, dist: 0 }];
        assert!(detokenize(&tokens, 4).is_err());
    }

    #[test]
    fn detokenize_rejects_wrong_length() {
        let tokens = vec![Token::Literal(1)];
        assert!(detokenize(&tokens, 2).is_err());
    }

    #[test]
    fn stronger_presets_compress_no_worse() {
        let phrase: Vec<u8> = b"lorem ipsum dolor sit amet consectetur adipiscing elit "
            .iter()
            .cycle()
            .take(100_000)
            .copied()
            .collect();
        let count = |p: LzParams| tokenize(&phrase, p).len();
        let fast = count(presets::FAST);
        let strong = count(presets::STRONG);
        assert!(strong <= fast, "strong {strong} vs fast {fast}");
    }
}
