//! Canonical Huffman coding over a byte-ish alphabet (up to 320 symbols so
//! LZ length/distance codes fit alongside literals).
//!
//! The encoder builds optimal code lengths (capped at [`MAX_BITS`]) from
//! symbol frequencies, transmits only the length table (RLE-compressed),
//! and both sides derive the same canonical codes — the classic DEFLATE
//! construction.

use crate::bitio::{BitReader, BitWriter};
use crate::{CodecError, Result};

/// Maximum code length; 15 matches DEFLATE and keeps the decode table small.
pub const MAX_BITS: u8 = 15;

/// A canonical Huffman code table.
#[derive(Debug, Clone)]
pub struct CodeTable {
    /// Code length per symbol (0 = symbol absent).
    pub lengths: Vec<u8>,
    /// Canonical code bits per symbol (LSB-first, reversed for writing).
    codes: Vec<u32>,
}

/// Build optimal (length-capped) code lengths for `freqs` using the
/// package-merge-free heuristic: standard Huffman then length capping with
/// Kraft repair. Exact optimality under a cap is not required for a codec —
/// validity (Kraft equality) is.
pub fn build_lengths(freqs: &[u64]) -> Vec<u8> {
    let n = freqs.len();
    let mut lengths = vec![0u8; n];
    let present: Vec<usize> = (0..n).filter(|&i| freqs[i] > 0).collect();
    match present.len() {
        0 => return lengths,
        1 => {
            lengths[present[0]] = 1;
            return lengths;
        }
        _ => {}
    }

    // Standard Huffman via a simple two-queue-ish heap.
    #[derive(PartialEq, Eq)]
    struct Node {
        weight: u64,
        id: usize,
    }
    impl Ord for Node {
        fn cmp(&self, other: &Self) -> std::cmp::Ordering {
            other.weight.cmp(&self.weight).then(other.id.cmp(&self.id))
        }
    }
    impl PartialOrd for Node {
        fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
            Some(self.cmp(other))
        }
    }

    let mut heap = std::collections::BinaryHeap::new();
    // parent[] over a forest: leaves are 0..n, internal nodes follow.
    let mut parent: Vec<usize> = vec![usize::MAX; n];
    for &i in &present {
        heap.push(Node {
            weight: freqs[i],
            id: i,
        });
    }
    let mut next_id = n;
    while heap.len() > 1 {
        let a = heap.pop().expect("len > 1");
        let b = heap.pop().expect("len > 1");
        parent.push(usize::MAX);
        if a.id >= parent.len() || b.id >= parent.len() {
            unreachable!("forest ids are dense");
        }
        parent[a.id] = next_id;
        parent[b.id] = next_id;
        heap.push(Node {
            weight: a.weight + b.weight,
            id: next_id,
        });
        next_id += 1;
    }

    // Depth of each leaf.
    for &i in &present {
        let mut d = 0u8;
        let mut cur = i;
        while parent[cur] != usize::MAX {
            cur = parent[cur];
            d += 1;
        }
        lengths[i] = d.max(1);
    }

    // Cap at MAX_BITS and repair the Kraft sum.
    let mut overflow = false;
    for &i in &present {
        if lengths[i] > MAX_BITS {
            lengths[i] = MAX_BITS;
            overflow = true;
        }
    }
    if overflow {
        // Kraft: sum 2^-len must be <= 1. Increase lengths of the most
        // frequent short codes until it holds, then tighten.
        let kraft = |lengths: &[u8]| -> i64 {
            let unit = 1i64 << MAX_BITS;
            present.iter().map(|&i| unit >> lengths[i]).sum::<i64>()
        };
        let unit = 1i64 << MAX_BITS;
        let mut order: Vec<usize> = present.clone();
        order.sort_by_key(|&i| freqs[i]); // least frequent first
        let mut k = kraft(&lengths);
        'repair: while k > unit {
            for &i in &order {
                if lengths[i] < MAX_BITS {
                    lengths[i] += 1;
                    k = kraft(&lengths);
                    if k <= unit {
                        break 'repair;
                    }
                }
            }
        }
    }
    lengths
}

impl CodeTable {
    /// Derive canonical codes from lengths.
    pub fn from_lengths(lengths: Vec<u8>) -> Result<CodeTable> {
        let mut bl_count = [0u32; (MAX_BITS + 1) as usize];
        for &l in &lengths {
            if l > MAX_BITS {
                return Err(CodecError(format!("code length {l} exceeds cap")));
            }
            bl_count[l as usize] += 1;
        }
        bl_count[0] = 0;
        let mut next_code = [0u32; (MAX_BITS + 2) as usize];
        let mut code = 0u32;
        for bits in 1..=MAX_BITS as usize {
            code = (code + bl_count[bits - 1]) << 1;
            next_code[bits] = code;
        }
        let mut codes = vec![0u32; lengths.len()];
        for (sym, &len) in lengths.iter().enumerate() {
            if len > 0 {
                codes[sym] = next_code[len as usize];
                next_code[len as usize] += 1;
                if next_code[len as usize] > (1u32 << len) {
                    return Err(CodecError("over-subscribed Huffman code".into()));
                }
            }
        }
        Ok(CodeTable { lengths, codes })
    }

    /// Build from frequencies.
    pub fn from_freqs(freqs: &[u64]) -> Result<CodeTable> {
        CodeTable::from_lengths(build_lengths(freqs))
    }

    /// Encode one symbol into `w`.
    #[inline]
    pub fn encode(&self, w: &mut BitWriter, sym: usize) -> Result<()> {
        let len = self.lengths[sym];
        if len == 0 {
            return Err(CodecError(format!("symbol {sym} has no code")));
        }
        // Canonical codes are MSB-first; our bit IO is LSB-first, so write
        // the reversed code.
        let code = self.codes[sym];
        let mut rev = 0u32;
        for b in 0..len {
            rev |= ((code >> b) & 1) << (len - 1 - b);
        }
        w.write_bits(rev, len);
        Ok(())
    }

    /// Serialize the length table: u16 symbol count then RLE of lengths
    /// (byte len, byte run).
    pub fn write_table(&self, out: &mut Vec<u8>) {
        out.extend_from_slice(&(self.lengths.len() as u16).to_le_bytes());
        let mut i = 0;
        while i < self.lengths.len() {
            let v = self.lengths[i];
            let mut run = 1usize;
            while i + run < self.lengths.len() && self.lengths[i + run] == v && run < 255 {
                run += 1;
            }
            out.push(v);
            out.push(run as u8);
            i += run;
        }
    }

    /// Deserialize a table written by [`CodeTable::write_table`]; returns
    /// the table and the number of bytes consumed.
    pub fn read_table(bytes: &[u8]) -> Result<(CodeTable, usize)> {
        if bytes.len() < 2 {
            return Err(CodecError("truncated Huffman table".into()));
        }
        let n = u16::from_le_bytes([bytes[0], bytes[1]]) as usize;
        let mut lengths = Vec::with_capacity(n);
        let mut pos = 2;
        while lengths.len() < n {
            if pos + 2 > bytes.len() {
                return Err(CodecError("truncated Huffman RLE".into()));
            }
            let v = bytes[pos];
            let run = bytes[pos + 1] as usize;
            if run == 0 || lengths.len() + run > n {
                return Err(CodecError("bad Huffman RLE run".into()));
            }
            lengths.extend(std::iter::repeat_n(v, run));
            pos += 2;
        }
        Ok((CodeTable::from_lengths(lengths)?, pos))
    }
}

/// A decoder for one canonical code table (linear per-length scan; fine for
/// the symbol rates we need).
#[derive(Debug)]
pub struct Decoder {
    /// first_code[len], first_symbol_index[len] over symbols sorted canonically.
    first_code: Vec<u32>,
    first_index: Vec<u32>,
    count: Vec<u32>,
    symbols: Vec<u16>,
}

impl Decoder {
    /// Build a decoder from a code table.
    pub fn new(table: &CodeTable) -> Decoder {
        let max = MAX_BITS as usize;
        let mut count = vec![0u32; max + 1];
        for &l in &table.lengths {
            if l > 0 {
                count[l as usize] += 1;
            }
        }
        // Symbols in canonical order: by (length, symbol).
        let mut symbols: Vec<u16> = (0..table.lengths.len() as u16)
            .filter(|&s| table.lengths[s as usize] > 0)
            .collect();
        symbols.sort_by_key(|&s| (table.lengths[s as usize], s));
        let mut first_code = vec![0u32; max + 2];
        let mut first_index = vec![0u32; max + 2];
        let mut code = 0u32;
        let mut index = 0u32;
        for len in 1..=max {
            code <<= 1;
            first_code[len] = code;
            first_index[len] = index;
            code += count[len];
            index += count[len];
        }
        Decoder {
            first_code,
            first_index,
            count,
            symbols,
        }
    }

    /// Decode one symbol from `r`.
    #[inline]
    pub fn decode(&self, r: &mut BitReader<'_>) -> Result<u16> {
        let mut code = 0u32;
        for len in 1..=MAX_BITS as usize {
            code = (code << 1) | r.read_bits(1)?;
            let c = self.count[len];
            if c > 0 {
                let first = self.first_code[len];
                if code < first + c && code >= first {
                    let idx = self.first_index[len] + (code - first);
                    return Ok(self.symbols[idx as usize]);
                }
            }
        }
        Err(CodecError("invalid Huffman code in stream".into()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_symbols(symbols: &[u16], alphabet: usize) {
        let mut freqs = vec![0u64; alphabet];
        for &s in symbols {
            freqs[s as usize] += 1;
        }
        let table = CodeTable::from_freqs(&freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in symbols {
            table.encode(&mut w, s as usize).unwrap();
        }
        let bytes = w.finish();
        let dec = Decoder::new(&table);
        let mut r = BitReader::new(&bytes);
        for &s in symbols {
            assert_eq!(dec.decode(&mut r).unwrap(), s);
        }
    }

    #[test]
    fn roundtrip_text() {
        let data = b"abracadabra abracadabra abracadabra!";
        let symbols: Vec<u16> = data.iter().map(|&b| b as u16).collect();
        roundtrip_symbols(&symbols, 256);
    }

    #[test]
    fn single_symbol_alphabet() {
        let symbols = vec![42u16; 100];
        roundtrip_symbols(&symbols, 256);
    }

    #[test]
    fn two_symbols() {
        let symbols: Vec<u16> = (0..50).map(|i| if i % 3 == 0 { 7 } else { 8 }).collect();
        roundtrip_symbols(&symbols, 16);
    }

    #[test]
    fn skewed_distribution_compresses() {
        // 95% one symbol -> far fewer bits than 8/symbol.
        let symbols: Vec<u16> = (0..10_000)
            .map(|i| if i % 20 == 0 { (i % 256) as u16 } else { 65 })
            .collect();
        let mut freqs = vec![0u64; 256];
        for &s in &symbols {
            freqs[s as usize] += 1;
        }
        let table = CodeTable::from_freqs(&freqs).unwrap();
        let mut w = BitWriter::new();
        for &s in &symbols {
            table.encode(&mut w, s as usize).unwrap();
        }
        assert!(w.byte_len() < 10_000 / 3, "got {}", w.byte_len());
        roundtrip_symbols(&symbols, 256);
    }

    #[test]
    fn extended_alphabet() {
        let symbols: Vec<u16> = (0..319).chain(std::iter::repeat_n(300, 50)).collect();
        roundtrip_symbols(&symbols, 320);
    }

    #[test]
    fn kraft_holds_under_cap() {
        // Fibonacci-ish frequencies force deep trees; the cap must repair.
        let mut freqs = vec![0u64; 64];
        let mut a = 1u64;
        let mut b = 1u64;
        for f in freqs.iter_mut() {
            *f = a;
            let c = a + b;
            a = b;
            b = c;
        }
        let lengths = build_lengths(&freqs);
        let unit = 1u64 << MAX_BITS;
        let sum: u64 = lengths.iter().filter(|&&l| l > 0).map(|&l| unit >> l).sum();
        assert!(sum <= unit, "Kraft violated: {sum} > {unit}");
        assert!(lengths.iter().all(|&l| l <= MAX_BITS));
        // And it still decodes.
        let table = CodeTable::from_lengths(lengths).unwrap();
        let dec = Decoder::new(&table);
        let mut w = BitWriter::new();
        table.encode(&mut w, 63).unwrap();
        table.encode(&mut w, 0).unwrap();
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(dec.decode(&mut r).unwrap(), 63);
        assert_eq!(dec.decode(&mut r).unwrap(), 0);
    }

    #[test]
    fn table_serialization_roundtrip() {
        let mut freqs = vec![0u64; 288];
        for (i, f) in freqs.iter_mut().enumerate() {
            *f = ((i * 7) % 13) as u64;
        }
        let table = CodeTable::from_freqs(&freqs).unwrap();
        let mut out = Vec::new();
        table.write_table(&mut out);
        let (back, consumed) = CodeTable::read_table(&out).unwrap();
        assert_eq!(consumed, out.len());
        assert_eq!(back.lengths, table.lengths);
        assert_eq!(back.codes, table.codes);
    }

    #[test]
    fn corrupt_tables_rejected() {
        assert!(CodeTable::read_table(&[]).is_err());
        assert!(CodeTable::read_table(&[5, 0]).is_err());
        // Over-subscribed: three symbols of length 1.
        assert!(CodeTable::from_lengths(vec![1, 1, 1]).is_err());
    }
}
