//! Bit-granular I/O used by the Huffman entropy stage.
//!
//! Bits are written LSB-first into bytes, matching DEFLATE's convention.

use crate::{CodecError, Result};

/// Writes bits LSB-first into a byte vector.
#[derive(Debug, Default)]
pub struct BitWriter {
    bytes: Vec<u8>,
    bitpos: u8,
}

impl BitWriter {
    /// New empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Write the low `count` bits of `bits` (count ≤ 32).
    #[inline]
    pub fn write_bits(&mut self, bits: u32, count: u8) {
        debug_assert!(count <= 32);
        let mut bits = bits as u64;
        let mut count = count;
        while count > 0 {
            if self.bitpos == 0 {
                self.bytes.push(0);
            }
            let space = 8 - self.bitpos;
            let take = count.min(space);
            let mask = (1u64 << take) - 1;
            let last = self.bytes.last_mut().expect("pushed above");
            *last |= ((bits & mask) as u8) << self.bitpos;
            bits >>= take;
            count -= take;
            self.bitpos = (self.bitpos + take) % 8;
        }
    }

    /// Finish and return the bytes (final partial byte zero-padded).
    pub fn finish(self) -> Vec<u8> {
        self.bytes
    }

    /// Number of whole bytes that would be produced now.
    pub fn byte_len(&self) -> usize {
        self.bytes.len()
    }
}

/// Reads bits LSB-first from a byte slice.
#[derive(Debug)]
pub struct BitReader<'a> {
    bytes: &'a [u8],
    pos: usize,
    bitpos: u8,
}

impl<'a> BitReader<'a> {
    /// Reader over `bytes`.
    pub fn new(bytes: &'a [u8]) -> Self {
        BitReader {
            bytes,
            pos: 0,
            bitpos: 0,
        }
    }

    /// Read `count` bits (count ≤ 32), LSB-first.
    #[inline]
    pub fn read_bits(&mut self, count: u8) -> Result<u32> {
        debug_assert!(count <= 32);
        let mut out: u64 = 0;
        let mut got: u8 = 0;
        while got < count {
            if self.pos >= self.bytes.len() {
                return Err(CodecError("bit stream exhausted".into()));
            }
            let avail = 8 - self.bitpos;
            let take = (count - got).min(avail);
            let chunk = (self.bytes[self.pos] >> self.bitpos) & (((1u16 << take) - 1) as u8);
            out |= (chunk as u64) << got;
            got += take;
            self.bitpos += take;
            if self.bitpos == 8 {
                self.bitpos = 0;
                self.pos += 1;
            }
        }
        Ok(out as u32)
    }

    /// Read a single bit.
    #[inline]
    pub fn read_bit(&mut self) -> Result<bool> {
        Ok(self.read_bits(1)? == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_various_widths() {
        let mut w = BitWriter::new();
        let values: Vec<(u32, u8)> = vec![
            (1, 1),
            (0, 1),
            (0b101, 3),
            (0xffff_ffff, 32),
            (0, 32),
            (0x1234, 16),
            (0b1, 1),
            (0x7f, 7),
        ];
        for &(v, c) in &values {
            w.write_bits(v, c);
        }
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        for &(v, c) in &values {
            assert_eq!(r.read_bits(c).unwrap(), v, "width {c}");
        }
    }

    #[test]
    fn exhaustion_is_error() {
        let mut w = BitWriter::new();
        w.write_bits(0b11, 2);
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(2).unwrap(), 0b11);
        // Padding bits of the final byte are readable as zeros...
        assert_eq!(r.read_bits(6).unwrap(), 0);
        // ...but past the final byte is an error.
        assert!(r.read_bits(1).is_err());
    }

    #[test]
    fn lsb_first_layout() {
        let mut w = BitWriter::new();
        w.write_bits(1, 1); // bit 0 of byte 0
        w.write_bits(1, 1); // bit 1
        let bytes = w.finish();
        assert_eq!(bytes, vec![0b0000_0011]);
    }

    #[test]
    fn crossing_byte_boundaries() {
        let mut w = BitWriter::new();
        w.write_bits(0b111111, 6);
        w.write_bits(0b10_1010_1010, 10); // spans into byte 2
        let bytes = w.finish();
        let mut r = BitReader::new(&bytes);
        assert_eq!(r.read_bits(6).unwrap(), 0b111111);
        assert_eq!(r.read_bits(10).unwrap(), 0b10_1010_1010);
    }
}
