//! `cache` — byte-budgeted LRU primitives for the near-storage caching
//! tier (no dependencies beyond the workspace's `sync` lock auditor).
//!
//! OCS nodes pay disk + decompress + decode + kernel work on every scan,
//! even when the same objects and the same pushed subplans run repeatedly
//! (the hot-set pattern of a production fleet; OASIS makes the same
//! observation for offloaded scientific queries). This crate supplies the
//! shared machinery for the two cache tiers the `ocs` crate layers on top:
//!
//! * [`ByteLru`] — a strict-budget LRU keyed by an arbitrary hashable key,
//!   charging each entry a caller-declared byte weight. Eviction order is
//!   deterministic (a monotonic recency tick, ties impossible), so cache
//!   behaviour is reproducible under the simulated clock.
//! * [`SharedByteLru`] — the `Arc<DebugMutex<_>>` wrapper storage nodes
//!   hold (audited for lock-order inversions in debug builds).
//! * [`fnv1a64`] — the stable FNV-1a fingerprint used for plan keys and
//!   affinity routing (same constants as the frontend's shard router).
//!
//! The crate is deliberately ignorant of *what* it caches: decoded arrays,
//! serialized result frames and their cost annotations are all just `V`.

#![warn(missing_docs)]

use std::collections::{BTreeMap, HashMap};
use std::hash::Hash;
use std::sync::Arc;

use sync::DebugMutex;

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Stable FNV-1a 64-bit hash of a byte string. Used for Substrait plan
/// fingerprints and the frontend's cache-affinity routing; must never
/// change across versions (fingerprints are compared across processes).
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h = FNV_OFFSET;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Continue an FNV-1a hash with more bytes (for multi-field keys without
/// intermediate allocation).
pub fn fnv1a64_extend(mut h: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

/// Monotonic counters describing a cache's lifetime behaviour. Snapshot
/// via [`ByteLru::stats`]; deltas between snapshots are per-request stats.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups that found a live entry.
    pub hits: u64,
    /// Lookups that missed.
    pub misses: u64,
    /// Entries admitted.
    pub insertions: u64,
    /// Entries evicted to make room under the byte budget.
    pub evictions: u64,
    /// Entries dropped by [`ByteLru::retain`] (writer invalidation).
    pub invalidations: u64,
    /// Inserts rejected because a single entry exceeded the whole budget
    /// (or the cache is disabled with a zero budget).
    pub rejected: u64,
}

#[derive(Debug)]
struct Slot<V> {
    value: V,
    bytes: u64,
    tick: u64,
}

/// A byte-budgeted LRU map. `get` refreshes recency; `insert` evicts
/// least-recently-used entries until the new entry fits. An entry larger
/// than the entire budget is rejected rather than flushing the cache.
///
/// Recency is a monotonically increasing tick per touch, indexed through a
/// `BTreeMap<tick, key>`, which makes eviction order total and
/// deterministic — no wall-clock, no hash-iteration order.
#[derive(Debug)]
pub struct ByteLru<K, V> {
    map: HashMap<K, Slot<V>>,
    recency: BTreeMap<u64, K>,
    tick: u64,
    budget: u64,
    bytes: u64,
    stats: CacheStats,
}

impl<K: Eq + Hash + Clone, V: Clone> ByteLru<K, V> {
    /// New cache holding at most `budget` bytes. A zero budget disables
    /// the cache (every insert is rejected, every get misses).
    pub fn new(budget: u64) -> Self {
        ByteLru {
            map: HashMap::new(),
            recency: BTreeMap::new(),
            tick: 0,
            budget,
            bytes: 0,
            stats: CacheStats::default(),
        }
    }

    /// Whether the cache can ever hold anything.
    pub fn is_enabled(&self) -> bool {
        self.budget > 0
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Bytes currently charged. Invariant: `bytes() <= budget()`.
    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    fn next_tick(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Look up `key`, refreshing its recency on a hit.
    pub fn get(&mut self, key: &K) -> Option<V> {
        let tick = self.next_tick();
        match self.map.get_mut(key) {
            Some(slot) => {
                self.recency.remove(&slot.tick);
                slot.tick = tick;
                self.recency.insert(tick, key.clone());
                self.stats.hits += 1;
                Some(slot.value.clone())
            }
            None => {
                self.stats.misses += 1;
                None
            }
        }
    }

    /// Byte weight of `key`'s entry without touching recency (miss/hit
    /// counters untouched too — this is an introspection helper).
    pub fn weight_of(&self, key: &K) -> Option<u64> {
        self.map.get(key).map(|s| s.bytes)
    }

    /// Insert `value` under `key`, charged `bytes`. Replaces any existing
    /// entry for `key`. Evicts LRU entries until the budget holds; returns
    /// `false` (and caches nothing) if `bytes` alone exceeds the budget.
    pub fn insert(&mut self, key: K, value: V, bytes: u64) -> bool {
        if bytes > self.budget {
            self.stats.rejected += 1;
            return false;
        }
        if let Some(old) = self.map.remove(&key) {
            self.recency.remove(&old.tick);
            self.bytes -= old.bytes;
        }
        while self.bytes + bytes > self.budget {
            if !self.evict_lru() {
                break;
            }
        }
        let tick = self.next_tick();
        self.recency.insert(tick, key.clone());
        self.map.insert(key, Slot { value, bytes, tick });
        self.bytes += bytes;
        self.stats.insertions += 1;
        true
    }

    fn evict_lru(&mut self) -> bool {
        let Some((_, key)) = self.recency.pop_first() else {
            return false;
        };
        if let Some(slot) = self.map.remove(&key) {
            self.bytes -= slot.bytes;
            self.stats.evictions += 1;
        }
        true
    }

    /// Drop every entry for which `keep` returns false (writer-side
    /// invalidation: "drop everything for object X").
    pub fn retain<F: FnMut(&K) -> bool>(&mut self, mut keep: F) {
        let dead: Vec<u64> = self
            .map
            .iter()
            .filter(|(k, _)| !keep(k))
            .map(|(_, slot)| slot.tick)
            .collect();
        for tick in dead {
            if let Some(key) = self.recency.remove(&tick) {
                if let Some(slot) = self.map.remove(&key) {
                    self.bytes -= slot.bytes;
                    self.stats.invalidations += 1;
                }
            }
        }
    }

    /// Drop everything (budget and counters survive).
    pub fn clear(&mut self) {
        let n = self.map.len() as u64;
        self.map.clear();
        self.recency.clear();
        self.bytes = 0;
        self.stats.invalidations += n;
    }
}

/// Thread-safe handle to a [`ByteLru`], cloned freely across storage-node
/// workers. All methods take `&self` and hold the internal mutex for one
/// call at most (never across user callbacks other than [`retain`]'s
/// predicate, which must therefore stay lock-free). The mutex is a
/// [`sync::DebugMutex`], so debug builds audit every acquisition for
/// lock-order inversions.
///
/// [`retain`]: SharedByteLru::retain
#[derive(Debug)]
pub struct SharedByteLru<K, V> {
    inner: Arc<DebugMutex<ByteLru<K, V>>>,
}

impl<K, V> Clone for SharedByteLru<K, V> {
    fn clone(&self) -> Self {
        SharedByteLru {
            inner: self.inner.clone(),
        }
    }
}

impl<K: Eq + Hash + Clone, V: Clone> SharedByteLru<K, V> {
    /// New shared cache with `budget` bytes (zero disables it), using the
    /// generic `cache.bytelru` lock class. Prefer [`SharedByteLru::named`]
    /// when a node holds several tiers, so the audit graph tells them
    /// apart.
    pub fn new(budget: u64) -> Self {
        Self::named(budget, "cache.bytelru")
    }

    /// New shared cache whose audit lock class is `class` (see
    /// `LOCK_ORDER.md`).
    pub fn named(budget: u64, class: &str) -> Self {
        SharedByteLru {
            inner: Arc::new(DebugMutex::named(class, ByteLru::new(budget))),
        }
    }

    /// Whether the cache can ever hold anything.
    pub fn is_enabled(&self) -> bool {
        self.inner.lock().is_enabled()
    }

    /// See [`ByteLru::get`].
    pub fn get(&self, key: &K) -> Option<V> {
        self.inner.lock().get(key)
    }

    /// See [`ByteLru::insert`].
    pub fn insert(&self, key: K, value: V, bytes: u64) -> bool {
        self.inner.lock().insert(key, value, bytes)
    }

    /// See [`ByteLru::retain`].
    pub fn retain<F: FnMut(&K) -> bool>(&self, keep: F) {
        self.inner.lock().retain(keep)
    }

    /// See [`ByteLru::clear`].
    pub fn clear(&self) {
        self.inner.lock().clear()
    }

    /// Counter snapshot.
    pub fn stats(&self) -> CacheStats {
        self.inner.lock().stats()
    }

    /// Bytes currently charged.
    pub fn bytes(&self) -> u64 {
        self.inner.lock().bytes()
    }

    /// The byte budget.
    pub fn budget(&self) -> u64 {
        self.inner.lock().budget()
    }

    /// Live entries.
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.inner.lock().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{Rng, SeedableRng};
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn fnv_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
        // Extend is associative with concatenation.
        assert_eq!(fnv1a64_extend(fnv1a64(b"foo"), b"bar"), fnv1a64(b"foobar"));
    }

    #[test]
    fn hit_miss_and_recency() {
        let mut c: ByteLru<u32, String> = ByteLru::new(100);
        assert!(c.get(&1).is_none());
        assert!(c.insert(1, "one".into(), 40));
        assert!(c.insert(2, "two".into(), 40));
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        // 2 is now LRU; inserting a 40-byte entry evicts it, not 1.
        assert!(c.insert(3, "three".into(), 40));
        assert!(c.get(&2).is_none());
        assert_eq!(c.get(&1).as_deref(), Some("one"));
        assert_eq!(c.get(&3).as_deref(), Some("three"));
        let s = c.stats();
        assert_eq!(s.hits, 3);
        assert_eq!(s.misses, 2);
        assert_eq!(s.evictions, 1);
        assert!(c.bytes() <= c.budget());
    }

    #[test]
    fn oversized_entries_are_rejected_not_flushed() {
        let mut c: ByteLru<u32, Vec<u8>> = ByteLru::new(10);
        assert!(c.insert(1, vec![0; 4], 4));
        assert!(!c.insert(2, vec![0; 64], 64));
        assert_eq!(c.len(), 1, "rejection must not disturb live entries");
        assert_eq!(c.stats().rejected, 1);
    }

    #[test]
    fn zero_budget_disables() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(0);
        assert!(!c.is_enabled());
        assert!(!c.insert(1, 1, 1));
        assert!(c.get(&1).is_none());
        assert_eq!(c.len(), 0);
    }

    #[test]
    fn replacing_a_key_recharges_bytes() {
        let mut c: ByteLru<u32, u32> = ByteLru::new(100);
        assert!(c.insert(1, 10, 60));
        assert!(c.insert(1, 11, 30));
        assert_eq!(c.bytes(), 30);
        assert_eq!(c.len(), 1);
        assert_eq!(c.get(&1), Some(11));
    }

    #[test]
    fn retain_invalidates_matching_keys() {
        let mut c: ByteLru<(u32, u32), u32> = ByteLru::new(1000);
        for obj in 0..4u32 {
            for rg in 0..4u32 {
                c.insert((obj, rg), obj * 10 + rg, 10);
            }
        }
        c.retain(|&(obj, _)| obj != 2);
        assert_eq!(c.len(), 12);
        assert_eq!(c.bytes(), 120);
        assert!(c.get(&(2, 0)).is_none());
        assert_eq!(c.get(&(1, 3)), Some(13));
        assert_eq!(c.stats().invalidations, 4);
    }

    #[test]
    fn shared_handle_clones_see_one_cache() {
        let a: SharedByteLru<u32, u32> = SharedByteLru::new(100);
        let b = a.clone();
        a.insert(7, 49, 8);
        assert_eq!(b.get(&7), Some(49));
        b.clear();
        assert!(a.is_empty());
    }

    /// The deterministic cache-churn stress test the CI job runs:
    /// randomized insert/evict/invalidate traffic under a tight byte
    /// budget, asserting (a) the budget is never exceeded, (b) a hit
    /// always returns exactly what a cold recomputation would, and
    /// (c) the byte ledger matches a shadow model.
    #[test]
    fn churn_stress_budget_and_coherence() {
        // The "ground truth" a cold path would recompute: value derived
        // purely from the key, plus a per-key version bumped on writes.
        fn recompute(key: (u32, u32), version: u64) -> u64 {
            (key.0 as u64) << 40 | (key.1 as u64) << 20 | version
        }

        let mut rng = ChaCha8Rng::seed_from_u64(0x0c5_cafe);
        let budget = 2048u64;
        let mut cache: ByteLru<(u32, u32, u64), u64> = ByteLru::new(budget);
        let mut versions: std::collections::HashMap<u32, u64> = Default::default();
        let mut shadow_bytes: std::collections::HashMap<(u32, u32, u64), u64> = Default::default();

        for step in 0..20_000u32 {
            let obj = rng.gen_range(0u32..4);
            let rg = rng.gen_range(0u32..8);
            let version = *versions.entry(obj).or_insert(0);
            let key = (obj, rg, version);
            let roll: f64 = rng.gen_range(0.0..1.0);
            if roll < 0.80 {
                // Read path: hit must equal cold recomputation.
                match cache.get(&key) {
                    Some(v) => {
                        assert_eq!(v, recompute((obj, rg), version), "stale hit at step {step}")
                    }
                    None => {
                        let v = recompute((obj, rg), version);
                        let bytes = rng.gen_range(64u64..=256);
                        if cache.insert(key, v, bytes) {
                            shadow_bytes.insert(key, bytes);
                        }
                    }
                }
            } else if roll < 0.92 {
                // Write path: bump the object version and invalidate.
                let next = version + 1;
                versions.insert(obj, next);
                cache.retain(|&(o, _, _)| o != obj);
                shadow_bytes.retain(|&(o, _, _), _| o != obj);
            } else {
                // Churn an oversized insert: must be rejected, not flush.
                let before = cache.len();
                assert!(!cache.insert(key, 0, budget + 1));
                assert_eq!(cache.len(), before);
            }
            assert!(
                cache.bytes() <= budget,
                "budget exceeded at step {step}: {} > {budget}",
                cache.bytes()
            );
            // Shadow model only tracks inserts/invalidations, not
            // evictions — so it upper-bounds the live set.
            assert!(cache.len() <= shadow_bytes.len());
        }
        let s = cache.stats();
        assert!(s.hits > 1000, "stress should exercise hits: {s:?}");
        assert!(s.evictions > 100, "tight budget should evict: {s:?}");
        assert!(s.invalidations > 100, "writes should invalidate: {s:?}");
        assert!(s.rejected > 100, "oversized inserts counted: {s:?}");
    }

    /// Eviction order is fully deterministic: two identical traffic
    /// sequences leave identical cache states.
    #[test]
    fn churn_is_deterministic() {
        type LiveEntries = Vec<((u32, u32), u64)>;
        fn run(seed: u64) -> (LiveEntries, CacheStats) {
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let mut c: ByteLru<(u32, u32), u64> = ByteLru::new(2048);
            for _ in 0..5000 {
                let key = (rng.gen_range(0u32..6), rng.gen_range(0u32..12));
                if rng.gen_bool(0.5) {
                    c.get(&key);
                } else {
                    let bytes = rng.gen_range(32u64..=512);
                    c.insert(key, bytes, bytes);
                }
            }
            let mut live: LiveEntries = Vec::new();
            for obj in 0..6 {
                for rg in 0..12 {
                    if let Some(w) = c.weight_of(&(obj, rg)) {
                        live.push(((obj, rg), w));
                    }
                }
            }
            (live, c.stats())
        }
        assert_eq!(run(99), run(99));
        assert_ne!(run(99).1, run(100).1);
    }
}
