//! Work-unit cost parameters shared by the engine's own operators and (via
//! re-export) the OCS embedded engine, so a row filtered at the storage
//! layer costs the same *work* as a row filtered at the compute layer —
//! only the node speeds differ (which is the paper's whole point).
//!
//! Units are abstract "value operations"; `netsim::NodeSpec::core_seconds`
//! converts them to simulated time using each node's cores × GHz ×
//! engine-efficiency.

/// Cost coefficients. One instance per engine; defaults are calibrated so
/// the absolute simulated times land in the regime the paper reports (see
/// EXPERIMENTS.md for the calibration table).
#[derive(Debug, Clone, PartialEq)]
pub struct CostParams {
    /// Work per uncompressed byte decoded from the columnar file format.
    pub byte_decode: f64,
    /// Work per byte of Arrow-IPC result deserialized at the engine.
    pub byte_deser: f64,
    /// Work per byte of Arrow-IPC result serialized at the storage side.
    pub byte_ser: f64,
    /// Per-row pipeline overhead for each operator a row passes through.
    pub row_overhead: f64,
    /// Work per row per unit of expression weight (filter/project eval).
    pub expr_eval: f64,
    /// Work per row to hash its group keys.
    pub group_hash: f64,
    /// Work per row per aggregate state update.
    pub agg_update: f64,
    /// Work per row per comparison in sort.
    pub sort_cmp: f64,
    /// Work per row per comparison in bounded top-N.
    pub topn_cmp: f64,
    /// Coordinator work per logical plan node visited during connector
    /// pushdown analysis (the paper's "Logical Plan Analysis", 1 ms).
    pub plan_node_analyze: f64,
    /// Coordinator work per Substrait IR node generated/serialized (the
    /// paper's "Substrait IR Generation", 33 ms for one file's query).
    pub substrait_node_gen: f64,
    /// Coordinator work per split scheduled ("Others" in Table 3).
    pub sched_per_split: f64,
    /// Fixed per-query coordinator work ("Others").
    pub query_fixed: f64,
    /// Frontend work per request relayed.
    pub frontend_per_request: f64,
    /// Frontend work per byte relayed.
    pub frontend_per_byte: f64,
}

impl Default for CostParams {
    fn default() -> Self {
        CostParams {
            byte_decode: 0.9,
            byte_deser: 0.55,
            byte_ser: 0.25,
            row_overhead: 6.0,
            expr_eval: 1.0,
            group_hash: 5.0,
            agg_update: 4.0,
            sort_cmp: 3.0,
            topn_cmp: 2.0,
            plan_node_analyze: 8_000.0,
            substrait_node_gen: 25_000.0,
            sched_per_split: 250_000.0,
            query_fixed: 9_000_000.0,
            frontend_per_request: 60_000.0,
            frontend_per_byte: 0.08,
        }
    }
}

impl CostParams {
    /// Work to evaluate an expression of `weight` over `rows` rows.
    pub fn eval_work(&self, rows: u64, weight: u32) -> f64 {
        rows as f64 * (self.row_overhead + self.expr_eval * weight as f64)
    }

    /// Work to update `naggs` aggregate states over `rows` rows grouped by
    /// `nkeys` keys.
    pub fn agg_work(&self, rows: u64, nkeys: usize, naggs: usize) -> f64 {
        rows as f64
            * (self.row_overhead
                + self.group_hash * nkeys.max(1) as f64
                + self.agg_update * naggs as f64)
    }

    /// Work to sort `rows` rows with `nkeys` keys.
    pub fn sort_work(&self, rows: u64, nkeys: usize) -> f64 {
        let n = rows as f64;
        let lg = if rows > 1 { n.log2() } else { 1.0 };
        n * lg * self.sort_cmp * nkeys.max(1) as f64
    }

    /// Work for a bounded top-N pass over `rows` rows keeping `limit`.
    pub fn topn_work(&self, rows: u64, nkeys: usize, limit: u64) -> f64 {
        let lg = ((limit + 1) as f64).log2().max(1.0);
        rows as f64 * lg * self.topn_cmp * nkeys.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn work_functions_scale_sensibly() {
        let c = CostParams::default();
        assert!(c.eval_work(1000, 4) > c.eval_work(1000, 1));
        assert!(c.eval_work(2000, 1) > c.eval_work(1000, 1));
        assert!(c.agg_work(1000, 2, 3) > c.agg_work(1000, 1, 1));
        // Full sort of n rows costs more than top-10 of n rows.
        assert!(c.sort_work(100_000, 1) > c.topn_work(100_000, 1, 10));
        // Degenerate inputs don't produce NaN/negative work.
        assert_eq!(c.sort_work(0, 1), 0.0);
        assert!(c.topn_work(0, 0, 0) == 0.0);
        assert!(c.sort_work(1, 1).is_finite());
    }
}
