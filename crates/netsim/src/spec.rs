//! Hardware + engine-efficiency specifications of the simulated cluster
//! (Table 1 of the paper).
//!
//! Each node converts abstract *work units* into seconds through three
//! efficiency channels, because the two engines in play have opposite
//! strengths:
//!
//! * **decode** — byte-granular format work (columnar file decode, wire
//!   (de)serialization). Presto's JVM reader is slow here; OCS's native
//!   reader is fast. This asymmetry is why *filter-only* pushdown already
//!   wins even when it barely reduces bytes (the paper's TPC-H 1.22×).
//! * **vector** — regular per-row operator work (predicate evaluation,
//!   hash aggregation, sort/top-N). Comparable aggregate throughput on
//!   both sides: the strong compute node's JVM overhead roughly cancels
//!   its core advantage against the weak storage node's native engine.
//! * **expr** — arbitrary arithmetic expression evaluation (projection).
//!   Presto JIT-compiles projections into tight loops; the OCS embedded
//!   engine interprets expression trees. This is the asymmetry behind the
//!   paper's projection-pushdown *slowdowns* (Deep Water −7 %, TPC-H
//!   −55 %).

/// A typed bundle of work units, one slot per efficiency channel.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Work {
    /// Byte-granular format work.
    pub decode: f64,
    /// Regular vectorized operator work.
    pub vector: f64,
    /// Arbitrary expression-evaluation work.
    pub expr: f64,
}

impl Work {
    /// Zero work.
    pub fn zero() -> Work {
        Work::default()
    }

    /// Pure decode work.
    pub fn decode(units: f64) -> Work {
        Work {
            decode: units,
            ..Default::default()
        }
    }

    /// Pure vector work.
    pub fn vector(units: f64) -> Work {
        Work {
            vector: units,
            ..Default::default()
        }
    }

    /// Pure expression work.
    pub fn expr(units: f64) -> Work {
        Work {
            expr: units,
            ..Default::default()
        }
    }

    /// Component-wise sum.
    pub fn add(&mut self, other: Work) {
        self.decode += other.decode;
        self.vector += other.vector;
        self.expr += other.expr;
    }

    /// Total raw units (for monitoring, not for timing).
    pub fn total_units(&self) -> f64 {
        self.decode + self.vector + self.expr
    }
}

impl std::ops::Add for Work {
    type Output = Work;
    fn add(self, rhs: Work) -> Work {
        Work {
            decode: self.decode + rhs.decode,
            vector: self.vector + rhs.vector,
            expr: self.expr + rhs.expr,
        }
    }
}

/// A compute resource: `cores` parallel lanes at `ghz` with per-channel
/// efficiencies (work units retired per core-cycle).
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// Human-readable node name ("compute", "frontend", "storage").
    pub name: &'static str,
    /// Physical cores available for query work.
    pub cores: usize,
    /// Clock in GHz.
    pub ghz: f64,
    /// Decode-channel efficiency (units per core-cycle).
    pub eff_decode: f64,
    /// Vector-channel efficiency.
    pub eff_vector: f64,
    /// Expression-channel efficiency.
    pub eff_expr: f64,
}

impl NodeSpec {
    /// Seconds one core needs for `work`.
    pub fn core_seconds_for(&self, work: Work) -> f64 {
        let hz = self.ghz * 1e9;
        let mut s = 0.0;
        if work.decode > 0.0 {
            s += work.decode / (hz * self.eff_decode);
        }
        if work.vector > 0.0 {
            s += work.vector / (hz * self.eff_vector);
        }
        if work.expr > 0.0 {
            s += work.expr / (hz * self.eff_expr);
        }
        s
    }

    /// Seconds one core needs for `units` of vector-class work (the
    /// common single-channel case; kept for API convenience).
    pub fn core_seconds(&self, units: f64) -> f64 {
        self.core_seconds_for(Work::vector(units))
    }

    /// Aggregate vector-channel throughput (units/second) across cores.
    pub fn aggregate_vector_per_second(&self) -> f64 {
        self.ghz * 1e9 * self.eff_vector * self.cores as f64
    }

    /// Aggregate expression-channel throughput across cores.
    pub fn aggregate_expr_per_second(&self) -> f64 {
        self.ghz * 1e9 * self.eff_expr * self.cores as f64
    }

    /// Aggregate decode-channel throughput across cores.
    pub fn aggregate_decode_per_second(&self) -> f64 {
        self.ghz * 1e9 * self.eff_decode * self.cores as f64
    }
}

/// Storage-device read model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DiskSpec {
    /// Sequential read bandwidth in GB/s.
    pub read_gbps: f64,
}

impl DiskSpec {
    /// Seconds to read `bytes` sequentially.
    pub fn read_seconds(&self, bytes: u64) -> f64 {
        bytes as f64 / (self.read_gbps * 1e9)
    }
}

/// Network link model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinkSpec {
    /// Bandwidth in Gbit/s (10 GbE = 10.0).
    pub gbit_per_s: f64,
    /// Per-request round-trip latency in seconds (RPC setup etc.).
    pub latency_s: f64,
}

impl LinkSpec {
    /// Usable bytes/second (charging Ethernet/TCP framing overhead).
    pub fn bytes_per_second(&self) -> f64 {
        self.gbit_per_s * 1e9 / 8.0 * 0.94
    }

    /// Seconds to move `bytes` in `requests` request/response exchanges.
    pub fn transfer_seconds(&self, bytes: u64, requests: u64) -> f64 {
        bytes as f64 / self.bytes_per_second() + requests as f64 * self.latency_s
    }
}

/// The whole cluster (Table 1), plus engine-efficiency calibration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// Presto compute node (coordinator + worker).
    pub compute: NodeSpec,
    /// OCS frontend node (plan parsing, dispatch, result relay).
    pub frontend: NodeSpec,
    /// OCS storage node (embedded SQL engine; deliberately weak).
    pub storage: NodeSpec,
    /// NVMe on the storage node.
    pub storage_disk: DiskSpec,
    /// NVMe on the compute node (local spill; mostly unused here).
    pub compute_disk: DiskSpec,
    /// The 10 GbE interconnect.
    pub network: LinkSpec,
}

impl ClusterSpec {
    /// The paper's testbed (Table 1):
    ///
    /// * compute: Xeon Gold 6226R, 64 cores @ 2.9 GHz, running the
    ///   JVM-based engine — slow byte decode (≈1.1 GB-units/s aggregate),
    ///   moderate vector ops, JIT-fast expressions;
    /// * frontend: Xeon Silver 4410Y, 48 cores @ 3.9 GHz;
    /// * storage: Xeon Silver 4410Y restricted to 16 cores @ 2.0 GHz,
    ///   running the embedded native engine — fast decode, competitive
    ///   vector ops, slow interpreted expressions;
    /// * 10 GbE network, NVMe disks.
    ///
    /// See EXPERIMENTS.md for the calibration table mapping these to the
    /// paper's observed ratios.
    pub fn paper_testbed() -> ClusterSpec {
        ClusterSpec {
            compute: NodeSpec {
                name: "compute",
                cores: 64,
                ghz: 2.9,
                eff_decode: 0.006,
                eff_vector: 0.019,
                eff_expr: 0.10,
            },
            frontend: NodeSpec {
                name: "frontend",
                cores: 48,
                ghz: 3.9,
                eff_decode: 0.05,
                eff_vector: 0.05,
                eff_expr: 0.05,
            },
            storage: NodeSpec {
                name: "storage",
                cores: 16,
                ghz: 2.0,
                eff_decode: 0.06,
                eff_vector: 0.12,
                eff_expr: 0.01,
            },
            storage_disk: DiskSpec { read_gbps: 0.8 },
            compute_disk: DiskSpec { read_gbps: 2.0 },
            network: LinkSpec {
                gbit_per_s: 10.0,
                latency_s: 300e-6,
            },
        }
    }

    /// A deliberately symmetric cluster for ablations: the storage node
    /// gets the compute node's cores, clock and expression efficiency —
    /// used to show the projection-pushdown slowdown disappears when the
    /// storage side is not resource-constrained.
    pub fn symmetric_testbed() -> ClusterSpec {
        let mut c = Self::paper_testbed();
        c.storage = NodeSpec {
            name: "storage",
            cores: c.compute.cores,
            ghz: c.compute.ghz,
            eff_decode: c.storage.eff_decode,
            eff_vector: c.storage.eff_vector,
            eff_expr: c.compute.eff_expr,
        };
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_testbed_shapes() {
        let c = ClusterSpec::paper_testbed();
        assert_eq!(c.compute.cores, 64);
        assert_eq!(c.storage.cores, 16);
        // Decode: storage beats compute in aggregate (native vs JVM) —
        // the filter-only pushdown win.
        assert!(c.storage.aggregate_decode_per_second() > c.compute.aggregate_decode_per_second());
        // Expressions: compute crushes storage — the projection-pushdown
        // loss.
        assert!(
            c.compute.aggregate_expr_per_second() > 5.0 * c.storage.aggregate_expr_per_second()
        );
        // Vector ops: same order of magnitude on both sides.
        let r = c.compute.aggregate_vector_per_second() / c.storage.aggregate_vector_per_second();
        assert!((0.3..3.0).contains(&r), "vector ratio {r}");
    }

    #[test]
    fn work_accounting() {
        let mut w = Work::decode(10.0);
        w.add(Work::vector(5.0));
        let w = w + Work::expr(1.0);
        assert_eq!(w.total_units(), 16.0);
        let n = NodeSpec {
            name: "t",
            cores: 1,
            ghz: 1.0,
            eff_decode: 1e-9 * 1e9, // 1 unit per cycle → 1e9 units/s
            eff_vector: 0.5,
            eff_expr: 0.25,
        };
        // decode: 10/1e9; vector: 5/(5e8); expr: 1/(2.5e8).
        let secs = n.core_seconds_for(w);
        assert!((secs - (10.0 / 1e9 + 5.0 / 5e8 + 1.0 / 2.5e8)).abs() < 1e-18);
        assert_eq!(n.core_seconds_for(Work::zero()), 0.0);
    }

    #[test]
    fn disk_and_link_times() {
        let d = DiskSpec { read_gbps: 2.0 };
        assert!((d.read_seconds(2_000_000_000) - 1.0).abs() < 1e-12);
        let l = LinkSpec {
            gbit_per_s: 10.0,
            latency_s: 1e-3,
        };
        let t = l.transfer_seconds(1_000_000_000, 1);
        assert!((0.8..0.9).contains(&t), "{t}");
        let t = l.transfer_seconds(100, 10);
        assert!(t > 9e-3, "{t}");
    }

    #[test]
    fn symmetric_testbed_removes_expr_asymmetry() {
        let c = ClusterSpec::symmetric_testbed();
        assert_eq!(c.storage.cores, c.compute.cores);
        assert_eq!(c.storage.eff_expr, c.compute.eff_expr);
        assert!(c.storage.aggregate_expr_per_second() >= c.compute.aggregate_expr_per_second());
    }
}
