//! Data-movement meters: how many bytes crossed the storage→compute link.
//! This is the red line in the paper's Figure 5.

use std::sync::atomic::{AtomicU64, Ordering};

/// Lock-free byte/request counter.
#[derive(Debug, Default)]
pub struct ByteMeter {
    bytes: AtomicU64,
    requests: AtomicU64,
}

impl ByteMeter {
    /// New zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one transfer of `bytes`.
    pub fn record(&self, bytes: u64) {
        // RELAXED: independent statistics cells — a momentarily torn
        // bytes/requests view is fine, nothing else is published.
        self.bytes.fetch_add(bytes, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
    }

    /// Total bytes recorded.
    pub fn bytes(&self) -> u64 {
        // RELAXED: statistics read; reports don't order against writers.
        self.bytes.load(Ordering::Relaxed)
    }

    /// Total transfers recorded.
    pub fn requests(&self) -> u64 {
        // RELAXED: statistics read; reports don't order against writers.
        self.requests.load(Ordering::Relaxed)
    }

    /// Zero the meter.
    pub fn reset(&self) {
        // RELAXED: see `record` — independent statistics cells.
        self.bytes.store(0, Ordering::Relaxed);
        self.requests.store(0, Ordering::Relaxed);
    }

    /// Bytes as fractional gigabytes (for Figure-5-style reporting).
    pub fn gigabytes(&self) -> f64 {
        self.bytes() as f64 / 1e9
    }
}

/// Format a byte count the way the paper does (GB / MB / KB).
pub fn human_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b >= 1e9 {
        format!("{:.2} GB", b / 1e9)
    } else if b >= 1e6 {
        format!("{:.2} MB", b / 1e6)
    } else if b >= 1e3 {
        format!("{:.2} KB", b / 1e3)
    } else {
        format!("{bytes} B")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_resets() {
        let m = ByteMeter::new();
        m.record(100);
        m.record(900);
        assert_eq!(m.bytes(), 1000);
        assert_eq!(m.requests(), 2);
        m.reset();
        assert_eq!(m.bytes(), 0);
        assert_eq!(m.requests(), 0);
    }

    #[test]
    fn concurrent_recording() {
        let m = std::sync::Arc::new(ByteMeter::new());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || {
                    for _ in 0..10_000 {
                        m.record(3);
                    }
                });
            }
        });
        assert_eq!(m.bytes(), 120_000);
        assert_eq!(m.requests(), 40_000);
    }

    #[test]
    fn human_formatting() {
        assert_eq!(human_bytes(12), "12 B");
        assert_eq!(human_bytes(1_500), "1.50 KB");
        assert_eq!(human_bytes(5_370_000_000), "5.37 GB");
        assert_eq!(human_bytes(500_000), "500.00 KB");
    }
}
