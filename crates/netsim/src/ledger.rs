//! The [`Ledger`]: a thread-safe accumulator of simulated seconds, bucketed
//! by execution phase. One ledger per query run; the bench harness reads it
//! to print Figure-5/6 bars and the Table-3 breakdown.

use std::collections::BTreeMap;
use std::fmt;
use sync::DebugMutex;

/// Execution phases mirroring the paper's Table 3 breakdown (plus the
/// storage-internal phases our simulation makes visible).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Phase {
    /// Logical-plan traversal / pushdown analysis on the coordinator.
    PlanAnalysis,
    /// Substrait IR generation and serialization.
    SubstraitGen,
    /// Disk reads on the storage node.
    StorageDisk,
    /// Decompression on the storage node.
    StorageDecompress,
    /// In-storage operator execution (OCS embedded engine).
    StorageCpu,
    /// OCS frontend work (plan parse, dispatch, result relay).
    FrontendCpu,
    /// Network transfer storage → compute (the paper's "result transfer").
    NetworkTransfer,
    /// Post-scan operator execution on the Presto compute node.
    ComputeCpu,
    /// Everything else (scheduling, split generation, fixed per-query cost).
    Other,
}

impl Phase {
    /// All phases in presentation order.
    pub const ALL: [Phase; 9] = [
        Phase::PlanAnalysis,
        Phase::SubstraitGen,
        Phase::StorageDisk,
        Phase::StorageDecompress,
        Phase::StorageCpu,
        Phase::FrontendCpu,
        Phase::NetworkTransfer,
        Phase::ComputeCpu,
        Phase::Other,
    ];

    /// Display label matching the paper's Table 3 rows where applicable.
    pub fn label(&self) -> &'static str {
        match self {
            Phase::PlanAnalysis => "Logical Plan Analysis",
            Phase::SubstraitGen => "Substrait IR Generation",
            Phase::StorageDisk => "Storage Disk Read",
            Phase::StorageDecompress => "Storage Decompression",
            Phase::StorageCpu => "In-Storage Execution",
            Phase::FrontendCpu => "OCS Frontend",
            Phase::NetworkTransfer => "Pushdown & Result Transfer",
            Phase::ComputeCpu => "Presto Execution (Post-Scan)",
            Phase::Other => "Others",
        }
    }
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Thread-safe bucketed accumulator of simulated seconds.
#[derive(Debug)]
pub struct Ledger {
    buckets: DebugMutex<BTreeMap<Phase, f64>>,
}

impl Default for Ledger {
    fn default() -> Ledger {
        Ledger {
            buckets: DebugMutex::named("netsim.ledger.buckets", BTreeMap::new()),
        }
    }
}

impl Ledger {
    /// New empty ledger.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `seconds` of simulated time to `phase`.
    pub fn add(&self, phase: Phase, seconds: f64) {
        debug_assert!(seconds.is_finite() && seconds >= 0.0, "bad time {seconds}");
        let mut b = self.buckets.lock();
        *b.entry(phase).or_insert(0.0) += seconds;
    }

    /// Simulated seconds accumulated in `phase`.
    pub fn get(&self, phase: Phase) -> f64 {
        self.buckets.lock().get(&phase).copied().unwrap_or(0.0)
    }

    /// Total simulated seconds across all phases.
    pub fn total(&self) -> f64 {
        self.buckets.lock().values().sum()
    }

    /// Snapshot of all non-zero buckets in presentation order.
    pub fn snapshot(&self) -> Vec<(Phase, f64)> {
        let b = self.buckets.lock();
        Phase::ALL
            .iter()
            .filter_map(|p| b.get(p).map(|&v| (*p, v)))
            .filter(|(_, v)| *v > 0.0)
            .collect()
    }

    /// Zero every bucket.
    pub fn reset(&self) {
        self.buckets.lock().clear();
    }

    /// Merge another ledger into this one.
    pub fn merge(&self, other: &Ledger) {
        let other_snapshot = other.snapshot();
        let mut b = self.buckets.lock();
        for (p, v) in other_snapshot {
            *b.entry(p).or_insert(0.0) += v;
        }
    }

    /// Lay `items` out as back-to-back phase spans under `parent`,
    /// starting at `t0` on the simulated clock. This is the ledger→span
    /// bridge: the netsim clock has no running "now" (simulated seconds
    /// are computed post-hoc into buckets), so a trace is laid out from
    /// the bucketed seconds, sequentially — which makes the child spans
    /// sum *exactly* to the seconds they were laid from. Zero-length
    /// items are skipped. Returns the cursor after the last span.
    pub fn layout_spans(
        tracer: &obs::Tracer,
        parent: obs::SpanId,
        t0: f64,
        items: &[(Phase, f64)],
    ) -> f64 {
        let mut cursor = t0;
        for (phase, seconds) in items {
            if *seconds <= 0.0 {
                continue;
            }
            tracer.record(
                phase.label(),
                "phase",
                Some(parent),
                cursor,
                cursor + seconds,
            );
            cursor += seconds;
        }
        cursor
    }

    /// Render a Table-3-style breakdown (label, seconds, share%).
    ///
    /// Seconds and shares derive from one snapshot taken under a single
    /// lock acquisition, so concurrent `add`s can never make the shares
    /// sum to anything but 100% (a second `total()` read could drift).
    pub fn breakdown(&self) -> Vec<(String, f64, f64)> {
        let snap = self.snapshot();
        let total: f64 = snap.iter().map(|(_, v)| v).sum();
        snap.into_iter()
            .map(|(p, v)| {
                (
                    p.label().to_string(),
                    v,
                    if total > 0.0 { v / total * 100.0 } else { 0.0 },
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulates_per_phase() {
        let l = Ledger::new();
        l.add(Phase::ComputeCpu, 1.5);
        l.add(Phase::ComputeCpu, 0.5);
        l.add(Phase::NetworkTransfer, 3.0);
        assert_eq!(l.get(Phase::ComputeCpu), 2.0);
        assert_eq!(l.get(Phase::NetworkTransfer), 3.0);
        assert_eq!(l.get(Phase::Other), 0.0);
        assert_eq!(l.total(), 5.0);
    }

    #[test]
    fn snapshot_in_presentation_order() {
        let l = Ledger::new();
        l.add(Phase::ComputeCpu, 1.0);
        l.add(Phase::PlanAnalysis, 0.1);
        let s = l.snapshot();
        assert_eq!(s[0].0, Phase::PlanAnalysis);
        assert_eq!(s[1].0, Phase::ComputeCpu);
    }

    #[test]
    fn breakdown_shares_sum_to_100() {
        let l = Ledger::new();
        l.add(Phase::PlanAnalysis, 1.0);
        l.add(Phase::SubstraitGen, 1.0);
        l.add(Phase::ComputeCpu, 2.0);
        let shares: f64 = l.breakdown().iter().map(|(_, _, s)| s).sum();
        assert!((shares - 100.0).abs() < 1e-9);
    }

    #[test]
    fn merge_and_reset() {
        let a = Ledger::new();
        a.add(Phase::Other, 1.0);
        let b = Ledger::new();
        b.add(Phase::Other, 2.0);
        b.add(Phase::StorageCpu, 4.0);
        a.merge(&b);
        assert_eq!(a.get(Phase::Other), 3.0);
        assert_eq!(a.get(Phase::StorageCpu), 4.0);
        a.reset();
        assert_eq!(a.total(), 0.0);
    }

    #[test]
    fn layout_spans_sums_exactly() {
        let tracer = obs::Tracer::new();
        let root = tracer.record("query", "phase", None, 0.0, 10.0);
        let end = Ledger::layout_spans(
            &tracer,
            root,
            1.0,
            &[
                (Phase::PlanAnalysis, 0.5),
                (Phase::SubstraitGen, 0.0),
                (Phase::ComputeCpu, 2.5),
            ],
        );
        assert!((end - 4.0).abs() < 1e-12);
        let trace = tracer.finish();
        trace.verify(1e-12).unwrap();
        // Zero-length SubstraitGen skipped; others back-to-back.
        assert_eq!(trace.children(root).len(), 2);
        let sum: f64 = trace.children(root).iter().map(|s| s.seconds()).sum();
        assert!((sum - 3.0).abs() < 1e-12);
        assert_eq!(trace.find(Phase::ComputeCpu.label()).unwrap().start_s, 1.5);
    }

    #[test]
    fn breakdown_shares_consistent_under_concurrent_adds() {
        // Regression: `breakdown` used to read `total()` and `snapshot()`
        // under two separate lock acquisitions; an `add` landing between
        // them skewed every share. Shares must now always sum to 100
        // (within float tolerance) no matter how adds interleave.
        let l = std::sync::Arc::new(Ledger::new());
        l.add(Phase::PlanAnalysis, 1.0);
        std::thread::scope(|s| {
            let writer = l.clone();
            s.spawn(move || {
                for _ in 0..2000 {
                    writer.add(Phase::StorageCpu, 0.01);
                    writer.add(Phase::NetworkTransfer, 0.02);
                }
            });
            for _ in 0..500 {
                let b = l.breakdown();
                let shares: f64 = b.iter().map(|(_, _, s)| s).sum();
                assert!(
                    (shares - 100.0).abs() < 1e-6,
                    "shares drifted: {shares} over {b:?}"
                );
            }
        });
    }

    #[test]
    fn concurrent_adds_are_safe() {
        let l = std::sync::Arc::new(Ledger::new());
        std::thread::scope(|s| {
            for _ in 0..8 {
                let l = l.clone();
                s.spawn(move || {
                    for _ in 0..1000 {
                        l.add(Phase::StorageCpu, 0.001);
                    }
                });
            }
        });
        assert!((l.get(Phase::StorageCpu) - 8.0).abs() < 1e-6);
    }
}
