//! Shared execution-statistics vocabulary of the OCS wire protocol.
//!
//! Before the streaming boundary existed, every layer re-declared the same
//! counters (`WireResponse`, `OcsResponse`, `PageSourceResult` each carried
//! their own `storage_cpu_s`, `rows_scanned`, …). They are consolidated
//! here — one [`ExecStats`] struct, produced by the storage side, carried
//! across the boundary in the stream's *trailer frame*, and consumed by the
//! engine's ledger — so a new counter is added in exactly one place.
//!
//! [`FrameTiming`] is the per-frame companion: the simulated per-stage
//! seconds of one wire frame, which the engine's `pipeline` scheduler
//! composes into an overlapped makespan.

/// Wire-level execution statistics for one request (or, summed, for one
/// query). Produced by the storage/frontend side, shipped in the stream
/// trailer, merged per split by the engine.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ExecStats {
    /// Core-seconds of operator work on the storage node.
    pub storage_cpu_s: f64,
    /// Core-seconds of decompression on the storage node.
    pub storage_decompress_s: f64,
    /// Core-seconds on the frontend node (parse, relay, serialize).
    pub frontend_cpu_s: f64,
    /// Compressed bytes read from the storage node's disk.
    pub disk_bytes: u64,
    /// Rows scanned in storage (after row-group pruning).
    pub rows_scanned: u64,
    /// Rows returned across the wire.
    pub rows_returned: u64,
    /// Row groups the late-materialized scan skipped after masking.
    pub row_groups_skipped: u64,
    /// Encoded bytes the scan never had to decode.
    pub decoded_bytes_avoided: u64,
    /// Row-group chunk fetches served from the decoded row-group cache.
    pub rg_cache_hits: u64,
    /// Row-group chunk fetches that went to disk (cache miss or cache
    /// disabled).
    pub rg_cache_misses: u64,
    /// Compressed + decode bytes the caches kept off the disk/decode path
    /// (the "bytes avoided" EXPLAIN ANALYZE reports per scan).
    pub cache_bytes_avoided: u64,
    /// Whole pushed subplans answered from the result cache.
    pub result_cache_hits: u64,
    /// Storage-executor span records, on the producer's local clock
    /// (t = 0 at request start). The engine re-parents ("grafts") them
    /// under the query's split span on receipt.
    pub spans: Vec<obs::SpanRec>,
}

/// Version tag leading every encoded [`ExecStats`] payload. v1 was the
/// fixed 68-byte counter block; v2 appended the span records; v3 extends
/// the counter block with the four cache counters.
const STATS_VERSION: u32 = 3;
/// Encoded size of the v1/v2 fixed counter block: version + 3 × f64 + 5 × u64.
const STATS_LEN: usize = 4 + 3 * 8 + 5 * 8;
/// Encoded size of the v3 counter block: v2's block + 4 × u64 cache counters.
const STATS_LEN_V3: usize = STATS_LEN + 4 * 8;

impl ExecStats {
    /// Component-wise accumulate (for summing per-request stats into
    /// per-split or per-query totals).
    pub fn merge(&mut self, other: &ExecStats) {
        self.storage_cpu_s += other.storage_cpu_s;
        self.storage_decompress_s += other.storage_decompress_s;
        self.frontend_cpu_s += other.frontend_cpu_s;
        self.disk_bytes += other.disk_bytes;
        self.rows_scanned += other.rows_scanned;
        self.rows_returned += other.rows_returned;
        self.row_groups_skipped += other.row_groups_skipped;
        self.decoded_bytes_avoided += other.decoded_bytes_avoided;
        self.rg_cache_hits += other.rg_cache_hits;
        self.rg_cache_misses += other.rg_cache_misses;
        self.cache_bytes_avoided += other.cache_bytes_avoided;
        self.result_cache_hits += other.result_cache_hits;
        self.spans.extend(other.spans.iter().cloned());
    }

    /// Fixed-layout little-endian encoding (the trailer-frame payload).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(STATS_LEN_V3);
        out.extend_from_slice(&STATS_VERSION.to_le_bytes());
        for f in [
            self.storage_cpu_s,
            self.storage_decompress_s,
            self.frontend_cpu_s,
        ] {
            out.extend_from_slice(&f.to_le_bytes());
        }
        for u in [
            self.disk_bytes,
            self.rows_scanned,
            self.rows_returned,
            self.row_groups_skipped,
            self.decoded_bytes_avoided,
            self.rg_cache_hits,
            self.rg_cache_misses,
            self.cache_bytes_avoided,
            self.result_cache_hits,
        ] {
            out.extend_from_slice(&u.to_le_bytes());
        }
        out.extend_from_slice(&obs::encode_spans(&self.spans));
        out
    }

    /// Decode an [`ExecStats::encode`] payload. Accepts v1 (fixed counter
    /// block, no spans), v2 (counter block + span records) and v3 (v2 plus
    /// cache counters). Returns a structured message (never panics) on
    /// truncation or an unknown version.
    pub fn decode(bytes: &[u8]) -> Result<ExecStats, String> {
        if bytes.len() < STATS_LEN {
            return Err(format!(
                "exec-stats payload is {} bytes, expected at least {STATS_LEN}",
                bytes.len()
            ));
        }
        let mut v4 = [0u8; 4];
        v4.copy_from_slice(&bytes[..4]);
        let version = u32::from_le_bytes(v4);
        if !(1..=STATS_VERSION).contains(&version) {
            return Err(format!(
                "exec-stats version {version} (expected 1..={STATS_VERSION})"
            ));
        }
        let counter_len = if version >= 3 {
            STATS_LEN_V3
        } else {
            STATS_LEN
        };
        if bytes.len() < counter_len {
            return Err(format!(
                "exec-stats v{version} payload is {} bytes, expected at least {counter_len}",
                bytes.len()
            ));
        }
        let mut pos = 4usize;
        let mut take8 = || -> [u8; 8] {
            let mut a = [0u8; 8];
            a.copy_from_slice(&bytes[pos..pos + 8]);
            pos += 8;
            a
        };
        let storage_cpu_s = f64::from_le_bytes(take8());
        let storage_decompress_s = f64::from_le_bytes(take8());
        let frontend_cpu_s = f64::from_le_bytes(take8());
        let disk_bytes = u64::from_le_bytes(take8());
        let rows_scanned = u64::from_le_bytes(take8());
        let rows_returned = u64::from_le_bytes(take8());
        let row_groups_skipped = u64::from_le_bytes(take8());
        let decoded_bytes_avoided = u64::from_le_bytes(take8());
        let (rg_cache_hits, rg_cache_misses, cache_bytes_avoided, result_cache_hits) =
            if version >= 3 {
                (
                    u64::from_le_bytes(take8()),
                    u64::from_le_bytes(take8()),
                    u64::from_le_bytes(take8()),
                    u64::from_le_bytes(take8()),
                )
            } else {
                (0, 0, 0, 0)
            };
        let spans = if version >= 2 {
            let mut span_pos = counter_len;
            let spans = obs::decode_spans(bytes, &mut span_pos)?;
            if span_pos != bytes.len() {
                return Err(format!(
                    "exec-stats payload has {} trailing bytes",
                    bytes.len() - span_pos
                ));
            }
            spans
        } else {
            if bytes.len() != STATS_LEN {
                return Err(format!(
                    "exec-stats v1 payload is {} bytes, expected {STATS_LEN}",
                    bytes.len()
                ));
            }
            Vec::new()
        };
        Ok(ExecStats {
            storage_cpu_s,
            storage_decompress_s,
            frontend_cpu_s,
            disk_bytes,
            rows_scanned,
            rows_returned,
            row_groups_skipped,
            decoded_bytes_avoided,
            rg_cache_hits,
            rg_cache_misses,
            cache_bytes_avoided,
            result_cache_hits,
            spans,
        })
    }
}

/// Simulated per-stage cost of one wire frame: the event record a
/// streaming response carries alongside each frame so the consumer can
/// replay the frame's life through the pipeline stages (disk → decompress
/// → storage CPU → frontend → network → compute).
///
/// The producer fills the storage/frontend fields; the engine fills
/// `compute_s` (deserialization plus the operator work the batch triggered)
/// and derives disk/network *seconds* from the byte counts and its own
/// device models.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FrameTiming {
    /// Encoded frame bytes on the wire (response direction).
    pub bytes: u64,
    /// Compressed disk bytes attributed to producing this frame.
    pub disk_bytes: u64,
    /// Storage decompression seconds attributed to this frame.
    pub decompress_s: f64,
    /// Storage operator seconds attributed to this frame.
    pub storage_s: f64,
    /// Frontend relay/serialize seconds attributed to this frame.
    pub frontend_s: f64,
    /// Engine-side seconds (deserialize + operator work); filled by the
    /// consumer.
    pub compute_s: f64,
    /// True for batch frames (schema/trailer frames carry no rows).
    pub is_batch: bool,
    /// Independent input slices (scanned row groups) behind this frame.
    /// The storage executor reads and scans row groups on independent
    /// cores even when the operator tree collapses them into one output
    /// batch (aggregation pushdown), so a scheduler replaying this frame
    /// may overlap and parallelize its disk/decompress/scan cost at this
    /// granularity. `0` or `1` means the input side is indivisible.
    pub input_chunks: u32,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_roundtrip() {
        let s = ExecStats {
            storage_cpu_s: 1.25,
            storage_decompress_s: 0.5,
            frontend_cpu_s: 0.0625,
            disk_bytes: 1 << 33,
            rows_scanned: 10_000,
            rows_returned: 7,
            row_groups_skipped: 3,
            decoded_bytes_avoided: 4096,
            rg_cache_hits: 6,
            rg_cache_misses: 2,
            cache_bytes_avoided: 1 << 20,
            result_cache_hits: 1,
            spans: vec![
                obs::SpanRec {
                    id: 1,
                    parent: 0,
                    name: "storage.execute".into(),
                    start_s: 0.0,
                    end_s: 0.25,
                    wall_s: 0.0,
                    attrs: vec![("cache_hit".to_string(), obs::AttrValue::Str("none".into()))],
                },
                obs::SpanRec {
                    id: 2,
                    parent: 1,
                    name: "storage.scan".into(),
                    start_s: 0.05,
                    end_s: 0.25,
                    wall_s: 0.001,
                    attrs: vec![("rows".to_string(), obs::AttrValue::U64(10_000))],
                },
            ],
        };
        let enc = s.encode();
        assert!(enc.len() > STATS_LEN);
        assert_eq!(ExecStats::decode(&enc).unwrap(), s);
    }

    #[test]
    fn decode_rejects_truncation_and_bad_version() {
        let enc = ExecStats::default().encode();
        assert!(ExecStats::decode(&enc[..enc.len() - 1]).is_err());
        assert!(ExecStats::decode(&[]).is_err());
        let mut bad = enc.clone();
        bad[0] = 99;
        assert!(ExecStats::decode(&bad).is_err());
    }

    #[test]
    fn decode_accepts_v1_payload() {
        // A v1 producer ships only the fixed counter block.
        let mut v1 = ExecStats {
            storage_cpu_s: 2.0,
            rows_returned: 11,
            ..Default::default()
        }
        .encode();
        v1.truncate(STATS_LEN);
        v1[..4].copy_from_slice(&1u32.to_le_bytes());
        let dec = ExecStats::decode(&v1).unwrap();
        assert_eq!(dec.storage_cpu_s, 2.0);
        assert_eq!(dec.rows_returned, 11);
        assert!(dec.spans.is_empty());
        // ...but a v1 payload with trailing bytes is corrupt.
        v1.push(0);
        assert!(ExecStats::decode(&v1).is_err());
    }

    #[test]
    fn decode_accepts_v2_payload() {
        // A v2 producer ships the 68-byte counter block + spans but no
        // cache counters: splice them out of a v3 encoding.
        let s = ExecStats {
            storage_cpu_s: 1.5,
            rows_scanned: 123,
            rg_cache_hits: 9, // dropped by the splice
            spans: vec![obs::SpanRec {
                id: 1,
                parent: 0,
                name: "storage.execute".into(),
                start_s: 0.0,
                end_s: 0.5,
                wall_s: 0.0,
                attrs: Vec::new(),
            }],
            ..Default::default()
        };
        let v3 = s.encode();
        let mut v2 = Vec::new();
        v2.extend_from_slice(&v3[..STATS_LEN]);
        v2.extend_from_slice(&v3[STATS_LEN_V3..]);
        v2[..4].copy_from_slice(&2u32.to_le_bytes());
        let dec = ExecStats::decode(&v2).unwrap();
        assert_eq!(dec.storage_cpu_s, 1.5);
        assert_eq!(dec.rows_scanned, 123);
        assert_eq!(dec.rg_cache_hits, 0, "v2 has no cache counters");
        assert_eq!(dec.spans.len(), 1);
    }

    #[test]
    fn merge_sums_componentwise() {
        let mut a = ExecStats {
            storage_cpu_s: 1.0,
            disk_bytes: 10,
            rows_returned: 5,
            rg_cache_hits: 1,
            ..Default::default()
        };
        a.merge(&ExecStats {
            storage_cpu_s: 2.0,
            frontend_cpu_s: 0.5,
            disk_bytes: 20,
            rows_scanned: 100,
            rg_cache_hits: 2,
            cache_bytes_avoided: 64,
            result_cache_hits: 1,
            ..Default::default()
        });
        assert_eq!(a.storage_cpu_s, 3.0);
        assert_eq!(a.frontend_cpu_s, 0.5);
        assert_eq!(a.disk_bytes, 30);
        assert_eq!(a.rows_scanned, 100);
        assert_eq!(a.rows_returned, 5);
        assert_eq!(a.rg_cache_hits, 3);
        assert_eq!(a.cache_bytes_avoided, 64);
        assert_eq!(a.result_cache_hits, 1);
    }
}
