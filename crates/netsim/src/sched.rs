//! Stage-time composition.
//!
//! Two schedulers live here:
//!
//! * [`makespan`] — the LPT bin-packing used for a *single* stage: given
//!   independent per-split durations and a node's parallel lanes, how long
//!   does that stage take in isolation;
//! * [`pipeline`] — the overlap model for the *whole* split phase: given
//!   per-frame per-stage durations, compose the stage timelines the way a
//!   streaming boundary actually behaves — an FCFS multi-server queue per
//!   stage, each frame flowing disk → decompress → storage CPU → frontend
//!   → network → compute — so the phase costs roughly
//!   `bottleneck stage + fill/drain` instead of the sum of all stages.

/// Makespan of scheduling `durations` onto `lanes` identical lanes (LPT).
///
/// `lanes == 0` is treated as 1. The result is at least `max(durations)`
/// and at most `sum(durations)`.
pub fn makespan(durations: &[f64], lanes: usize) -> f64 {
    let lanes = lanes.max(1);
    if durations.is_empty() {
        return 0.0;
    }
    if lanes == 1 || durations.len() == 1 {
        return durations.iter().sum();
    }
    let mut sorted: Vec<f64> = durations.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let mut loads = vec![0.0f64; lanes.min(sorted.len())];
    for d in sorted {
        // Find the least-loaded lane (linear scan; lane counts are small).
        let mut idx = 0;
        for (i, l) in loads.iter().enumerate() {
            if *l < loads[idx] {
                idx = i;
            }
        }
        loads[idx] += d;
    }
    loads.iter().cloned().fold(0.0, f64::max)
}

/// Outcome of composing a frame pipeline with [`pipeline`].
#[derive(Debug, Clone, PartialEq)]
pub struct PipelineReport {
    /// Completion time of the last frame at the last stage — the
    /// overlapped wall-clock of the whole split phase.
    pub makespan: f64,
    /// Total busy seconds per stage (for apportioning the overlapped
    /// makespan back into ledger phases).
    pub stage_busy: Vec<f64>,
    /// Per-item completion time at the last stage, in input order (item 0
    /// of a query is its first frame, so `item_done.first()` approximates
    /// time-to-first-batch).
    pub item_done: Vec<f64>,
    /// Busy intervals `(start, end)` per stage, in schedule order —
    /// every non-zero service window some lane of the stage spent
    /// occupied. Summing a stage's interval lengths reproduces
    /// `stage_busy[s]` exactly; overlapping them against the stage's lane
    /// count yields its utilization timeline (see `obs::profile`).
    pub stage_intervals: Vec<Vec<(f64, f64)>>,
}

impl PipelineReport {
    /// Earliest completion among the given item indices (e.g. the batch
    /// frames only) — the pipeline's time-to-first-result.
    pub fn first_done_among(&self, indices: impl IntoIterator<Item = usize>) -> f64 {
        let mut best = f64::INFINITY;
        for i in indices {
            if let Some(&d) = self.item_done.get(i) {
                if d < best {
                    best = d;
                }
            }
        }
        if best.is_finite() {
            best
        } else {
            0.0
        }
    }
}

/// Overlapped makespan of `items` flowing through a multi-stage pipeline.
///
/// `items[i][s]` is the duration of item `i` at stage `s`; `lanes[s]` is
/// the number of identical parallel servers at stage `s` (0 is treated
/// as 1). Missing per-item entries count as zero duration.
///
/// The model is a deterministic FCFS multi-server queue per stage: an item
/// becomes ready for stage `s` when it completes stage `s-1`; ready items
/// are served in (ready-time, input-order) order, each starting on the
/// earliest-free lane no earlier than its ready time. Items therefore
/// *overlap* across stages — while frame `i` crosses the network, frame
/// `i+1` occupies the storage CPU — which is exactly what the old additive
/// per-stage barriers could not express.
///
/// Invariants (pinned by the tests below): the result is at least the
/// busiest stage's LPT makespan, at least the longest single-item chain,
/// and at most the sum of all stages' serial sums.
pub fn pipeline(items: &[Vec<f64>], lanes: &[usize]) -> PipelineReport {
    pipeline_grouped(items, lanes, &[], &[])
}

/// [`pipeline`] with per-item group affinity: `groups[i]` names item `i`'s
/// group (a split, a request stream, …) and stages with `serial[s] ==
/// true` process each group's items one at a time, in input order —
/// different groups still run concurrently on the stage's lanes.
///
/// This models resources that are parallel *across* streams but serial
/// *within* one: a Presto driver drains its split's pages on one thread,
/// and a frontend relays one request's frames sequentially, no matter how
/// many cores the node has. Missing `groups` entries default to group 0;
/// missing `serial` entries default to `false` (so empty slices reproduce
/// plain [`pipeline`] exactly).
pub fn pipeline_grouped(
    items: &[Vec<f64>],
    lanes: &[usize],
    groups: &[usize],
    serial: &[bool],
) -> PipelineReport {
    let nstages = lanes.len();
    let mut stage_busy = vec![0.0f64; nstages];
    let mut stage_intervals: Vec<Vec<(f64, f64)>> = vec![Vec::new(); nstages];
    if items.is_empty() || nstages == 0 {
        return PipelineReport {
            makespan: 0.0,
            stage_busy,
            item_done: vec![0.0; items.len()],
            stage_intervals,
        };
    }
    let group_of = |i: usize| groups.get(i).copied().unwrap_or(0);
    let ngroups = (0..items.len()).map(group_of).max().unwrap_or(0) + 1;
    // ready[i]: when item i finished the previous stage.
    let mut ready = vec![0.0f64; items.len()];
    let mut order: Vec<usize> = (0..items.len()).collect();
    for (s, &lane_count) in lanes.iter().enumerate() {
        let lane_count = lane_count.max(1);
        let mut lane_free = vec![0.0f64; lane_count];
        let serial_here = serial.get(s).copied().unwrap_or(false);
        // group_free[g]: when group g's previous item left this stage
        // (only consulted on serial stages).
        let mut group_free = vec![0.0f64; if serial_here { ngroups } else { 0 }];
        // FCFS by arrival at this stage; input order breaks ties so the
        // schedule is deterministic.
        order.sort_by(|&a, &b| {
            ready[a]
                .partial_cmp(&ready[b])
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.cmp(&b))
        });
        if serial_here {
            // Work-conserving FCFS with chains: an item only claims a lane
            // once it is actually *runnable* (arrived AND its group's
            // previous item finished). Claiming at arrival would let early
            // groups reserve every lane far into the future and starve
            // later-arriving groups of idle capacity no real scheduler
            // would waste. Per group, items run in *input* order — a
            // serial resource drains its stream's items in the order they
            // were produced, even when an item with a zero-cost prefix
            // would reach the stage early; across groups, the
            // earliest-runnable head goes first.
            let mut queues: Vec<Vec<usize>> = vec![Vec::new(); ngroups];
            for i in (0..items.len()).rev() {
                queues[group_of(i)].push(i); // reversed: pop() is input order
            }
            let mut remaining: usize = order.len();
            while remaining > 0 {
                // Pick the group whose head item can start soonest.
                let mut best: Option<(f64, usize)> = None;
                for (g, q) in queues.iter().enumerate() {
                    if let Some(&i) = q.last() {
                        let runnable = ready[i].max(group_free[g]);
                        let better = match best {
                            None => true,
                            Some((t, bg)) => {
                                runnable < t || (runnable == t && queues[bg].last() > Some(&i))
                            }
                        };
                        if better {
                            best = Some((runnable, g));
                        }
                    }
                }
                let Some((runnable, g)) = best else { break };
                let i = match queues[g].pop() {
                    Some(i) => i,
                    None => break,
                };
                remaining -= 1;
                let d = items[i].get(s).copied().unwrap_or(0.0).max(0.0);
                stage_busy[s] += d;
                let mut li = 0;
                for (k, f) in lane_free.iter().enumerate() {
                    if *f < lane_free[li] {
                        li = k;
                    }
                }
                let start = runnable.max(lane_free[li]);
                let done = start + d;
                if d > 0.0 {
                    stage_intervals[s].push((start, done));
                }
                lane_free[li] = done;
                ready[i] = done;
                group_free[g] = done;
            }
        } else {
            for &i in &order {
                let d = items[i].get(s).copied().unwrap_or(0.0).max(0.0);
                stage_busy[s] += d;
                // Earliest-free lane (linear scan; lane vectors are small
                // because `lane_count.min(items.len())` bounds useful
                // lanes).
                let mut li = 0;
                for (k, f) in lane_free.iter().enumerate() {
                    if *f < lane_free[li] {
                        li = k;
                    }
                }
                let start = ready[i].max(lane_free[li]);
                let done = start + d;
                if d > 0.0 {
                    stage_intervals[s].push((start, done));
                }
                lane_free[li] = done;
                ready[i] = done;
            }
        }
    }
    let makespan = ready.iter().cloned().fold(0.0, f64::max);
    PipelineReport {
        makespan,
        stage_busy,
        item_done: ready,
        stage_intervals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(makespan(&[], 4), 0.0);
        assert_eq!(makespan(&[5.0], 4), 5.0);
    }

    #[test]
    fn one_lane_is_sum() {
        assert_eq!(makespan(&[1.0, 2.0, 3.0], 1), 6.0);
        assert_eq!(makespan(&[1.0, 2.0, 3.0], 0), 6.0);
    }

    #[test]
    fn many_lanes_is_max() {
        assert_eq!(makespan(&[1.0, 2.0, 3.0], 10), 3.0);
    }

    #[test]
    fn balanced_assignment() {
        // 4 tasks of 1.0 on 2 lanes -> 2.0.
        assert_eq!(makespan(&[1.0; 4], 2), 2.0);
        // LPT on {3,3,2,2,2} with 2 lanes packs 3+2+2 vs 3+2 -> 7
        // (optimal is 6; LPT is a 4/3-approximation and deterministic).
        assert_eq!(makespan(&[3.0, 3.0, 2.0, 2.0, 2.0], 2), 7.0);
    }

    #[test]
    fn bounds_hold() {
        let d: Vec<f64> = (1..=37).map(|i| (i as f64) * 0.31).collect();
        for lanes in 1..=64 {
            let m = makespan(&d, lanes);
            let sum: f64 = d.iter().sum();
            let max = d.iter().cloned().fold(0.0, f64::max);
            assert!(m >= max - 1e-12, "lanes {lanes}");
            assert!(m <= sum + 1e-12, "lanes {lanes}");
            // Parallel efficiency: never worse than sum/lanes by more than
            // the largest task.
            assert!(m <= sum / lanes as f64 + max + 1e-12, "lanes {lanes}");
        }
    }

    #[test]
    fn monotone_in_lanes() {
        let d: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let mut prev = f64::INFINITY;
        for lanes in 1..=8 {
            let m = makespan(&d, lanes);
            assert!(m <= prev + 1e-12, "makespan should not grow with lanes");
            prev = m;
        }
    }

    // ---- pipeline: hand-computed timelines ----------------------------

    #[test]
    fn pipeline_empty() {
        let r = pipeline(&[], &[1, 1]);
        assert_eq!(r.makespan, 0.0);
        assert_eq!(r.stage_busy, vec![0.0, 0.0]);
        let r = pipeline(&[vec![1.0]], &[]);
        assert_eq!(r.makespan, 0.0);
    }

    #[test]
    fn pipeline_single_stage_is_lpt_like() {
        // One stage, one lane: serial sum; first item done at 1.
        let items = vec![vec![1.0], vec![2.0], vec![3.0]];
        let r = pipeline(&items, &[1]);
        assert_eq!(r.makespan, 6.0);
        assert_eq!(r.item_done, vec![1.0, 3.0, 6.0]);
        // Enough lanes: max.
        let r = pipeline(&items, &[8]);
        assert_eq!(r.makespan, 3.0);
    }

    #[test]
    fn pipeline_two_stage_textbook_overlap() {
        // 3 items × [1, 1], one lane per stage — the textbook pipeline:
        //   s0: [0,1] [1,2] [2,3]
        //   s1:   [1,2] [2,3] [3,4]
        // makespan = n + stages - 1 = 4; additive barriers would say 6.
        let items = vec![vec![1.0, 1.0]; 3];
        let r = pipeline(&items, &[1, 1]);
        assert_eq!(r.makespan, 4.0);
        assert_eq!(r.item_done, vec![2.0, 3.0, 4.0]);
        assert_eq!(r.stage_busy, vec![3.0, 3.0]);
        assert_eq!(r.first_done_among([0usize]), 2.0);
    }

    #[test]
    fn pipeline_bottleneck_plus_fill_drain() {
        // Stage 0 is the bottleneck (2 s/item), stage 1 drains in 1 s:
        //   s0: [0,2] [2,4]    s1: [2,3] [4,5]
        // makespan = bottleneck (4) + drain (1) = 5.
        let items = vec![vec![2.0, 1.0]; 2];
        let r = pipeline(&items, &[1, 1]);
        assert_eq!(r.makespan, 5.0);
        assert_eq!(r.item_done, vec![3.0, 5.0]);
    }

    #[test]
    fn pipeline_multi_lane_stage_feeds_serial_stage() {
        // 4 items × [1, 1]; stage 0 has 2 lanes, stage 1 has 1:
        //   s0: items 0,1 → [0,1]; items 2,3 → [1,2]
        //   s1 arrivals (1,1,2,2) served FCFS: [1,2] [2,3] [3,4] [4,5]
        let items = vec![vec![1.0, 1.0]; 4];
        let r = pipeline(&items, &[2, 1]);
        assert_eq!(r.makespan, 5.0);
        assert_eq!(r.stage_busy, vec![4.0, 4.0]);
    }

    #[test]
    fn pipeline_out_of_order_arrivals_are_fcfs() {
        // Item 1 is cheap at stage 0 and arrives at stage 1 first; FCFS
        // must let it jump ahead of item 0:
        //   s0 (2 lanes): item0 [0,3], item1 [0,1]
        //   s1 (1 lane):  item1 [1,2], item0 [3,4]
        let items = vec![vec![3.0, 1.0], vec![1.0, 1.0]];
        let r = pipeline(&items, &[2, 1]);
        assert_eq!(r.item_done, vec![4.0, 2.0]);
        assert_eq!(r.makespan, 4.0);
    }

    #[test]
    fn pipeline_bounds_vs_additive_and_chains() {
        // Randomish but deterministic durations; the overlapped makespan
        // must sit between the obvious lower/upper bounds.
        let items: Vec<Vec<f64>> = (0..23)
            .map(|i| {
                (0..4)
                    .map(|s| (((i * 7 + s * 13) % 11) as f64) * 0.17 + 0.01)
                    .collect()
            })
            .collect();
        let lanes = [1usize, 3, 2, 1];
        let r = pipeline(&items, &lanes);
        // Upper bound: additive barriers (sum of per-stage LPT makespans).
        let additive: f64 = (0..lanes.len())
            .map(|s| {
                let d: Vec<f64> = items.iter().map(|it| it[s]).collect();
                makespan(&d, lanes[s])
            })
            .sum();
        assert!(
            r.makespan <= additive + 1e-9,
            "{} vs {additive}",
            r.makespan
        );
        // Lower bounds: busiest stage over its lanes; longest item chain.
        for (s, &l) in lanes.iter().enumerate() {
            assert!(r.makespan >= r.stage_busy[s] / l as f64 - 1e-9);
        }
        let chain = items
            .iter()
            .map(|it| it.iter().sum::<f64>())
            .fold(0.0, f64::max);
        assert!(r.makespan >= chain - 1e-9);
    }

    #[test]
    fn grouped_empty_affinity_matches_plain() {
        let items: Vec<Vec<f64>> = (0..17)
            .map(|i| (0..3).map(|s| ((i * 5 + s * 3) % 7) as f64 * 0.2).collect())
            .collect();
        let lanes = [1usize, 4, 2];
        assert_eq!(
            pipeline(&items, &lanes),
            pipeline_grouped(&items, &lanes, &[], &[])
        );
        // All-false serial flags are also a no-op.
        assert_eq!(
            pipeline(&items, &lanes),
            pipeline_grouped(&items, &lanes, &[0, 1, 0], &[false, false, false])
        );
    }

    #[test]
    fn grouped_serial_stage_chains_within_group() {
        // 4 items in 2 groups, single serial stage with plenty of lanes:
        // each group's items must chain, groups run concurrently.
        let items = vec![vec![1.0]; 4];
        let groups = [0, 0, 1, 1];
        let r = pipeline_grouped(&items, &[8], &groups, &[true]);
        assert_eq!(r.item_done, vec![1.0, 2.0, 1.0, 2.0]);
        assert_eq!(r.makespan, 2.0);
        // Without affinity the same items finish together at 1.0.
        assert_eq!(pipeline(&items, &[8]).makespan, 1.0);
    }

    #[test]
    fn grouped_serial_never_beats_plain() {
        let items: Vec<Vec<f64>> = (0..23)
            .map(|i| {
                (0..4)
                    .map(|s| (((i * 7 + s * 13) % 11) as f64) * 0.17 + 0.01)
                    .collect()
            })
            .collect();
        let lanes = [1usize, 3, 8, 1];
        let groups: Vec<usize> = (0..23).map(|i| i % 5).collect();
        let plain = pipeline(&items, &lanes);
        let grouped = pipeline_grouped(&items, &lanes, &groups, &[false, false, true, false]);
        assert!(grouped.makespan >= plain.makespan - 1e-12);
        // Busy time is schedule-independent.
        assert_eq!(grouped.stage_busy, plain.stage_busy);
        // Lower bound: every group's serial chain at the serial stage.
        for g in 0..5 {
            let chain: f64 = items
                .iter()
                .enumerate()
                .filter(|(i, _)| groups[*i] == g)
                .map(|(_, it)| it[2])
                .sum();
            assert!(grouped.makespan >= chain - 1e-9);
        }
    }

    #[test]
    fn stage_intervals_sum_to_busy_and_respect_lanes() {
        let items: Vec<Vec<f64>> = (0..23)
            .map(|i| {
                (0..4)
                    .map(|s| (((i * 7 + s * 13) % 11) as f64) * 0.17)
                    .collect()
            })
            .collect();
        let lanes = [1usize, 3, 2, 1];
        let groups: Vec<usize> = (0..23).map(|i| i % 5).collect();
        let r = pipeline_grouped(&items, &lanes, &groups, &[false, false, true, false]);
        for (s, ivs) in r.stage_intervals.iter().enumerate() {
            // Interval lengths reproduce stage busy time exactly.
            let len: f64 = ivs.iter().map(|(a, b)| b - a).sum();
            assert!((len - r.stage_busy[s]).abs() < 1e-9, "stage {s}");
            // Zero-duration service never recorded; all windows inside
            // the makespan.
            for &(a, b) in ivs {
                assert!(b > a, "stage {s}: empty interval");
                assert!(b <= r.makespan + 1e-9, "stage {s}: past makespan");
            }
            // Concurrency never exceeds the stage's lane count: sweep the
            // interval endpoints and count overlaps.
            let mut events: Vec<(f64, i64)> = Vec::new();
            for &(a, b) in ivs {
                events.push((a, 1));
                events.push((b, -1));
            }
            events.sort_by(|x, y| {
                x.0.partial_cmp(&y.0)
                    .unwrap_or(std::cmp::Ordering::Equal)
                    .then(x.1.cmp(&y.1))
            });
            let mut depth = 0i64;
            for (_, d) in events {
                depth += d;
                assert!(depth <= lanes[s] as i64, "stage {s}: over lane count");
            }
        }
    }

    #[test]
    fn textbook_pipeline_intervals_are_exact() {
        // 3 items × [1, 1], one lane per stage (see
        // pipeline_two_stage_textbook_overlap for the timeline).
        let items = vec![vec![1.0, 1.0]; 3];
        let r = pipeline(&items, &[1, 1]);
        assert_eq!(
            r.stage_intervals[0],
            vec![(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        );
        assert_eq!(
            r.stage_intervals[1],
            vec![(1.0, 2.0), (2.0, 3.0), (3.0, 4.0)]
        );
    }

    #[test]
    fn pipeline_missing_stage_entries_are_zero() {
        let items = vec![vec![1.0], vec![1.0, 2.0]];
        let r = pipeline(&items, &[1, 1]);
        // item0: s0 [0,1], s1 [1,1]; item1: s0 [1,2], s1 [2,4].
        assert_eq!(r.item_done, vec![1.0, 4.0]);
        assert_eq!(r.makespan, 4.0);
    }
}
