//! Stage-time composition: turn per-split durations into a stage makespan
//! given a node's parallel lanes, using the greedy Longest-Processing-Time
//! heuristic (deterministic and within 4/3 of optimal).

/// Makespan of scheduling `durations` onto `lanes` identical lanes (LPT).
///
/// `lanes == 0` is treated as 1. The result is at least `max(durations)`
/// and at most `sum(durations)`.
pub fn makespan(durations: &[f64], lanes: usize) -> f64 {
    let lanes = lanes.max(1);
    if durations.is_empty() {
        return 0.0;
    }
    if lanes == 1 || durations.len() == 1 {
        return durations.iter().sum();
    }
    let mut sorted: Vec<f64> = durations.to_vec();
    sorted.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    // Min-heap over lane loads.
    let mut loads = vec![0.0f64; lanes.min(sorted.len())];
    for d in sorted {
        // Find the least-loaded lane (linear scan; lane counts are small).
        let (idx, _) = loads
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .expect("non-empty loads");
        loads[idx] += d;
    }
    loads.iter().cloned().fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_and_single() {
        assert_eq!(makespan(&[], 4), 0.0);
        assert_eq!(makespan(&[5.0], 4), 5.0);
    }

    #[test]
    fn one_lane_is_sum() {
        assert_eq!(makespan(&[1.0, 2.0, 3.0], 1), 6.0);
        assert_eq!(makespan(&[1.0, 2.0, 3.0], 0), 6.0);
    }

    #[test]
    fn many_lanes_is_max() {
        assert_eq!(makespan(&[1.0, 2.0, 3.0], 10), 3.0);
    }

    #[test]
    fn balanced_assignment() {
        // 4 tasks of 1.0 on 2 lanes -> 2.0.
        assert_eq!(makespan(&[1.0; 4], 2), 2.0);
        // LPT on {3,3,2,2,2} with 2 lanes packs 3+2+2 vs 3+2 -> 7
        // (optimal is 6; LPT is a 4/3-approximation and deterministic).
        assert_eq!(makespan(&[3.0, 3.0, 2.0, 2.0, 2.0], 2), 7.0);
    }

    #[test]
    fn bounds_hold() {
        let d: Vec<f64> = (1..=37).map(|i| (i as f64) * 0.31).collect();
        for lanes in 1..=64 {
            let m = makespan(&d, lanes);
            let sum: f64 = d.iter().sum();
            let max = d.iter().cloned().fold(0.0, f64::max);
            assert!(m >= max - 1e-12, "lanes {lanes}");
            assert!(m <= sum + 1e-12, "lanes {lanes}");
            // Parallel efficiency: never worse than sum/lanes by more than
            // the largest task.
            assert!(m <= sum / lanes as f64 + max + 1e-12, "lanes {lanes}");
        }
    }

    #[test]
    fn monotone_in_lanes() {
        let d: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        let mut prev = f64::INFINITY;
        for lanes in 1..=8 {
            let m = makespan(&d, lanes);
            assert!(m <= prev + 1e-12, "makespan should not grow with lanes");
            prev = m;
        }
    }
}
