//! `netsim` — a deterministic resource cost model for a disaggregated
//! compute/storage cluster.
//!
//! The paper's testbed is three physical machines (a strong compute node, an
//! OCS frontend, and a deliberately weak storage node) on 10 GbE. This crate
//! substitutes that hardware with an explicit, auditable model:
//!
//! * every **operator** bills abstract CPU *work units* to the node it runs
//!   on ([`NodeSpec`] converts work to seconds given core count, clock and
//!   an engine-efficiency factor);
//! * every **disk read** bills (compressed) bytes to a [`DiskSpec`];
//! * every **network transfer** bills bytes + a per-request latency to a
//!   [`LinkSpec`], and increments the data-movement [`ByteMeter`] the
//!   figures report;
//! * per-split times are combined into stage times with an LPT
//!   [`makespan`] over the node's parallel lanes.
//!
//! Execution elsewhere in the workspace is *real* (actual vectorized
//! kernels over actual data); only *time* comes from this model. That is
//! exactly the mechanism behind the paper's findings — e.g. expression
//! projection pushdown loses because the same work units cost more seconds
//! on 16 × 2.0 GHz than on 64 × 2.9 GHz, while aggregation pushdown wins
//! because it collapses the bytes crossing the link.

#![warn(missing_docs)]

pub mod cost;
pub mod ledger;
pub mod meter;
pub mod sched;
pub mod spec;
pub mod stats;

pub use cost::CostParams;
pub use ledger::{Ledger, Phase};
pub use meter::ByteMeter;
pub use sched::{makespan, pipeline, pipeline_grouped, PipelineReport};
pub use spec::{ClusterSpec, DiskSpec, LinkSpec, NodeSpec, Work};
pub use stats::{ExecStats, FrameTiming};
