//! Property tests for the columnar substrate: IPC round-trips, kernel
//! algebraic identities, sort invariants, and aggregation merge laws.

use std::sync::Arc;

use columnar::agg::{AggFunc, AggState};
use columnar::builder::ArrayBuilder;
use columnar::ipc::{decode_batch, encode_batch};
use columnar::kernels::{boolean, cmp, selection};
use columnar::prelude::*;
use columnar::sort::{sort_batch, top_n, SortKey};
use proptest::prelude::*;

/// Strategy: an optional-i64 column (None = NULL).
fn int_col(max_len: usize) -> impl Strategy<Value = Vec<Option<i64>>> {
    proptest::collection::vec(proptest::option::weighted(0.9, -1000i64..1000), 0..max_len)
}

fn build_int(values: &[Option<i64>]) -> Array {
    let mut b = ArrayBuilder::new(DataType::Int64);
    for v in values {
        match v {
            Some(x) => b.push_i64(*x),
            None => b.push_null(),
        }
    }
    b.finish()
}

fn build_f64(values: &[f64]) -> Array {
    Array::from_f64(values.to_vec())
}

fn scalars_eq(a: &Scalar, b: &Scalar) -> bool {
    match (a, b) {
        (Scalar::Float64(x), Scalar::Float64(y)) if x.is_nan() && y.is_nan() => true,
        _ => a == b,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ipc_roundtrip_int_and_string(
        ints in int_col(200),
        strs in proptest::collection::vec(".{0,12}", 0..50),
    ) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int64, true),
            Field::new("f", DataType::Float64, false),
        ]));
        let floats: Vec<f64> = (0..ints.len()).map(|i| i as f64 * 0.37).collect();
        let batch = RecordBatch::try_new(
            schema,
            vec![Arc::new(build_int(&ints)), Arc::new(build_f64(&floats))],
        ).unwrap();
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        prop_assert_eq!(&back, &batch);

        // Strings separately (nullable).
        let schema = Arc::new(Schema::new(vec![Field::new("s", DataType::Utf8, true)]));
        let mut b = ArrayBuilder::new(DataType::Utf8);
        for (i, s) in strs.iter().enumerate() {
            if i % 7 == 3 { b.push_null(); } else { b.push_str(s); }
        }
        let batch = RecordBatch::try_new(schema, vec![Arc::new(b.finish())]).unwrap();
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn filter_matches_scalar_semantics(ints in int_col(300), threshold in -1000i64..1000) {
        let arr = build_int(&ints);
        let mask = cmp::gt_scalar(&arr, &Scalar::Int64(threshold)).unwrap();
        let filtered = selection::filter(&arr, &mask).unwrap();
        let expected: Vec<i64> = ints.iter().flatten().copied().filter(|&v| v > threshold).collect();
        let got: Vec<i64> = (0..filtered.len()).map(|i| filtered.scalar_at(i).as_i64().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn demorgan_holds_without_nulls(
        a in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let b: Vec<bool> = a.iter().map(|x| !x).collect();
        let ba = Array::from_bools(a.clone());
        let bb = Array::from_bools(b);
        let (ma, mb) = (ba.as_bool().unwrap(), bb.as_bool().unwrap());
        // !(a AND b) == !a OR !b
        let lhs = boolean::not(&boolean::and(ma, mb).unwrap());
        let rhs = boolean::or(&boolean::not(ma), &boolean::not(mb)).unwrap();
        prop_assert_eq!(lhs.values, rhs.values);
    }

    #[test]
    fn sort_is_permutation_and_ordered(vals in proptest::collection::vec(-500i64..500, 0..300)) {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        let batch = RecordBatch::try_new(schema, vec![Arc::new(Array::from_i64(vals.clone()))]).unwrap();
        let sorted = sort_batch(&batch, &[SortKey::asc(0)]).unwrap();
        let got: Vec<i64> = sorted.column(0).as_i64().unwrap().values.clone();
        let mut expect = vals.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn topn_equals_sort_then_limit(
        vals in proptest::collection::vec(-500i64..500, 0..300),
        n in 0usize..50,
    ) {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        let batch = RecordBatch::try_new(schema, vec![Arc::new(Array::from_i64(vals))]).unwrap();
        let keys = [SortKey::asc(0)];
        let top = top_n(&batch, &keys, n).unwrap();
        let full = sort_batch(&batch, &keys).unwrap();
        let lim = selection::limit_batch(&full, n).unwrap();
        prop_assert_eq!(top.rows(), lim.rows());
    }

    #[test]
    fn agg_merge_associative(
        chunks in proptest::collection::vec(int_col(60), 1..6),
    ) {
        // Aggregating chunk-wise then merging == aggregating the concatenation.
        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Count, AggFunc::Avg] {
            let mut merged = AggState::new(func, Some(DataType::Int64)).unwrap();
            let mut flat: Vec<Option<i64>> = Vec::new();
            for ch in &chunks {
                let arr = build_int(ch);
                let mut st = AggState::new(func, Some(DataType::Int64)).unwrap();
                for i in 0..arr.len() {
                    st.update(Some(&arr), i);
                }
                merged.merge(&st).unwrap();
                flat.extend_from_slice(ch);
            }
            let all = build_int(&flat);
            let mut whole = AggState::new(func, Some(DataType::Int64)).unwrap();
            for i in 0..all.len() {
                whole.update(Some(&all), i);
            }
            let (m, w) = (merged.finish(), whole.finish());
            // AVG accumulates floats in a different association order; allow tiny eps.
            let ok = match (&m, &w) {
                (Scalar::Float64(x), Scalar::Float64(y)) => (x - y).abs() < 1e-9,
                _ => scalars_eq(&m, &w),
            };
            prop_assert!(ok, "{func:?}: merged {m:?} vs whole {w:?}");
        }
    }

    #[test]
    fn take_then_take_composes(vals in proptest::collection::vec(any::<i64>(), 1..100)) {
        let arr = Array::from_i64(vals.clone());
        let idx1: Vec<usize> = (0..vals.len()).rev().collect();
        let once = selection::take_indices(&arr, &idx1).unwrap();
        let idx2: Vec<usize> = (0..vals.len()).rev().collect();
        let twice = selection::take_indices(&once, &idx2).unwrap();
        prop_assert_eq!(twice.as_i64().unwrap().values.clone(), vals);
    }
}
