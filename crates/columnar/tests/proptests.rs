//! Property tests for the columnar substrate: IPC round-trips, kernel
//! algebraic identities, sort invariants, and aggregation merge laws.

use std::sync::Arc;

use std::collections::HashMap;

use columnar::agg::{AggFunc, GroupAcc};
use columnar::builder::ArrayBuilder;
use columnar::groupby::GroupedAggregator;
use columnar::ipc::{decode_batch, encode_batch};
use columnar::kernels::{boolean, cmp, selection};
use columnar::prelude::*;
use columnar::sort::{sort_batch, top_n, SortKey};
use proptest::prelude::*;

/// Strategy: an optional-i64 column (None = NULL).
fn int_col(max_len: usize) -> impl Strategy<Value = Vec<Option<i64>>> {
    proptest::collection::vec(proptest::option::weighted(0.9, -1000i64..1000), 0..max_len)
}

fn build_int(values: &[Option<i64>]) -> Array {
    let mut b = ArrayBuilder::new(DataType::Int64);
    for v in values {
        match v {
            Some(x) => b.push_i64(*x),
            None => b.push_null(),
        }
    }
    b.finish()
}

fn build_f64(values: &[f64]) -> Array {
    Array::from_f64(values.to_vec())
}

fn scalars_eq(a: &Scalar, b: &Scalar) -> bool {
    match (a, b) {
        (Scalar::Float64(x), Scalar::Float64(y)) if x.is_nan() && y.is_nan() => true,
        _ => a == b,
    }
}

/// Float comparison with a small epsilon: chunked merges re-associate float
/// additions, which is allowed to drift in the last bits.
fn scalars_close(a: &Scalar, b: &Scalar) -> bool {
    match (a, b) {
        (Scalar::Float64(x), Scalar::Float64(y)) if x.is_nan() && y.is_nan() => true,
        (Scalar::Float64(x), Scalar::Float64(y)) => {
            (x - y).abs() <= 1e-9 * x.abs().max(y.abs()).max(1.0)
        }
        _ => a == b,
    }
}

/// The f64 group-key pathologies: -0.0 vs 0.0 and distinct NaN payloads.
fn weird_f64() -> impl Strategy<Value = Option<f64>> {
    proptest::option::weighted(
        0.85,
        (0usize..16).prop_map(|i| match i {
            0 => 0.0,
            1 => -0.0,
            2 => f64::NAN,
            3 => f64::from_bits(0x7ff8_0000_0000_beef),
            4 => 1.5,
            5 => -2.5,
            _ => (i as f64 - 10.0) / 4.0,
        }),
    )
}

fn build_opt_f64(values: &[Option<f64>]) -> Array {
    let mut b = ArrayBuilder::new(DataType::Float64);
    for v in values {
        match v {
            Some(x) => b.push_f64(*x),
            None => b.push_null(),
        }
    }
    b.finish()
}

/// SQL-equality normalization for an f64 key, mirroring what the group-id
/// kernel promises (`-0.0 == 0.0`, all NaNs equal).
fn norm_bits(v: f64) -> u64 {
    if v == 0.0 {
        0.0f64.to_bits()
    } else if v.is_nan() {
        0x7ff8_0000_0000_0000
    } else {
        v.to_bits()
    }
}

/// One generated row: `(k_int, k_f64, v, f)` — two group keys, an Int64
/// measure, and a Float64 measure.
type RefRow = (Option<i64>, Option<f64>, Option<i64>, Option<f64>);

/// A deliberately naive row-at-a-time reference aggregator for
/// `GROUP BY k_int, k_f64` computing
/// `COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(f), AVG(v)`.
#[derive(Default, Clone)]
struct RefState {
    n_star: i64,
    n_v: i64,
    sum_v: i64,
    sum_seen: bool,
    min_v: Option<i64>,
    max_f: Option<f64>,
    avg_sum: f64,
    avg_n: i64,
}

fn reference_rows(rows: &[RefRow]) -> Vec<Vec<Scalar>> {
    let mut order: Vec<(Option<i64>, Option<u64>)> = Vec::new();
    let mut groups: HashMap<(Option<i64>, Option<u64>), RefState> = HashMap::new();
    for &(k1, k2, v, f) in rows {
        let key = (k1, k2.map(norm_bits));
        if !groups.contains_key(&key) {
            order.push(key);
        }
        let st = groups.entry(key).or_default();
        st.n_star += 1;
        if let Some(v) = v {
            st.n_v += 1;
            st.sum_v = st.sum_v.wrapping_add(v);
            st.sum_seen = true;
            st.min_v = Some(st.min_v.map_or(v, |m| m.min(v)));
            st.avg_sum += v as f64;
            st.avg_n += 1;
        }
        if let Some(f) = f {
            st.max_f = Some(match st.max_f {
                None => f,
                Some(m) => {
                    if f.total_cmp(&m).is_gt() {
                        f
                    } else {
                        m
                    }
                }
            });
        }
    }
    order
        .iter()
        .map(|key| {
            let st = &groups[key];
            vec![
                key.0.map_or(Scalar::Null, Scalar::Int64),
                key.1
                    .map_or(Scalar::Null, |b| Scalar::Float64(f64::from_bits(b))),
                Scalar::Int64(st.n_star),
                Scalar::Int64(st.n_v),
                if st.sum_seen {
                    Scalar::Int64(st.sum_v)
                } else {
                    Scalar::Null
                },
                st.min_v.map_or(Scalar::Null, Scalar::Int64),
                st.max_f.map_or(Scalar::Null, Scalar::Float64),
                if st.avg_n == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float64(st.avg_sum / st.avg_n as f64)
                },
            ]
        })
        .collect()
}

fn grouped_fixture() -> GroupedAggregator {
    GroupedAggregator::new(
        vec![DataType::Int64, DataType::Float64],
        &[
            (AggFunc::Count, None),
            (AggFunc::Count, Some(DataType::Int64)),
            (AggFunc::Sum, Some(DataType::Int64)),
            (AggFunc::Min, Some(DataType::Int64)),
            (AggFunc::Max, Some(DataType::Float64)),
            (AggFunc::Avg, Some(DataType::Int64)),
        ],
    )
    .unwrap()
}

fn update_chunk(agg: &mut GroupedAggregator, rows: &[RefRow]) {
    let k1 = build_int(&rows.iter().map(|r| r.0).collect::<Vec<_>>());
    let k2 = build_opt_f64(&rows.iter().map(|r| r.1).collect::<Vec<_>>());
    let v = build_int(&rows.iter().map(|r| r.2).collect::<Vec<_>>());
    let f = build_opt_f64(&rows.iter().map(|r| r.3).collect::<Vec<_>>());
    // COUNT(x) and the three v-aggregates share the v column; MAX takes f.
    agg.update(
        &[&k1, &k2],
        &[None, Some(&v), Some(&v), Some(&v), Some(&f), Some(&v)],
        rows.len(),
    )
    .unwrap();
}

fn result_rows(agg: GroupedAggregator) -> Vec<Vec<Scalar>> {
    let n = agg.num_groups();
    let (keys, measures) = agg.finish();
    (0..n)
        .map(|g| {
            keys.iter()
                .chain(measures.iter())
                .map(|a| a.scalar_at(g))
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn ipc_roundtrip_int_and_string(
        ints in int_col(200),
        strs in proptest::collection::vec(".{0,12}", 0..50),
    ) {
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int64, true),
            Field::new("f", DataType::Float64, false),
        ]));
        let floats: Vec<f64> = (0..ints.len()).map(|i| i as f64 * 0.37).collect();
        let batch = RecordBatch::try_new(
            schema,
            vec![Arc::new(build_int(&ints)), Arc::new(build_f64(&floats))],
        ).unwrap();
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        prop_assert_eq!(&back, &batch);

        // Strings separately (nullable).
        let schema = Arc::new(Schema::new(vec![Field::new("s", DataType::Utf8, true)]));
        let mut b = ArrayBuilder::new(DataType::Utf8);
        for (i, s) in strs.iter().enumerate() {
            if i % 7 == 3 { b.push_null(); } else { b.push_str(s); }
        }
        let batch = RecordBatch::try_new(schema, vec![Arc::new(b.finish())]).unwrap();
        let back = decode_batch(&encode_batch(&batch)).unwrap();
        prop_assert_eq!(back, batch);
    }

    #[test]
    fn filter_matches_scalar_semantics(ints in int_col(300), threshold in -1000i64..1000) {
        let arr = build_int(&ints);
        let mask = cmp::gt_scalar(&arr, &Scalar::Int64(threshold)).unwrap();
        let filtered = selection::filter(&arr, &mask).unwrap();
        let expected: Vec<i64> = ints.iter().flatten().copied().filter(|&v| v > threshold).collect();
        let got: Vec<i64> = (0..filtered.len()).map(|i| filtered.scalar_at(i).as_i64().unwrap()).collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn demorgan_holds_without_nulls(
        a in proptest::collection::vec(any::<bool>(), 0..200),
    ) {
        let b: Vec<bool> = a.iter().map(|x| !x).collect();
        let ba = Array::from_bools(a.clone());
        let bb = Array::from_bools(b);
        let (ma, mb) = (ba.as_bool().unwrap(), bb.as_bool().unwrap());
        // !(a AND b) == !a OR !b
        let lhs = boolean::not(&boolean::and(ma, mb).unwrap());
        let rhs = boolean::or(&boolean::not(ma), &boolean::not(mb)).unwrap();
        prop_assert_eq!(lhs.values, rhs.values);
    }

    #[test]
    fn sort_is_permutation_and_ordered(vals in proptest::collection::vec(-500i64..500, 0..300)) {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        let batch = RecordBatch::try_new(schema, vec![Arc::new(Array::from_i64(vals.clone()))]).unwrap();
        let sorted = sort_batch(&batch, &[SortKey::asc(0)]).unwrap();
        let got: Vec<i64> = sorted.column(0).as_i64().unwrap().values.clone();
        let mut expect = vals.clone();
        expect.sort_unstable();
        prop_assert_eq!(got, expect);
    }

    #[test]
    fn topn_equals_sort_then_limit(
        vals in proptest::collection::vec(-500i64..500, 0..300),
        n in 0usize..50,
    ) {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, false)]));
        let batch = RecordBatch::try_new(schema, vec![Arc::new(Array::from_i64(vals))]).unwrap();
        let keys = [SortKey::asc(0)];
        let top = top_n(&batch, &keys, n).unwrap();
        let full = sort_batch(&batch, &keys).unwrap();
        let lim = selection::limit_batch(&full, n).unwrap();
        prop_assert_eq!(top.rows(), lim.rows());
    }

    #[test]
    fn agg_merge_associative(
        chunks in proptest::collection::vec(int_col(60), 1..6),
    ) {
        // Aggregating chunk-wise then merging == aggregating the concatenation
        // (single global group: all rows map to group ordinal 0).
        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Count, AggFunc::Avg] {
            let mut merged = GroupAcc::new(func, Some(DataType::Int64)).unwrap();
            merged.resize(1);
            let mut flat: Vec<Option<i64>> = Vec::new();
            for ch in &chunks {
                let arr = build_int(ch);
                let mut st = GroupAcc::new(func, Some(DataType::Int64)).unwrap();
                st.resize(1);
                st.update(&vec![0u32; arr.len()], Some(&arr));
                merged.merge(&st, &[0]).unwrap();
                flat.extend_from_slice(ch);
            }
            let all = build_int(&flat);
            let mut whole = GroupAcc::new(func, Some(DataType::Int64)).unwrap();
            whole.resize(1);
            whole.update(&vec![0u32; all.len()], Some(&all));
            let (m, w) = (merged.finish_one(0), whole.finish_one(0));
            // AVG accumulates floats in a different association order; allow tiny eps.
            let ok = match (&m, &w) {
                (Scalar::Float64(x), Scalar::Float64(y)) => (x - y).abs() < 1e-9,
                _ => scalars_eq(&m, &w),
            };
            prop_assert!(ok, "{func:?}: merged {m:?} vs whole {w:?}");
        }
    }

    /// The tentpole satellite: the vectorized grouped-aggregation engine must
    /// agree with a naive row-at-a-time scalar reference on random batches —
    /// including NULL keys, `-0.0`/NaN float keys, empty chunks, and a
    /// partial→merge→finish pass over random batch splits.
    #[test]
    fn grouped_agg_matches_scalar_reference(
        chunks in proptest::collection::vec(
            proptest::collection::vec(
                (
                    proptest::option::weighted(0.85, -4i64..4),
                    weird_f64(),
                    proptest::option::weighted(0.85, -1000i64..1000),
                    weird_f64(),
                ),
                0..80,
            ),
            0..6,
        ),
    ) {
        let flat: Vec<_> = chunks.iter().flatten().copied().collect();
        let expected = reference_rows(&flat);

        // Whole-pass vectorized: identical row order, so results are exact.
        let mut whole = grouped_fixture();
        update_chunk(&mut whole, &flat);
        let got = result_rows(whole);
        prop_assert_eq!(got.len(), expected.len(), "group count (whole pass)");
        for (g, (gr, er)) in got.iter().zip(&expected).enumerate() {
            for (c, (gs, es)) in gr.iter().zip(er).enumerate() {
                prop_assert!(scalars_eq(gs, es), "whole pass group {g} col {c}: {gs:?} vs {es:?}");
            }
        }

        // Partial per chunk, merged into the first, then finished: group order
        // is still first-seen over the concatenation, values match modulo
        // float re-association.
        let mut partials: Vec<GroupedAggregator> = chunks
            .iter()
            .map(|ch| {
                let mut a = grouped_fixture();
                update_chunk(&mut a, ch);
                a
            })
            .collect();
        let mut merged = grouped_fixture();
        for p in partials.drain(..) {
            merged.merge(&p).unwrap();
        }
        let got = result_rows(merged);
        prop_assert_eq!(got.len(), expected.len(), "group count (merged)");
        for (g, (gr, er)) in got.iter().zip(&expected).enumerate() {
            for (c, (gs, es)) in gr.iter().zip(er).enumerate() {
                prop_assert!(scalars_close(gs, es), "merged group {g} col {c}: {gs:?} vs {es:?}");
            }
        }
    }

    #[test]
    fn take_then_take_composes(vals in proptest::collection::vec(any::<i64>(), 1..100)) {
        let arr = Array::from_i64(vals.clone());
        let idx1: Vec<usize> = (0..vals.len()).rev().collect();
        let once = selection::take_indices(&arr, &idx1).unwrap();
        let idx2: Vec<usize> = (0..vals.len()).rev().collect();
        let twice = selection::take_indices(&once, &idx2).unwrap();
        prop_assert_eq!(twice.as_i64().unwrap().values.clone(), vals);
    }
}
