//! [`RecordBatch`]: a schema plus equal-length column arrays.
//!
//! This is the unit of vectorized execution (Presto's *Page*) and the unit
//! serialized across the storage/compute boundary.

use std::fmt;
use std::sync::Arc;

use crate::array::{Array, ArrayRef};
use crate::datatype::Scalar;
use crate::error::{ColumnarError, Result};
use crate::schema::SchemaRef;

/// An immutable batch of rows in columnar form.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordBatch {
    schema: SchemaRef,
    columns: Vec<ArrayRef>,
    num_rows: usize,
}

impl RecordBatch {
    /// Build a batch, validating schema/column agreement.
    pub fn try_new(schema: SchemaRef, columns: Vec<ArrayRef>) -> Result<Self> {
        if schema.len() != columns.len() {
            return Err(ColumnarError::SchemaMismatch(format!(
                "schema has {} fields but {} columns given",
                schema.len(),
                columns.len()
            )));
        }
        let num_rows = columns.first().map(|c| c.len()).unwrap_or(0);
        for (field, col) in schema.fields().iter().zip(&columns) {
            if col.data_type() != field.data_type {
                return Err(ColumnarError::SchemaMismatch(format!(
                    "column '{}' declared {} but array is {}",
                    field.name,
                    field.data_type,
                    col.data_type()
                )));
            }
            if col.len() != num_rows {
                return Err(ColumnarError::LengthMismatch {
                    left: num_rows,
                    right: col.len(),
                });
            }
            if !field.nullable && col.null_count() > 0 {
                return Err(ColumnarError::SchemaMismatch(format!(
                    "non-nullable column '{}' contains {} nulls",
                    field.name,
                    col.null_count()
                )));
            }
        }
        Ok(RecordBatch {
            schema,
            columns,
            num_rows,
        })
    }

    /// A zero-row batch with the given schema.
    pub fn empty(schema: SchemaRef) -> Self {
        let columns = schema
            .fields()
            .iter()
            .map(|f| Arc::new(crate::builder::ArrayBuilder::new(f.data_type).finish()))
            .collect();
        RecordBatch {
            schema,
            columns,
            num_rows: 0,
        }
    }

    /// The batch schema.
    pub fn schema(&self) -> &SchemaRef {
        &self.schema
    }

    /// All columns.
    pub fn columns(&self) -> &[ArrayRef] {
        &self.columns
    }

    /// Column `i`.
    pub fn column(&self, i: usize) -> &ArrayRef {
        &self.columns[i]
    }

    /// Column by name.
    pub fn column_by_name(&self, name: &str) -> Result<&ArrayRef> {
        self.schema.index_of(name).map(|i| &self.columns[i])
    }

    /// Number of rows.
    pub fn num_rows(&self) -> usize {
        self.num_rows
    }

    /// Number of columns.
    pub fn num_columns(&self) -> usize {
        self.columns.len()
    }

    /// Approximate in-memory byte footprint; drives the data-movement meters.
    pub fn byte_size(&self) -> usize {
        self.columns.iter().map(|c| c.byte_size()).sum()
    }

    /// A batch with only the columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<RecordBatch> {
        let schema = Arc::new(self.schema.project(indices)?);
        let columns = indices.iter().map(|&i| self.columns[i].clone()).collect();
        RecordBatch::try_new(schema, columns)
    }

    /// Row `row` as scalars (for tests and display; not a hot path).
    pub fn row(&self, row: usize) -> Vec<Scalar> {
        self.columns.iter().map(|c| c.scalar_at(row)).collect()
    }

    /// All rows as scalar tuples — test helper.
    pub fn rows(&self) -> Vec<Vec<Scalar>> {
        (0..self.num_rows).map(|r| self.row(r)).collect()
    }

    /// Concatenate same-schema batches.
    pub fn concat(batches: &[RecordBatch]) -> Result<RecordBatch> {
        let Some(first) = batches.first() else {
            return Err(ColumnarError::Invalid("concat of zero batches".into()));
        };
        let schema = first.schema.clone();
        for b in batches {
            if b.schema.as_ref() != schema.as_ref() {
                return Err(ColumnarError::SchemaMismatch(
                    "concat of batches with differing schemas".into(),
                ));
            }
        }
        let mut columns = Vec::with_capacity(schema.len());
        for ci in 0..schema.len() {
            let parts: Vec<&Array> = batches.iter().map(|b| b.column(ci).as_ref()).collect();
            columns.push(Arc::new(Array::concat(&parts)?));
        }
        RecordBatch::try_new(schema, columns)
    }
}

impl fmt::Display for RecordBatch {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{}", self.schema)?;
        let show = self.num_rows.min(20);
        for r in 0..show {
            let cells: Vec<String> = self.row(r).iter().map(|s| s.to_string()).collect();
            writeln!(f, "[{}]", cells.join(", "))?;
        }
        if show < self.num_rows {
            writeln!(f, "... {} more rows", self.num_rows - show)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::Field;
    use crate::schema::Schema;

    fn sample() -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]));
        RecordBatch::try_new(
            schema,
            vec![
                Arc::new(Array::from_i64(vec![1, 2, 3])),
                Arc::new(Array::from_f64(vec![1.5, 2.5, 3.5])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn construction_validates() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int64, false)]));
        // Wrong type.
        assert!(
            RecordBatch::try_new(schema.clone(), vec![Arc::new(Array::from_f64(vec![1.0]))])
                .is_err()
        );
        // Wrong column count.
        assert!(RecordBatch::try_new(schema.clone(), vec![]).is_err());
        // Length mismatch.
        let schema2 = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Int64, false),
        ]));
        assert!(RecordBatch::try_new(
            schema2,
            vec![
                Arc::new(Array::from_i64(vec![1])),
                Arc::new(Array::from_i64(vec![1, 2])),
            ]
        )
        .is_err());
    }

    #[test]
    fn nullability_enforced() {
        let schema = Arc::new(Schema::new(vec![Field::new("id", DataType::Int64, false)]));
        let mut b = crate::builder::ArrayBuilder::new(DataType::Int64);
        b.push_null();
        assert!(RecordBatch::try_new(schema, vec![Arc::new(b.finish())]).is_err());
    }

    #[test]
    fn projection_and_rows() {
        let batch = sample();
        let p = batch.project(&[1]).unwrap();
        assert_eq!(p.num_columns(), 1);
        assert_eq!(p.row(0), vec![Scalar::Float64(1.5)]);
        assert_eq!(batch.column_by_name("v").unwrap().len(), 3);
    }

    #[test]
    fn concat_batches() {
        let b = sample();
        let all = RecordBatch::concat(&[b.clone(), b.clone()]).unwrap();
        assert_eq!(all.num_rows(), 6);
        assert_eq!(all.row(5), vec![Scalar::Int64(3), Scalar::Float64(3.5)]);
    }

    #[test]
    fn empty_batch() {
        let b = sample();
        let e = RecordBatch::empty(b.schema().clone());
        assert_eq!(e.num_rows(), 0);
        assert_eq!(e.num_columns(), 2);
    }
}
