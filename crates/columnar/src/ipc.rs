//! IPC wire format for [`RecordBatch`]es — the role Apache Arrow IPC plays
//! in the paper: a compact, columnar, self-describing binary encoding used
//! to return OCS results to the engine.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic   : 4 bytes  b"CIP1"
//! ncols   : u32
//! nrows   : u64
//! fields  : per column — name_len u32, name bytes, type tag u8, nullable u8
//! columns : per column — has_validity u8, [validity bytes], value buffers
//! crc     : u32 (FNV-1a over everything before it)
//! ```

use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;

use crate::array::{Array, BooleanArray, Date32Array, Float64Array, Int64Array, Utf8Array};
use crate::batch::RecordBatch;
use crate::bitmap::Bitmap;
use crate::datatype::DataType;
use crate::error::{ColumnarError, Result};
use crate::schema::{Field, Schema};

const MAGIC: &[u8; 4] = b"CIP1";

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

fn put_validity(buf: &mut BytesMut, validity: Option<&Bitmap>) {
    match validity {
        Some(v) => {
            buf.put_u8(1);
            buf.put_slice(&v.to_le_bytes());
        }
        None => buf.put_u8(0),
    }
}

fn put_array(buf: &mut BytesMut, array: &Array) {
    put_validity(buf, array.validity());
    match array {
        Array::Int64(a) => {
            for v in &a.values {
                buf.put_i64_le(*v);
            }
        }
        Array::Float64(a) => {
            for v in &a.values {
                buf.put_f64_le(*v);
            }
        }
        Array::Date32(a) => {
            for v in &a.values {
                buf.put_i32_le(*v);
            }
        }
        Array::Boolean(a) => {
            buf.put_slice(&a.values.to_le_bytes());
        }
        Array::Utf8(a) => {
            for o in &a.offsets {
                buf.put_u32_le(*o);
            }
            buf.put_u32_le(a.data.len() as u32);
            buf.put_slice(&a.data);
        }
    }
}

/// Serialize one batch.
pub fn encode_batch(batch: &RecordBatch) -> Bytes {
    let mut buf = BytesMut::with_capacity(batch.byte_size() + 256);
    buf.put_slice(MAGIC);
    buf.put_u32_le(batch.num_columns() as u32);
    buf.put_u64_le(batch.num_rows() as u64);
    for field in batch.schema().fields() {
        buf.put_u32_le(field.name.len() as u32);
        buf.put_slice(field.name.as_bytes());
        buf.put_u8(field.data_type.tag());
        buf.put_u8(field.nullable as u8);
    }
    for col in batch.columns() {
        put_array(&mut buf, col);
    }
    let crc = fnv1a(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Position-tracking cursor over a shared [`Bytes`] buffer: fixed-width
/// reads borrow, while [`Reader::bytes_shared`] hands out zero-copy
/// sub-views that keep the wire buffer alive.
struct Reader<'a> {
    src: &'a Bytes,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.src.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.remaining() < n {
            Err(ColumnarError::Corrupt(format!(
                "unexpected end of IPC stream: need {n}, have {}",
                self.remaining()
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let v = self.src[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(
            self.bytes(4)?.try_into().expect("4 bytes"),
        ))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(
            self.bytes(8)?.try_into().expect("8 bytes"),
        ))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n)?;
        let head = &self.src[self.pos..self.pos + n];
        self.pos += n;
        Ok(head)
    }

    /// Like [`Reader::bytes`], but returns a shared view of the underlying
    /// buffer instead of a borrow — the zero-copy receive path.
    fn bytes_shared(&mut self, n: usize) -> Result<Bytes> {
        self.need(n)?;
        let view = self.src.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(view)
    }

    fn validity(&mut self, nrows: usize) -> Result<Option<Bitmap>> {
        if self.u8()? == 1 {
            let nbytes = nrows.div_ceil(64) * 8;
            Ok(Some(Bitmap::from_le_bytes(self.bytes(nbytes)?, nrows)?))
        } else {
            Ok(None)
        }
    }

    fn array(&mut self, dt: DataType, nrows: usize) -> Result<Array> {
        let validity = self.validity(nrows)?;
        Ok(match dt {
            DataType::Int64 => {
                let raw = self.bytes(nrows * 8)?;
                let values = raw
                    .chunks_exact(8)
                    .map(|c| i64::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                Array::Int64(Int64Array { values, validity })
            }
            DataType::Float64 => {
                let raw = self.bytes(nrows * 8)?;
                let values = raw
                    .chunks_exact(8)
                    .map(|c| f64::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                Array::Float64(Float64Array { values, validity })
            }
            DataType::Date32 => {
                let raw = self.bytes(nrows * 4)?;
                let values = raw
                    .chunks_exact(4)
                    .map(|c| i32::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                Array::Date32(Date32Array { values, validity })
            }
            DataType::Boolean => {
                let nbytes = nrows.div_ceil(64) * 8;
                let values = Bitmap::from_le_bytes(self.bytes(nbytes)?, nrows)?;
                Array::Boolean(BooleanArray { values, validity })
            }
            DataType::Utf8 => {
                let raw = self.bytes((nrows + 1) * 4)?;
                let offsets: Vec<u32> = raw
                    .chunks_exact(4)
                    .map(|c| u32::from_le_bytes(c.try_into().expect("chunk")))
                    .collect();
                let data_len = self.u32()? as usize;
                if let Some(&last) = offsets.last() {
                    if last as usize != data_len {
                        return Err(ColumnarError::Corrupt(
                            "utf8 offsets do not terminate at data length".into(),
                        ));
                    }
                }
                let data = self.bytes_shared(data_len)?;
                std::str::from_utf8(&data)
                    .map_err(|e| ColumnarError::Corrupt(format!("invalid utf8: {e}")))?;
                // Offsets must be monotone and in range.
                for w in offsets.windows(2) {
                    if w[0] > w[1] {
                        return Err(ColumnarError::Corrupt("non-monotone utf8 offsets".into()));
                    }
                }
                Array::Utf8(Utf8Array {
                    offsets,
                    data,
                    validity,
                })
            }
        })
    }
}

/// Deserialize one batch (with CRC verification).
///
/// Takes the shared [`Bytes`] wire buffer so variable-length payloads
/// (Utf8 data) can be aliased zero-copy instead of re-allocated.
pub fn decode_batch(bytes: &Bytes) -> Result<RecordBatch> {
    if bytes.len() < MAGIC.len() + 4 {
        return Err(ColumnarError::Corrupt("IPC message too short".into()));
    }
    let body = bytes.slice(..bytes.len() - 4);
    let crc_bytes = &bytes[bytes.len() - 4..];
    let expect = u32::from_le_bytes(crc_bytes.try_into().expect("4 bytes"));
    if fnv1a(&body) != expect {
        return Err(ColumnarError::Corrupt("IPC checksum mismatch".into()));
    }
    let mut r = Reader { src: &body, pos: 0 };
    if r.bytes(4)? != MAGIC {
        return Err(ColumnarError::Corrupt("bad IPC magic".into()));
    }
    let ncols = r.u32()? as usize;
    let nrows = r.u64()? as usize;
    if ncols > 65_536 {
        return Err(ColumnarError::Corrupt(format!(
            "implausible column count {ncols}"
        )));
    }
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|e| ColumnarError::Corrupt(format!("field name not utf8: {e}")))?
            .to_string();
        let dt = DataType::from_tag(r.u8()?)?;
        let nullable = r.u8()? == 1;
        fields.push(Field::new(name, dt, nullable));
    }
    let schema = Arc::new(Schema::new(fields));
    let mut columns = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let dt = schema.field(i).data_type;
        columns.push(Arc::new(r.array(dt, nrows)?));
    }
    if r.remaining() != 0 {
        return Err(ColumnarError::Corrupt(format!(
            "{} trailing bytes after IPC payload",
            r.remaining()
        )));
    }
    RecordBatch::try_new(schema, columns)
}

/// Serialize a stream of batches (u32 count, then length-prefixed batches).
pub fn encode_batches(batches: &[RecordBatch]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(batches.len() as u32);
    for b in batches {
        let enc = encode_batch(b);
        buf.put_u32_le(enc.len() as u32);
        buf.put_slice(&enc);
    }
    buf.freeze()
}

/// Deserialize a stream written by [`encode_batches`].
pub fn decode_batches(bytes: &Bytes) -> Result<Vec<RecordBatch>> {
    let mut r = Reader { src: bytes, pos: 0 };
    let n = r.u32()? as usize;
    if n > 1_000_000 {
        return Err(ColumnarError::Corrupt(format!(
            "implausible batch count {n}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.u32()? as usize;
        out.push(decode_batch(&r.bytes_shared(len)?)?);
    }
    if r.remaining() != 0 {
        return Err(ColumnarError::Corrupt(
            "trailing bytes after batch stream".into(),
        ));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ArrayBuilder;
    use crate::datatype::Scalar;

    fn mixed_batch() -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int64, true),
            Field::new("f", DataType::Float64, false),
            Field::new("b", DataType::Boolean, false),
            Field::new("s", DataType::Utf8, true),
            Field::new("d", DataType::Date32, false),
        ]));
        let mut i = ArrayBuilder::new(DataType::Int64);
        i.push_i64(1);
        i.push_null();
        i.push_i64(-7);
        let mut s = ArrayBuilder::new(DataType::Utf8);
        s.push_str("hello");
        s.push_null();
        s.push_str("");
        RecordBatch::try_new(
            schema,
            vec![
                Arc::new(i.finish()),
                Arc::new(Array::from_f64(vec![0.5, f64::NAN, -1.0])),
                Arc::new(Array::from_bools(vec![true, false, true])),
                Arc::new(s.finish()),
                Arc::new(Array::from_dates(vec![0, 10561, -365])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_mixed_batch() {
        let b = mixed_batch();
        let enc = encode_batch(&b);
        let back = decode_batch(&enc).unwrap();
        assert_eq!(back.schema(), b.schema());
        assert_eq!(back.num_rows(), b.num_rows());
        for r in 0..b.num_rows() {
            for c in 0..b.num_columns() {
                let (x, y) = (b.column(c).scalar_at(r), back.column(c).scalar_at(r));
                match (&x, &y) {
                    (Scalar::Float64(a), Scalar::Float64(b)) if a.is_nan() => {
                        assert!(b.is_nan())
                    }
                    _ => assert_eq!(x, y, "row {r} col {c}"),
                }
            }
        }
    }

    #[test]
    fn roundtrip_empty_batch() {
        let b = RecordBatch::empty(mixed_batch().schema().clone());
        let back = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.num_columns(), 5);
    }

    #[test]
    fn corruption_detected() {
        let b = mixed_batch();
        let mut enc = encode_batch(&b).to_vec();
        let mid = enc.len() / 2;
        enc[mid] ^= 0xff;
        let enc = Bytes::from(enc);
        assert!(matches!(decode_batch(&enc), Err(ColumnarError::Corrupt(_))));
    }

    #[test]
    fn truncation_detected() {
        let b = mixed_batch();
        let enc = encode_batch(&b);
        assert!(decode_batch(&enc.slice(..enc.len() - 8)).is_err());
        assert!(decode_batch(&Bytes::new()).is_err());
    }

    #[test]
    fn decode_aliases_wire_buffer() {
        // The Utf8 data buffer of a decoded batch must be a view of the
        // encoded bytes, not a copy.
        let b = mixed_batch();
        let enc = encode_batch(&b);
        let back = decode_batch(&enc).unwrap();
        let utf8 = back.column(3).as_utf8().unwrap();
        let data_ptr = utf8.data.as_ptr() as usize;
        let enc_start = enc.as_ptr() as usize;
        assert!(
            data_ptr >= enc_start && data_ptr + utf8.data.len() <= enc_start + enc.len(),
            "utf8 data was copied out of the wire buffer"
        );
    }

    #[test]
    fn batch_stream_roundtrip() {
        let b = mixed_batch();
        let enc = encode_batches(&[b.clone(), b.clone(), b.clone()]);
        let back = decode_batches(&enc).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[2].num_rows(), 3);
        // Empty stream.
        let enc = encode_batches(&[]);
        assert!(decode_batches(&enc).unwrap().is_empty());
    }

    #[test]
    fn wire_size_tracks_byte_size() {
        let b = mixed_batch();
        let enc = encode_batch(&b);
        // Wire size should be within a small constant + buffer sizes.
        assert!(enc.len() >= b.byte_size());
        assert!(enc.len() <= b.byte_size() + 512);
    }
}
