//! IPC wire format for [`RecordBatch`]es — the role Apache Arrow IPC plays
//! in the paper: a compact, columnar, self-describing binary encoding used
//! to return OCS results to the engine.
//!
//! Two layers live here:
//!
//! * the **batch encoding** (`encode_batch`/`decode_batch`) — one
//!   self-describing `b"CIP1"` message per batch;
//! * the **frame stream** (`encode_schema_frame`/`encode_batch_frame`/
//!   `encode_trailer_frame` + [`FrameDecoder`]) — the streaming boundary's
//!   unit of transfer: a schema frame, then one frame per batch as the
//!   storage executor emits them, then a trailer frame carrying the
//!   request's execution statistics. Frames are length-prefixed,
//!   bound-checked and individually checksummed so a consumer can decode
//!   incrementally as bytes arrive and fail structurally (never panic) on
//!   truncation or corruption.
//!
//! Batch layout (all integers little-endian):
//!
//! ```text
//! magic   : 4 bytes  b"CIP1"
//! ncols   : u32
//! nrows   : u64
//! fields  : per column — name_len u32, name bytes, type tag u8, nullable u8
//! columns : per column — has_validity u8, [validity bytes], value buffers
//! crc     : u32 (FNV-1a over everything before it)
//! ```
//!
//! Frame layout:
//!
//! ```text
//! magic   : 4 bytes  b"CFR1"
//! kind    : u8 (1 = schema, 2 = batch, 3 = trailer)
//! len     : u32 payload length (bound-checked against MAX_FRAME_BYTES)
//! payload : len bytes (schema fields / one CIP1 batch / opaque stats)
//! crc     : u32 (FNV-1a over magic..payload)
//! ```

use bytes::{BufMut, Bytes, BytesMut};
use std::sync::Arc;

use crate::array::{Array, BooleanArray, Date32Array, Float64Array, Int64Array, Utf8Array};
use crate::batch::RecordBatch;
use crate::bitmap::Bitmap;
use crate::datatype::DataType;
use crate::error::{ColumnarError, Result};
use crate::schema::{Field, Schema, SchemaRef};

const MAGIC: &[u8; 4] = b"CIP1";

fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c_9dc5;
    for &b in bytes {
        h ^= b as u32;
        h = h.wrapping_mul(0x0100_0193);
    }
    h
}

/// Little-endian u32 from the first four bytes of a length-checked slice.
fn le_u32(b: &[u8]) -> u32 {
    u32::from_le_bytes([b[0], b[1], b[2], b[3]])
}

/// Little-endian u64 from the first eight bytes of a length-checked slice.
fn le_u64(b: &[u8]) -> u64 {
    u64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]])
}

fn put_validity(buf: &mut BytesMut, validity: Option<&Bitmap>) {
    match validity {
        Some(v) => {
            buf.put_u8(1);
            buf.put_slice(&v.to_le_bytes());
        }
        None => buf.put_u8(0),
    }
}

fn put_array(buf: &mut BytesMut, array: &Array) {
    put_validity(buf, array.validity());
    match array {
        Array::Int64(a) => {
            for v in &a.values {
                buf.put_i64_le(*v);
            }
        }
        Array::Float64(a) => {
            for v in &a.values {
                buf.put_f64_le(*v);
            }
        }
        Array::Date32(a) => {
            for v in &a.values {
                buf.put_i32_le(*v);
            }
        }
        Array::Boolean(a) => {
            buf.put_slice(&a.values.to_le_bytes());
        }
        Array::Utf8(a) => {
            for o in &a.offsets {
                buf.put_u32_le(*o);
            }
            buf.put_u32_le(a.data.len() as u32);
            buf.put_slice(&a.data);
        }
    }
}

/// Serialize one batch.
pub fn encode_batch(batch: &RecordBatch) -> Bytes {
    let _t = obs::KernelTimer::start("columnar.ipc.encode_s");
    let mut buf = BytesMut::with_capacity(batch.byte_size() + 256);
    buf.put_slice(MAGIC);
    buf.put_u32_le(batch.num_columns() as u32);
    buf.put_u64_le(batch.num_rows() as u64);
    for field in batch.schema().fields() {
        buf.put_u32_le(field.name.len() as u32);
        buf.put_slice(field.name.as_bytes());
        buf.put_u8(field.data_type.tag());
        buf.put_u8(field.nullable as u8);
    }
    for col in batch.columns() {
        put_array(&mut buf, col);
    }
    let crc = fnv1a(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Position-tracking cursor over a shared [`Bytes`] buffer: fixed-width
/// reads borrow, while [`Reader::bytes_shared`] hands out zero-copy
/// sub-views that keep the wire buffer alive.
struct Reader<'a> {
    src: &'a Bytes,
    pos: usize,
}

impl<'a> Reader<'a> {
    fn remaining(&self) -> usize {
        self.src.len() - self.pos
    }

    fn need(&self, n: usize) -> Result<()> {
        if self.remaining() < n {
            Err(ColumnarError::Corrupt(format!(
                "unexpected end of IPC stream: need {n}, have {}",
                self.remaining()
            )))
        } else {
            Ok(())
        }
    }

    fn u8(&mut self) -> Result<u8> {
        self.need(1)?;
        let v = self.src[self.pos];
        self.pos += 1;
        Ok(v)
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(le_u32(self.bytes(4)?))
    }

    fn u64(&mut self) -> Result<u64> {
        Ok(le_u64(self.bytes(8)?))
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        self.need(n)?;
        let head = &self.src[self.pos..self.pos + n];
        self.pos += n;
        Ok(head)
    }

    /// Like [`Reader::bytes`], but returns a shared view of the underlying
    /// buffer instead of a borrow — the zero-copy receive path.
    fn bytes_shared(&mut self, n: usize) -> Result<Bytes> {
        self.need(n)?;
        let view = self.src.slice(self.pos..self.pos + n);
        self.pos += n;
        Ok(view)
    }

    fn validity(&mut self, nrows: usize) -> Result<Option<Bitmap>> {
        if self.u8()? == 1 {
            let nbytes = nrows.div_ceil(64) * 8;
            Ok(Some(Bitmap::from_le_bytes(self.bytes(nbytes)?, nrows)?))
        } else {
            Ok(None)
        }
    }

    fn array(&mut self, dt: DataType, nrows: usize) -> Result<Array> {
        let validity = self.validity(nrows)?;
        Ok(match dt {
            DataType::Int64 => {
                let raw = self.bytes(nrows * 8)?;
                let values = raw.chunks_exact(8).map(|c| le_u64(c) as i64).collect();
                Array::Int64(Int64Array { values, validity })
            }
            DataType::Float64 => {
                let raw = self.bytes(nrows * 8)?;
                let values = raw
                    .chunks_exact(8)
                    .map(|c| f64::from_bits(le_u64(c)))
                    .collect();
                Array::Float64(Float64Array { values, validity })
            }
            DataType::Date32 => {
                let raw = self.bytes(nrows * 4)?;
                let values = raw.chunks_exact(4).map(|c| le_u32(c) as i32).collect();
                Array::Date32(Date32Array { values, validity })
            }
            DataType::Boolean => {
                let nbytes = nrows.div_ceil(64) * 8;
                let values = Bitmap::from_le_bytes(self.bytes(nbytes)?, nrows)?;
                Array::Boolean(BooleanArray { values, validity })
            }
            DataType::Utf8 => {
                let raw = self.bytes((nrows + 1) * 4)?;
                let offsets: Vec<u32> = raw.chunks_exact(4).map(le_u32).collect();
                let data_len = self.u32()? as usize;
                if let Some(&last) = offsets.last() {
                    if last as usize != data_len {
                        return Err(ColumnarError::Corrupt(
                            "utf8 offsets do not terminate at data length".into(),
                        ));
                    }
                }
                let data = self.bytes_shared(data_len)?;
                std::str::from_utf8(&data)
                    .map_err(|e| ColumnarError::Corrupt(format!("invalid utf8: {e}")))?;
                // Offsets must be monotone and in range.
                for w in offsets.windows(2) {
                    if w[0] > w[1] {
                        return Err(ColumnarError::Corrupt("non-monotone utf8 offsets".into()));
                    }
                }
                Array::Utf8(Utf8Array {
                    offsets,
                    data,
                    validity,
                })
            }
        })
    }
}

/// Deserialize one batch (with CRC verification).
///
/// Takes the shared [`Bytes`] wire buffer so variable-length payloads
/// (Utf8 data) can be aliased zero-copy instead of re-allocated.
pub fn decode_batch(bytes: &Bytes) -> Result<RecordBatch> {
    let _t = obs::KernelTimer::start("columnar.ipc.decode_s");
    if bytes.len() < MAGIC.len() + 4 {
        return Err(ColumnarError::Corrupt("IPC message too short".into()));
    }
    let body = bytes.slice(..bytes.len() - 4);
    let expect = le_u32(&bytes[bytes.len() - 4..]);
    if fnv1a(&body) != expect {
        return Err(ColumnarError::Corrupt("IPC checksum mismatch".into()));
    }
    let mut r = Reader { src: &body, pos: 0 };
    if r.bytes(4)? != MAGIC {
        return Err(ColumnarError::Corrupt("bad IPC magic".into()));
    }
    let ncols = r.u32()? as usize;
    let nrows = r.u64()? as usize;
    if ncols > 65_536 {
        return Err(ColumnarError::Corrupt(format!(
            "implausible column count {ncols}"
        )));
    }
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|e| ColumnarError::Corrupt(format!("field name not utf8: {e}")))?
            .to_string();
        let dt = DataType::from_tag(r.u8()?)?;
        let nullable = r.u8()? == 1;
        fields.push(Field::new(name, dt, nullable));
    }
    let schema = Arc::new(Schema::new(fields));
    let mut columns = Vec::with_capacity(ncols);
    for i in 0..ncols {
        let dt = schema.field(i).data_type;
        columns.push(Arc::new(r.array(dt, nrows)?));
    }
    if r.remaining() != 0 {
        return Err(ColumnarError::Corrupt(format!(
            "{} trailing bytes after IPC payload",
            r.remaining()
        )));
    }
    RecordBatch::try_new(schema, columns)
}

/// Serialize a stream of batches (u32 count, then length-prefixed batches).
pub fn encode_batches(batches: &[RecordBatch]) -> Bytes {
    let mut buf = BytesMut::new();
    buf.put_u32_le(batches.len() as u32);
    for b in batches {
        let enc = encode_batch(b);
        buf.put_u32_le(enc.len() as u32);
        buf.put_slice(&enc);
    }
    buf.freeze()
}

/// Deserialize a stream written by [`encode_batches`].
pub fn decode_batches(bytes: &Bytes) -> Result<Vec<RecordBatch>> {
    let mut r = Reader { src: bytes, pos: 0 };
    let n = r.u32()? as usize;
    if n > 1_000_000 {
        return Err(ColumnarError::Corrupt(format!(
            "implausible batch count {n}"
        )));
    }
    let mut out = Vec::with_capacity(n);
    for _ in 0..n {
        let len = r.u32()? as usize;
        out.push(decode_batch(&r.bytes_shared(len)?)?);
    }
    if r.remaining() != 0 {
        return Err(ColumnarError::Corrupt(
            "trailing bytes after batch stream".into(),
        ));
    }
    Ok(out)
}

// ---------------------------------------------------------------------------
// Frame stream: the streaming boundary's unit of transfer.
// ---------------------------------------------------------------------------

const FRAME_MAGIC: &[u8; 4] = b"CFR1";
/// Fixed frame header size: magic + kind + payload length.
const FRAME_HEADER: usize = 4 + 1 + 4;
/// Upper bound on a single frame's payload — rejects absurd length
/// prefixes before any allocation happens.
pub const MAX_FRAME_BYTES: usize = 1 << 28;

const KIND_SCHEMA: u8 = 1;
const KIND_BATCH: u8 = 2;
const KIND_TRAILER: u8 = 3;

/// One decoded frame of a streaming response.
#[derive(Debug, Clone)]
pub enum Frame {
    /// Stream header: the schema every following batch conforms to.
    Schema(SchemaRef),
    /// One record batch.
    Batch(RecordBatch),
    /// Stream footer: an opaque stats payload (the wire layer above
    /// decides its encoding) marking a complete, well-terminated stream.
    Trailer(Bytes),
}

fn encode_frame(kind: u8, payload: &[u8]) -> Bytes {
    let mut buf = BytesMut::with_capacity(FRAME_HEADER + payload.len() + 4);
    buf.put_slice(FRAME_MAGIC);
    buf.put_u8(kind);
    buf.put_u32_le(payload.len() as u32);
    buf.put_slice(payload);
    let crc = fnv1a(&buf);
    buf.put_u32_le(crc);
    buf.freeze()
}

/// Encode a schema frame (the first frame of every stream).
pub fn encode_schema_frame(schema: &Schema) -> Bytes {
    let mut payload = BytesMut::new();
    payload.put_u32_le(schema.fields().len() as u32);
    for field in schema.fields() {
        payload.put_u32_le(field.name.len() as u32);
        payload.put_slice(field.name.as_bytes());
        payload.put_u8(field.data_type.tag());
        payload.put_u8(field.nullable as u8);
    }
    encode_frame(KIND_SCHEMA, &payload)
}

/// Encode one batch frame (payload is a full CIP1 message, so each batch
/// frame is independently verifiable).
pub fn encode_batch_frame(batch: &RecordBatch) -> Bytes {
    encode_frame(KIND_BATCH, &encode_batch(batch))
}

/// Encode the trailer frame closing a stream. The payload is opaque to
/// this layer (the OCS wire protocol stores its encoded `ExecStats` here).
pub fn encode_trailer_frame(payload: &[u8]) -> Bytes {
    encode_frame(KIND_TRAILER, payload)
}

fn decode_schema_payload(payload: &Bytes) -> Result<SchemaRef> {
    let mut r = Reader {
        src: payload,
        pos: 0,
    };
    let ncols = r.u32()? as usize;
    if ncols > 65_536 {
        return Err(ColumnarError::Corrupt(format!(
            "implausible column count {ncols} in schema frame"
        )));
    }
    let mut fields = Vec::with_capacity(ncols);
    for _ in 0..ncols {
        let name_len = r.u32()? as usize;
        let name = std::str::from_utf8(r.bytes(name_len)?)
            .map_err(|e| ColumnarError::Corrupt(format!("field name not utf8: {e}")))?
            .to_string();
        let dt = DataType::from_tag(r.u8()?)?;
        let nullable = r.u8()? == 1;
        fields.push(Field::new(name, dt, nullable));
    }
    if r.remaining() != 0 {
        return Err(ColumnarError::Corrupt(
            "trailing bytes after schema frame".into(),
        ));
    }
    Ok(Arc::new(Schema::new(fields)))
}

/// Incremental frame decoder: feed it wire bytes in arbitrary chunks and
/// pull complete [`Frame`]s out as they become available.
///
/// `next_frame` returns `Ok(None)` while the buffered bytes do not yet
/// form a complete frame; a malformed prefix (bad magic, oversized length,
/// checksum mismatch, unknown kind) is a structured [`ColumnarError`] —
/// never a panic. [`FrameDecoder::finish`] reports bytes left dangling
/// after the producer claims the stream is complete (truncation check).
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    /// New decoder with an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append wire bytes (any chunking, including byte-at-a-time).
    pub fn feed(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Bytes currently buffered but not yet consumed as frames.
    pub fn buffered_bytes(&self) -> usize {
        self.buf.len()
    }

    /// Try to decode the next complete frame. `Ok(None)` means "need more
    /// bytes"; errors are fatal for the stream.
    pub fn next_frame(&mut self) -> Result<Option<Frame>> {
        if self.buf.len() < FRAME_HEADER {
            return Ok(None);
        }
        if &self.buf[..4] != FRAME_MAGIC {
            return Err(ColumnarError::Corrupt("bad frame magic".into()));
        }
        let kind = self.buf[4];
        let payload_len = le_u32(&self.buf[5..9]) as usize;
        if payload_len > MAX_FRAME_BYTES {
            return Err(ColumnarError::Corrupt(format!(
                "frame payload of {payload_len} bytes exceeds the {MAX_FRAME_BYTES} byte bound"
            )));
        }
        let total = FRAME_HEADER + payload_len + 4;
        if self.buf.len() < total {
            return Ok(None);
        }
        let frame = self.buf.split_to(total).freeze();
        let body = frame.slice(..total - 4);
        let expect = le_u32(&frame[total - 4..]);
        if fnv1a(&body) != expect {
            return Err(ColumnarError::Corrupt("frame checksum mismatch".into()));
        }
        let payload = frame.slice(FRAME_HEADER..total - 4);
        match kind {
            KIND_SCHEMA => Ok(Some(Frame::Schema(decode_schema_payload(&payload)?))),
            KIND_BATCH => Ok(Some(Frame::Batch(decode_batch(&payload)?))),
            KIND_TRAILER => Ok(Some(Frame::Trailer(payload))),
            other => Err(ColumnarError::Corrupt(format!(
                "unknown frame kind {other}"
            ))),
        }
    }

    /// Assert the stream ended cleanly: no partial frame left in the
    /// buffer. Call after the producer signals end-of-stream.
    pub fn finish(&self) -> Result<()> {
        if self.buf.is_empty() {
            Ok(())
        } else {
            Err(ColumnarError::Corrupt(format!(
                "{} dangling bytes after end of frame stream (truncated frame)",
                self.buf.len()
            )))
        }
    }
}

/// Decode a fully-buffered frame sequence (convenience over
/// [`FrameDecoder`] for tests and the buffered compatibility path).
pub fn decode_frames(bytes: &Bytes) -> Result<Vec<Frame>> {
    let mut dec = FrameDecoder::new();
    dec.feed(bytes);
    let mut out = Vec::new();
    while let Some(f) = dec.next_frame()? {
        out.push(f);
    }
    dec.finish()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ArrayBuilder;
    use crate::datatype::Scalar;

    fn mixed_batch() -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("i", DataType::Int64, true),
            Field::new("f", DataType::Float64, false),
            Field::new("b", DataType::Boolean, false),
            Field::new("s", DataType::Utf8, true),
            Field::new("d", DataType::Date32, false),
        ]));
        let mut i = ArrayBuilder::new(DataType::Int64);
        i.push_i64(1);
        i.push_null();
        i.push_i64(-7);
        let mut s = ArrayBuilder::new(DataType::Utf8);
        s.push_str("hello");
        s.push_null();
        s.push_str("");
        RecordBatch::try_new(
            schema,
            vec![
                Arc::new(i.finish()),
                Arc::new(Array::from_f64(vec![0.5, f64::NAN, -1.0])),
                Arc::new(Array::from_bools(vec![true, false, true])),
                Arc::new(s.finish()),
                Arc::new(Array::from_dates(vec![0, 10561, -365])),
            ],
        )
        .unwrap()
    }

    #[test]
    fn roundtrip_mixed_batch() {
        let b = mixed_batch();
        let enc = encode_batch(&b);
        let back = decode_batch(&enc).unwrap();
        assert_eq!(back.schema(), b.schema());
        assert_eq!(back.num_rows(), b.num_rows());
        for r in 0..b.num_rows() {
            for c in 0..b.num_columns() {
                let (x, y) = (b.column(c).scalar_at(r), back.column(c).scalar_at(r));
                match (&x, &y) {
                    (Scalar::Float64(a), Scalar::Float64(b)) if a.is_nan() => {
                        assert!(b.is_nan())
                    }
                    _ => assert_eq!(x, y, "row {r} col {c}"),
                }
            }
        }
    }

    #[test]
    fn roundtrip_empty_batch() {
        let b = RecordBatch::empty(mixed_batch().schema().clone());
        let back = decode_batch(&encode_batch(&b)).unwrap();
        assert_eq!(back.num_rows(), 0);
        assert_eq!(back.num_columns(), 5);
    }

    #[test]
    fn corruption_detected() {
        let b = mixed_batch();
        let mut enc = encode_batch(&b).to_vec();
        let mid = enc.len() / 2;
        enc[mid] ^= 0xff;
        let enc = Bytes::from(enc);
        assert!(matches!(decode_batch(&enc), Err(ColumnarError::Corrupt(_))));
    }

    #[test]
    fn truncation_detected() {
        let b = mixed_batch();
        let enc = encode_batch(&b);
        assert!(decode_batch(&enc.slice(..enc.len() - 8)).is_err());
        assert!(decode_batch(&Bytes::new()).is_err());
    }

    #[test]
    fn decode_aliases_wire_buffer() {
        // The Utf8 data buffer of a decoded batch must be a view of the
        // encoded bytes, not a copy.
        let b = mixed_batch();
        let enc = encode_batch(&b);
        let back = decode_batch(&enc).unwrap();
        let utf8 = back.column(3).as_utf8().unwrap();
        let data_ptr = utf8.data.as_ptr() as usize;
        let enc_start = enc.as_ptr() as usize;
        assert!(
            data_ptr >= enc_start && data_ptr + utf8.data.len() <= enc_start + enc.len(),
            "utf8 data was copied out of the wire buffer"
        );
    }

    #[test]
    fn batch_stream_roundtrip() {
        let b = mixed_batch();
        let enc = encode_batches(&[b.clone(), b.clone(), b.clone()]);
        let back = decode_batches(&enc).unwrap();
        assert_eq!(back.len(), 3);
        assert_eq!(back[2].num_rows(), 3);
        // Empty stream.
        let enc = encode_batches(&[]);
        assert!(decode_batches(&enc).unwrap().is_empty());
    }

    #[test]
    fn wire_size_tracks_byte_size() {
        let b = mixed_batch();
        let enc = encode_batch(&b);
        // Wire size should be within a small constant + buffer sizes.
        assert!(enc.len() >= b.byte_size());
        assert!(enc.len() <= b.byte_size() + 512);
    }

    fn stream_bytes(batches: usize) -> (Vec<u8>, RecordBatch) {
        let b = mixed_batch();
        let mut wire = Vec::new();
        wire.extend_from_slice(&encode_schema_frame(b.schema()));
        for _ in 0..batches {
            wire.extend_from_slice(&encode_batch_frame(&b));
        }
        wire.extend_from_slice(&encode_trailer_frame(b"stats-payload"));
        (wire, b)
    }

    #[test]
    fn frame_stream_roundtrip_under_random_chunking() {
        let (wire, b) = stream_bytes(3);
        // Feed in deterministic-but-odd chunk sizes, including 1-byte.
        for chunk in [1usize, 3, 7, 64, 1009, wire.len()] {
            let mut dec = FrameDecoder::new();
            let mut frames = Vec::new();
            for piece in wire.chunks(chunk) {
                dec.feed(piece);
                while let Some(f) = dec.next_frame().unwrap() {
                    frames.push(f);
                }
            }
            dec.finish().unwrap();
            assert_eq!(frames.len(), 5, "chunk size {chunk}");
            assert!(matches!(&frames[0], Frame::Schema(s) if **s == **b.schema()));
            for f in &frames[1..4] {
                match f {
                    Frame::Batch(back) => assert_eq!(back.num_rows(), b.num_rows()),
                    other => panic!("expected batch frame, got {other:?}"),
                }
            }
            assert!(matches!(&frames[4], Frame::Trailer(t) if t.as_ref() == b"stats-payload"));
        }
    }

    #[test]
    fn frame_truncation_is_detected_not_panicked() {
        let (wire, _) = stream_bytes(2);
        // Every proper prefix either yields fewer frames + a finish error,
        // or a structured decode error — never a panic.
        for cut in [1usize, 8, 9, wire.len() / 2, wire.len() - 1] {
            let mut dec = FrameDecoder::new();
            dec.feed(&wire[..cut]);
            let mut ok = true;
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(_) => {
                        ok = false;
                        break;
                    }
                }
            }
            if ok {
                assert!(dec.finish().is_err(), "cut at {cut} looked complete");
            }
        }
    }

    #[test]
    fn frame_bitflips_are_structured_errors() {
        let (wire, _) = stream_bytes(1);
        for pos in 0..wire.len() {
            let mut bad = wire.clone();
            bad[pos] ^= 0x01;
            let mut dec = FrameDecoder::new();
            dec.feed(&bad);
            let mut failed = false;
            loop {
                match dec.next_frame() {
                    Ok(Some(_)) => {}
                    Ok(None) => break,
                    Err(ColumnarError::Corrupt(_)) => {
                        failed = true;
                        break;
                    }
                    Err(e) => panic!("unexpected error class at byte {pos}: {e}"),
                }
            }
            if !failed {
                // A flip may land in a payload length prefix such that the
                // stream just looks incomplete; finish() must flag it.
                assert!(dec.finish().is_err(), "bit flip at {pos} undetected");
            }
        }
    }

    #[test]
    fn oversized_length_prefix_is_rejected_before_allocation() {
        let mut frame = Vec::new();
        frame.extend_from_slice(FRAME_MAGIC);
        frame.push(KIND_BATCH);
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        assert!(dec.next_frame().is_err());
    }

    #[test]
    fn unknown_frame_kind_is_rejected() {
        let enc = encode_frame(9, b"zzz");
        let mut dec = FrameDecoder::new();
        dec.feed(&enc);
        assert!(matches!(dec.next_frame(), Err(ColumnarError::Corrupt(_))));
    }

    #[test]
    fn decode_frames_convenience() {
        let (wire, _) = stream_bytes(2);
        let frames = decode_frames(&Bytes::from(wire)).unwrap();
        assert_eq!(frames.len(), 4);
        assert!(decode_frames(&Bytes::from_static(b"CFR1")).is_err());
        assert!(decode_frames(&Bytes::new()).unwrap().is_empty());
    }

    #[test]
    fn batch_frames_alias_wire_buffer() {
        // Zero-copy must survive the framing layer: a decoded batch's Utf8
        // data should point into the frame bytes fed to the decoder.
        let b = mixed_batch();
        let frame = encode_batch_frame(&b);
        let mut dec = FrameDecoder::new();
        dec.feed(&frame);
        let decoded = match dec.next_frame().unwrap() {
            Some(Frame::Batch(batch)) => batch,
            other => panic!("expected batch, got {other:?}"),
        };
        let utf8 = decoded.column(3).as_utf8().unwrap();
        assert_eq!(std::str::from_utf8(&utf8.data).unwrap(), "hello");
    }
}
