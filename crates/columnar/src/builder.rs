//! Incremental array construction.

use crate::array::{Array, BooleanArray, Date32Array, Float64Array, Int64Array, Utf8Array};
use crate::bitmap::Bitmap;
use crate::datatype::{DataType, Scalar};
use crate::error::{ColumnarError, Result};

/// Builds an [`Array`] of a fixed [`DataType`] one value at a time.
///
/// Nulls are tracked lazily: the validity bitmap is only materialized on the
/// first `push(Scalar::Null)`, keeping the all-valid fast path allocation-free.
#[derive(Debug)]
pub struct ArrayBuilder {
    dt: DataType,
    ints: Vec<i64>,
    floats: Vec<f64>,
    bools: Bitmap,
    str_offsets: Vec<u32>,
    str_data: Vec<u8>,
    dates: Vec<i32>,
    validity: Option<Bitmap>,
    len: usize,
}

impl ArrayBuilder {
    /// New builder producing arrays of type `dt`.
    pub fn new(dt: DataType) -> Self {
        ArrayBuilder {
            dt,
            ints: Vec::new(),
            floats: Vec::new(),
            bools: Bitmap::new(),
            str_offsets: vec![0],
            str_data: Vec::new(),
            dates: Vec::new(),
            validity: None,
            len: 0,
        }
    }

    /// The type this builder produces.
    pub fn data_type(&self) -> DataType {
        self.dt
    }

    /// Rows pushed so far.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True when nothing has been pushed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Pre-allocate room for `additional` more rows.
    pub fn reserve(&mut self, additional: usize) {
        match self.dt {
            DataType::Int64 => self.ints.reserve(additional),
            DataType::Float64 => self.floats.reserve(additional),
            DataType::Boolean => {}
            DataType::Utf8 => self.str_offsets.reserve(additional),
            DataType::Date32 => self.dates.reserve(additional),
        }
    }

    fn push_validity(&mut self, valid: bool) {
        match (&mut self.validity, valid) {
            (Some(v), _) => v.push(valid),
            (None, true) => {}
            (None, false) => {
                let mut v = Bitmap::with_value(self.len, true);
                v.push(false);
                self.validity = Some(v);
            }
        }
    }

    /// Append a scalar; NULL appends a null slot, non-NULL values must match
    /// the builder's type (numeric casts are applied).
    pub fn push(&mut self, scalar: Scalar) -> Result<()> {
        if scalar.is_null() {
            self.push_null();
            return Ok(());
        }
        let scalar = if scalar.data_type() == Some(self.dt) {
            scalar
        } else {
            scalar.cast(self.dt)?
        };
        self.push_validity(true);
        self.len += 1;
        match (&scalar, self.dt) {
            (Scalar::Int64(v), DataType::Int64) => self.ints.push(*v),
            (Scalar::Float64(v), DataType::Float64) => self.floats.push(*v),
            (Scalar::Boolean(v), DataType::Boolean) => self.bools.push(*v),
            (Scalar::Utf8(s), DataType::Utf8) => {
                self.str_data.extend_from_slice(s.as_bytes());
                self.str_offsets.push(self.str_data.len() as u32);
            }
            (Scalar::Date32(v), DataType::Date32) => self.dates.push(*v),
            (s, dt) => {
                return Err(ColumnarError::type_mismatch(dt, format!("{s}")));
            }
        }
        Ok(())
    }

    /// Append a NULL slot.
    pub fn push_null(&mut self) {
        self.push_validity(false);
        self.len += 1;
        match self.dt {
            DataType::Int64 => self.ints.push(0),
            DataType::Float64 => self.floats.push(0.0),
            DataType::Boolean => self.bools.push(false),
            DataType::Utf8 => self.str_offsets.push(self.str_data.len() as u32),
            DataType::Date32 => self.dates.push(0),
        }
    }

    /// Append a raw i64 (Int64 builders only; no per-row branching).
    #[inline]
    pub fn push_i64(&mut self, v: i64) {
        debug_assert_eq!(self.dt, DataType::Int64);
        self.push_validity(true);
        self.len += 1;
        self.ints.push(v);
    }

    /// Append a raw f64 (Float64 builders only).
    #[inline]
    pub fn push_f64(&mut self, v: f64) {
        debug_assert_eq!(self.dt, DataType::Float64);
        self.push_validity(true);
        self.len += 1;
        self.floats.push(v);
    }

    /// Append a raw &str (Utf8 builders only).
    #[inline]
    pub fn push_str(&mut self, s: &str) {
        debug_assert_eq!(self.dt, DataType::Utf8);
        self.push_validity(true);
        self.len += 1;
        self.str_data.extend_from_slice(s.as_bytes());
        self.str_offsets.push(self.str_data.len() as u32);
    }

    /// Consume the builder and produce the array.
    pub fn finish(self) -> Array {
        let validity = self.validity;
        match self.dt {
            DataType::Int64 => Array::Int64(Int64Array {
                values: self.ints,
                validity,
            }),
            DataType::Float64 => Array::Float64(Float64Array {
                values: self.floats,
                validity,
            }),
            DataType::Boolean => Array::Boolean(BooleanArray {
                values: self.bools,
                validity,
            }),
            DataType::Utf8 => Array::Utf8(Utf8Array {
                offsets: self.str_offsets,
                data: self.str_data.into(),
                validity,
            }),
            DataType::Date32 => Array::Date32(Date32Array {
                values: self.dates,
                validity,
            }),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_int_with_lazy_validity() {
        let mut b = ArrayBuilder::new(DataType::Int64);
        b.push(Scalar::Int64(1)).unwrap();
        b.push(Scalar::Int64(2)).unwrap();
        assert!(b.validity.is_none(), "no bitmap until first null");
        b.push_null();
        b.push(Scalar::Int64(4)).unwrap();
        let arr = b.finish();
        assert_eq!(arr.len(), 4);
        assert_eq!(arr.null_count(), 1);
        assert_eq!(arr.scalar_at(0), Scalar::Int64(1));
        assert_eq!(arr.scalar_at(2), Scalar::Null);
        assert_eq!(arr.scalar_at(3), Scalar::Int64(4));
    }

    #[test]
    fn build_utf8_with_nulls() {
        let mut b = ArrayBuilder::new(DataType::Utf8);
        b.push_str("alpha");
        b.push_null();
        b.push_str("beta");
        let arr = b.finish();
        assert_eq!(arr.scalar_at(0), Scalar::Utf8("alpha".into()));
        assert_eq!(arr.scalar_at(1), Scalar::Null);
        assert_eq!(arr.scalar_at(2), Scalar::Utf8("beta".into()));
    }

    #[test]
    fn push_casts_numerics() {
        let mut b = ArrayBuilder::new(DataType::Float64);
        b.push(Scalar::Int64(3)).unwrap();
        let arr = b.finish();
        assert_eq!(arr.scalar_at(0), Scalar::Float64(3.0));
    }

    #[test]
    fn push_wrong_type_is_error() {
        let mut b = ArrayBuilder::new(DataType::Boolean);
        assert!(b.push(Scalar::Utf8("x".into())).is_err());
    }

    #[test]
    fn build_all_types() {
        for dt in [
            DataType::Int64,
            DataType::Float64,
            DataType::Boolean,
            DataType::Utf8,
            DataType::Date32,
        ] {
            let mut b = ArrayBuilder::new(dt);
            b.push_null();
            let arr = b.finish();
            assert_eq!(arr.data_type(), dt);
            assert_eq!(arr.len(), 1);
            assert_eq!(arr.null_count(), 1);
        }
    }
}
