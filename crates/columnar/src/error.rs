//! Error type shared across the columnar crate.

use std::fmt;

/// Result alias used throughout `columnar`.
pub type Result<T> = std::result::Result<T, ColumnarError>;

/// Errors produced by columnar operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnarError {
    /// Two inputs that must agree in length did not.
    LengthMismatch {
        /// Length of the first operand.
        left: usize,
        /// Length of the second operand.
        right: usize,
    },
    /// An operation was applied to an array of the wrong [`crate::DataType`].
    TypeMismatch {
        /// What the operation expected.
        expected: String,
        /// What it actually received.
        actual: String,
    },
    /// A schema and its column arrays disagree.
    SchemaMismatch(String),
    /// Index out of bounds.
    IndexOutOfBounds {
        /// The offending index.
        index: usize,
        /// The container length.
        len: usize,
    },
    /// Malformed bytes during IPC decoding.
    Corrupt(String),
    /// Anything else.
    Invalid(String),
}

impl fmt::Display for ColumnarError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ColumnarError::LengthMismatch { left, right } => {
                write!(f, "length mismatch: {left} vs {right}")
            }
            ColumnarError::TypeMismatch { expected, actual } => {
                write!(f, "type mismatch: expected {expected}, got {actual}")
            }
            ColumnarError::SchemaMismatch(msg) => write!(f, "schema mismatch: {msg}"),
            ColumnarError::IndexOutOfBounds { index, len } => {
                write!(f, "index {index} out of bounds for length {len}")
            }
            ColumnarError::Corrupt(msg) => write!(f, "corrupt data: {msg}"),
            ColumnarError::Invalid(msg) => write!(f, "invalid operation: {msg}"),
        }
    }
}

impl std::error::Error for ColumnarError {}

impl ColumnarError {
    /// Build a [`ColumnarError::TypeMismatch`] from displayable pieces.
    pub fn type_mismatch(expected: impl fmt::Display, actual: impl fmt::Display) -> Self {
        ColumnarError::TypeMismatch {
            expected: expected.to_string(),
            actual: actual.to_string(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_stable() {
        let e = ColumnarError::LengthMismatch { left: 1, right: 2 };
        assert_eq!(e.to_string(), "length mismatch: 1 vs 2");
        let e = ColumnarError::type_mismatch("Int64", "Float64");
        assert_eq!(e.to_string(), "type mismatch: expected Int64, got Float64");
        let e = ColumnarError::IndexOutOfBounds { index: 9, len: 3 };
        assert!(e.to_string().contains("out of bounds"));
    }
}
