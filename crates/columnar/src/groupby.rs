//! Vectorized grouped aggregation: the group-id kernel and the
//! [`GroupedAggregator`] that every aggregation site in the system routes
//! through (engine split-phase partials, engine final-stage merge, and the
//! OCS storage executor).
//!
//! The hot path is batch-at-a-time: key columns are hashed with one
//! vectorized pass per column ([`crate::kernels::hash`]), then each row is
//! resolved to a dense `u32` group ordinal by [`GroupIdMap`] — an
//! open-addressed table storing `(hash, ordinal)` pairs that compares
//! candidate rows against *accumulated key columns*. No per-row byte-key
//! allocation, no double probe: one probe either finds the group or claims
//! the slot and appends the key row.
//!
//! Group ordinals are assigned in first-seen order and keys are exported in
//! ordinal order, so output order is deterministic (insertion order), which
//! the engine's tests and the distributed merge rely on.
//!
//! Float keys are canonicalized on the way in ([`canon_f64`]): `-0.0`
//! groups with `0.0` and every NaN bit pattern groups together — the same
//! normalization the hash kernel applies, so hash and equality agree.

use crate::agg::{AggFunc, GroupAcc};
use crate::array::{Array, BooleanArray, Date32Array, Float64Array, Int64Array, Utf8Array};
use crate::bitmap::Bitmap;
use crate::datatype::DataType;
use crate::error::{ColumnarError, Result};
use crate::kernels::hash::{canon_f64, hash_column_into};

/// Sentinel ordinal marking an empty hash-table slot.
const EMPTY: u32 = u32::MAX;

/// Typed storage for one accumulated key column, appended in group-ordinal
/// order. Float values are stored canonicalized so equality is bitwise.
#[derive(Debug, Clone)]
enum KeyStore {
    Int64(Vec<i64>),
    Float64(Vec<f64>),
    Boolean(Vec<bool>),
    Utf8 { offsets: Vec<u32>, data: Vec<u8> },
    Date32(Vec<i32>),
}

#[derive(Debug, Clone)]
struct KeyColumn {
    store: KeyStore,
    validity: Vec<bool>,
    has_null: bool,
}

impl KeyColumn {
    fn new(dt: DataType) -> KeyColumn {
        let store = match dt {
            DataType::Int64 => KeyStore::Int64(Vec::new()),
            DataType::Float64 => KeyStore::Float64(Vec::new()),
            DataType::Boolean => KeyStore::Boolean(Vec::new()),
            DataType::Utf8 => KeyStore::Utf8 {
                offsets: vec![0],
                data: Vec::new(),
            },
            DataType::Date32 => KeyStore::Date32(Vec::new()),
        };
        KeyColumn {
            store,
            validity: Vec::new(),
            has_null: false,
        }
    }

    /// Append row `row` of `arr` as a new group's key value. The array's
    /// type matches the store (checked once per batch by the caller).
    fn append_row(&mut self, arr: &Array, row: usize) {
        let valid = arr.is_valid(row);
        self.validity.push(valid);
        self.has_null |= !valid;
        match (&mut self.store, arr) {
            (KeyStore::Int64(v), Array::Int64(a)) => v.push(if valid { a.values[row] } else { 0 }),
            (KeyStore::Float64(v), Array::Float64(a)) => {
                v.push(if valid { canon_f64(a.values[row]) } else { 0.0 })
            }
            (KeyStore::Boolean(v), Array::Boolean(a)) => v.push(valid && a.values.get(row)),
            (KeyStore::Utf8 { offsets, data }, Array::Utf8(a)) => {
                if valid {
                    let s = a.offsets[row] as usize;
                    let e = a.offsets[row + 1] as usize;
                    data.extend_from_slice(&a.data[s..e]);
                }
                offsets.push(data.len() as u32);
            }
            (KeyStore::Date32(v), Array::Date32(a)) => {
                v.push(if valid { a.values[row] } else { 0 })
            }
            _ => unreachable!("key column type checked at batch entry"),
        }
    }

    /// Does the stored key for group `ord` equal row `row` of `arr`?
    /// NULL equals NULL (SQL GROUP BY semantics); floats compare by
    /// canonical bits so `-0.0 == 0.0` and `NaN == NaN`.
    #[inline]
    fn eq_row(&self, ord: usize, arr: &Array, row: usize) -> bool {
        let valid = arr.is_valid(row);
        if self.validity[ord] != valid {
            return false;
        }
        if !valid {
            return true;
        }
        match (&self.store, arr) {
            (KeyStore::Int64(v), Array::Int64(a)) => v[ord] == a.values[row],
            (KeyStore::Float64(v), Array::Float64(a)) => {
                v[ord].to_bits() == canon_f64(a.values[row]).to_bits()
            }
            (KeyStore::Boolean(v), Array::Boolean(a)) => v[ord] == a.values.get(row),
            (KeyStore::Utf8 { offsets, data }, Array::Utf8(a)) => {
                let s = offsets[ord] as usize;
                let e = offsets[ord + 1] as usize;
                let rs = a.offsets[row] as usize;
                let re = a.offsets[row + 1] as usize;
                data[s..e] == a.data[rs..re]
            }
            (KeyStore::Date32(v), Array::Date32(a)) => v[ord] == a.values[row],
            _ => unreachable!("key column type checked at batch entry"),
        }
    }

    /// Export the accumulated keys as an array in group-ordinal order.
    fn to_array(&self) -> Array {
        let validity = if self.has_null {
            Some(Bitmap::from_bools(&self.validity))
        } else {
            None
        };
        match &self.store {
            KeyStore::Int64(v) => Array::Int64(Int64Array {
                values: v.clone(),
                validity,
            }),
            KeyStore::Float64(v) => Array::Float64(Float64Array {
                values: v.clone(),
                validity,
            }),
            KeyStore::Boolean(v) => Array::Boolean(BooleanArray {
                values: Bitmap::from_bools(v),
                validity,
            }),
            KeyStore::Utf8 { offsets, data } => Array::Utf8(Utf8Array {
                offsets: offsets.clone(),
                data: data.clone().into(),
                validity,
            }),
            KeyStore::Date32(v) => Array::Date32(Date32Array {
                values: v.clone(),
                validity,
            }),
        }
    }
}

/// Maps rows to dense group ordinals, accumulating distinct keys in
/// first-seen order.
#[derive(Debug, Clone)]
pub struct GroupIdMap {
    key_types: Vec<DataType>,
    keys: Vec<KeyColumn>,
    /// Open-addressed `(hash, ordinal)` slots; capacity is a power of two.
    slots: Vec<(u64, u32)>,
    len: usize,
    hash_buf: Vec<u64>,
}

impl GroupIdMap {
    /// A map keyed on columns of `key_types` (empty = one global group).
    pub fn new(key_types: Vec<DataType>) -> GroupIdMap {
        let keys = key_types.iter().map(|&dt| KeyColumn::new(dt)).collect();
        GroupIdMap {
            key_types,
            keys,
            slots: vec![(0, EMPTY); 16],
            len: 0,
            hash_buf: Vec::new(),
        }
    }

    /// Key column types this map groups on.
    pub fn key_types(&self) -> &[DataType] {
        &self.key_types
    }

    /// Number of distinct groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.len
    }

    /// Resolve each of `num_rows` rows of `keys` to its dense group
    /// ordinal, appending ids to `out` (cleared first). Unseen keys are
    /// assigned fresh ordinals in first-seen order. With zero key columns
    /// every row maps to the single global group `0`.
    pub fn group_ids(
        &mut self,
        keys: &[&Array],
        num_rows: usize,
        out: &mut Vec<u32>,
    ) -> Result<()> {
        if keys.len() != self.key_types.len() {
            return Err(ColumnarError::Invalid(format!(
                "group key arity mismatch: expected {}, got {}",
                self.key_types.len(),
                keys.len()
            )));
        }
        for (arr, &dt) in keys.iter().zip(self.key_types.iter()) {
            if arr.data_type() != dt {
                return Err(ColumnarError::type_mismatch(dt, arr.data_type()));
            }
            if arr.len() != num_rows {
                return Err(ColumnarError::Invalid(format!(
                    "group key column length {} != batch rows {num_rows}",
                    arr.len()
                )));
            }
        }
        out.clear();
        out.reserve(num_rows);
        if self.key_types.is_empty() {
            // Global aggregate: one group holds every row.
            if num_rows > 0 && self.len == 0 {
                self.len = 1;
            }
            out.resize(num_rows, 0);
            return Ok(());
        }
        self.hash_buf.clear();
        self.hash_buf.resize(num_rows, 0);
        for arr in keys {
            hash_column_into(arr, &mut self.hash_buf)?;
        }
        for row in 0..num_rows {
            let hash = self.hash_buf[row];
            out.push(self.probe_insert(hash, keys, row));
        }
        Ok(())
    }

    /// Find the group for `(keys, row)` or claim a fresh ordinal.
    #[inline]
    fn probe_insert(&mut self, hash: u64, keys: &[&Array], row: usize) -> u32 {
        let mask = self.slots.len() - 1;
        let mut idx = (hash as usize) & mask;
        loop {
            let (h, ord) = self.slots[idx];
            if ord == EMPTY {
                let new_ord = self.len as u32;
                for (kc, arr) in self.keys.iter_mut().zip(keys.iter()) {
                    kc.append_row(arr, row);
                }
                self.slots[idx] = (hash, new_ord);
                self.len += 1;
                // Keep load factor under ~7/8.
                if self.len * 8 >= self.slots.len() * 7 {
                    self.grow();
                }
                return new_ord;
            }
            if h == hash {
                let ord_us = ord as usize;
                if self
                    .keys
                    .iter()
                    .zip(keys.iter())
                    .all(|(kc, arr)| kc.eq_row(ord_us, arr, row))
                {
                    return ord;
                }
            }
            idx = (idx + 1) & mask;
        }
    }

    fn grow(&mut self) {
        let new_cap = self.slots.len() * 2;
        let mut slots = vec![(0u64, EMPTY); new_cap];
        let mask = new_cap - 1;
        for &(h, ord) in self.slots.iter().filter(|&&(_, o)| o != EMPTY) {
            let mut idx = (h as usize) & mask;
            while slots[idx].1 != EMPTY {
                idx = (idx + 1) & mask;
            }
            slots[idx] = (h, ord);
        }
        self.slots = slots;
    }

    /// Force the single global group to exist (keyless aggregation over
    /// zero rows still emits one row of initial states).
    pub fn ensure_global_group(&mut self) {
        assert!(self.key_types.is_empty(), "only valid for keyless maps");
        if self.len == 0 {
            self.len = 1;
        }
    }

    /// Export the accumulated key columns, one row per group, in
    /// first-seen ordinal order.
    pub fn key_arrays(&self) -> Vec<Array> {
        self.keys.iter().map(|kc| kc.to_array()).collect()
    }
}

/// A complete vectorized grouped aggregation: group-id resolution plus one
/// columnar accumulator per aggregate. This is the single aggregation
/// engine shared by the query engine (partial and final phases) and the
/// OCS storage executor.
#[derive(Debug, Clone)]
pub struct GroupedAggregator {
    map: GroupIdMap,
    accs: Vec<GroupAcc>,
    gid_buf: Vec<u32>,
}

impl GroupedAggregator {
    /// Build an aggregator grouping on `key_types` computing `aggs`, each
    /// given as `(function, argument type)` (`None` argument = `COUNT(*)`).
    pub fn new(
        key_types: Vec<DataType>,
        aggs: &[(AggFunc, Option<DataType>)],
    ) -> Result<GroupedAggregator> {
        let accs = aggs
            .iter()
            .map(|&(func, input)| GroupAcc::new(func, input))
            .collect::<Result<Vec<_>>>()?;
        Ok(GroupedAggregator {
            map: GroupIdMap::new(key_types),
            accs,
            gid_buf: Vec::new(),
        })
    }

    /// Number of distinct groups seen so far.
    pub fn num_groups(&self) -> usize {
        self.map.num_groups()
    }

    /// Fold a batch in: `keys` are the evaluated key columns, `args[i]` the
    /// evaluated argument of aggregate `i` (`None` = `COUNT(*)`); all
    /// arrays must have `num_rows` rows.
    pub fn update(
        &mut self,
        keys: &[&Array],
        args: &[Option<&Array>],
        num_rows: usize,
    ) -> Result<()> {
        let _t = obs::KernelTimer::start("columnar.groupby.update_s");
        if args.len() != self.accs.len() {
            return Err(ColumnarError::Invalid(format!(
                "aggregate arity mismatch: expected {}, got {}",
                self.accs.len(),
                args.len()
            )));
        }
        let mut gids = std::mem::take(&mut self.gid_buf);
        self.map.group_ids(keys, num_rows, &mut gids)?;
        let n = self.map.num_groups();
        for (acc, arg) in self.accs.iter_mut().zip(args.iter()) {
            acc.resize(n);
            acc.update(&gids, *arg);
        }
        self.gid_buf = gids;
        Ok(())
    }

    /// Merge a partial aggregator (same keys, same aggregates) into this
    /// one — the distributed combine. `other`'s groups are appended in
    /// `other`'s first-seen order when unseen here, preserving
    /// deterministic insertion-order output.
    pub fn merge(&mut self, other: &GroupedAggregator) -> Result<()> {
        if other.map.key_types() != self.map.key_types() {
            return Err(ColumnarError::Invalid(
                "cannot merge aggregators with different group keys".into(),
            ));
        }
        let other_groups = other.map.num_groups();
        if other_groups == 0 {
            return Ok(());
        }
        let other_keys = other.map.key_arrays();
        let key_refs: Vec<&Array> = other_keys.iter().collect();
        let mut group_map = std::mem::take(&mut self.gid_buf);
        self.map
            .group_ids(&key_refs, other_groups, &mut group_map)?;
        let n = self.map.num_groups();
        for (acc, other_acc) in self.accs.iter_mut().zip(other.accs.iter()) {
            acc.resize(n);
            acc.merge(other_acc, &group_map)?;
        }
        self.gid_buf = group_map;
        Ok(())
    }

    /// Force the single global group to exist (keyless aggregation over
    /// zero rows emits one row of initial states).
    pub fn ensure_global_group(&mut self) {
        self.map.ensure_global_group();
        let n = self.map.num_groups();
        for acc in &mut self.accs {
            acc.resize(n);
        }
    }

    /// Produce `(key columns, measure columns)`, one row per group in
    /// first-seen order.
    pub fn finish(self) -> (Vec<Array>, Vec<Array>) {
        let keys = self.map.key_arrays();
        let measures = self.accs.into_iter().map(|acc| acc.finish()).collect();
        (keys, measures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ArrayBuilder;
    use crate::datatype::Scalar;

    #[test]
    fn group_ids_dense_first_seen() {
        let mut map = GroupIdMap::new(vec![DataType::Int64]);
        let keys = Array::from_i64(vec![7, 3, 7, 9, 3]);
        let mut out = Vec::new();
        map.group_ids(&[&keys], 5, &mut out).unwrap();
        assert_eq!(out, vec![0, 1, 0, 2, 1]);
        assert_eq!(map.num_groups(), 3);
        let exported = map.key_arrays();
        assert_eq!(exported[0], Array::from_i64(vec![7, 3, 9]));
    }

    #[test]
    fn group_ids_multi_column_and_nulls() {
        let mut k1 = ArrayBuilder::new(DataType::Int64);
        k1.push_i64(1);
        k1.push_null();
        k1.push_i64(1);
        k1.push_null();
        let k1 = k1.finish();
        let k2 = Array::from_strs(["a", "a", "a", "a"]);
        let mut map = GroupIdMap::new(vec![DataType::Int64, DataType::Utf8]);
        let mut out = Vec::new();
        map.group_ids(&[&k1, &k2], 4, &mut out).unwrap();
        assert_eq!(out, vec![0, 1, 0, 1], "NULL keys form one group");
    }

    #[test]
    fn float_keys_normalize() {
        let keys = Array::from_f64(vec![
            0.0,
            -0.0,
            f64::NAN,
            f64::from_bits(0x7ff8_0000_0000_0001),
            1.5,
        ]);
        let mut map = GroupIdMap::new(vec![DataType::Float64]);
        let mut out = Vec::new();
        map.group_ids(&[&keys], 5, &mut out).unwrap();
        assert_eq!(out, vec![0, 0, 1, 1, 2], "-0.0 == 0.0 and NaN == NaN");
    }

    #[test]
    fn keyless_map_is_one_group() {
        let mut map = GroupIdMap::new(vec![]);
        let mut out = Vec::new();
        map.group_ids(&[], 3, &mut out).unwrap();
        assert_eq!(out, vec![0, 0, 0]);
        assert_eq!(map.num_groups(), 1);
    }

    #[test]
    fn many_groups_survive_growth() {
        let n = 10_000i64;
        let keys = Array::from_i64((0..n).collect());
        let mut map = GroupIdMap::new(vec![DataType::Int64]);
        let mut out = Vec::new();
        map.group_ids(&[&keys], n as usize, &mut out).unwrap();
        assert_eq!(map.num_groups(), n as usize);
        // Every row got its own ordinal, in order.
        assert!(out.iter().enumerate().all(|(i, &g)| g as usize == i));
        // Second pass resolves to the same ordinals without inserting.
        let mut out2 = Vec::new();
        map.group_ids(&[&keys], n as usize, &mut out2).unwrap();
        assert_eq!(out, out2);
        assert_eq!(map.num_groups(), n as usize);
    }

    #[test]
    fn aggregator_end_to_end() {
        let keys = Array::from_strs(["a", "b", "a", "b", "a"]);
        let vals = Array::from_i64(vec![1, 10, 2, 20, 3]);
        let mut agg = GroupedAggregator::new(
            vec![DataType::Utf8],
            &[
                (AggFunc::Sum, Some(DataType::Int64)),
                (AggFunc::Count, None),
            ],
        )
        .unwrap();
        agg.update(&[&keys], &[Some(&vals), None], 5).unwrap();
        let (k, m) = agg.finish();
        assert_eq!(k[0], Array::from_strs(["a", "b"]));
        assert_eq!(m[0], Array::from_i64(vec![6, 30]));
        assert_eq!(m[1], Array::from_i64(vec![3, 2]));
    }

    #[test]
    fn merge_appends_unseen_groups_in_other_order() {
        let mut left =
            GroupedAggregator::new(vec![DataType::Int64], &[(AggFunc::Count, None)]).unwrap();
        left.update(&[&Array::from_i64(vec![1, 2])], &[None], 2)
            .unwrap();
        let mut right =
            GroupedAggregator::new(vec![DataType::Int64], &[(AggFunc::Count, None)]).unwrap();
        right
            .update(&[&Array::from_i64(vec![3, 2, 3])], &[None], 3)
            .unwrap();
        left.merge(&right).unwrap();
        let (k, m) = left.finish();
        // Left's groups first (1, 2), then right's unseen groups (3).
        assert_eq!(k[0], Array::from_i64(vec![1, 2, 3]));
        assert_eq!(m[0], Array::from_i64(vec![1, 2, 2]));
    }

    #[test]
    fn global_aggregate_over_zero_rows() {
        let mut agg = GroupedAggregator::new(
            vec![],
            &[
                (AggFunc::Count, None),
                (AggFunc::Sum, Some(DataType::Int64)),
            ],
        )
        .unwrap();
        agg.ensure_global_group();
        let (k, m) = agg.finish();
        assert!(k.is_empty());
        assert_eq!(m[0].scalar_at(0), Scalar::Int64(0));
        assert_eq!(m[1].scalar_at(0), Scalar::Null, "SUM of no rows is NULL");
    }

    #[test]
    fn type_mismatch_is_an_error() {
        let mut map = GroupIdMap::new(vec![DataType::Int64]);
        let keys = Array::from_f64(vec![1.0]);
        let mut out = Vec::new();
        assert!(map.group_ids(&[&keys], 1, &mut out).is_err());
    }
}
