//! Schemas: named, typed, nullable columns.

use std::fmt;
use std::sync::Arc;

use crate::datatype::DataType;
use crate::error::{ColumnarError, Result};

/// Shared handle to a [`Schema`].
pub type SchemaRef = Arc<Schema>;

/// One column of a schema.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Field {
    /// Column name (case-sensitive inside the engine; SQL identifiers are
    /// lower-cased by the parser).
    pub name: String,
    /// Column type.
    pub data_type: DataType,
    /// Whether NULLs may appear.
    pub nullable: bool,
}

impl Field {
    /// Construct a field.
    pub fn new(name: impl Into<String>, data_type: DataType, nullable: bool) -> Self {
        Field {
            name: name.into(),
            data_type,
            nullable,
        }
    }
}

impl fmt::Display for Field {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}{}",
            self.name,
            self.data_type,
            if self.nullable { " NULL" } else { "" }
        )
    }
}

/// An ordered list of [`Field`]s.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Schema {
    fields: Vec<Field>,
}

impl Schema {
    /// Construct from fields.
    pub fn new(fields: Vec<Field>) -> Self {
        Schema { fields }
    }

    /// Empty schema.
    pub fn empty() -> Self {
        Schema { fields: vec![] }
    }

    /// All fields.
    pub fn fields(&self) -> &[Field] {
        &self.fields
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.fields.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.fields.is_empty()
    }

    /// The field at `i`.
    pub fn field(&self, i: usize) -> &Field {
        &self.fields[i]
    }

    /// Index of the column named `name`.
    pub fn index_of(&self, name: &str) -> Result<usize> {
        self.fields
            .iter()
            .position(|f| f.name == name)
            .ok_or_else(|| {
                ColumnarError::SchemaMismatch(format!(
                    "no column named '{name}' (have: {})",
                    self.fields
                        .iter()
                        .map(|f| f.name.as_str())
                        .collect::<Vec<_>>()
                        .join(", ")
                ))
            })
    }

    /// The field named `name`.
    pub fn field_by_name(&self, name: &str) -> Result<&Field> {
        self.index_of(name).map(|i| &self.fields[i])
    }

    /// A new schema keeping only columns at `indices`, in that order.
    pub fn project(&self, indices: &[usize]) -> Result<Schema> {
        let mut fields = Vec::with_capacity(indices.len());
        for &i in indices {
            if i >= self.fields.len() {
                return Err(ColumnarError::IndexOutOfBounds {
                    index: i,
                    len: self.fields.len(),
                });
            }
            fields.push(self.fields[i].clone());
        }
        Ok(Schema { fields })
    }

    /// Column names in order.
    pub fn names(&self) -> Vec<&str> {
        self.fields.iter().map(|f| f.name.as_str()).collect()
    }
}

impl fmt::Display for Schema {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, field) in self.fields.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{field}")?;
        }
        write!(f, ")")
    }
}

impl From<Vec<Field>> for Schema {
    fn from(fields: Vec<Field>) -> Self {
        Schema::new(fields)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Schema {
        Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("b", DataType::Float64, true),
            Field::new("c", DataType::Utf8, false),
        ])
    }

    #[test]
    fn lookup_by_name() {
        let s = sample();
        assert_eq!(s.index_of("b").unwrap(), 1);
        assert_eq!(s.field_by_name("c").unwrap().data_type, DataType::Utf8);
        let err = s.index_of("zzz").unwrap_err();
        assert!(err.to_string().contains("zzz"));
    }

    #[test]
    fn projection_reorders() {
        let s = sample();
        let p = s.project(&[2, 0]).unwrap();
        assert_eq!(p.names(), vec!["c", "a"]);
        assert!(s.project(&[7]).is_err());
    }

    #[test]
    fn display_is_readable() {
        let s = sample();
        assert_eq!(s.to_string(), "(a: Int64, b: Float64 NULL, c: Utf8)");
    }
}
