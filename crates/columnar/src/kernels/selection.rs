//! Selection kernels: `filter` (keep masked rows) and `take` (gather by
//! index). These are the work-horses of predicate evaluation and sorting.

use std::sync::Arc;

use crate::array::{Array, BooleanArray, Date32Array, Float64Array, Int64Array, Utf8Array};
use crate::batch::RecordBatch;
use crate::bitmap::Bitmap;
use crate::error::{ColumnarError, Result};
use crate::kernels::boolean::true_bits;

fn filtered_validity(validity: Option<&Bitmap>, keep: &[usize]) -> Option<Bitmap> {
    validity.map(|v| keep.iter().map(|&i| v.get(i)).collect())
}

/// How a boolean mask resolves over a row domain: every row survives, no
/// row survives, or an explicit ascending keep-index list.
///
/// Computing this once per mask lets callers reuse the keep indices across
/// many columns (instead of re-walking the bitmap per column) and take the
/// degenerate fast paths: `All` filters are zero-copy at the batch level
/// (shared `Arc` columns) and `None` filters skip row materialization
/// entirely — which is what makes late-materialized scans cheap on
/// low-selectivity predicates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Selection {
    /// All rows of a domain of the given length survive.
    All(usize),
    /// No row of a domain of the given length survives.
    None(usize),
    /// Exactly these row indices (ascending) survive.
    Indices(Vec<usize>),
}

impl Selection {
    /// Resolve a filter mask (valid-and-true rows survive).
    pub fn from_mask(mask: &BooleanArray) -> Selection {
        Selection::from_bitmap(&true_bits(mask))
    }

    /// Resolve a plain bitmap (set bits survive).
    pub fn from_bitmap(bits: &Bitmap) -> Selection {
        let n = bits.len();
        match bits.count_ones() {
            0 => Selection::None(n),
            ones if ones == n => Selection::All(n),
            _ => Selection::Indices(bits.set_indices()),
        }
    }

    /// Length of the row domain this selection applies to.
    pub fn domain_len(&self) -> usize {
        match self {
            Selection::All(n) | Selection::None(n) => *n,
            Selection::Indices(keep) => keep.len(), // lower bound; domain is >= last index + 1
        }
    }

    /// Number of surviving rows.
    pub fn count(&self) -> usize {
        match self {
            Selection::All(n) => *n,
            Selection::None(_) => 0,
            Selection::Indices(keep) => keep.len(),
        }
    }

    /// True when every row survives.
    pub fn is_all(&self) -> bool {
        matches!(self, Selection::All(_))
    }

    /// True when no row survives.
    pub fn is_none(&self) -> bool {
        matches!(self, Selection::None(_))
    }

    /// Apply to a single array. `All` clones the array; `None` produces an
    /// empty array of the same type without touching row data.
    pub fn apply(&self, a: &Array) -> Result<Array> {
        match self {
            Selection::All(n) => {
                check_selection_len(a.len(), *n)?;
                Ok(a.clone())
            }
            Selection::None(n) => {
                check_selection_len(a.len(), *n)?;
                take_indices(a, &[])
            }
            Selection::Indices(keep) => take_indices(a, keep),
        }
    }

    /// Apply to every column of a batch, reusing the keep indices. `All`
    /// is zero-copy (the batch's `Arc` columns are shared, not re-gathered).
    pub fn apply_batch(&self, batch: &RecordBatch) -> Result<RecordBatch> {
        match self {
            Selection::All(n) => {
                check_selection_len(batch.num_rows(), *n)?;
                Ok(batch.clone())
            }
            Selection::None(n) => {
                check_selection_len(batch.num_rows(), *n)?;
                take_batch(batch, &[])
            }
            Selection::Indices(keep) => take_batch(batch, keep),
        }
    }
}

fn check_selection_len(rows: usize, domain: usize) -> Result<()> {
    if rows != domain {
        return Err(ColumnarError::LengthMismatch {
            left: rows,
            right: domain,
        });
    }
    Ok(())
}

/// Keep the rows of `a` where `mask` is valid-and-true.
pub fn filter(a: &Array, mask: &BooleanArray) -> Result<Array> {
    if a.len() != mask.values.len() {
        return Err(ColumnarError::LengthMismatch {
            left: a.len(),
            right: mask.values.len(),
        });
    }
    Selection::from_mask(mask).apply(a)
}

/// Gather rows of `a` at `indices` (may repeat / reorder).
pub fn take_indices(a: &Array, indices: &[usize]) -> Result<Array> {
    let len = a.len();
    if let Some(&bad) = indices.iter().find(|&&i| i >= len) {
        return Err(ColumnarError::IndexOutOfBounds { index: bad, len });
    }
    Ok(match a {
        Array::Int64(x) => Array::Int64(Int64Array {
            values: indices.iter().map(|&i| x.values[i]).collect(),
            validity: filtered_validity(x.validity.as_ref(), indices),
        }),
        Array::Float64(x) => Array::Float64(Float64Array {
            values: indices.iter().map(|&i| x.values[i]).collect(),
            validity: filtered_validity(x.validity.as_ref(), indices),
        }),
        Array::Date32(x) => Array::Date32(Date32Array {
            values: indices.iter().map(|&i| x.values[i]).collect(),
            validity: filtered_validity(x.validity.as_ref(), indices),
        }),
        Array::Boolean(x) => Array::Boolean(BooleanArray {
            values: indices.iter().map(|&i| x.values.get(i)).collect(),
            validity: filtered_validity(x.validity.as_ref(), indices),
        }),
        Array::Utf8(x) => {
            let mut offsets = Vec::with_capacity(indices.len() + 1);
            offsets.push(0u32);
            let mut data = Vec::new();
            for &i in indices {
                data.extend_from_slice(x.value(i).as_bytes());
                offsets.push(data.len() as u32);
            }
            Array::Utf8(Utf8Array {
                offsets,
                data: data.into(),
                validity: filtered_validity(x.validity.as_ref(), indices),
            })
        }
    })
}

/// Keep the rows of every column of `batch` where `mask` is valid-and-true.
/// All-true masks return the batch zero-copy; all-false masks skip row
/// gathering; otherwise the keep indices are computed once and shared by
/// every column.
pub fn filter_batch(batch: &RecordBatch, mask: &BooleanArray) -> Result<RecordBatch> {
    if batch.num_rows() != mask.values.len() {
        return Err(ColumnarError::LengthMismatch {
            left: batch.num_rows(),
            right: mask.values.len(),
        });
    }
    Selection::from_mask(mask).apply_batch(batch)
}

/// Gather the rows of every column of `batch` at `indices`.
pub fn take_batch(batch: &RecordBatch, indices: &[usize]) -> Result<RecordBatch> {
    let columns = batch
        .columns()
        .iter()
        .map(|c| take_indices(c, indices).map(Arc::new))
        .collect::<Result<Vec<_>>>()?;
    RecordBatch::try_new(batch.schema().clone(), columns)
}

/// The first `n` rows of `batch` (SQL `LIMIT`).
pub fn limit_batch(batch: &RecordBatch, n: usize) -> Result<RecordBatch> {
    if n >= batch.num_rows() {
        return Ok(batch.clone());
    }
    let indices: Vec<usize> = (0..n).collect();
    take_batch(batch, &indices)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::{DataType, Scalar};
    use crate::schema::{Field, Schema};

    fn mask(bools: &[bool]) -> BooleanArray {
        BooleanArray {
            values: Bitmap::from_bools(bools),
            validity: None,
        }
    }

    #[test]
    fn filter_all_types() {
        let m = mask(&[true, false, true]);
        let a = Array::from_i64(vec![1, 2, 3]);
        assert_eq!(filter(&a, &m).unwrap().rows_i64(), vec![1, 3]);
        let a = Array::from_f64(vec![1.0, 2.0, 3.0]);
        assert_eq!(filter(&a, &m).unwrap().len(), 2);
        let a = Array::from_strs(["a", "bb", "ccc"]);
        let f = filter(&a, &m).unwrap();
        assert_eq!(f.scalar_at(1), Scalar::Utf8("ccc".into()));
        let a = Array::from_bools(vec![true, true, false]);
        let f = filter(&a, &m).unwrap();
        assert_eq!(f.scalar_at(1), Scalar::Boolean(false));
        let a = Array::from_dates(vec![10, 20, 30]);
        let f = filter(&a, &m).unwrap();
        assert_eq!(f.scalar_at(1), Scalar::Date32(30));
    }

    // Small helper on Array for test readability.
    trait RowsI64 {
        fn rows_i64(&self) -> Vec<i64>;
    }
    impl RowsI64 for Array {
        fn rows_i64(&self) -> Vec<i64> {
            self.as_i64().unwrap().values.clone()
        }
    }

    #[test]
    fn filter_respects_mask_nulls() {
        // mask: [T, NULL, T] -> keep rows 0, 2 only.
        let m = BooleanArray {
            values: Bitmap::from_bools(&[true, true, true]),
            validity: Some(Bitmap::from_bools(&[true, false, true])),
        };
        let a = Array::from_i64(vec![1, 2, 3]);
        assert_eq!(filter(&a, &m).unwrap().rows_i64(), vec![1, 3]);
    }

    #[test]
    fn take_reorders_and_repeats() {
        let a = Array::from_strs(["x", "y", "z"]);
        let t = take_indices(&a, &[2, 0, 2]).unwrap();
        assert_eq!(t.scalar_at(0), Scalar::Utf8("z".into()));
        assert_eq!(t.scalar_at(2), Scalar::Utf8("z".into()));
        assert!(take_indices(&a, &[5]).is_err());
    }

    #[test]
    fn take_preserves_validity() {
        let mut b = crate::builder::ArrayBuilder::new(DataType::Int64);
        b.push_i64(1);
        b.push_null();
        b.push_i64(3);
        let a = b.finish();
        let t = take_indices(&a, &[1, 2, 1]).unwrap();
        assert_eq!(t.scalar_at(0), Scalar::Null);
        assert_eq!(t.scalar_at(1), Scalar::Int64(3));
        assert_eq!(t.scalar_at(2), Scalar::Null);
    }

    #[test]
    fn selection_resolves_extremes() {
        assert_eq!(
            Selection::from_mask(&mask(&[true, true, true])),
            Selection::All(3)
        );
        assert_eq!(
            Selection::from_mask(&mask(&[false, false])),
            Selection::None(2)
        );
        assert_eq!(
            Selection::from_mask(&mask(&[false, true, true, false])),
            Selection::Indices(vec![1, 2])
        );
        // A mask that is all-true in values but nulled out is all-false.
        let nulled = BooleanArray {
            values: Bitmap::from_bools(&[true, true]),
            validity: Some(Bitmap::from_bools(&[false, false])),
        };
        assert_eq!(Selection::from_mask(&nulled), Selection::None(2));
    }

    #[test]
    fn all_true_filter_is_zero_copy_on_batches() {
        let schema = Arc::new(Schema::new(vec![Field::new("a", DataType::Int64, false)]));
        let col = Arc::new(Array::from_i64(vec![1, 2, 3]));
        let batch = RecordBatch::try_new(schema, vec![col.clone()]).unwrap();
        let f = filter_batch(&batch, &mask(&[true, true, true])).unwrap();
        assert!(
            Arc::ptr_eq(&batch.columns()[0], &f.columns()[0]),
            "all-true filter must share column storage"
        );
    }

    #[test]
    fn all_false_filter_is_empty_same_type() {
        let a = Array::from_strs(["x", "y"]);
        let f = filter(&a, &mask(&[false, false])).unwrap();
        assert_eq!(f.len(), 0);
        assert!(matches!(f, Array::Utf8(_)));
    }

    #[test]
    fn selection_length_mismatch_is_error() {
        let a = Array::from_i64(vec![1, 2, 3]);
        assert!(Selection::All(2).apply(&a).is_err());
        assert!(Selection::None(4).apply(&a).is_err());
    }

    #[test]
    fn selection_apply_matches_filter() {
        let m = mask(&[true, false, true, false, true]);
        let a = Array::from_i64(vec![10, 20, 30, 40, 50]);
        let sel = Selection::from_mask(&m);
        assert_eq!(sel.count(), 3);
        assert_eq!(sel.apply(&a).unwrap().rows_i64(), vec![10, 30, 50]);
    }

    #[test]
    fn batch_filter_and_limit() {
        let schema = Arc::new(Schema::new(vec![
            Field::new("a", DataType::Int64, false),
            Field::new("s", DataType::Utf8, false),
        ]));
        let batch = RecordBatch::try_new(
            schema,
            vec![
                Arc::new(Array::from_i64(vec![1, 2, 3, 4])),
                Arc::new(Array::from_strs(["p", "q", "r", "s"])),
            ],
        )
        .unwrap();
        let m = mask(&[false, true, true, false]);
        let f = filter_batch(&batch, &m).unwrap();
        assert_eq!(f.num_rows(), 2);
        assert_eq!(f.row(0), vec![Scalar::Int64(2), Scalar::Utf8("q".into())]);
        let l = limit_batch(&f, 1).unwrap();
        assert_eq!(l.num_rows(), 1);
        // Limit beyond the row count is identity.
        let l = limit_batch(&f, 100).unwrap();
        assert_eq!(l.num_rows(), 2);
    }
}
