//! SQL three-valued boolean logic on [`BooleanArray`] masks.
//!
//! `AND`/`OR` follow Kleene semantics: `FALSE AND NULL = FALSE`,
//! `TRUE OR NULL = TRUE`, otherwise NULL propagates.

use crate::array::BooleanArray;
use crate::bitmap::Bitmap;
use crate::error::{ColumnarError, Result};

fn check_len(a: &BooleanArray, b: &BooleanArray) -> Result<()> {
    if a.values.len() != b.values.len() {
        return Err(ColumnarError::LengthMismatch {
            left: a.values.len(),
            right: b.values.len(),
        });
    }
    Ok(())
}

fn validity_bits(a: &BooleanArray) -> Bitmap {
    a.validity
        .clone()
        .unwrap_or_else(|| Bitmap::with_value(a.values.len(), true))
}

/// Kleene `AND`.
pub fn and(a: &BooleanArray, b: &BooleanArray) -> Result<BooleanArray> {
    check_len(a, b)?;
    let av = validity_bits(a);
    let bv = validity_bits(b);
    // value: known-true only when both valid-and-true.
    let at = a.values.and(&av)?;
    let bt = b.values.and(&bv)?;
    let values = at.and(&bt)?;
    // valid: (both valid) OR (a valid and a false) OR (b valid and b false)
    let a_false = av.and(&a.values.not())?;
    let b_false = bv.and(&b.values.not())?;
    let validity = av.and(&bv)?.or(&a_false)?.or(&b_false)?;
    Ok(BooleanArray {
        values,
        validity: (!validity.all_set()).then_some(validity),
    })
}

/// Kleene `OR`.
pub fn or(a: &BooleanArray, b: &BooleanArray) -> Result<BooleanArray> {
    check_len(a, b)?;
    let av = validity_bits(a);
    let bv = validity_bits(b);
    let at = a.values.and(&av)?;
    let bt = b.values.and(&bv)?;
    let values = at.or(&bt)?;
    // valid: (both valid) OR (a valid and a true) OR (b valid and b true)
    let validity = av.and(&bv)?.or(&at)?.or(&bt)?;
    Ok(BooleanArray {
        values,
        validity: (!validity.all_set()).then_some(validity),
    })
}

/// Logical `NOT` (NULL stays NULL).
pub fn not(a: &BooleanArray) -> BooleanArray {
    let mut values = a.values.not();
    if let Some(v) = &a.validity {
        // Keep value bits of invalid slots at 0 for canonical form.
        values = values.and(v).expect("same length");
    }
    BooleanArray {
        values,
        validity: a.validity.clone(),
    }
}

/// Rows where the mask is valid **and** true — i.e. rows a SQL `WHERE`
/// clause keeps.
pub fn true_bits(mask: &BooleanArray) -> Bitmap {
    match &mask.validity {
        Some(v) => mask.values.and(v).expect("same length"),
        None => mask.values.clone(),
    }
}

/// Count of kept rows.
pub fn true_count(mask: &BooleanArray) -> usize {
    true_bits(mask).count_ones()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Build a mask from Option<bool> slots (None = NULL).
    fn mask(slots: &[Option<bool>]) -> BooleanArray {
        let values =
            Bitmap::from_bools(&slots.iter().map(|s| s.unwrap_or(false)).collect::<Vec<_>>());
        let validity = Bitmap::from_bools(&slots.iter().map(|s| s.is_some()).collect::<Vec<_>>());
        BooleanArray {
            values,
            validity: (!validity.all_set()).then_some(validity),
        }
    }

    fn slots(mask: &BooleanArray) -> Vec<Option<bool>> {
        (0..mask.values.len())
            .map(|i| {
                if mask.validity.as_ref().map(|v| v.get(i)).unwrap_or(true) {
                    Some(mask.values.get(i))
                } else {
                    None
                }
            })
            .collect()
    }

    const T: Option<bool> = Some(true);
    const F: Option<bool> = Some(false);
    const N: Option<bool> = None;

    #[test]
    fn kleene_and_truth_table() {
        let a = mask(&[T, T, T, F, F, F, N, N, N]);
        let b = mask(&[T, F, N, T, F, N, T, F, N]);
        let out = and(&a, &b).unwrap();
        assert_eq!(slots(&out), vec![T, F, N, F, F, F, N, F, N]);
    }

    #[test]
    fn kleene_or_truth_table() {
        let a = mask(&[T, T, T, F, F, F, N, N, N]);
        let b = mask(&[T, F, N, T, F, N, T, F, N]);
        let out = or(&a, &b).unwrap();
        assert_eq!(slots(&out), vec![T, T, T, T, F, N, T, N, N]);
    }

    #[test]
    fn not_preserves_nulls() {
        let a = mask(&[T, F, N]);
        assert_eq!(slots(&not(&a)), vec![F, T, N]);
    }

    #[test]
    fn true_bits_ignores_nulls() {
        let a = mask(&[T, F, N, T]);
        assert_eq!(true_bits(&a).set_indices(), vec![0, 3]);
        assert_eq!(true_count(&a), 2);
    }

    #[test]
    fn no_null_fast_path() {
        let a = mask(&[T, F, T]);
        let b = mask(&[T, T, F]);
        let out = and(&a, &b).unwrap();
        assert!(out.validity.is_none(), "no nulls in, no bitmap out");
        assert_eq!(out.values.set_indices(), vec![0]);
    }

    #[test]
    fn length_mismatch() {
        let a = mask(&[T]);
        let b = mask(&[T, F]);
        assert!(and(&a, &b).is_err());
        assert!(or(&a, &b).is_err());
    }
}
