//! Comparison kernels producing [`BooleanArray`] masks.

use crate::array::{Array, BooleanArray};
use crate::bitmap::Bitmap;
use crate::datatype::Scalar;
use crate::error::{ColumnarError, Result};

/// Comparison operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// `=`
    Eq,
    /// `<>`
    NotEq,
    /// `<`
    Lt,
    /// `<=`
    LtEq,
    /// `>`
    Gt,
    /// `>=`
    GtEq,
}

impl CmpOp {
    /// SQL spelling of the operator.
    pub fn sql(&self) -> &'static str {
        match self {
            CmpOp::Eq => "=",
            CmpOp::NotEq => "<>",
            CmpOp::Lt => "<",
            CmpOp::LtEq => "<=",
            CmpOp::Gt => ">",
            CmpOp::GtEq => ">=",
        }
    }

    /// The operator with its operands swapped (`a op b` == `b op.flip() a`).
    pub fn flip(&self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::NotEq => CmpOp::NotEq,
            CmpOp::Lt => CmpOp::Gt,
            CmpOp::LtEq => CmpOp::GtEq,
            CmpOp::Gt => CmpOp::Lt,
            CmpOp::GtEq => CmpOp::LtEq,
        }
    }

    #[inline]
    fn eval(&self, ord: std::cmp::Ordering) -> bool {
        use std::cmp::Ordering::*;
        match self {
            CmpOp::Eq => ord == Equal,
            CmpOp::NotEq => ord != Equal,
            CmpOp::Lt => ord == Less,
            CmpOp::LtEq => ord != Greater,
            CmpOp::Gt => ord == Greater,
            CmpOp::GtEq => ord != Less,
        }
    }
}

/// Combine the validity bitmaps of operands into the output validity.
fn merge_validity(a: Option<&Bitmap>, b: Option<&Bitmap>) -> Option<Bitmap> {
    match (a, b) {
        (None, None) => None,
        (Some(v), None) | (None, Some(v)) => Some(v.clone()),
        (Some(x), Some(y)) => Some(x.and(y).expect("equal lengths checked by caller")),
    }
}

macro_rules! primitive_cmp {
    ($a:expr, $b:expr, $op:expr, $cmpfn:expr) => {{
        let mut bits = Bitmap::with_value($a.values.len(), false);
        for (i, (x, y)) in $a.values.iter().zip($b.values.iter()).enumerate() {
            if $op.eval($cmpfn(x, y)) {
                bits.set(i, true);
            }
        }
        BooleanArray {
            values: bits,
            validity: merge_validity($a.validity.as_ref(), $b.validity.as_ref()),
        }
    }};
}

/// Element-wise comparison of two equal-length arrays.
pub fn compare(a: &Array, b: &Array, op: CmpOp) -> Result<BooleanArray> {
    if a.len() != b.len() {
        return Err(ColumnarError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    Ok(match (a, b) {
        (Array::Int64(x), Array::Int64(y)) => {
            primitive_cmp!(x, y, op, |p: &i64, q: &i64| p.cmp(q))
        }
        (Array::Float64(x), Array::Float64(y)) => {
            primitive_cmp!(x, y, op, |p: &f64, q: &f64| p.total_cmp(q))
        }
        (Array::Date32(x), Array::Date32(y)) => {
            primitive_cmp!(x, y, op, |p: &i32, q: &i32| p.cmp(q))
        }
        // Mixed numeric types: promote via scalar path (rare in practice
        // because the analyzer inserts casts).
        _ => {
            let mut bits = Bitmap::with_value(a.len(), false);
            let mut validity = Bitmap::with_value(a.len(), true);
            let mut any_null = false;
            for i in 0..a.len() {
                let (x, y) = (a.scalar_at(i), b.scalar_at(i));
                if x.is_null() || y.is_null() {
                    validity.set(i, false);
                    any_null = true;
                    continue;
                }
                if op.eval(x.total_cmp(&y)) {
                    bits.set(i, true);
                }
            }
            BooleanArray {
                values: bits,
                validity: any_null.then_some(validity),
            }
        }
    })
}

/// Element-wise comparison of an array against a scalar.
pub fn compare_scalar(a: &Array, s: &Scalar, op: CmpOp) -> Result<BooleanArray> {
    if s.is_null() {
        // x <op> NULL is NULL for every row.
        return Ok(BooleanArray {
            values: Bitmap::with_value(a.len(), false),
            validity: Some(Bitmap::with_value(a.len(), false)),
        });
    }
    let out = match (a, s) {
        (Array::Int64(x), Scalar::Int64(v)) => {
            let mut bits = Bitmap::with_value(x.values.len(), false);
            for (i, p) in x.values.iter().enumerate() {
                if op.eval(p.cmp(v)) {
                    bits.set(i, true);
                }
            }
            BooleanArray {
                values: bits,
                validity: x.validity.clone(),
            }
        }
        (Array::Float64(x), Scalar::Float64(v)) => {
            let mut bits = Bitmap::with_value(x.values.len(), false);
            for (i, p) in x.values.iter().enumerate() {
                if op.eval(p.total_cmp(v)) {
                    bits.set(i, true);
                }
            }
            BooleanArray {
                values: bits,
                validity: x.validity.clone(),
            }
        }
        (Array::Date32(x), Scalar::Date32(v)) => {
            let mut bits = Bitmap::with_value(x.values.len(), false);
            for (i, p) in x.values.iter().enumerate() {
                if op.eval(p.cmp(v)) {
                    bits.set(i, true);
                }
            }
            BooleanArray {
                values: bits,
                validity: x.validity.clone(),
            }
        }
        (Array::Utf8(x), Scalar::Utf8(v)) => {
            let mut bits = Bitmap::with_value(x.len(), false);
            for i in 0..x.len() {
                if op.eval(x.value(i).cmp(v.as_str())) {
                    bits.set(i, true);
                }
            }
            BooleanArray {
                values: bits,
                validity: x.validity.clone(),
            }
        }
        // Mixed numeric scalar: compare through total_cmp.
        _ => {
            let mut bits = Bitmap::with_value(a.len(), false);
            let mut validity = Bitmap::with_value(a.len(), true);
            let mut any_null = false;
            for i in 0..a.len() {
                let x = a.scalar_at(i);
                if x.is_null() {
                    validity.set(i, false);
                    any_null = true;
                    continue;
                }
                if op.eval(x.total_cmp(s)) {
                    bits.set(i, true);
                }
            }
            BooleanArray {
                values: bits,
                validity: any_null.then_some(validity),
            }
        }
    };
    Ok(out)
}

/// `a > s` mask.
pub fn gt_scalar(a: &Array, s: &Scalar) -> Result<BooleanArray> {
    compare_scalar(a, s, CmpOp::Gt)
}

/// `a < s` mask.
pub fn lt_scalar(a: &Array, s: &Scalar) -> Result<BooleanArray> {
    compare_scalar(a, s, CmpOp::Lt)
}

/// `a BETWEEN lo AND hi` (inclusive both ends), the predicate form in the
/// paper's Laghos query.
pub fn between_scalar(a: &Array, lo: &Scalar, hi: &Scalar) -> Result<BooleanArray> {
    let ge = compare_scalar(a, lo, CmpOp::GtEq)?;
    let le = compare_scalar(a, hi, CmpOp::LtEq)?;
    super::boolean::and(&ge, &le)
}

/// Mask of valid (non-NULL) slots — `IS NOT NULL`.
pub fn is_not_null(a: &Array) -> BooleanArray {
    let bits = match a.validity() {
        Some(v) => v.clone(),
        None => Bitmap::with_value(a.len(), true),
    };
    BooleanArray {
        values: bits,
        validity: None,
    }
}

/// Mask of NULL slots — `IS NULL`.
pub fn is_null(a: &Array) -> BooleanArray {
    let nn = is_not_null(a);
    BooleanArray {
        values: nn.values.not(),
        validity: None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::array::Int64Array;

    #[test]
    fn scalar_comparisons() {
        let a = Array::from_i64(vec![1, 5, 3, 5]);
        let m = compare_scalar(&a, &Scalar::Int64(3), CmpOp::Gt).unwrap();
        assert_eq!(m.values.set_indices(), vec![1, 3]);
        let m = compare_scalar(&a, &Scalar::Int64(5), CmpOp::Eq).unwrap();
        assert_eq!(m.values.set_indices(), vec![1, 3]);
        let m = compare_scalar(&a, &Scalar::Int64(5), CmpOp::NotEq).unwrap();
        assert_eq!(m.values.set_indices(), vec![0, 2]);
    }

    #[test]
    fn float_comparisons_handle_nan() {
        let a = Array::from_f64(vec![1.0, f64::NAN, 3.0]);
        // total_cmp puts NAN above all numbers, so NAN > 2.0 is true.
        let m = gt_scalar(&a, &Scalar::Float64(2.0)).unwrap();
        assert_eq!(m.values.set_indices(), vec![1, 2]);
    }

    #[test]
    fn between_is_inclusive() {
        let a = Array::from_f64(vec![0.5, 0.8, 2.0, 3.2, 3.3]);
        let m = between_scalar(&a, &Scalar::Float64(0.8), &Scalar::Float64(3.2)).unwrap();
        assert_eq!(m.values.set_indices(), vec![1, 2, 3]);
    }

    #[test]
    fn array_array_comparison() {
        let a = Array::from_i64(vec![1, 2, 3]);
        let b = Array::from_i64(vec![3, 2, 1]);
        let m = compare(&a, &b, CmpOp::Lt).unwrap();
        assert_eq!(m.values.set_indices(), vec![0]);
        let m = compare(&a, &b, CmpOp::Eq).unwrap();
        assert_eq!(m.values.set_indices(), vec![1]);
    }

    #[test]
    fn mixed_numeric_comparison() {
        let a = Array::from_i64(vec![1, 2, 3]);
        let b = Array::from_f64(vec![1.5, 1.5, 1.5]);
        let m = compare(&a, &b, CmpOp::Gt).unwrap();
        assert_eq!(m.values.set_indices(), vec![1, 2]);
    }

    #[test]
    fn null_propagation() {
        let a = Array::Int64(Int64Array {
            values: vec![1, 2, 3],
            validity: Some(Bitmap::from_bools(&[true, false, true])),
        });
        let m = compare_scalar(&a, &Scalar::Int64(0), CmpOp::Gt).unwrap();
        assert_eq!(m.validity.as_ref().unwrap().count_zeros(), 1);
        // Compare against NULL scalar: everything NULL.
        let m = compare_scalar(&a, &Scalar::Null, CmpOp::Eq).unwrap();
        assert_eq!(m.validity.as_ref().unwrap().count_ones(), 0);
    }

    #[test]
    fn utf8_comparison() {
        let a = Array::from_strs(["apple", "banana", "cherry"]);
        let m = compare_scalar(&a, &Scalar::Utf8("banana".into()), CmpOp::GtEq).unwrap();
        assert_eq!(m.values.set_indices(), vec![1, 2]);
    }

    #[test]
    fn is_null_masks() {
        let a = Array::Int64(Int64Array {
            values: vec![1, 2],
            validity: Some(Bitmap::from_bools(&[false, true])),
        });
        assert_eq!(is_null(&a).values.set_indices(), vec![0]);
        assert_eq!(is_not_null(&a).values.set_indices(), vec![1]);
    }

    #[test]
    fn flip_is_involutive_on_strict_ops() {
        for op in [
            CmpOp::Eq,
            CmpOp::NotEq,
            CmpOp::Lt,
            CmpOp::LtEq,
            CmpOp::Gt,
            CmpOp::GtEq,
        ] {
            assert_eq!(op.flip().flip(), op);
        }
    }

    #[test]
    fn length_mismatch_is_error() {
        let a = Array::from_i64(vec![1]);
        let b = Array::from_i64(vec![1, 2]);
        assert!(compare(&a, &b, CmpOp::Eq).is_err());
    }
}
