//! Casting kernels between numeric/date types and string formatting.

use crate::array::{Array, Date32Array, Float64Array, Int64Array, Utf8Array};
use crate::datatype::DataType;
use crate::error::{ColumnarError, Result};

/// Cast `a` to `to`, following SQL cast semantics for the supported pairs.
pub fn cast(a: &Array, to: DataType) -> Result<Array> {
    if a.data_type() == to {
        return Ok(a.clone());
    }
    Ok(match (a, to) {
        (Array::Int64(x), DataType::Float64) => Array::Float64(Float64Array {
            values: x.values.iter().map(|&v| v as f64).collect(),
            validity: x.validity.clone(),
        }),
        (Array::Float64(x), DataType::Int64) => Array::Int64(Int64Array {
            values: x.values.iter().map(|&v| v as i64).collect(),
            validity: x.validity.clone(),
        }),
        (Array::Date32(x), DataType::Int64) => Array::Int64(Int64Array {
            values: x.values.iter().map(|&v| v as i64).collect(),
            validity: x.validity.clone(),
        }),
        (Array::Int64(x), DataType::Date32) => Array::Date32(Date32Array {
            values: x.values.iter().map(|&v| v as i32).collect(),
            validity: x.validity.clone(),
        }),
        (Array::Date32(x), DataType::Float64) => Array::Float64(Float64Array {
            values: x.values.iter().map(|&v| v as f64).collect(),
            validity: x.validity.clone(),
        }),
        (arr, DataType::Utf8) => {
            let mut offsets = vec![0u32];
            let mut data = Vec::new();
            for i in 0..arr.len() {
                if arr.is_valid(i) {
                    let s = arr.scalar_at(i).to_string();
                    // Strip the quotes Display adds to Utf8 scalars.
                    let s = s.trim_matches('\'');
                    data.extend_from_slice(s.as_bytes());
                }
                offsets.push(data.len() as u32);
            }
            Array::Utf8(Utf8Array {
                offsets,
                data: data.into(),
                validity: arr.validity().cloned(),
            })
        }
        (arr, to) => {
            return Err(ColumnarError::Invalid(format!(
                "unsupported cast {} to {to}",
                arr.data_type()
            )))
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::Scalar;

    #[test]
    fn numeric_casts() {
        let a = Array::from_i64(vec![1, -2]);
        let f = cast(&a, DataType::Float64).unwrap();
        assert_eq!(f.scalar_at(1), Scalar::Float64(-2.0));
        let back = cast(&f, DataType::Int64).unwrap();
        assert_eq!(back.scalar_at(1), Scalar::Int64(-2));
    }

    #[test]
    fn float_to_int_truncates() {
        let a = Array::from_f64(vec![2.9, -2.9]);
        let i = cast(&a, DataType::Int64).unwrap();
        assert_eq!(i.scalar_at(0), Scalar::Int64(2));
        assert_eq!(i.scalar_at(1), Scalar::Int64(-2));
    }

    #[test]
    fn to_string_cast() {
        let a = Array::from_i64(vec![42]);
        let s = cast(&a, DataType::Utf8).unwrap();
        assert_eq!(s.scalar_at(0), Scalar::Utf8("42".into()));
    }

    #[test]
    fn identity_cast_is_clone() {
        let a = Array::from_i64(vec![1]);
        assert_eq!(cast(&a, DataType::Int64).unwrap(), a);
    }

    #[test]
    fn invalid_cast_errors() {
        let a = Array::from_bools(vec![true]);
        assert!(cast(&a, DataType::Float64).is_err());
    }

    #[test]
    fn cast_preserves_validity() {
        let mut b = crate::builder::ArrayBuilder::new(DataType::Int64);
        b.push_i64(1);
        b.push_null();
        let a = b.finish();
        let f = cast(&a, DataType::Float64).unwrap();
        assert_eq!(f.scalar_at(1), Scalar::Null);
    }
}
