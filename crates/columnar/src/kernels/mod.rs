//! Vectorized compute kernels operating on whole arrays.
//!
//! Kernels are NULL-propagating: any NULL input produces a NULL output slot
//! (SQL three-valued logic lives in [`boolean`]).

pub mod arith;
pub mod boolean;
pub mod cast;
pub mod cmp;
pub mod hash;
pub mod selection;
