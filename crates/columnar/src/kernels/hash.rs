//! Row hashing for hash aggregation and exchange partitioning.
//!
//! Uses an FxHash-style multiply-xor mix: cheap, stable across platforms,
//! and good enough for power-of-two hash tables. Hashes are *combined*
//! column-by-column so multi-key `GROUP BY` gets one u64 per row.
//!
//! Float values are canonicalized ([`canon_f64`]) before hashing so every
//! SQL-equal value lands in the same group: `-0.0` hashes like `0.0` and
//! every NaN bit pattern hashes like the canonical quiet NaN. NULL slots
//! hash a marker *instead of* whatever bytes sit under the null, so NULLs
//! group together no matter which kernel produced the array.

use crate::array::Array;
use crate::error::Result;

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// The canonical quiet-NaN bit pattern all NaNs normalize to.
const CANON_NAN_BITS: u64 = 0x7ff8_0000_0000_0000;

/// Canonicalize a float for grouping/keying: `-0.0` becomes `0.0` and every
/// NaN becomes the canonical quiet NaN, so SQL-equal values have equal bits.
#[inline]
pub fn canon_f64(v: f64) -> f64 {
    if v == 0.0 {
        0.0
    } else if v.is_nan() {
        f64::from_bits(CANON_NAN_BITS)
    } else {
        v
    }
}

#[inline]
fn mix(h: u64, v: u64) -> u64 {
    (h.rotate_left(5) ^ v).wrapping_mul(SEED)
}

#[inline]
fn hash_bytes(h: u64, bytes: &[u8]) -> u64 {
    let mut acc = mix(h, bytes.len() as u64);
    let mut chunks = bytes.chunks_exact(8);
    for c in &mut chunks {
        acc = mix(acc, u64::from_le_bytes(c.try_into().expect("chunk of 8")));
    }
    let rem = chunks.remainder();
    if !rem.is_empty() {
        let mut buf = [0u8; 8];
        buf[..rem.len()].copy_from_slice(rem);
        acc = mix(acc, u64::from_le_bytes(buf));
    }
    acc
}

/// Marker hashed in place of a value for NULL slots so NULL groups hash
/// consistently.
const NULL_MARK: u64 = 0x6e_75_6c_6c_6e_75_6c_6c;

/// Hash each row of `column`, combining into `hashes` (which must have one
/// slot per row, pre-seeded — pass all-zeros for the first column).
///
/// NULL rows mix a fixed null marker in place of the value slot, so the bytes
/// sitting under a null never influence the hash.
pub fn hash_column_into(column: &Array, hashes: &mut [u64]) -> Result<()> {
    assert_eq!(column.len(), hashes.len(), "hash buffer length");
    let validity = column.validity();
    // Per-type value hashing; `valid` closure is only consulted when a
    // validity bitmap exists (the no-nulls fast path skips the branch).
    macro_rules! hash_loop {
        ($iter:expr) => {
            match validity {
                None => {
                    for (h, v) in hashes.iter_mut().zip($iter) {
                        *h = mix(*h, v);
                    }
                }
                Some(bm) => {
                    for (i, (h, v)) in hashes.iter_mut().zip($iter).enumerate() {
                        *h = mix(*h, if bm.get(i) { v } else { NULL_MARK });
                    }
                }
            }
        };
    }
    match column {
        Array::Int64(a) => hash_loop!(a.values.iter().map(|&v| v as u64)),
        Array::Float64(a) => hash_loop!(a.values.iter().map(|&v| canon_f64(v).to_bits())),
        Array::Date32(a) => hash_loop!(a.values.iter().map(|&v| v as u64)),
        Array::Boolean(a) => hash_loop!((0..a.values.len()).map(|i| a.values.get(i) as u64)),
        Array::Utf8(a) => {
            // Hash raw offset slices: `value()` would re-validate UTF-8 on
            // every row, and byte equality is what grouping needs anyway.
            let data: &[u8] = &a.data;
            let offsets = &a.offsets;
            match validity {
                None => {
                    for (i, h) in hashes.iter_mut().enumerate() {
                        let s = offsets[i] as usize;
                        let e = offsets[i + 1] as usize;
                        *h = hash_bytes(*h, &data[s..e]);
                    }
                }
                Some(bm) => {
                    for (i, h) in hashes.iter_mut().enumerate() {
                        if bm.get(i) {
                            let s = offsets[i] as usize;
                            let e = offsets[i + 1] as usize;
                            *h = hash_bytes(*h, &data[s..e]);
                        } else {
                            *h = mix(*h, NULL_MARK);
                        }
                    }
                }
            }
        }
    }
    Ok(())
}

/// Hash whole rows across `columns` (must be equal length).
pub fn hash_rows(columns: &[&Array]) -> Result<Vec<u64>> {
    let len = columns.first().map(|c| c.len()).unwrap_or(0);
    let mut hashes = vec![0u64; len];
    for c in columns {
        hash_column_into(c, &mut hashes)?;
    }
    Ok(hashes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::ArrayBuilder;
    use crate::datatype::DataType;

    #[test]
    fn equal_rows_hash_equal() {
        let a = Array::from_i64(vec![1, 2, 1]);
        let b = Array::from_strs(["x", "y", "x"]);
        let h = hash_rows(&[&a, &b]).unwrap();
        assert_eq!(h[0], h[2]);
        assert_ne!(h[0], h[1]);
    }

    #[test]
    fn column_order_matters() {
        let a = Array::from_i64(vec![1]);
        let b = Array::from_i64(vec![2]);
        let h1 = hash_rows(&[&a, &b]).unwrap();
        let h2 = hash_rows(&[&b, &a]).unwrap();
        assert_ne!(h1, h2, "(1,2) and (2,1) must hash differently");
    }

    #[test]
    fn negative_zero_equals_zero() {
        let a = Array::from_f64(vec![0.0, -0.0]);
        let h = hash_rows(&[&a]).unwrap();
        assert_eq!(h[0], h[1]);
    }

    #[test]
    fn nan_bit_patterns_hash_equal() {
        // A quiet NaN and a NaN with payload bits are SQL-equal for
        // grouping; canonicalization makes them hash equal.
        let weird_nan = f64::from_bits(0x7ff8_0000_0000_beef);
        assert!(weird_nan.is_nan());
        let a = Array::from_f64(vec![f64::NAN, weird_nan, 1.0]);
        let h = hash_rows(&[&a]).unwrap();
        assert_eq!(h[0], h[1]);
        assert_ne!(h[0], h[2]);
    }

    #[test]
    fn nulls_hash_consistently_but_not_as_values() {
        let mut b1 = ArrayBuilder::new(DataType::Int64);
        b1.push_i64(0);
        b1.push_null();
        b1.push_null();
        let a = b1.finish();
        let h = hash_rows(&[&a]).unwrap();
        assert_eq!(h[1], h[2], "NULL == NULL for grouping");
        assert_ne!(h[0], h[1], "NULL must not collide with the zero value");
    }

    #[test]
    fn null_hash_ignores_bytes_under_the_null() {
        // Two null slots with different garbage in the value buffer must
        // hash identically — kernels (e.g. arithmetic) can leave arbitrary
        // values under a null.
        use crate::array::Int64Array;
        use crate::bitmap::Bitmap;
        let a = Array::Int64(Int64Array {
            values: vec![7, 99],
            validity: Some(Bitmap::from_bools(&[false, false])),
        });
        let h = hash_rows(&[&a]).unwrap();
        assert_eq!(h[0], h[1]);
    }

    #[test]
    fn string_hash_no_prefix_collision() {
        let a = Array::from_strs(["ab", "a"]);
        let b = Array::from_strs(["c", "bc"]);
        let h = hash_rows(&[&a, &b]).unwrap();
        assert_ne!(h[0], h[1], "('ab','c') vs ('a','bc')");
    }

    #[test]
    fn distribution_sanity() {
        // 10k distinct keys into 1k buckets: no bucket should be empty-ish
        // pathological. Loose check: at least 900 distinct buckets hit.
        let values: Vec<i64> = (0..10_000).collect();
        let a = Array::from_i64(values);
        let h = hash_rows(&[&a]).unwrap();
        let mut buckets = std::collections::HashSet::new();
        for v in h {
            buckets.insert(v % 1024);
        }
        assert!(buckets.len() > 900, "only {} buckets hit", buckets.len());
    }
}
