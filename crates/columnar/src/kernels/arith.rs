//! Arithmetic kernels (`+ - * / %`) over numeric arrays.
//!
//! Int64 ⊕ Int64 stays Int64 (with `%` and `/` defined as in SQL integer
//! arithmetic); any Float64 operand promotes the result to Float64. Integer
//! division or modulo by zero yields a NULL slot rather than an error, which
//! matches how the engine's expression evaluator surfaces row-level faults.

use crate::array::{Array, Float64Array, Int64Array};
use crate::bitmap::Bitmap;
use crate::datatype::{DataType, Scalar};
use crate::error::{ColumnarError, Result};

/// Binary arithmetic operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArithOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/`
    Div,
    /// `%`
    Mod,
}

impl ArithOp {
    /// SQL spelling.
    pub fn sql(&self) -> &'static str {
        match self {
            ArithOp::Add => "+",
            ArithOp::Sub => "-",
            ArithOp::Mul => "*",
            ArithOp::Div => "/",
            ArithOp::Mod => "%",
        }
    }

    /// Result type for operand types `a` and `b`.
    pub fn result_type(&self, a: DataType, b: DataType) -> Result<DataType> {
        match (a, b) {
            (DataType::Int64, DataType::Int64) => Ok(DataType::Int64),
            (DataType::Float64, DataType::Float64)
            | (DataType::Int64, DataType::Float64)
            | (DataType::Float64, DataType::Int64) => Ok(DataType::Float64),
            // Date arithmetic: date ± int = date (day granularity).
            (DataType::Date32, DataType::Int64) if matches!(self, ArithOp::Add | ArithOp::Sub) => {
                Ok(DataType::Date32)
            }
            (x, y) => Err(ColumnarError::Invalid(format!(
                "arithmetic {} not defined for {x} and {y}",
                self.sql()
            ))),
        }
    }

    #[inline]
    fn eval_i64(&self, a: i64, b: i64) -> Option<i64> {
        match self {
            ArithOp::Add => Some(a.wrapping_add(b)),
            ArithOp::Sub => Some(a.wrapping_sub(b)),
            ArithOp::Mul => Some(a.wrapping_mul(b)),
            ArithOp::Div => {
                if b == 0 {
                    None
                } else {
                    Some(a.wrapping_div(b))
                }
            }
            ArithOp::Mod => {
                if b == 0 {
                    None
                } else {
                    Some(a.wrapping_rem(b))
                }
            }
        }
    }

    #[inline]
    fn eval_f64(&self, a: f64, b: f64) -> f64 {
        match self {
            ArithOp::Add => a + b,
            ArithOp::Sub => a - b,
            ArithOp::Mul => a * b,
            ArithOp::Div => a / b,
            ArithOp::Mod => a % b,
        }
    }
}

fn merge_validity(a: Option<&Bitmap>, b: Option<&Bitmap>) -> Option<Bitmap> {
    match (a, b) {
        (None, None) => None,
        (Some(v), None) | (None, Some(v)) => Some(v.clone()),
        (Some(x), Some(y)) => Some(x.and(y).expect("caller checked lengths")),
    }
}

fn to_f64_values(a: &Array) -> Result<Vec<f64>> {
    Ok(match a {
        Array::Float64(x) => x.values.clone(),
        Array::Int64(x) => x.values.iter().map(|&v| v as f64).collect(),
        Array::Date32(x) => x.values.iter().map(|&v| v as f64).collect(),
        other => {
            return Err(ColumnarError::type_mismatch(
                "numeric array",
                other.data_type(),
            ))
        }
    })
}

/// Element-wise `a ⊕ b` on equal-length arrays.
pub fn arith(a: &Array, b: &Array, op: ArithOp) -> Result<Array> {
    if a.len() != b.len() {
        return Err(ColumnarError::LengthMismatch {
            left: a.len(),
            right: b.len(),
        });
    }
    let out_dt = op.result_type(a.data_type(), b.data_type())?;
    match out_dt {
        DataType::Int64 => {
            let (x, y) = (a.as_i64()?, b.as_i64()?);
            let mut values = Vec::with_capacity(x.values.len());
            let mut fault_validity: Option<Bitmap> = None;
            for (i, (&p, &q)) in x.values.iter().zip(&y.values).enumerate() {
                match op.eval_i64(p, q) {
                    Some(v) => values.push(v),
                    None => {
                        values.push(0);
                        fault_validity
                            .get_or_insert_with(|| Bitmap::with_value(x.values.len(), true))
                            .set(i, false);
                    }
                }
            }
            let mut validity = merge_validity(x.validity.as_ref(), y.validity.as_ref());
            if let Some(f) = fault_validity {
                validity = Some(match validity {
                    Some(v) => v.and(&f)?,
                    None => f,
                });
            }
            Ok(Array::Int64(Int64Array { values, validity }))
        }
        DataType::Float64 => {
            let xs = to_f64_values(a)?;
            let ys = to_f64_values(b)?;
            let values: Vec<f64> = xs
                .iter()
                .zip(&ys)
                .map(|(&p, &q)| op.eval_f64(p, q))
                .collect();
            Ok(Array::Float64(Float64Array {
                values,
                validity: merge_validity(a.validity(), b.validity()),
            }))
        }
        DataType::Date32 => {
            let x = a.as_date32()?;
            let y = b.as_i64()?;
            let values: Vec<i32> = x
                .values
                .iter()
                .zip(&y.values)
                .map(|(&d, &n)| match op {
                    ArithOp::Add => d.wrapping_add(n as i32),
                    _ => d.wrapping_sub(n as i32),
                })
                .collect();
            Ok(Array::Date32(crate::array::Date32Array {
                values,
                validity: merge_validity(x.validity.as_ref(), y.validity.as_ref()),
            }))
        }
        _ => unreachable!("result_type only returns numeric types"),
    }
}

/// Element-wise `a ⊕ scalar`.
pub fn arith_scalar(a: &Array, s: &Scalar, op: ArithOp) -> Result<Array> {
    if s.is_null() {
        let dt = op
            .result_type(a.data_type(), s.data_type().unwrap_or(DataType::Int64))
            .unwrap_or(a.data_type());
        return Array::from_scalar(&Scalar::Null, dt, a.len());
    }
    let b = Array::from_scalar(s, s.data_type().expect("non-null"), a.len())?;
    arith(a, &b, op)
}

/// Unary negation.
pub fn negate(a: &Array) -> Result<Array> {
    match a {
        Array::Int64(x) => Ok(Array::Int64(Int64Array {
            values: x.values.iter().map(|v| v.wrapping_neg()).collect(),
            validity: x.validity.clone(),
        })),
        Array::Float64(x) => Ok(Array::Float64(Float64Array {
            values: x.values.iter().map(|v| -v).collect(),
            validity: x.validity.clone(),
        })),
        other => Err(ColumnarError::Invalid(format!(
            "negate not defined for {}",
            other.data_type()
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_arith() {
        let a = Array::from_i64(vec![10, 20, 30]);
        let b = Array::from_i64(vec![3, 4, 5]);
        let sum = arith(&a, &b, ArithOp::Add).unwrap();
        assert_eq!(sum.scalar_at(0), Scalar::Int64(13));
        let rem = arith(&a, &b, ArithOp::Mod).unwrap();
        assert_eq!(rem.scalar_at(1), Scalar::Int64(0));
        let div = arith(&a, &b, ArithOp::Div).unwrap();
        assert_eq!(div.scalar_at(2), Scalar::Int64(6));
    }

    #[test]
    fn int_div_by_zero_yields_null() {
        let a = Array::from_i64(vec![10, 20]);
        let b = Array::from_i64(vec![2, 0]);
        let div = arith(&a, &b, ArithOp::Div).unwrap();
        assert_eq!(div.scalar_at(0), Scalar::Int64(5));
        assert_eq!(div.scalar_at(1), Scalar::Null);
        let rem = arith(&a, &b, ArithOp::Mod).unwrap();
        assert_eq!(rem.scalar_at(1), Scalar::Null);
    }

    #[test]
    fn mixed_promotes_to_float() {
        let a = Array::from_i64(vec![1, 2]);
        let b = Array::from_f64(vec![0.5, 0.5]);
        let out = arith(&a, &b, ArithOp::Mul).unwrap();
        assert_eq!(out.data_type(), DataType::Float64);
        assert_eq!(out.scalar_at(1), Scalar::Float64(1.0));
    }

    #[test]
    fn scalar_arith_deep_water_projection() {
        // The paper's Deep Water projection: (rowid % (500*500)) / 500.
        let rowid = Array::from_i64(vec![0, 499, 500, 250_000, 250_500]);
        let m = arith_scalar(&rowid, &Scalar::Int64(500 * 500), ArithOp::Mod).unwrap();
        let out = arith_scalar(&m, &Scalar::Int64(500), ArithOp::Div).unwrap();
        let got: Vec<Scalar> = (0..5).map(|i| out.scalar_at(i)).collect();
        assert_eq!(
            got,
            vec![
                Scalar::Int64(0),
                Scalar::Int64(0),
                Scalar::Int64(1),
                Scalar::Int64(0),
                Scalar::Int64(1),
            ]
        );
    }

    #[test]
    fn tpch_q1_expression() {
        // extendedprice * (1 - discount) * (1 + tax)
        let price = Array::from_f64(vec![100.0]);
        let discount = Array::from_f64(vec![0.05]);
        let tax = Array::from_f64(vec![0.07]);
        let one_minus = arith_scalar(
            &negate(&discount).unwrap(),
            &Scalar::Float64(1.0),
            ArithOp::Add,
        )
        .unwrap();
        let one_plus = arith_scalar(&tax, &Scalar::Float64(1.0), ArithOp::Add).unwrap();
        let out = arith(
            &arith(&price, &one_minus, ArithOp::Mul).unwrap(),
            &one_plus,
            ArithOp::Mul,
        )
        .unwrap();
        let v = out.scalar_at(0).as_f64().unwrap();
        assert!((v - 100.0 * 0.95 * 1.07).abs() < 1e-9);
    }

    #[test]
    fn date_arithmetic() {
        let d = Array::from_dates(vec![10561]);
        let out = arith_scalar(&d, &Scalar::Int64(90), ArithOp::Sub).unwrap();
        assert_eq!(out.scalar_at(0), Scalar::Date32(10561 - 90));
        assert_eq!(out.data_type(), DataType::Date32);
    }

    #[test]
    fn invalid_types_error() {
        let a = Array::from_strs(["x"]);
        let b = Array::from_i64(vec![1]);
        assert!(arith(&a, &b, ArithOp::Add).is_err());
    }

    #[test]
    fn null_propagates() {
        let mut builder = crate::builder::ArrayBuilder::new(DataType::Int64);
        builder.push_i64(1);
        builder.push_null();
        let a = builder.finish();
        let out = arith_scalar(&a, &Scalar::Int64(1), ArithOp::Add).unwrap();
        assert_eq!(out.scalar_at(0), Scalar::Int64(2));
        assert_eq!(out.scalar_at(1), Scalar::Null);
    }
}
