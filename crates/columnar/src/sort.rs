//! Multi-key lexicographic sorting and top-N selection.

use crate::array::Array;
use crate::batch::RecordBatch;
use crate::datatype::Scalar;
use crate::error::{ColumnarError, Result};
use crate::kernels::selection::take_batch;
use std::cmp::Ordering;

/// One `ORDER BY` key.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SortKey {
    /// Column index into the batch being sorted.
    pub column: usize,
    /// Ascending (`ASC`) when true.
    pub ascending: bool,
    /// NULLs first when true (we default to NULLS FIRST for ASC, matching
    /// the engine's null-ordering convention).
    pub nulls_first: bool,
}

impl SortKey {
    /// Ascending key with NULLs first.
    pub fn asc(column: usize) -> Self {
        SortKey {
            column,
            ascending: true,
            nulls_first: true,
        }
    }

    /// Descending key with NULLs last.
    pub fn desc(column: usize) -> Self {
        SortKey {
            column,
            ascending: false,
            nulls_first: false,
        }
    }
}

fn compare_rows(columns: &[&Array], keys: &[SortKey], a: usize, b: usize) -> Ordering {
    for (ki, key) in keys.iter().enumerate() {
        let col = columns[ki];
        let (va, vb) = (col.scalar_at(a), col.scalar_at(b));
        let ord = match (va.is_null(), vb.is_null()) {
            (true, true) => Ordering::Equal,
            (true, false) => {
                if key.nulls_first {
                    Ordering::Less
                } else {
                    Ordering::Greater
                }
            }
            (false, true) => {
                if key.nulls_first {
                    Ordering::Greater
                } else {
                    Ordering::Less
                }
            }
            (false, false) => {
                let o = va.total_cmp(&vb);
                if key.ascending {
                    o
                } else {
                    o.reverse()
                }
            }
        };
        if ord != Ordering::Equal {
            return ord;
        }
    }
    Ordering::Equal
}

/// Compute the row permutation that sorts `batch` by `keys` (stable).
pub fn sort_to_indices(batch: &RecordBatch, keys: &[SortKey]) -> Result<Vec<usize>> {
    let columns: Vec<&Array> = keys
        .iter()
        .map(|k| {
            if k.column >= batch.num_columns() {
                Err(ColumnarError::IndexOutOfBounds {
                    index: k.column,
                    len: batch.num_columns(),
                })
            } else {
                Ok(batch.column(k.column).as_ref())
            }
        })
        .collect::<Result<_>>()?;
    let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
    indices.sort_by(|&a, &b| compare_rows(&columns, keys, a, b));
    Ok(indices)
}

/// Sort the whole batch by `keys`.
pub fn sort_batch(batch: &RecordBatch, keys: &[SortKey]) -> Result<RecordBatch> {
    let indices = sort_to_indices(batch, keys)?;
    take_batch(batch, &indices)
}

/// Top-N: the first `n` rows of the sorted order, computed with a bounded
/// partial sort (`select_nth_unstable`-style) instead of a full sort — this
/// is the `ORDER BY … LIMIT n` operator OCS executes in-storage.
pub fn top_n(batch: &RecordBatch, keys: &[SortKey], n: usize) -> Result<RecordBatch> {
    if n == 0 {
        return Ok(RecordBatch::empty(batch.schema().clone()));
    }
    let columns: Vec<&Array> = keys
        .iter()
        .map(|k| {
            if k.column >= batch.num_columns() {
                Err(ColumnarError::IndexOutOfBounds {
                    index: k.column,
                    len: batch.num_columns(),
                })
            } else {
                Ok(batch.column(k.column).as_ref())
            }
        })
        .collect::<Result<_>>()?;
    let mut indices: Vec<usize> = (0..batch.num_rows()).collect();
    if n < indices.len() {
        indices.select_nth_unstable_by(n - 1, |&a, &b| compare_rows(&columns, keys, a, b));
        indices.truncate(n);
    }
    indices.sort_by(|&a, &b| compare_rows(&columns, keys, a, b));
    take_batch(batch, &indices)
}

/// Merge already-sorted batches into one sorted batch, keeping at most
/// `limit` rows when given — the final-stage combine for distributed top-N.
pub fn merge_sorted(
    batches: &[RecordBatch],
    keys: &[SortKey],
    limit: Option<usize>,
) -> Result<RecordBatch> {
    let all = RecordBatch::concat(batches)?;
    match limit {
        Some(n) => top_n(&all, keys, n),
        None => sort_batch(&all, keys),
    }
}

/// Extract the key values of row `r` — exposed for tests asserting sortedness.
pub fn key_values(batch: &RecordBatch, keys: &[SortKey], r: usize) -> Vec<Scalar> {
    keys.iter()
        .map(|k| batch.column(k.column).scalar_at(r))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datatype::DataType;
    use crate::schema::{Field, Schema};
    use std::sync::Arc;

    fn batch(ids: Vec<i64>, vals: Vec<f64>) -> RecordBatch {
        let schema = Arc::new(Schema::new(vec![
            Field::new("id", DataType::Int64, false),
            Field::new("v", DataType::Float64, false),
        ]));
        RecordBatch::try_new(
            schema,
            vec![
                Arc::new(Array::from_i64(ids)),
                Arc::new(Array::from_f64(vals)),
            ],
        )
        .unwrap()
    }

    #[test]
    fn single_key_ascending() {
        let b = batch(vec![3, 1, 2], vec![0.3, 0.1, 0.2]);
        let s = sort_batch(&b, &[SortKey::asc(0)]).unwrap();
        assert_eq!(s.column(0).as_i64().unwrap().values, vec![1, 2, 3]);
    }

    #[test]
    fn single_key_descending() {
        let b = batch(vec![3, 1, 2], vec![0.3, 0.1, 0.2]);
        let s = sort_batch(&b, &[SortKey::desc(1)]).unwrap();
        assert_eq!(s.column(0).as_i64().unwrap().values, vec![3, 2, 1]);
    }

    #[test]
    fn multi_key_lexicographic() {
        let b = batch(vec![1, 2, 1, 2], vec![0.9, 0.1, 0.2, 0.8]);
        let s = sort_batch(&b, &[SortKey::asc(0), SortKey::desc(1)]).unwrap();
        assert_eq!(s.column(0).as_i64().unwrap().values, vec![1, 1, 2, 2]);
        assert_eq!(
            s.column(1).as_f64().unwrap().values,
            vec![0.9, 0.2, 0.8, 0.1]
        );
    }

    #[test]
    fn sort_is_stable() {
        // Equal keys keep input order.
        let b = batch(vec![1, 1, 1], vec![0.1, 0.2, 0.3]);
        let s = sort_batch(&b, &[SortKey::asc(0)]).unwrap();
        assert_eq!(s.column(1).as_f64().unwrap().values, vec![0.1, 0.2, 0.3]);
    }

    #[test]
    fn nulls_first_and_last() {
        let schema = Arc::new(Schema::new(vec![Field::new("x", DataType::Int64, true)]));
        let mut builder = crate::builder::ArrayBuilder::new(DataType::Int64);
        builder.push_i64(2);
        builder.push_null();
        builder.push_i64(1);
        let b = RecordBatch::try_new(schema, vec![Arc::new(builder.finish())]).unwrap();
        let s = sort_batch(&b, &[SortKey::asc(0)]).unwrap();
        assert_eq!(s.row(0), vec![Scalar::Null]);
        assert_eq!(s.row(1), vec![Scalar::Int64(1)]);
        let s = sort_batch(&b, &[SortKey::desc(0)]).unwrap();
        assert_eq!(s.row(2), vec![Scalar::Null]);
    }

    #[test]
    fn top_n_matches_full_sort_prefix() {
        let n = 7;
        let ids: Vec<i64> = (0..100).map(|i| (i * 37) % 100).collect();
        let vals: Vec<f64> = ids.iter().map(|&i| i as f64 / 3.0).collect();
        let b = batch(ids, vals);
        let keys = [SortKey::asc(1)];
        let full = sort_batch(&b, &keys).unwrap();
        let top = top_n(&b, &keys, n).unwrap();
        assert_eq!(top.num_rows(), n);
        for r in 0..n {
            assert_eq!(top.row(r), full.row(r), "row {r}");
        }
    }

    #[test]
    fn top_n_edge_cases() {
        let b = batch(vec![1, 2], vec![0.1, 0.2]);
        assert_eq!(top_n(&b, &[SortKey::asc(0)], 0).unwrap().num_rows(), 0);
        assert_eq!(top_n(&b, &[SortKey::asc(0)], 10).unwrap().num_rows(), 2);
        assert!(top_n(&b, &[SortKey::asc(9)], 1).is_err());
    }

    #[test]
    fn merge_sorted_respects_limit() {
        let b1 = sort_batch(&batch(vec![5, 1, 3], vec![0.0; 3]), &[SortKey::asc(0)]).unwrap();
        let b2 = sort_batch(&batch(vec![4, 2, 6], vec![0.0; 3]), &[SortKey::asc(0)]).unwrap();
        let m = merge_sorted(&[b1, b2], &[SortKey::asc(0)], Some(4)).unwrap();
        assert_eq!(m.column(0).as_i64().unwrap().values, vec![1, 2, 3, 4]);
        let b1 = sort_batch(&batch(vec![5, 1, 3], vec![0.0; 3]), &[SortKey::asc(0)]).unwrap();
        let b2 = sort_batch(&batch(vec![4, 2, 6], vec![0.0; 3]), &[SortKey::asc(0)]).unwrap();
        let m = merge_sorted(&[b1, b2], &[SortKey::asc(0)], None).unwrap();
        assert_eq!(m.column(0).as_i64().unwrap().values, vec![1, 2, 3, 4, 5, 6]);
    }
}
