//! The logical type system: [`DataType`] and untyped single values
//! ([`Scalar`]).

use std::cmp::Ordering;
use std::fmt;

use crate::error::{ColumnarError, Result};

/// Logical data types supported by the engine.
///
/// This is the subset needed by the paper's workloads: 64-bit integers,
/// double-precision floats (which S3 Select notably *lacks* — OCS's support
/// for them is one of its selling points), booleans, UTF-8 strings and
/// days-since-epoch dates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataType {
    /// 64-bit signed integer.
    Int64,
    /// 64-bit IEEE-754 floating point ("double precision").
    Float64,
    /// Boolean.
    Boolean,
    /// Variable-length UTF-8 string.
    Utf8,
    /// Date as days since the UNIX epoch.
    Date32,
}

impl DataType {
    /// Stable single-byte tag for wire formats.
    pub fn tag(&self) -> u8 {
        match self {
            DataType::Int64 => 0,
            DataType::Float64 => 1,
            DataType::Boolean => 2,
            DataType::Utf8 => 3,
            DataType::Date32 => 4,
        }
    }

    /// Inverse of [`DataType::tag`].
    pub fn from_tag(tag: u8) -> Result<Self> {
        Ok(match tag {
            0 => DataType::Int64,
            1 => DataType::Float64,
            2 => DataType::Boolean,
            3 => DataType::Utf8,
            4 => DataType::Date32,
            other => {
                return Err(ColumnarError::Corrupt(format!(
                    "unknown data type tag {other}"
                )))
            }
        })
    }

    /// True for types on which arithmetic is defined.
    pub fn is_numeric(&self) -> bool {
        matches!(self, DataType::Int64 | DataType::Float64 | DataType::Date32)
    }

    /// Width in bytes of one fixed-size value, or `None` for variable-width
    /// types.
    pub fn fixed_width(&self) -> Option<usize> {
        match self {
            DataType::Int64 | DataType::Float64 => Some(8),
            DataType::Date32 => Some(4),
            DataType::Boolean => None, // bit-packed
            DataType::Utf8 => None,
        }
    }
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Int64 => "Int64",
            DataType::Float64 => "Float64",
            DataType::Boolean => "Boolean",
            DataType::Utf8 => "Utf8",
            DataType::Date32 => "Date32",
        };
        f.write_str(s)
    }
}

/// A single, possibly-null value of any [`DataType`].
#[derive(Debug, Clone, PartialEq)]
pub enum Scalar {
    /// SQL NULL.
    Null,
    /// An [`DataType::Int64`] value.
    Int64(i64),
    /// A [`DataType::Float64`] value.
    Float64(f64),
    /// A [`DataType::Boolean`] value.
    Boolean(bool),
    /// A [`DataType::Utf8`] value.
    Utf8(String),
    /// A [`DataType::Date32`] value (days since epoch).
    Date32(i32),
}

impl Scalar {
    /// The scalar's data type, or `None` for [`Scalar::Null`].
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Scalar::Null => None,
            Scalar::Int64(_) => Some(DataType::Int64),
            Scalar::Float64(_) => Some(DataType::Float64),
            Scalar::Boolean(_) => Some(DataType::Boolean),
            Scalar::Utf8(_) => Some(DataType::Utf8),
            Scalar::Date32(_) => Some(DataType::Date32),
        }
    }

    /// True for [`Scalar::Null`].
    pub fn is_null(&self) -> bool {
        matches!(self, Scalar::Null)
    }

    /// Numeric view as `f64` for Int64/Float64/Date32 scalars.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Scalar::Int64(v) => Some(*v as f64),
            Scalar::Float64(v) => Some(*v),
            Scalar::Date32(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Integer view for Int64/Date32 scalars.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Scalar::Int64(v) => Some(*v),
            Scalar::Date32(v) => Some(*v as i64),
            _ => None,
        }
    }

    /// Total order over same-type scalars; NULLs sort first. Used by the
    /// sort kernels and by file-format statistics.
    pub fn total_cmp(&self, other: &Scalar) -> Ordering {
        use Scalar::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Null, _) => Ordering::Less,
            (_, Null) => Ordering::Greater,
            (Int64(a), Int64(b)) => a.cmp(b),
            (Float64(a), Float64(b)) => a.total_cmp(b),
            (Boolean(a), Boolean(b)) => a.cmp(b),
            (Utf8(a), Utf8(b)) => a.cmp(b),
            (Date32(a), Date32(b)) => a.cmp(b),
            // Cross-type numeric comparison via f64 (Int64 vs Float64 etc.).
            (a, b) => match (a.as_f64(), b.as_f64()) {
                (Some(x), Some(y)) => x.total_cmp(&y),
                _ => Ordering::Equal,
            },
        }
    }

    /// Cast the scalar to `to`, when a lossless or standard SQL cast exists.
    pub fn cast(&self, to: DataType) -> Result<Scalar> {
        match (self, to) {
            (Scalar::Null, _) => Ok(Scalar::Null),
            (s, t) if s.data_type() == Some(t) => Ok(s.clone()),
            (Scalar::Int64(v), DataType::Float64) => Ok(Scalar::Float64(*v as f64)),
            (Scalar::Float64(v), DataType::Int64) => Ok(Scalar::Int64(*v as i64)),
            (Scalar::Date32(v), DataType::Int64) => Ok(Scalar::Int64(*v as i64)),
            (Scalar::Int64(v), DataType::Date32) => Ok(Scalar::Date32(*v as i32)),
            (Scalar::Utf8(s), DataType::Int64) => s
                .parse::<i64>()
                .map(Scalar::Int64)
                .map_err(|e| ColumnarError::Invalid(format!("cast '{s}' to Int64: {e}"))),
            (Scalar::Utf8(s), DataType::Float64) => s
                .parse::<f64>()
                .map(Scalar::Float64)
                .map_err(|e| ColumnarError::Invalid(format!("cast '{s}' to Float64: {e}"))),
            (s, t) => Err(ColumnarError::Invalid(format!(
                "unsupported cast {s} to {t}"
            ))),
        }
    }
}

impl fmt::Display for Scalar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Scalar::Null => write!(f, "NULL"),
            Scalar::Int64(v) => write!(f, "{v}"),
            Scalar::Float64(v) => write!(f, "{v}"),
            Scalar::Boolean(v) => write!(f, "{v}"),
            Scalar::Utf8(v) => write!(f, "'{v}'"),
            Scalar::Date32(v) => write!(f, "date({v})"),
        }
    }
}

impl From<i64> for Scalar {
    fn from(v: i64) -> Self {
        Scalar::Int64(v)
    }
}
impl From<f64> for Scalar {
    fn from(v: f64) -> Self {
        Scalar::Float64(v)
    }
}
impl From<bool> for Scalar {
    fn from(v: bool) -> Self {
        Scalar::Boolean(v)
    }
}
impl From<&str> for Scalar {
    fn from(v: &str) -> Self {
        Scalar::Utf8(v.to_string())
    }
}

/// Convert a calendar date to days since the UNIX epoch (proleptic
/// Gregorian). Used for SQL `DATE '1998-12-01'` literals.
pub fn days_from_civil(year: i32, month: u32, day: u32) -> i32 {
    // Howard Hinnant's algorithm.
    let y = if month <= 2 { year - 1 } else { year };
    let era = if y >= 0 { y } else { y - 399 } / 400;
    let yoe = (y - era * 400) as i64; // [0, 399]
    let mp = ((month + 9) % 12) as i64; // [0, 11], Mar=0
    let doy = (153 * mp + 2) / 5 + day as i64 - 1; // [0, 365]
    let doe = yoe * 365 + yoe / 4 - yoe / 100 + doy; // [0, 146096]
    (era as i64 * 146097 + doe - 719468) as i32
}

/// Inverse of [`days_from_civil`]; returns `(year, month, day)`.
pub fn civil_from_days(days: i32) -> (i32, u32, u32) {
    let z = days as i64 + 719468;
    let era = if z >= 0 { z } else { z - 146096 } / 146097;
    let doe = z - era * 146097; // [0, 146096]
    let yoe = (doe - doe / 1460 + doe / 36524 - doe / 146096) / 365; // [0, 399]
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100); // [0, 365]
    let mp = (5 * doy + 2) / 153; // [0, 11]
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32; // [1, 31]
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32; // [1, 12]
    let year = if m <= 2 { y + 1 } else { y } as i32;
    (year, m, d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_tags_roundtrip() {
        for dt in [
            DataType::Int64,
            DataType::Float64,
            DataType::Boolean,
            DataType::Utf8,
            DataType::Date32,
        ] {
            assert_eq!(DataType::from_tag(dt.tag()).unwrap(), dt);
        }
        assert!(DataType::from_tag(99).is_err());
    }

    #[test]
    fn scalar_ordering_nulls_first() {
        assert_eq!(Scalar::Null.total_cmp(&Scalar::Int64(0)), Ordering::Less);
        assert_eq!(
            Scalar::Int64(1).total_cmp(&Scalar::Int64(2)),
            Ordering::Less
        );
        assert_eq!(
            Scalar::Float64(f64::NAN).total_cmp(&Scalar::Float64(f64::NAN)),
            Ordering::Equal
        );
        assert_eq!(
            Scalar::Utf8("a".into()).total_cmp(&Scalar::Utf8("b".into())),
            Ordering::Less
        );
    }

    #[test]
    fn cross_type_numeric_ordering() {
        assert_eq!(
            Scalar::Int64(2).total_cmp(&Scalar::Float64(2.5)),
            Ordering::Less
        );
        assert_eq!(
            Scalar::Float64(3.0).total_cmp(&Scalar::Int64(3)),
            Ordering::Equal
        );
    }

    #[test]
    fn casts() {
        assert_eq!(
            Scalar::Int64(3).cast(DataType::Float64).unwrap(),
            Scalar::Float64(3.0)
        );
        assert_eq!(
            Scalar::Utf8("42".into()).cast(DataType::Int64).unwrap(),
            Scalar::Int64(42)
        );
        assert!(Scalar::Boolean(true).cast(DataType::Float64).is_err());
        assert_eq!(Scalar::Null.cast(DataType::Utf8).unwrap(), Scalar::Null);
    }

    #[test]
    fn civil_date_conversion_known_values() {
        assert_eq!(days_from_civil(1970, 1, 1), 0);
        assert_eq!(days_from_civil(1970, 1, 2), 1);
        assert_eq!(days_from_civil(1969, 12, 31), -1);
        // TPC-H's famous date.
        assert_eq!(days_from_civil(1998, 12, 1), 10561);
        assert_eq!(civil_from_days(10561), (1998, 12, 1));
    }

    #[test]
    fn civil_date_roundtrip_sweep() {
        for days in (-30000..60000).step_by(97) {
            let (y, m, d) = civil_from_days(days);
            assert_eq!(days_from_civil(y, m, d), days);
            assert!((1..=12).contains(&m));
            assert!((1..=31).contains(&d));
        }
    }
}
