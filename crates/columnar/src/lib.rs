//! `columnar` — an Arrow-like in-memory columnar data representation.
//!
//! This crate is the substrate playing the role Apache Arrow plays in the
//! paper *Integrating Distributed SQL Query Engines with Object-Based
//! Computational Storage*: a typed, nullable, schema-carrying columnar
//! format used both for vectorized query execution and for serializing
//! result sets across the storage/compute network boundary.
//!
//! # Layout
//!
//! * [`datatype`] — the logical type system ([`DataType`], [`Scalar`]).
//! * [`bitmap`] — packed validity/selection bitmaps.
//! * [`array`](mod@array) — immutable typed arrays and the [`Array`] enum.
//! * [`builder`] — incremental array construction.
//! * [`schema`] — [`Field`] / [`Schema`].
//! * [`batch`] — [`RecordBatch`], the unit of vectorized execution
//!   (Presto would call this a *Page*).
//! * [`kernels`] — vectorized compute: comparisons, arithmetic, boolean
//!   logic, selection (filter/take), casting and hashing.
//! * [`agg`] — aggregate functions and type-specialized columnar
//!   accumulators (`SUM`/`MIN`/`MAX`/`AVG`/`COUNT`).
//! * [`groupby`] — the vectorized group-id kernel and
//!   [`groupby::GroupedAggregator`], the single grouped-aggregation engine
//!   shared by the query engine and the OCS storage executor.
//! * [`sort`] — multi-key lexicographic sorting and top-N selection.
//! * [`ipc`] — a compact IPC-style wire format for shipping batches
//!   (the "Arrow flight" of this reproduction).
//!
//! # Example
//!
//! ```
//! use columnar::prelude::*;
//!
//! let schema = Schema::new(vec![
//!     Field::new("x", DataType::Float64, false),
//!     Field::new("id", DataType::Int64, false),
//! ]);
//! let batch = RecordBatch::try_new(
//!     schema.into(),
//!     vec![
//!         Array::from_f64(vec![0.5, 1.5, 2.5]).into(),
//!         Array::from_i64(vec![1, 2, 3]).into(),
//!     ],
//! )
//! .unwrap();
//!
//! // keep rows where x > 1.0
//! let mask = columnar::kernels::cmp::gt_scalar(batch.column(0), &Scalar::Float64(1.0)).unwrap();
//! let filtered = columnar::kernels::selection::filter_batch(&batch, &mask).unwrap();
//! assert_eq!(filtered.num_rows(), 2);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod agg;
pub mod array;
pub mod batch;
pub mod bitmap;
pub mod builder;
pub mod datatype;
pub mod error;
pub mod groupby;
pub mod ipc;
pub mod kernels;
pub mod schema;
pub mod sort;

pub use array::{Array, ArrayRef, BooleanArray, Float64Array, Int64Array, Utf8Array};
pub use batch::RecordBatch;
pub use bitmap::Bitmap;
pub use datatype::{DataType, Scalar};
pub use error::{ColumnarError, Result};
pub use schema::{Field, Schema, SchemaRef};

/// Convenient glob-import surface for downstream crates.
pub mod prelude {
    pub use crate::array::{Array, ArrayRef};
    pub use crate::batch::RecordBatch;
    pub use crate::bitmap::Bitmap;
    pub use crate::builder::ArrayBuilder;
    pub use crate::datatype::{DataType, Scalar};
    pub use crate::error::{ColumnarError, Result};
    pub use crate::schema::{Field, Schema, SchemaRef};
}
