//! Aggregation accumulators: `COUNT`, `SUM`, `MIN`, `MAX`, `AVG`.
//!
//! Accumulators support the two-phase (partial → final) protocol a
//! distributed engine needs: `update` consumes input rows, `merge` combines
//! partial states (e.g. from different splits or storage nodes), and
//! `finish` produces the SQL result. `AVG` carries (sum, count) state so the
//! merge is exact.

use crate::array::Array;
use crate::datatype::{DataType, Scalar};
use crate::error::{ColumnarError, Result};

/// The aggregate functions supported for pushdown in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AggFunc {
    /// `COUNT(*)` / `COUNT(x)`.
    Count,
    /// `SUM(x)`.
    Sum,
    /// `MIN(x)`.
    Min,
    /// `MAX(x)`.
    Max,
    /// `AVG(x)`.
    Avg,
}

impl AggFunc {
    /// SQL name.
    pub fn sql(&self) -> &'static str {
        match self {
            AggFunc::Count => "count",
            AggFunc::Sum => "sum",
            AggFunc::Min => "min",
            AggFunc::Max => "max",
            AggFunc::Avg => "avg",
        }
    }

    /// Parse a SQL function name.
    pub fn from_name(name: &str) -> Option<AggFunc> {
        Some(match name.to_ascii_lowercase().as_str() {
            "count" => AggFunc::Count,
            "sum" => AggFunc::Sum,
            "min" => AggFunc::Min,
            "max" => AggFunc::Max,
            "avg" => AggFunc::Avg,
            _ => return None,
        })
    }

    /// Result type given the input type.
    pub fn result_type(&self, input: Option<DataType>) -> Result<DataType> {
        Ok(match self {
            AggFunc::Count => DataType::Int64,
            AggFunc::Avg => DataType::Float64,
            AggFunc::Sum => match input {
                Some(DataType::Int64) => DataType::Int64,
                Some(DataType::Float64) => DataType::Float64,
                other => {
                    return Err(ColumnarError::Invalid(format!(
                        "SUM over {other:?} not supported"
                    )))
                }
            },
            AggFunc::Min | AggFunc::Max => input.ok_or_else(|| {
                ColumnarError::Invalid(format!("{} requires an argument", self.sql()))
            })?,
        })
    }
}

/// Running state for one (group, aggregate) pair.
#[derive(Debug, Clone, PartialEq)]
pub enum AggState {
    /// COUNT state.
    Count(i64),
    /// SUM over integers.
    SumI64 {
        /// Running total.
        sum: i64,
        /// Whether any non-null input was seen (SUM of no rows is NULL).
        seen: bool,
    },
    /// SUM over floats.
    SumF64 {
        /// Running total.
        sum: f64,
        /// Whether any non-null input was seen.
        seen: bool,
    },
    /// MIN/MAX state: current extremum, NULL until a value is seen.
    Extremum {
        /// Current best value.
        value: Scalar,
        /// True for MIN, false for MAX.
        is_min: bool,
    },
    /// AVG state.
    Avg {
        /// Running sum.
        sum: f64,
        /// Count of non-null inputs.
        count: i64,
    },
}

impl AggState {
    /// Fresh state for `func` over inputs of type `input`.
    pub fn new(func: AggFunc, input: Option<DataType>) -> Result<AggState> {
        Ok(match func {
            AggFunc::Count => AggState::Count(0),
            AggFunc::Sum => match input {
                Some(DataType::Int64) => AggState::SumI64 { sum: 0, seen: false },
                Some(DataType::Float64) => AggState::SumF64 { sum: 0.0, seen: false },
                other => {
                    return Err(ColumnarError::Invalid(format!(
                        "SUM over {other:?} not supported"
                    )))
                }
            },
            AggFunc::Min => AggState::Extremum {
                value: Scalar::Null,
                is_min: true,
            },
            AggFunc::Max => AggState::Extremum {
                value: Scalar::Null,
                is_min: false,
            },
            AggFunc::Avg => AggState::Avg { sum: 0.0, count: 0 },
        })
    }

    /// Fold in row `row` of `input` (`None` input = `COUNT(*)`).
    #[inline]
    pub fn update(&mut self, input: Option<&Array>, row: usize) {
        match self {
            AggState::Count(c) => {
                // COUNT(*) counts every row; COUNT(x) skips NULL x.
                match input {
                    None => *c += 1,
                    Some(a) if a.is_valid(row) => *c += 1,
                    Some(_) => {}
                }
            }
            AggState::SumI64 { sum, seen } => {
                if let Some(a) = input {
                    if a.is_valid(row) {
                        if let Scalar::Int64(v) = a.scalar_at(row) {
                            *sum = sum.wrapping_add(v);
                            *seen = true;
                        }
                    }
                }
            }
            AggState::SumF64 { sum, seen } => {
                if let Some(a) = input {
                    if a.is_valid(row) {
                        if let Some(v) = a.scalar_at(row).as_f64() {
                            *sum += v;
                            *seen = true;
                        }
                    }
                }
            }
            AggState::Extremum { value, is_min } => {
                if let Some(a) = input {
                    if a.is_valid(row) {
                        let v = a.scalar_at(row);
                        let better = value.is_null()
                            || if *is_min {
                                v.total_cmp(value).is_lt()
                            } else {
                                v.total_cmp(value).is_gt()
                            };
                        if better {
                            *value = v;
                        }
                    }
                }
            }
            AggState::Avg { sum, count } => {
                if let Some(a) = input {
                    if a.is_valid(row) {
                        if let Some(v) = a.scalar_at(row).as_f64() {
                            *sum += v;
                            *count += 1;
                        }
                    }
                }
            }
        }
    }

    /// Merge another partial state of the same kind (distributed combine).
    pub fn merge(&mut self, other: &AggState) -> Result<()> {
        match (self, other) {
            (AggState::Count(a), AggState::Count(b)) => *a += b,
            (
                AggState::SumI64 { sum: a, seen: sa },
                AggState::SumI64 { sum: b, seen: sb },
            ) => {
                *a = a.wrapping_add(*b);
                *sa |= sb;
            }
            (
                AggState::SumF64 { sum: a, seen: sa },
                AggState::SumF64 { sum: b, seen: sb },
            ) => {
                *a += b;
                *sa |= sb;
            }
            (
                AggState::Extremum { value: a, is_min },
                AggState::Extremum { value: b, .. },
            ) => {
                if !b.is_null() {
                    let better = a.is_null()
                        || if *is_min {
                            b.total_cmp(a).is_lt()
                        } else {
                            b.total_cmp(a).is_gt()
                        };
                    if better {
                        *a = b.clone();
                    }
                }
            }
            (
                AggState::Avg { sum: a, count: ca },
                AggState::Avg { sum: b, count: cb },
            ) => {
                *a += b;
                *ca += cb;
            }
            (me, other) => {
                return Err(ColumnarError::Invalid(format!(
                    "cannot merge aggregate states {me:?} and {other:?}"
                )))
            }
        }
        Ok(())
    }

    /// Produce the SQL result value.
    pub fn finish(&self) -> Scalar {
        match self {
            AggState::Count(c) => Scalar::Int64(*c),
            AggState::SumI64 { sum, seen } => {
                if *seen {
                    Scalar::Int64(*sum)
                } else {
                    Scalar::Null
                }
            }
            AggState::SumF64 { sum, seen } => {
                if *seen {
                    Scalar::Float64(*sum)
                } else {
                    Scalar::Null
                }
            }
            AggState::Extremum { value, .. } => value.clone(),
            AggState::Avg { sum, count } => {
                if *count == 0 {
                    Scalar::Null
                } else {
                    Scalar::Float64(sum / *count as f64)
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(func: AggFunc, arr: &Array) -> Scalar {
        let mut st = AggState::new(func, Some(arr.data_type())).unwrap();
        for i in 0..arr.len() {
            st.update(Some(arr), i);
        }
        st.finish()
    }

    #[test]
    fn basic_aggregates() {
        let a = Array::from_i64(vec![3, 1, 4, 1, 5]);
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Int64(14));
        assert_eq!(run(AggFunc::Min, &a), Scalar::Int64(1));
        assert_eq!(run(AggFunc::Max, &a), Scalar::Int64(5));
        assert_eq!(run(AggFunc::Count, &a), Scalar::Int64(5));
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Float64(14.0 / 5.0));
    }

    #[test]
    fn float_aggregates() {
        let a = Array::from_f64(vec![1.5, -0.5]);
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Float64(1.0));
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Float64(0.5));
        assert_eq!(run(AggFunc::Min, &a), Scalar::Float64(-0.5));
    }

    #[test]
    fn nulls_are_skipped() {
        let mut b = crate::builder::ArrayBuilder::new(DataType::Int64);
        b.push_i64(10);
        b.push_null();
        b.push_i64(20);
        let a = b.finish();
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Int64(30));
        assert_eq!(run(AggFunc::Count, &a), Scalar::Int64(2), "COUNT(x) skips NULL");
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Float64(15.0));
    }

    #[test]
    fn count_star_counts_nulls() {
        let mut b = crate::builder::ArrayBuilder::new(DataType::Int64);
        b.push_null();
        b.push_null();
        let a = b.finish();
        let mut st = AggState::new(AggFunc::Count, None).unwrap();
        for i in 0..a.len() {
            st.update(None, i);
        }
        assert_eq!(st.finish(), Scalar::Int64(2));
    }

    #[test]
    fn empty_input_semantics() {
        let a = Array::from_i64(vec![]);
        assert_eq!(run(AggFunc::Sum, &a), Scalar::Null, "SUM of nothing is NULL");
        assert_eq!(run(AggFunc::Count, &a), Scalar::Int64(0));
        assert_eq!(run(AggFunc::Avg, &a), Scalar::Null);
        assert_eq!(run(AggFunc::Min, &a), Scalar::Null);
    }

    #[test]
    fn merge_equals_single_pass() {
        // Split [1..10] into two halves, aggregate each, merge — must equal
        // aggregating the whole thing. This is the distributed-correctness
        // invariant the OCS partial-aggregation path relies on.
        let all = Array::from_i64((1..=10).collect());
        let left = Array::from_i64((1..=5).collect());
        let right = Array::from_i64((6..=10).collect());
        for func in [AggFunc::Sum, AggFunc::Min, AggFunc::Max, AggFunc::Count, AggFunc::Avg] {
            let whole = run(func, &all);
            let mut a = AggState::new(func, Some(DataType::Int64)).unwrap();
            for i in 0..left.len() {
                a.update(Some(&left), i);
            }
            let mut b = AggState::new(func, Some(DataType::Int64)).unwrap();
            for i in 0..right.len() {
                b.update(Some(&right), i);
            }
            a.merge(&b).unwrap();
            assert_eq!(a.finish(), whole, "{func:?}");
        }
    }

    #[test]
    fn merge_mismatched_states_errors() {
        let mut a = AggState::new(AggFunc::Count, None).unwrap();
        let b = AggState::new(AggFunc::Avg, Some(DataType::Float64)).unwrap();
        assert!(a.merge(&b).is_err());
    }

    #[test]
    fn result_types() {
        assert_eq!(
            AggFunc::Sum.result_type(Some(DataType::Int64)).unwrap(),
            DataType::Int64
        );
        assert_eq!(
            AggFunc::Avg.result_type(Some(DataType::Int64)).unwrap(),
            DataType::Float64
        );
        assert_eq!(AggFunc::Count.result_type(None).unwrap(), DataType::Int64);
        assert!(AggFunc::Sum.result_type(Some(DataType::Utf8)).is_err());
        assert!(AggFunc::Min.result_type(None).is_err());
    }

    #[test]
    fn from_name_parses() {
        assert_eq!(AggFunc::from_name("SUM"), Some(AggFunc::Sum));
        assert_eq!(AggFunc::from_name("avg"), Some(AggFunc::Avg));
        assert_eq!(AggFunc::from_name("median"), None);
    }
}
